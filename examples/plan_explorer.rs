//! Plan explorer: watch the three-phase optimizer and the delegation
//! engine at work (Figures 5–7 and Table II of the paper).
//!
//! Run with: `cargo run --release --example plan_explorer`

use xdb::core::annotate::AnnotateOptions;
use xdb::core::characteristics;
use xdb::core::scenario::{self, ScenarioConfig};
use xdb::core::{Xdb, XdbOptions};
use xdb::net::Movement;
use xdb::sql::bind::bind_select;
use xdb::sql::optimize::{optimize, OptimizeOptions};
use xdb::sql::parse_select;

fn main() {
    let (cluster, catalog) = scenario::build(ScenarioConfig::default()).expect("scenario");

    println!("== Table II: why existing paradigms fall short ==");
    print!("{}", characteristics::render_table());

    // Phase 1: logical optimization (Fig 6a).
    let stmt = parse_select(scenario::EXAMPLE_QUERY).unwrap();
    let bound = bind_select(&stmt, &catalog).unwrap();
    let optimized = optimize(bound, &catalog, OptimizeOptions::default());
    println!("\n== Optimized logical plan (Fig 6a) ==");
    print!("{}", optimized.tree_string());

    // Phases 2+3: annotation + finalization (Figs 6b, 5a), then the DDLs
    // the delegation engine ships (Fig 7).
    for (label, options) in [
        (
            "cost-based placement (the optimal plan, Fig 5a)",
            AnnotateOptions::default(),
        ),
        (
            "all movements forced implicit (candidate plan)",
            AnnotateOptions {
                force_movement: Some(Movement::Implicit),
                ..Default::default()
            },
        ),
        (
            "all movements forced explicit (naive materialization)",
            AnnotateOptions {
                force_movement: Some(Movement::Explicit),
                ..Default::default()
            },
        ),
    ] {
        println!("\n== Delegation plan: {label} ==");
        let xdb = Xdb::new(&cluster, &catalog).with_options(XdbOptions {
            annotate: options,
            ..Default::default()
        });
        let (plan, script, _, consults) = xdb.plan(scenario::EXAMPLE_QUERY).unwrap();
        print!("{}", plan.notation());
        println!(
            "  tasks: {}, consulting round-trips: {consults}",
            plan.tasks.len()
        );
        println!("  -- DDL statements (Fig 7) --");
        for step in &script.steps {
            println!("  @{}: {}", step.node, step.sql);
        }
        println!("  -- XDB query --");
        println!("  @{}: {}", script.root_node, script.xdb_query);
    }

    println!(
        "\nThe client executes only the final SELECT; evaluating the root view\n\
         trickles execution down across all DBMSes (Fig 8)."
    );
}
