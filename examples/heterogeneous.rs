//! Heterogeneous federation (Fig 10 of the paper): MariaDB on db2, Hive on
//! db3, PostgreSQL elsewhere — plus the cost-unit calibration XDB performs
//! before comparing EXPLAIN costs across vendors (footnote 6).
//!
//! Run with: `cargo run --release --example heterogeneous`

use xdb::baselines::{Mediator, MediatorConfig};
use xdb::core::calibration::Calibration;
use xdb::core::{GlobalCatalog, Xdb};
use xdb::net::Scenario;
use xdb::tpch::{build_cluster, ProfileAssignment, TableDist, TpchQuery};

fn main() {
    println!("Building the Fig 10 setup: MariaDB@db2, Hive@db3, PostgreSQL elsewhere.");
    let mut cluster = build_cluster(
        TableDist::Td1,
        0.02,
        Scenario::OnPremise,
        &ProfileAssignment::heterogeneous(),
    )
    .expect("cluster");
    cluster.topology.add_node("mediator".into());

    // Calibrate cost units across vendors before optimizing.
    let calibration = Calibration::probe(&cluster).expect("calibration");
    println!("\n== Cost-unit calibration (Zhu & Larson style probing) ==");
    for node in cluster.node_names() {
        let vendor = cluster.engine(&node).unwrap().profile.vendor;
        println!(
            "  {node} ({vendor}): factor {:.3} to {}'s unit",
            calibration.factor(&node).unwrap_or(1.0),
            calibration.reference_node().unwrap_or("?")
        );
    }

    let catalog = GlobalCatalog::discover(&cluster).expect("catalog");
    println!(
        "\n{:<6} {:>12} {:>12}  speedup",
        "query", "xdb (s)", "presto4 (s)"
    );
    let mut speedups = Vec::new();
    for q in TpchQuery::ALL {
        let xdb = Xdb::new(&cluster, &catalog);
        let x = xdb.submit(q.sql()).expect("xdb");
        let presto = Mediator::new(&cluster, &catalog, MediatorConfig::presto("mediator", 4))
            .submit(q.sql())
            .expect("presto");
        assert!(presto.relation.same_bag(&x.relation));
        let speedup = presto.total_ms / x.breakdown.exec_ms;
        speedups.push(speedup);
        println!(
            "{:<6} {:>12.2} {:>12.2}  {:>6.1}x",
            q.name(),
            x.breakdown.exec_ms / 1000.0,
            presto.total_ms / 1000.0,
            speedup
        );
    }
    let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
    println!(
        "\nAverage speedup {avg:.1}x — the paper reports ~2x here: XDB's gains shrink\n\
         when the underlying engines themselves are weak at cross-database joins\n\
         (MariaDB's OLAP factor, Hive's start-up), yet out-of-the-box RDBMSes still\n\
         beat a specialized distributed MW system."
    );
}
