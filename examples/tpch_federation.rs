//! TPC-H federation: the paper's evaluation setup in miniature.
//!
//! Distributes the eight TPC-H tables over seven DBMSes (Table III, TD1),
//! then runs the six evaluation queries through XDB and the three
//! baselines, reporting simulated runtimes and measured network transfer.
//!
//! Run with: `cargo run --release --example tpch_federation [scale]`

use xdb::baselines::{Mediator, MediatorConfig, Sclera};
use xdb::core::{GlobalCatalog, Xdb};
use xdb::engine::profile::EngineProfile;
use xdb::net::Scenario;
use xdb::tpch::{build_cluster, ProfileAssignment, TableDist, TpchQuery};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);
    println!("Loading TPC-H at scale factor {scale} over TD1 (Table III)...");
    let mut cluster = build_cluster(
        TableDist::Td1,
        scale,
        Scenario::OnPremise,
        &ProfileAssignment::uniform(EngineProfile::postgres()),
    )
    .expect("cluster");
    cluster.topology.add_node("mediator".into());
    let catalog = GlobalCatalog::discover(&cluster).expect("catalog");

    println!(
        "\n{:<6} {:>12} {:>12} {:>12} {:>12}   {:>14} {:>14}",
        "query",
        "xdb (s)",
        "garlic (s)",
        "presto4 (s)",
        "sclera (s)",
        "xdb moved (B)",
        "MW fetched (B)"
    );
    for q in TpchQuery::ALL {
        cluster.ledger.clear();
        let xdb = Xdb::new(&cluster, &catalog);
        let x = xdb.submit(q.sql()).expect("xdb");
        let xdb_bytes = cluster.ledger.total_bytes();

        cluster.ledger.clear();
        let garlic = Mediator::new(&cluster, &catalog, MediatorConfig::garlic("mediator"))
            .submit(q.sql())
            .expect("garlic");
        let presto = Mediator::new(&cluster, &catalog, MediatorConfig::presto("mediator", 4))
            .submit(q.sql())
            .expect("presto");
        let sclera = Sclera::new(&cluster, &catalog, "mediator")
            .submit(q.sql())
            .expect("sclera");
        assert!(
            garlic.relation.same_bag(&x.relation),
            "{} diverged",
            q.name()
        );
        assert!(presto.relation.same_bag(&x.relation));
        assert!(sclera.relation.same_bag(&x.relation));
        println!(
            "{:<6} {:>12.2} {:>12.2} {:>12.2} {:>12.2}   {:>14} {:>14}",
            q.name(),
            x.breakdown.exec_ms / 1000.0,
            garlic.total_ms / 1000.0,
            presto.total_ms / 1000.0,
            sclera.total_ms / 1000.0,
            xdb_bytes,
            garlic.fetch_bytes,
        );
    }
    println!("\nAll four systems returned identical results for every query.");
    println!("XDB's advantage grows with the data: it never centralizes intermediates.");
}
