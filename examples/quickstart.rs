//! Quickstart: the paper's motivating scenario end to end.
//!
//! The Municipal Office of Credo runs three departmental DBMSes (Table I):
//! CDB (citizens), VDB (vaccines + vaccinations), HDB (antibody
//! measurements). The chief health officer's analytical query (Figure 3)
//! joins all three — XDB executes it *in-situ*, without any mediating
//! execution engine.
//!
//! Run with: `cargo run --release --example quickstart`

use xdb::core::scenario::{self, ScenarioConfig};
use xdb::core::Xdb;
use xdb::net::Purpose;

fn main() {
    // 1. Build the federation: three engines on a LAN, data loaded per
    //    department, global catalog discovered + statistics consulted.
    let (cluster, catalog) = scenario::build(ScenarioConfig::default()).expect("scenario");
    println!("== Table I: the federation ==");
    for node in ["cdb", "vdb", "hdb"] {
        let engine = cluster.engine(node).unwrap();
        let tables = engine.with_catalog(|c| c.names());
        println!("  {node}: {}", tables.join(", "));
    }

    // 2. The cross-database query of Figure 3.
    println!(
        "\n== The CHO's query (Fig 3) ==\n{}\n",
        scenario::EXAMPLE_QUERY
    );

    // 3. Submit through XDB.
    let xdb = Xdb::new(&cluster, &catalog);
    let outcome = xdb.submit(scenario::EXAMPLE_QUERY).expect("query");

    println!("== Delegation plan (Fig 5a style) ==");
    print!("{}", outcome.delegation.notation());

    println!("\n== Result ==");
    print!("{}", outcome.relation.to_table_string(12));

    println!("\n== Where did the time go? (Fig 15 phases, simulated ms) ==");
    let b = &outcome.breakdown;
    println!(
        "  prep  {:>8.0}   (parse + metadata consultation)",
        b.prep_ms
    );
    println!("  lopt  {:>8.0}   (logical optimization)", b.lopt_ms);
    println!(
        "  ann   {:>8.0}   ({} consulting round-trips)",
        b.ann_ms, outcome.consult_roundtrips
    );
    println!(
        "  exec  {:>8.0}   ({} DDLs + decentralized pipeline)",
        b.exec_ms, outcome.ddl_count
    );
    println!("  total {:>8.0}", b.total_ms());

    println!("\n== What moved over the network? ==");
    println!(
        "  inter-DBMS pipeline: {} bytes",
        cluster.ledger.bytes_for(Purpose::InterDbmsPipeline)
    );
    println!(
        "  materialization:     {} bytes",
        cluster.ledger.bytes_for(Purpose::Materialization)
    );
    println!(
        "  final result:        {} bytes",
        cluster.ledger.bytes_for(Purpose::FinalResult)
    );
    println!(
        "  control messages:    {} bytes",
        cluster.ledger.bytes_for(Purpose::ControlMessage)
    );
    println!("\nNo mediator ever touched the intermediate data — that is the point.");
}
