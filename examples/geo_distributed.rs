//! Geo-distributed federation and metered cloud traffic — the Fig 14
//! scenarios of the paper.
//!
//! Two deployments of the same TPC-H federation:
//! - **on-premise**: the DBMSes share a LAN, the middleware runs on a
//!   managed cloud node, and cloud ingress is what the provider bills;
//! - **geo-distributed**: every DBMS sits in its own datacenter, so every
//!   inter-DBMS byte is billed.
//!
//! Run with: `cargo run --release --example geo_distributed [scale]`

use xdb::baselines::{Mediator, MediatorConfig};
use xdb::core::{GlobalCatalog, Xdb};
use xdb::engine::profile::EngineProfile;
use xdb::net::{NodeId, Purpose, Scenario};
use xdb::tpch::{build_cluster, ProfileAssignment, TableDist, TpchQuery};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.02);

    println!("== Scenario 1: on-premise DBMSes, middleware in the cloud ==");
    let mut onp = build_cluster(
        TableDist::Td1,
        scale,
        Scenario::OnPremise,
        &ProfileAssignment::uniform(EngineProfile::postgres()),
    )
    .expect("cluster");
    onp.topology.add_cloud_node(NodeId::new("cloud"));
    let catalog = GlobalCatalog::discover(&onp).expect("catalog");

    println!(
        "{:<6} {:>16} {:>16} {:>10}",
        "query", "xdb→cloud (B)", "garlic→cloud (B)", "ratio"
    );
    for q in TpchQuery::ALL {
        onp.ledger.clear();
        Xdb::new(&onp, &catalog)
            .with_client_node("cloud")
            .submit(q.sql())
            .expect("xdb");
        let xdb_bytes = onp.ledger.bytes_into(&NodeId::new("cloud"));
        onp.ledger.clear();
        let garlic = Mediator::new(&onp, &catalog, MediatorConfig::garlic("cloud"))
            .submit(q.sql())
            .expect("garlic");
        println!(
            "{:<6} {:>16} {:>16} {:>9.0}x",
            q.name(),
            xdb_bytes,
            garlic.fetch_bytes,
            garlic.fetch_bytes as f64 / xdb_bytes.max(1) as f64
        );
    }
    println!("XDB sends the cloud only final results + control messages (Fig 14 ONP).");

    println!("\n== Scenario 2: geo-distributed DBMSes ==");
    let mut geo = build_cluster(
        TableDist::Td1,
        scale,
        Scenario::GeoDistributed,
        &ProfileAssignment::uniform(EngineProfile::postgres()),
    )
    .expect("cluster");
    geo.topology.add_cloud_node(NodeId::new("cloud"));
    let catalog = GlobalCatalog::discover(&geo).expect("catalog");
    println!(
        "{:<6} {:>14} {:>14} {:>12}",
        "query", "xdb inter-DC", "garlic (B)", "xdb exec (s)"
    );
    for q in TpchQuery::ALL {
        geo.ledger.clear();
        let out = Xdb::new(&geo, &catalog)
            .with_client_node("cloud")
            .submit(q.sql())
            .expect("xdb");
        let moved = geo.ledger.bytes_for(Purpose::InterDbmsPipeline)
            + geo.ledger.bytes_for(Purpose::Materialization);
        geo.ledger.clear();
        let garlic = Mediator::new(&geo, &catalog, MediatorConfig::garlic("cloud"))
            .submit(q.sql())
            .expect("garlic");
        println!(
            "{:<6} {:>14} {:>14} {:>12.2}",
            q.name(),
            moved,
            garlic.fetch_bytes,
            out.breakdown.exec_ms / 1000.0
        );
    }
    println!(
        "Geo-distribution raises XDB's inter-DC traffic, but it still moves far\n\
         less than any mediator — it only ships pruned, filtered, well-placed\n\
         intermediates (Fig 14 GEO)."
    );
}
