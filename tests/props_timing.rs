//! Property tests on the timing composition model: the documented
//! semantics of pipelined vs materialized dataflow must hold for arbitrary
//! edge configurations.

use proptest::prelude::*;
use xdb::net::{compose_finish, mediator_finish, EdgeTiming, Movement};

fn arb_edge() -> impl Strategy<Value = EdgeTiming> {
    (0.0f64..5000.0, 0.0f64..2000.0, 0.0f64..500.0, any::<bool>()).prop_map(
        |(producer, transfer, import, implicit)| EdgeTiming {
            producer_finish_ms: producer,
            transfer_ms: transfer,
            import_ms: import,
            movement: if implicit {
                Movement::Implicit
            } else {
                Movement::Explicit
            },
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn finish_dominates_every_component(
        startup in 0.0f64..100.0,
        work in 0.0f64..2000.0,
        edges in prop::collection::vec(arb_edge(), 0..6),
    ) {
        let finish = compose_finish(startup, work, &edges);
        // Never faster than doing the local work alone.
        prop_assert!(finish >= startup + work - 1e-9);
        // Never faster than any upstream producer.
        for e in &edges {
            prop_assert!(
                finish >= e.producer_finish_ms - 1e-9,
                "finish {} < producer {}",
                finish,
                e.producer_finish_ms
            );
        }
    }

    #[test]
    fn full_serialization_never_beats_full_pipelining(
        startup in 0.0f64..100.0,
        work in 0.0f64..2000.0,
        edges in prop::collection::vec(arb_edge(), 1..6),
    ) {
        // Starting from a fully pipelined configuration, materializing
        // every edge can only delay completion (up to the per-edge
        // consumer-drain constant). Note this does NOT hold for *mixed*
        // configurations: an explicit edge elsewhere can make
        // materializing a pipelined input profitable by overlapping the
        // transfers — which is exactly why Equation 1 must choose per
        // edge.
        let all_implicit: Vec<EdgeTiming> = edges
            .iter()
            .map(|e| EdgeTiming {
                movement: Movement::Implicit,
                import_ms: 0.0,
                ..*e
            })
            .collect();
        let all_explicit: Vec<EdgeTiming> = edges
            .iter()
            .map(|e| EdgeTiming {
                movement: Movement::Explicit,
                import_ms: 0.0,
                ..*e
            })
            .collect();
        let pipelined = compose_finish(startup, work, &all_implicit);
        let serialized = compose_finish(startup, work, &all_explicit);
        let slack = xdb::net::params::PIPELINE_DRAIN_MS * edges.len() as f64;
        prop_assert!(
            serialized >= pipelined - slack - 1e-9,
            "{serialized} < {pipelined}"
        );
    }

    #[test]
    fn monotone_in_all_inputs(
        startup in 0.0f64..100.0,
        work in 0.0f64..2000.0,
        edges in prop::collection::vec(arb_edge(), 1..5),
        bump in 1.0f64..500.0,
        which in 0usize..5,
    ) {
        let base = compose_finish(startup, work, &edges);
        // Bump one edge's producer time.
        let mut bumped = edges.clone();
        let i = which % edges.len();
        bumped[i].producer_finish_ms += bump;
        prop_assert!(compose_finish(startup, work, &bumped) >= base - 1e-9);
        // Bump local work.
        prop_assert!(compose_finish(startup, work + bump, &edges) >= base - 1e-9);
        // Bump startup.
        prop_assert!(compose_finish(startup + bump, work, &edges) >= base - 1e-9);
    }

    #[test]
    fn mediator_waits_for_slowest_fetch(
        startup in 0.0f64..100.0,
        work in 0.0f64..2000.0,
        fetches in prop::collection::vec((0.0f64..3000.0, 0.0f64..1000.0), 0..6),
    ) {
        let total = mediator_finish(startup, work, &fetches);
        prop_assert!(total >= startup + work - 1e-9);
        for (f, x) in &fetches {
            prop_assert!(total >= f + x - 1e-9);
        }
        // Removing a fetch never slows the mediator down.
        if !fetches.is_empty() {
            let fewer = &fetches[..fetches.len() - 1];
            prop_assert!(mediator_finish(startup, work, fewer) <= total + 1e-9);
        }
    }
}
