//! Property tests for the columnar data plane: the vectorized kernels and
//! the partition-parallel operators must be *observationally identical* to
//! row-at-a-time evaluation — same values, same Value variants, same row
//! order — on randomly generated relations, expressions, and plans.

use proptest::prelude::*;
use xdb::engine::expr::compile;
use xdb::engine::relation::Relation;
use xdb::engine::vector;
use xdb::engine::{Engine, NoRemote};
use xdb::sql::algebra::{Field, PlanSchema};
use xdb::sql::ast::{BinaryOp, Expr, UnaryOp};
use xdb::sql::value::{DataType, Value};

// ------------------------------------------------------- random relations

/// One random row for the fixed test schema (i, f, s, d, b), with
/// independent NULLs per cell.
fn arb_row() -> impl Strategy<Value = Vec<Value>> {
    (
        prop::option::of(-1000i64..1000),
        prop::option::of((-4000i32..4000).prop_map(|n| n as f64 * 0.25)),
        prop::option::of("[a-c]{0,6}"),
        prop::option::of(9000i32..12000),
        prop::option::of(any::<bool>()),
    )
        .prop_map(|(i, f, s, d, b)| {
            vec![
                i.map_or(Value::Null, Value::Int),
                f.map_or(Value::Null, Value::Float),
                s.map_or(Value::Null, Value::str),
                d.map_or(Value::Null, Value::Date),
                b.map_or(Value::Null, Value::Bool),
            ]
        })
}

fn schema() -> PlanSchema {
    PlanSchema::new(vec![
        Field::new(None::<&str>, "i", DataType::Int),
        Field::new(None::<&str>, "f", DataType::Float),
        Field::new(None::<&str>, "s", DataType::Str),
        Field::new(None::<&str>, "d", DataType::Date),
        Field::new(None::<&str>, "b", DataType::Bool),
    ])
}

fn relation(rows: Vec<Vec<Value>>) -> Relation {
    Relation::new(
        vec![
            ("i".to_string(), DataType::Int),
            ("f".to_string(), DataType::Float),
            ("s".to_string(), DataType::Str),
            ("d".to_string(), DataType::Date),
            ("b".to_string(), DataType::Bool),
        ],
        rows,
    )
}

// ----------------------------------------------------- random expressions

/// Well-typed numeric expressions over columns i and f. Division is
/// deliberately absent (it is not vectorized); +, -, * over these bounded
/// inputs can neither overflow f64 nor produce NaN.
fn num_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        Just(Expr::col("i")),
        Just(Expr::col("f")),
        (-1000i64..1000).prop_map(|n| Expr::Literal(Value::Int(n))),
        (-4000i32..4000).prop_map(|n| Expr::Literal(Value::Float(n as f64 * 0.25))),
        Just(Expr::Literal(Value::Null)),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        (
            prop_oneof![
                Just(BinaryOp::Plus),
                Just(BinaryOp::Minus),
                Just(BinaryOp::Mul)
            ],
            inner.clone(),
            inner,
        )
            .prop_map(|(op, l, r)| Expr::binary(op, l, r))
    })
}

/// Well-typed predicates over the full schema.
fn cmp_op() -> impl Strategy<Value = BinaryOp> {
    prop_oneof![
        Just(BinaryOp::Eq),
        Just(BinaryOp::NotEq),
        Just(BinaryOp::Lt),
        Just(BinaryOp::LtEq),
        Just(BinaryOp::Gt),
        Just(BinaryOp::GtEq),
    ]
}

fn pred_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (num_expr(), cmp_op(), num_expr()).prop_map(|(l, op, r)| Expr::binary(op, l, r)),
        ("[a-c]{0,4}", cmp_op()).prop_map(|(lit, op)| Expr::binary(
            op,
            Expr::col("s"),
            Expr::Literal(Value::str(lit))
        )),
        ((9000i32..12000), cmp_op()).prop_map(|(lit, op)| Expr::binary(
            op,
            Expr::col("d"),
            Expr::Literal(Value::Date(lit))
        )),
        ("[a-c%_]{0,5}", any::<bool>()).prop_map(|(pattern, negated)| Expr::Like {
            expr: Box::new(Expr::col("s")),
            pattern,
            negated,
        }),
        (num_expr(), num_expr(), num_expr(), any::<bool>()).prop_map(|(e, lo, hi, negated)| {
            Expr::Between {
                expr: Box::new(e),
                low: Box::new(lo),
                high: Box::new(hi),
                negated,
            }
        }),
        (prop::collection::vec(-1000i64..1000, 1..4), any::<bool>()).prop_map(
            |(items, negated)| Expr::InList {
                expr: Box::new(Expr::col("i")),
                list: items
                    .into_iter()
                    .map(|n| Expr::Literal(Value::Int(n)))
                    .collect(),
                negated,
            }
        ),
        Just(Expr::col("b")),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::binary(BinaryOp::And, l, r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::binary(BinaryOp::Or, l, r)),
            inner.clone().prop_map(|e| Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(e),
            }),
            (inner, any::<bool>()).prop_map(|(e, negated)| Expr::IsNull {
                expr: Box::new(e),
                negated,
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Whenever a kernel claims an expression, its output column must
    /// match row-at-a-time evaluation cell for cell, Value variant
    /// included (Int(7) stays Int(7), never Float(7.0)).
    #[test]
    fn vectorized_eval_matches_rowwise(
        e in num_expr(),
        rows in prop::collection::vec(arb_row(), 0..40),
    ) {
        let rel = relation(rows);
        let compiled = compile(&e, &schema()).unwrap();
        if let Some(col) = vector::eval_to_column(&compiled, &rel) {
            prop_assert_eq!(col.len(), rel.len());
            for i in 0..rel.len() {
                let want = compiled.eval(&rel.row(i)).unwrap();
                prop_assert_eq!(col.value(i), want, "row {}", i);
            }
        }
    }

    /// Vectorized filtering must select exactly the rows that
    /// row-at-a-time predicate evaluation keeps, in the same order.
    #[test]
    fn vectorized_filter_matches_rowwise(
        p in pred_expr(),
        rows in prop::collection::vec(arb_row(), 0..40),
    ) {
        let rel = relation(rows);
        let compiled = compile(&p, &schema()).unwrap();
        if let Some(sel) = vector::filter_sel(&compiled, &rel) {
            let mut want = Vec::new();
            for i in 0..rel.len() {
                if compiled.eval_predicate(&rel.row(i)).unwrap() {
                    want.push(i as u32);
                }
            }
            prop_assert_eq!(sel, want);
        }
    }
}

// -------------------------------------------- partition-parallel equality

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Deterministic pseudo-random tables big enough to cross the
    /// executor's parallel threshold, queried at partitions 1 / 2 / 8:
    /// the three results must be `==` (same rows, same order, same
    /// Value variants).
    #[test]
    fn partitioned_plans_match_sequential(seed in any::<u64>()) {
        let n = 4600usize;
        let mut x = seed | 1;
        let mut next = || {
            // xorshift64*
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let fact: Vec<Vec<Value>> = (0..n)
            .map(|_| {
                let k = (next() % 97) as i64;
                let v = (next() % 1000) as i64;
                vec![
                    if v % 41 == 0 { Value::Null } else { Value::Int(k) },
                    Value::Int(v),
                    Value::Float((v % 13) as f64 * 0.5),
                ]
            })
            .collect();
        let dim: Vec<Vec<Value>> = (0..97)
            .map(|k| vec![Value::Int(k), Value::str(format!("g{}", k % 7))])
            .collect();
        let queries = [
            "SELECT g.tag, count(*) AS n, sum(f.v) AS sv \
             FROM fact f, dim g WHERE f.k = g.k GROUP BY g.tag ORDER BY g.tag",
            "SELECT f.k, sum(f.w) AS sw FROM fact f GROUP BY f.k ORDER BY f.k",
            "SELECT g.tag, f.v FROM fact f, dim g \
             WHERE f.k = g.k AND f.v < 50 ORDER BY f.v, g.tag LIMIT 40",
        ];
        let mut reference: Vec<Option<Relation>> = vec![None; queries.len()];
        for parts in [1usize, 2, 8] {
            let e = Engine::new("db", xdb::engine::profile::EngineProfile::postgres());
            e.set_exec_partitions(parts);
            e.load_table(
                "fact",
                Relation::new(
                    vec![
                        ("k".to_string(), DataType::Int),
                        ("v".to_string(), DataType::Int),
                        ("w".to_string(), DataType::Float),
                    ],
                    fact.clone(),
                ),
            )
            .unwrap();
            e.load_table(
                "dim",
                Relation::new(
                    vec![
                        ("k".to_string(), DataType::Int),
                        ("tag".to_string(), DataType::Str),
                    ],
                    dim.clone(),
                ),
            )
            .unwrap();
            for (qi, sql) in queries.iter().enumerate() {
                let rel = e.execute_sql(sql, &NoRemote).unwrap().relation.unwrap();
                match &reference[qi] {
                    None => reference[qi] = Some(rel),
                    Some(want) => prop_assert_eq!(
                        &rel, want,
                        "partitions={} diverged on query {}", parts, qi
                    ),
                }
            }
        }
    }
}
