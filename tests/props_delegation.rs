//! Property test of the paper's core correctness claim: a delegation
//! plan's fully decentralized execution is equivalent to running the same
//! query on a single engine that holds every table.
//!
//! Random federations (3 DBMSes, 3 tables with random small contents) and
//! random SPJA queries (filters, equi-join chains, optional aggregation,
//! ordering, limits) are executed both ways and compared as bags.

use proptest::prelude::*;
use xdb::core::annotate::AnnotateOptions;
use xdb::core::{GlobalCatalog, Xdb, XdbOptions};
use xdb::engine::cluster::Cluster;
use xdb::engine::profile::EngineProfile;
use xdb::engine::relation::Relation;
use xdb::net::Movement;
use xdb::sql::value::{DataType, Value};

#[derive(Debug, Clone)]
struct Federation {
    /// rows for r0(a, g, s) on node n0.
    r0: Vec<(i64, i64, String)>,
    /// rows for r1(a, b) on node n1.
    r1: Vec<(i64, i64)>,
    /// rows for r2(b, h) on node n2.
    r2: Vec<(i64, String)>,
}

fn arb_federation() -> impl Strategy<Value = Federation> {
    let key = 0i64..8;
    (
        prop::collection::vec((key.clone(), -5i64..5, "[a-c]{1,3}"), 0..24),
        prop::collection::vec((key.clone(), key.clone()), 0..24),
        prop::collection::vec((key, "[a-c]{1,3}"), 0..16),
    )
        .prop_map(|(r0, r1, r2)| Federation { r0, r1, r2 })
}

#[derive(Debug, Clone)]
struct Query {
    filter_a: Option<i64>,
    join_r1: bool,
    join_r2: bool,
    aggregate: bool,
    order_limit: Option<u64>,
    /// None = no subquery; Some(false) = EXISTS, Some(true) = NOT EXISTS
    /// (correlated on r2 via r0.a = r2.b — a cross-DBMS semi/anti join).
    exists_r2: Option<bool>,
}

fn arb_query() -> impl Strategy<Value = Query> {
    (
        prop::option::of(0i64..8),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        prop::option::of(1u64..6),
        prop::option::of(any::<bool>()),
    )
        .prop_map(
            |(filter_a, join_r1, join_r2, aggregate, order_limit, exists_r2)| Query {
                filter_a,
                // r2 joins through r1; don't both join and semi-join it.
                join_r2: join_r1 && join_r2 && exists_r2.is_none(),
                join_r1,
                aggregate,
                order_limit,
                exists_r2,
            },
        )
}

impl Query {
    fn sql(&self) -> String {
        let mut from = vec!["r0"];
        let mut preds: Vec<String> = Vec::new();
        if self.join_r1 {
            from.push("r1");
            preds.push("r0.a = r1.a".into());
        }
        if self.join_r2 {
            from.push("r2");
            preds.push("r1.b = r2.b".into());
        }
        if let Some(v) = self.filter_a {
            preds.push(format!("r0.a >= {v}"));
        }
        if let Some(negated) = self.exists_r2 {
            preds.push(format!(
                "{}EXISTS (SELECT 1 FROM r2 WHERE r2.b = r0.a)",
                if negated { "NOT " } else { "" }
            ));
        }
        let where_clause = if preds.is_empty() {
            String::new()
        } else {
            format!(" WHERE {}", preds.join(" AND "))
        };
        let (select, group) = if self.aggregate {
            (
                "r0.g AS g, count(*) AS n, sum(r0.a) AS total".to_string(),
                " GROUP BY r0.g".to_string(),
            )
        } else if self.join_r2 {
            ("r0.a AS a, r0.s AS s, r2.h AS h".to_string(), String::new())
        } else {
            ("r0.a AS a, r0.g AS g, r0.s AS s".to_string(), String::new())
        };
        let tail = match self.order_limit {
            Some(n) if self.aggregate => format!(" ORDER BY n DESC, g LIMIT {n}"),
            Some(n) => format!(" ORDER BY 1, 2, 3 LIMIT {n}"),
            None => String::new(),
        };
        format!(
            "SELECT {select} FROM {}{where_clause}{group}{tail}",
            from.join(", ")
        )
    }
}

fn load(cluster: &Cluster, node: &str, fed: &Federation, table: &str) {
    let rel = match table {
        "r0" => Relation::new(
            vec![
                ("a".into(), DataType::Int),
                ("g".into(), DataType::Int),
                ("s".into(), DataType::Str),
            ],
            fed.r0
                .iter()
                .map(|(a, g, s)| vec![Value::Int(*a), Value::Int(*g), Value::str(s)])
                .collect(),
        ),
        "r1" => Relation::new(
            vec![("a".into(), DataType::Int), ("b".into(), DataType::Int)],
            fed.r1
                .iter()
                .map(|(a, b)| vec![Value::Int(*a), Value::Int(*b)])
                .collect(),
        ),
        "r2" => Relation::new(
            vec![("b".into(), DataType::Int), ("h".into(), DataType::Str)],
            fed.r2
                .iter()
                .map(|(b, h)| vec![Value::Int(*b), Value::str(h)])
                .collect(),
        ),
        _ => unreachable!(),
    };
    cluster
        .engine(node)
        .unwrap()
        .load_table(table, rel)
        .unwrap();
}

fn run_case(fed: &Federation, q: &Query, options: XdbOptions) -> (Relation, Relation) {
    // Decentralized.
    let cluster = Cluster::lan(&["n0", "n1", "n2"], EngineProfile::postgres());
    load(&cluster, "n0", fed, "r0");
    load(&cluster, "n1", fed, "r1");
    load(&cluster, "n2", fed, "r2");
    let catalog = GlobalCatalog::discover(&cluster).unwrap();
    for t in catalog.table_names() {
        catalog.consult(&cluster, &t).unwrap();
    }
    let xdb = Xdb::new(&cluster, &catalog).with_options(options);
    let got = xdb.submit(&q.sql()).unwrap().relation;

    // Oracle.
    let solo = Cluster::lan(&["solo"], EngineProfile::postgres());
    load(&solo, "solo", fed, "r0");
    load(&solo, "solo", fed, "r1");
    load(&solo, "solo", fed, "r2");
    let expected = solo.query("solo", &q.sql()).unwrap().0;
    (got, expected)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn decentralized_equals_single_engine(fed in arb_federation(), q in arb_query()) {
        let (got, expected) = run_case(&fed, &q, XdbOptions::default());
        // LIMIT without a total order can legitimately pick different
        // rows; our ORDER BY covers all output columns for the
        // non-aggregate case, and (n, g) keys for the aggregate case —
        // aggregate rows are unique per g, so both are deterministic.
        prop_assert!(
            got.same_bag(&expected),
            "query {:?}\ngot\n{}\nexpected\n{}",
            q.sql(),
            got.to_table_string(30),
            expected.to_table_string(30)
        );
    }

    #[test]
    fn forced_movements_preserve_semantics(fed in arb_federation(), q in arb_query()) {
        for movement in [Movement::Implicit, Movement::Explicit] {
            let options = XdbOptions {
                annotate: AnnotateOptions {
                    force_movement: Some(movement),
                    ..Default::default()
                },
                ..Default::default()
            };
            let (got, expected) = run_case(&fed, &q, options);
            prop_assert!(
                got.same_bag(&expected),
                "movement {:?}, query {:?}",
                movement,
                q.sql()
            );
        }
    }

    #[test]
    fn disabled_optimizations_preserve_semantics(fed in arb_federation(), q in arb_query()) {
        let options = XdbOptions {
            no_join_reorder: true,
            no_column_pruning: true,
            ..Default::default()
        };
        let (got, expected) = run_case(&fed, &q, options);
        prop_assert!(got.same_bag(&expected), "query {:?}", q.sql());
    }

    #[test]
    fn bushy_plans_preserve_semantics(fed in arb_federation(), q in arb_query()) {
        let options = XdbOptions {
            bushy_joins: true,
            ..Default::default()
        };
        let (got, expected) = run_case(&fed, &q, options);
        prop_assert!(got.same_bag(&expected), "query {:?}", q.sql());
    }
}
