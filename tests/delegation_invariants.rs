//! Structural invariants of delegation plans and failure-injection tests
//! for the delegation engine, across all evaluated queries and table
//! distributions.

use xdb::core::annotate::{AnnotateOptions, Annotator, PlacementPolicy};
use xdb::core::plan::DelegationPlan;
use xdb::core::{GlobalCatalog, Xdb};
use xdb::engine::cluster::Cluster;
use xdb::engine::profile::EngineProfile;
use xdb::net::Scenario;
use xdb::sql::algebra::LogicalPlan;
use xdb::sql::bind::bind_select;
use xdb::sql::optimize::{optimize, OptimizeOptions};
use xdb::sql::parse_select;
use xdb::tpch::{build_cluster, ProfileAssignment, TableDist, TpchQuery};

const SF: f64 = 0.002;

fn federation(td: TableDist) -> (Cluster, GlobalCatalog) {
    let cluster = build_cluster(
        td,
        SF,
        Scenario::OnPremise,
        &ProfileAssignment::uniform(EngineProfile::postgres()),
    )
    .unwrap();
    let catalog = GlobalCatalog::discover(&cluster).unwrap();
    for t in catalog.table_names() {
        catalog.consult(&cluster, &t).unwrap();
    }
    (cluster, catalog)
}

fn annotate(
    cluster: &Cluster,
    catalog: &GlobalCatalog,
    sql: &str,
    options: AnnotateOptions,
) -> DelegationPlan {
    let bound = bind_select(&parse_select(sql).unwrap(), catalog).unwrap();
    let optimized = optimize(bound, catalog, OptimizeOptions::default());
    catalog.clear_placeholders();
    Annotator::new(catalog, cluster, options)
        .run(&optimized)
        .unwrap()
        .plan
}

/// Every scan in every task must reside on the task's DBMS — tasks never
/// read another DBMS's base tables directly (that is what placeholders are
/// for).
#[test]
fn tasks_scan_only_local_tables() {
    for td in TableDist::ALL {
        let (cluster, catalog) = federation(td);
        for q in TpchQuery::ALL {
            let plan = annotate(&cluster, &catalog, q.sql(), AnnotateOptions::default());
            for task in &plan.tasks {
                let mut stack = vec![&task.plan];
                while let Some(p) = stack.pop() {
                    if let LogicalPlan::Scan { relation, .. } = p {
                        let home = catalog.location(relation).unwrap();
                        assert_eq!(
                            home,
                            &task.dbms,
                            "{} {}: task t{} on {} scans {} (home {})",
                            td.name(),
                            q.name(),
                            task.id,
                            task.dbms,
                            relation,
                            home
                        );
                    }
                    stack.extend(p.children());
                }
            }
        }
    }
}

/// With pruning, cross-database operators are placed only on DBMSes that
/// host base data of the query (never on an uninvolved third party).
#[test]
fn pruned_placement_stays_on_input_dbmses() {
    for td in TableDist::ALL {
        let (cluster, catalog) = federation(td);
        for q in TpchQuery::ALL {
            let plan = annotate(&cluster, &catalog, q.sql(), AnnotateOptions::default());
            let homes: Vec<String> = q
                .tables()
                .iter()
                .map(|ab| {
                    let t = xdb::tpch::TpchTable::from_abbrev(ab).unwrap();
                    td.node_of(t).to_string()
                })
                .collect();
            for task in &plan.tasks {
                assert!(
                    homes.contains(&task.dbms.as_str().to_string()),
                    "{} {}: task on uninvolved node {}",
                    td.name(),
                    q.name(),
                    task.dbms
                );
            }
        }
    }
}

/// The edge set is exactly the placeholder references: every non-root task
/// has exactly one consumer, the root has none, and the DAG is connected.
#[test]
fn plan_dag_is_well_formed() {
    let (cluster, catalog) = federation(TableDist::Td3);
    for q in TpchQuery::ALL {
        let plan = annotate(&cluster, &catalog, q.sql(), AnnotateOptions::default());
        for task in &plan.tasks {
            let out_degree = plan.edges.iter().filter(|e| e.from == task.id).count();
            if task.id == plan.root {
                assert_eq!(out_degree, 0, "{}: root has a consumer", q.name());
            } else {
                assert_eq!(
                    out_degree,
                    1,
                    "{}: task t{} has {} consumers",
                    q.name(),
                    task.id,
                    out_degree
                );
            }
        }
        // Edges only point forward (bottom-up task ids are topological).
        for e in &plan.edges {
            assert!(e.from < e.to, "{}: edge t{} -> t{}", q.name(), e.from, e.to);
        }
    }
}

/// Mediator decomposition: the root lands on the mediator and hosts every
/// placeholder; sub-query tasks are placeholder-free.
#[test]
fn mediator_policy_produces_mw_shape() {
    let (cluster, catalog) = federation(TableDist::Td1);
    for q in TpchQuery::ALL {
        let plan = annotate(
            &cluster,
            &catalog,
            q.sql(),
            AnnotateOptions {
                placement: PlacementPolicy::Mediator("mediator".into()),
                ..Default::default()
            },
        );
        assert_eq!(plan.task(plan.root).dbms.as_str(), "mediator");
        xdb::baselines::mediator::assert_subqueries_pure(&plan);
    }
}

/// Failure injection: a name collision makes a delegation DDL fail
/// mid-deployment; submit must return the error and leave no short-lived
/// objects behind.
#[test]
fn failed_delegation_cleans_up() {
    let (cluster, catalog) = federation(TableDist::Td1);
    let xdb = Xdb::new(&cluster, &catalog);
    // Plan once to learn the names the next query will use (query ids are
    // sequential), then squat on the root view name.
    let (plan, script, _, _) = xdb.plan(TpchQuery::Q3.sql()).unwrap();
    let root_node = plan.task(plan.root).dbms.clone();
    let squatted = script
        .steps
        .iter()
        .rev()
        .find(|s| s.node == root_node)
        .unwrap()
        .sql
        .clone();
    // Extract the view name from "CREATE VIEW <name> AS ...", then squat
    // on the *next* query id's name (ids are process-global, so parse the
    // observed one rather than assuming it).
    let observed = squatted.split_whitespace().nth(2).unwrap().to_string();
    let qid: u64 = observed
        .strip_prefix("xdb_q")
        .and_then(|rest| rest.split('_').next())
        .and_then(|n| n.parse().ok())
        .unwrap();
    // Other tests in this binary also draw from the process-global id
    // counter, so squat a whole range of upcoming ids.
    let squatters: Vec<String> = (1..=8)
        .map(|d| observed.replace(&format!("_q{qid}_"), &format!("_q{}_", qid + d)))
        .collect();
    for name in &squatters {
        cluster
            .execute(
                root_node.as_str(),
                &format!("CREATE TABLE {name} (x BIGINT)"),
            )
            .unwrap();
    }
    let err = xdb.submit(TpchQuery::Q3.sql());
    assert!(err.is_err(), "expected delegation failure");
    // Everything else was rolled back: only the squatters remain.
    for node in xdb::tpch::NODES {
        let names = cluster.engine(node).unwrap().with_catalog(|c| c.names());
        let leaked: Vec<&String> = names
            .iter()
            .filter(|n| n.starts_with("xdb_q") && !squatters.contains(n))
            .collect();
        assert!(leaked.is_empty(), "{node} leaked {leaked:?}");
    }
    // After removing the obstructions, the same query succeeds again.
    for name in &squatters {
        cluster
            .execute(root_node.as_str(), &format!("DROP TABLE {name}"))
            .unwrap();
    }
    xdb.submit(TpchQuery::Q3.sql()).unwrap();
}

/// Dead connector mid-execution: queries against a vanished server fail
/// with a Remote error, not a panic, and the client's cleanup still runs.
#[test]
fn vanished_server_reported_cleanly() {
    let (cluster, catalog) = federation(TableDist::Td1);
    // Point a foreign table at a server that does not exist and query
    // through it.
    cluster
        .execute(
            "db1",
            "CREATE FOREIGN TABLE ghost (x BIGINT) SERVER db99 OPTIONS (remote 'nope')",
        )
        .unwrap();
    let err = cluster.query("db1", "SELECT * FROM ghost").unwrap_err();
    assert!(matches!(err, xdb::engine::EngineError::Remote(_)));
    // The federation still works for real queries afterwards.
    let xdb = Xdb::new(&cluster, &catalog);
    xdb.submit(TpchQuery::Q3.sql()).unwrap();
}
