//! Trace invariants: span nesting, parenting, breakdown projection, and —
//! the load-bearing property — bit-identical traces from the parallel and
//! sequential executors, because every span timestamp is derived from the
//! simulated clock and spans are emitted single-threaded in script order.

use xdb::core::{GlobalCatalog, PhaseBreakdown, Xdb, XdbOptions};
use xdb::engine::cluster::Cluster;
use xdb::engine::profile::EngineProfile;
use xdb::net::{params, Scenario};
use xdb::obs::{QueryTrace, SpanKind};
use xdb::tpch::{build_cluster, ProfileAssignment, TableDist, TpchQuery};

const SF: f64 = 0.002;

fn federation(td: TableDist) -> (Cluster, GlobalCatalog) {
    let cluster = build_cluster(
        td,
        SF,
        Scenario::OnPremise,
        &ProfileAssignment::uniform(EngineProfile::postgres()),
    )
    .unwrap();
    let catalog = GlobalCatalog::discover(&cluster).unwrap();
    (cluster, catalog)
}

fn traced_submit(td: TableDist, q: TpchQuery, parallel: bool) -> (QueryTrace, PhaseBreakdown, u64) {
    let (cluster, catalog) = federation(td);
    let xdb = Xdb::new(&cluster, &catalog).with_options(XdbOptions {
        parallel_execution: parallel,
        trace_operators: true,
        ..Default::default()
    });
    let out = xdb.submit(q.sql()).unwrap();
    (out.trace, out.breakdown, out.consult_roundtrips)
}

#[test]
fn spans_are_properly_nested() {
    let (trace, _, _) = traced_submit(TableDist::Td3, TpchQuery::Q8, true);
    assert!(!trace.spans.is_empty());
    for s in &trace.spans {
        let Some(p) = s.parent else { continue };
        let parent = &trace.spans[p as usize];
        // A span's parent is always emitted before it…
        assert!(p < s.id, "span {} precedes its parent {}", s.id, p);
        // …and contains it on the timeline (tiny slack for f64 sums).
        assert!(
            s.start_ms >= parent.start_ms - 1e-6,
            "span {} ({}) starts at {} before parent {} ({}) at {}",
            s.id,
            s.name,
            s.start_ms,
            p,
            parent.name,
            parent.start_ms
        );
        assert!(
            s.end_ms() <= parent.end_ms() + 1e-6,
            "span {} ({}) ends at {} after parent {} ({}) at {}",
            s.id,
            s.name,
            s.end_ms(),
            p,
            parent.name,
            parent.end_ms()
        );
    }
}

#[test]
fn every_task_span_is_parented_to_the_exec_phase() {
    let (trace, _, _) = traced_submit(TableDist::Td2, TpchQuery::Q5, true);
    let exec_phase = trace
        .spans
        .iter()
        .find(|s| s.kind == SpanKind::Phase && s.name == "exec")
        .expect("exec phase span");
    let tasks: Vec<_> = trace.spans_of(SpanKind::Task).collect();
    assert!(!tasks.is_empty(), "no task spans in trace");
    for t in &tasks {
        assert_eq!(
            t.parent,
            Some(exec_phase.id),
            "task span {:?} not under the exec phase",
            t.name
        );
    }
    // And every DDL span sits under some task span.
    for d in trace.spans_of(SpanKind::Ddl) {
        let p = d.parent.expect("ddl span has a parent");
        assert_eq!(trace.spans[p as usize].kind, SpanKind::Task);
    }
}

/// Rewrite every `xdb_q<digits>` object name to `xdb_qN`. Query ids come
/// from one process-wide counter (names must be unique across concurrent
/// clients), so two submissions in the same test process differ in exactly
/// this id; across processes — as the `repro --trace` smoke test checks —
/// the raw traces are bit-identical.
fn normalize_query_ids(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(pos) = rest.find("xdb_q") {
        let after = pos + "xdb_q".len();
        out.push_str(&rest[..after]);
        let digits = rest[after..]
            .chars()
            .take_while(char::is_ascii_digit)
            .count();
        if digits > 0 {
            out.push('N');
        }
        rest = &rest[after + digits..];
    }
    out.push_str(rest);
    out
}

#[test]
fn parallel_and_sequential_traces_are_bit_identical() {
    for td in [TableDist::Td1, TableDist::Td2, TableDist::Td3] {
        for q in [TpchQuery::Q3, TpchQuery::Q5, TpchQuery::Q8] {
            let (par, par_b, _) = traced_submit(td, q, true);
            let (seq, seq_b, _) = traced_submit(td, q, false);
            assert_eq!(
                normalize_query_ids(&par.canonical()),
                normalize_query_ids(&seq.canonical()),
                "{} {}: span trees diverge",
                td.name(),
                q.name()
            );
            assert_eq!(
                par.metrics().counters,
                seq.metrics().counters,
                "{} {}: counter totals diverge",
                td.name(),
                q.name()
            );
            assert_eq!(
                normalize_query_ids(&par.to_chrome_json()),
                normalize_query_ids(&seq.to_chrome_json()),
                "{} {}: chrome export diverges",
                td.name(),
                q.name()
            );
            assert_eq!(
                par_b,
                seq_b,
                "{} {}: breakdowns diverge",
                td.name(),
                q.name()
            );
        }
    }
}

#[test]
fn partitioned_kernels_are_invisible_in_traces() {
    // The partition-parallel join/aggregation kernels must not leave any
    // observable mark: span trees, counters, Chrome exports, breakdowns,
    // and the result relation itself are bit-identical at any partition
    // count, because partitioning preserves row order and every simulated
    // cost is accounted identically.
    for (td, q) in [
        (TableDist::Td1, TpchQuery::Q3),
        (TableDist::Td3, TpchQuery::Q8),
    ] {
        let run = |partitions: usize| {
            let (cluster, catalog) = federation(td);
            cluster.set_exec_partitions(partitions);
            let xdb = Xdb::new(&cluster, &catalog).with_options(XdbOptions {
                parallel_execution: true,
                trace_operators: true,
                ..Default::default()
            });
            let out = xdb.submit(q.sql()).unwrap();
            (out.trace, out.breakdown, out.relation)
        };
        let (t1, b1, r1) = run(1);
        for parts in [2usize, 8] {
            let (t, b, r) = run(parts);
            assert_eq!(
                r1,
                r,
                "{} {}: results diverge at partitions={parts}",
                td.name(),
                q.name()
            );
            assert_eq!(
                normalize_query_ids(&t1.canonical()),
                normalize_query_ids(&t.canonical()),
                "{} {}: span trees diverge at partitions={parts}",
                td.name(),
                q.name()
            );
            assert_eq!(t1.metrics().counters, t.metrics().counters);
            assert_eq!(
                normalize_query_ids(&t1.to_chrome_json()),
                normalize_query_ids(&t.to_chrome_json())
            );
            assert_eq!(b1, b);
        }
    }
}

#[test]
fn plan_and_submit_consult_accounting_agree() {
    // Two identically-seeded federations: planning alone must account the
    // same consult roundtrips and cache hits/misses as the full submit.
    let (c1, g1) = federation(TableDist::Td1);
    let (c2, g2) = federation(TableDist::Td1);
    for q in TpchQuery::ALL {
        // Each submit on `c2` feeds its cost observation back into the
        // learned profiles, re-pricing later plans. Mirror that state into
        // the plan-only federation so both planners price identically.
        g1.set_profiles(g2.profiles_snapshot());
        let (_, _, plan_b, plan_consults) = Xdb::new(&c1, &g1).plan(q.sql()).unwrap();
        let out = Xdb::new(&c2, &g2).submit(q.sql()).unwrap();
        assert_eq!(plan_consults, out.consult_roundtrips, "{}", q.name());
        assert_eq!(
            plan_b.consult_cache_hits,
            out.breakdown.consult_cache_hits,
            "{}: hits diverge between plan and submit",
            q.name()
        );
        assert_eq!(
            plan_b.consult_cache_misses,
            out.breakdown.consult_cache_misses,
            "{}: misses diverge between plan and submit",
            q.name()
        );
        // Both clients advance their caches identically: keep them in
        // lockstep by planning/submitting the same sequence.
    }
}

#[test]
fn concurrent_queries_do_not_pollute_each_others_cache_counts() {
    // The regression this guards: hit/miss accounting used to be computed
    // as deltas of the process-wide cache counters, so concurrent queries
    // bled into each other's breakdowns. Per-query counting is stable.
    let (cluster, catalog) = federation(TableDist::Td1);
    let xdb = Xdb::new(&cluster, &catalog);
    // Warm everything: after this, Q3 planning is all cache hits.
    let warm = xdb.submit(TpchQuery::Q3.sql()).unwrap();
    let expect_hits = warm.breakdown.consult_cache_hits + warm.breakdown.consult_cache_misses;
    let breakdowns: Vec<PhaseBreakdown> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let xdb = Xdb::new(&cluster, &catalog);
                s.spawn(move || xdb.submit(TpchQuery::Q3.sql()).unwrap().breakdown)
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for b in breakdowns {
        assert_eq!(b.consult_cache_misses, 0, "warmed run should not miss");
        assert_eq!(
            b.consult_cache_hits, expect_hits,
            "hit count polluted by concurrent queries"
        );
    }
}

#[test]
fn breakdown_is_a_projection_of_the_trace() {
    let (cluster, catalog) = federation(TableDist::Td1);
    let xdb = Xdb::new(&cluster, &catalog);
    let out = xdb.submit(TpchQuery::Q5.sql()).unwrap();
    assert_eq!(PhaseBreakdown::from_trace(&out.trace), out.breakdown);
    // ann is exactly the paid consulting roundtrips…
    assert_eq!(
        out.breakdown.ann_ms,
        out.consult_roundtrips as f64 * params::CONSULT_ROUNDTRIP_MS
    );
    // …and the Consult spans under the ann phase sum to the same time.
    let ann_phase = out
        .trace
        .spans
        .iter()
        .find(|s| s.kind == SpanKind::Phase && s.name == "ann")
        .unwrap();
    let consult_sum: f64 = out
        .trace
        .spans_of(SpanKind::Consult)
        .filter(|s| s.parent == Some(ann_phase.id))
        .map(|s| s.dur_ms)
        .sum();
    assert_eq!(consult_sum, out.breakdown.ann_ms);
    // The query root covers the whole breakdown.
    assert_eq!(out.trace.root().unwrap().dur_ms, out.breakdown.total_ms());
    // The text report renders without panicking and mentions the phases.
    let report = out.report();
    for phase in ["prep", "lopt", "ann", "exec"] {
        assert!(report.contains(phase), "{report}");
    }
}
