//! Property tests on the SQL frontend: rendering and re-parsing an
//! expression (or a whole SELECT) is the identity. This is the load-bearing
//! invariant behind delegation-by-query-rewriting.

use proptest::prelude::*;
use xdb::sql::ast::{BinaryOp, DateField, Expr, IntervalUnit, UnaryOp};
use xdb::sql::display::{render_expr_string, Dialect};
use xdb::sql::value::Value;
use xdb::sql::{parse_expr, Dialect as D2};

fn literal() -> impl Strategy<Value = Expr> {
    prop_oneof![
        any::<i32>().prop_map(|i| Expr::Literal(Value::Int(i as i64))),
        (-400i32..400, 0u8..4)
            .prop_map(|(n, q)| { Expr::Literal(Value::Float(n as f64 + q as f64 * 0.25)) }),
        "[a-zA-Z0-9 '%_]{0,12}".prop_map(|s| Expr::Literal(Value::str(s))),
        (1990i32..2000, 1u32..13, 1u32..28).prop_map(|(y, m, d)| {
            Expr::Literal(Value::Date(xdb::sql::value::date::days_from_ymd(y, m, d)))
        }),
        Just(Expr::Literal(Value::Bool(true))),
        Just(Expr::Literal(Value::Bool(false))),
        Just(Expr::Literal(Value::Null)),
    ]
}

fn column() -> impl Strategy<Value = Expr> {
    prop_oneof![
        "[a-z][a-z0-9_]{0,8}".prop_map(Expr::col),
        ("[a-z][a-z0-9]{0,4}", "[a-z][a-z0-9_]{0,8}").prop_map(|(q, n)| Expr::qcol(q, n)),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![literal(), column()];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (
                prop_oneof![
                    Just(BinaryOp::Plus),
                    Just(BinaryOp::Minus),
                    Just(BinaryOp::Mul),
                    Just(BinaryOp::Div),
                    Just(BinaryOp::Mod),
                    Just(BinaryOp::Eq),
                    Just(BinaryOp::NotEq),
                    Just(BinaryOp::Lt),
                    Just(BinaryOp::LtEq),
                    Just(BinaryOp::Gt),
                    Just(BinaryOp::GtEq),
                    Just(BinaryOp::And),
                    Just(BinaryOp::Or),
                    Just(BinaryOp::Concat),
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, l, r)| Expr::binary(op, l, r)),
            inner.clone().prop_map(|e| Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(e),
            }),
            (inner.clone(), inner.clone(), inner.clone(), any::<bool>()).prop_map(
                |(e, lo, hi, negated)| Expr::Between {
                    expr: Box::new(e),
                    low: Box::new(lo),
                    high: Box::new(hi),
                    negated,
                }
            ),
            (inner.clone(), "[a-z%_]{0,8}", any::<bool>()).prop_map(|(e, pattern, negated)| {
                Expr::Like {
                    expr: Box::new(e),
                    pattern,
                    negated,
                }
            }),
            (
                inner.clone(),
                prop::collection::vec(inner.clone(), 1..4),
                any::<bool>()
            )
                .prop_map(|(e, list, negated)| Expr::InList {
                    expr: Box::new(e),
                    list,
                    negated,
                }),
            (inner.clone(), any::<bool>()).prop_map(|(e, negated)| Expr::IsNull {
                expr: Box::new(e),
                negated,
            }),
            (
                prop::collection::vec((inner.clone(), inner.clone()), 1..3),
                prop::option::of(inner.clone())
            )
                .prop_map(|(branches, else_expr)| Expr::Case {
                    operand: None,
                    branches,
                    else_expr: else_expr.map(Box::new),
                }),
            (
                prop_oneof![
                    Just(DateField::Year),
                    Just(DateField::Month),
                    Just(DateField::Day)
                ],
                inner.clone()
            )
                .prop_map(|(field, e)| Expr::Extract {
                    field,
                    expr: Box::new(e),
                }),
            (
                inner,
                (1i64..40),
                prop_oneof![
                    Just(IntervalUnit::Year),
                    Just(IntervalUnit::Month),
                    Just(IntervalUnit::Day)
                ]
            )
                .prop_map(|(e, n, unit)| Expr::binary(
                    BinaryOp::Plus,
                    e,
                    Expr::Interval { n, unit }
                )),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn expr_roundtrips_through_sql(e in arb_expr()) {
        let sql = render_expr_string(&e, Dialect::Generic);
        let reparsed = parse_expr(&sql)
            .unwrap_or_else(|err| panic!("could not re-parse {sql:?}: {err}"));
        prop_assert_eq!(&reparsed, &e, "sql was {}", sql);
    }

    #[test]
    fn expr_roundtrips_in_every_dialect(e in arb_expr()) {
        for d in [D2::Generic, D2::PostgresLike, D2::MariaDbLike, D2::HiveLike] {
            let sql = render_expr_string(&e, d);
            let reparsed = parse_expr(&sql)
                .unwrap_or_else(|err| panic!("could not re-parse {sql:?} in {d:?}: {err}"));
            prop_assert_eq!(&reparsed, &e, "dialect {:?}, sql {}", d, sql);
        }
    }

    #[test]
    fn conjunct_split_and_rejoin_is_identity(parts in prop::collection::vec(arb_expr(), 1..5)) {
        // Filter out AND at the top of parts (they'd flatten differently).
        let parts: Vec<Expr> = parts
            .into_iter()
            .filter(|p| !matches!(p, Expr::Binary { op: BinaryOp::And, .. }))
            .collect();
        prop_assume!(!parts.is_empty());
        let joined = Expr::conjoin(parts.clone()).unwrap();
        let split: Vec<Expr> = joined.into_conjuncts();
        prop_assert_eq!(split, parts);
    }
}
