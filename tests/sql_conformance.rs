//! SQL conformance suite: a catalogue of language behaviours, each checked
//! against hand-computed expected results on a fixed dataset — once on a
//! single engine, and once through a two-DBMS XDB federation (which
//! additionally exercises delegation for every construct).

use xdb::core::{GlobalCatalog, Xdb};
use xdb::engine::cluster::Cluster;
use xdb::engine::profile::EngineProfile;
use xdb::engine::relation::Relation;
use xdb::sql::value::{date, DataType, Value};

fn i(v: i64) -> Value {
    Value::Int(v)
}
fn f(v: f64) -> Value {
    Value::Float(v)
}
fn s(v: &str) -> Value {
    Value::str(v)
}
fn d(v: &str) -> Value {
    Value::Date(date::parse(v).unwrap())
}

/// orders(id, cust, amount, placed, status) and customers(cust, name, tier).
fn orders_fields() -> Vec<(String, DataType)> {
    vec![
        ("id".into(), DataType::Int),
        ("cust".into(), DataType::Int),
        ("amount".into(), DataType::Float),
        ("placed".into(), DataType::Date),
        ("status".into(), DataType::Str),
    ]
}

fn orders_rows() -> Vec<Vec<Value>> {
    vec![
        vec![i(1), i(10), f(100.0), d("1995-01-10"), s("open")],
        vec![i(2), i(10), f(250.0), d("1995-02-20"), s("done")],
        vec![i(3), i(20), f(75.5), d("1995-03-05"), s("open")],
        vec![i(4), i(30), f(300.0), d("1996-01-15"), s("done")],
        vec![i(5), i(20), Value::Null, d("1996-06-30"), s("open")],
        vec![i(6), i(99), f(10.0), d("1994-12-31"), s("void")],
    ]
}

fn customers_fields() -> Vec<(String, DataType)> {
    vec![
        ("cust".into(), DataType::Int),
        ("name".into(), DataType::Str),
        ("tier".into(), DataType::Str),
    ]
}

fn customers_rows() -> Vec<Vec<Value>> {
    vec![
        vec![i(10), s("acme"), s("gold")],
        vec![i(20), s("globex"), s("silver")],
        vec![i(30), s("initech"), s("gold")],
        vec![i(40), s("hooli"), s("bronze")],
    ]
}

/// (description, sql, expected rows)
fn cases() -> Vec<(&'static str, &'static str, Vec<Vec<Value>>)> {
    vec![
        (
            "projection with arithmetic",
            "SELECT id, amount * 2 AS dbl FROM orders WHERE id = 1",
            vec![vec![i(1), f(200.0)]],
        ),
        (
            "filter with AND/OR grouping",
            "SELECT id FROM orders WHERE (status = 'open' OR status = 'void') AND amount < 80 ORDER BY id",
            vec![vec![i(3)], vec![i(6)]],
        ),
        (
            "IS NULL and IS NOT NULL",
            "SELECT id FROM orders WHERE amount IS NULL",
            vec![vec![i(5)]],
        ),
        (
            "BETWEEN on dates",
            "SELECT id FROM orders WHERE placed BETWEEN DATE '1995-01-01' AND DATE '1995-12-31' ORDER BY id",
            vec![vec![i(1)], vec![i(2)], vec![i(3)]],
        ),
        (
            "date interval arithmetic in predicates",
            "SELECT id FROM orders WHERE placed >= DATE '1995-12-01' + INTERVAL '1' MONTH ORDER BY id",
            vec![vec![i(4)], vec![i(5)]],
        ),
        (
            "EXTRACT year grouping",
            "SELECT extract(year from placed) AS y, count(*) AS n FROM orders GROUP BY y ORDER BY y",
            vec![vec![i(1994), i(1)], vec![i(1995), i(3)], vec![i(1996), i(2)]],
        ),
        (
            "LIKE with wildcards",
            "SELECT name FROM customers WHERE name LIKE '%o%' ORDER BY name",
            vec![vec![s("globex")], vec![s("hooli")]],
        ),
        (
            "NOT LIKE",
            "SELECT name FROM customers WHERE name NOT LIKE '%o%' ORDER BY name",
            vec![vec![s("acme")], vec![s("initech")]],
        ),
        (
            "IN list",
            "SELECT id FROM orders WHERE cust IN (10, 30) ORDER BY id",
            vec![vec![i(1)], vec![i(2)], vec![i(4)]],
        ),
        (
            "CASE searched form",
            "SELECT id, CASE WHEN amount >= 250 THEN 'big' WHEN amount IS NULL THEN 'unknown' ELSE 'small' END AS size FROM orders ORDER BY id",
            vec![
                vec![i(1), s("small")],
                vec![i(2), s("big")],
                vec![i(3), s("small")],
                vec![i(4), s("big")],
                vec![i(5), s("unknown")],
                vec![i(6), s("small")],
            ],
        ),
        (
            "CASE simple form",
            "SELECT CASE status WHEN 'open' THEN 1 WHEN 'done' THEN 2 ELSE 0 END AS code, count(*) AS n FROM orders GROUP BY 1 ORDER BY 1",
            vec![vec![i(0), i(1)], vec![i(1), i(3)], vec![i(2), i(2)]],
        ),
        (
            "aggregates ignore NULLs",
            "SELECT count(amount) AS c, sum(amount) AS t, min(amount) AS lo, max(amount) AS hi FROM orders",
            vec![vec![i(5), f(735.5), f(10.0), f(300.0)]],
        ),
        (
            "count(*) counts NULL rows",
            "SELECT count(*) AS n FROM orders",
            vec![vec![i(6)]],
        ),
        (
            "avg over floats",
            "SELECT avg(amount) AS a FROM orders WHERE cust = 10",
            vec![vec![f(175.0)]],
        ),
        (
            "count distinct",
            "SELECT count(DISTINCT cust) AS n FROM orders",
            vec![vec![i(4)]],
        ),
        (
            "group by with having",
            "SELECT cust, count(*) AS n FROM orders GROUP BY cust HAVING count(*) > 1 ORDER BY cust",
            vec![vec![i(10), i(2)], vec![i(20), i(2)]],
        ),
        (
            "having on sum",
            "SELECT cust, sum(amount) AS t FROM orders GROUP BY cust HAVING sum(amount) > 100 ORDER BY cust",
            vec![vec![i(10), f(350.0)], vec![i(30), f(300.0)]],
        ),
        (
            "expression over aggregates",
            "SELECT sum(amount) / count(amount) AS mean FROM orders WHERE cust = 10",
            vec![vec![f(175.0)]],
        ),
        (
            "inner join",
            "SELECT o.id, c.name FROM orders o, customers c WHERE o.cust = c.cust AND o.status = 'done' ORDER BY o.id",
            vec![vec![i(2), s("acme")], vec![i(4), s("initech")]],
        ),
        (
            "join eliminates dangling rows",
            "SELECT count(*) AS n FROM orders o, customers c WHERE o.cust = c.cust",
            vec![vec![i(5)]], // order 6 has cust 99, unmatched
        ),
        (
            "explicit JOIN ON syntax",
            "SELECT o.id FROM orders o JOIN customers c ON o.cust = c.cust WHERE c.tier = 'gold' ORDER BY o.id",
            vec![vec![i(1)], vec![i(2)], vec![i(4)]],
        ),
        (
            "join with aggregation",
            "SELECT c.tier, count(*) AS n FROM orders o, customers c WHERE o.cust = c.cust GROUP BY c.tier ORDER BY c.tier",
            vec![vec![s("gold"), i(3)], vec![s("silver"), i(2)]],
        ),
        (
            "order by desc with limit",
            "SELECT id FROM orders WHERE amount IS NOT NULL ORDER BY amount DESC LIMIT 2",
            vec![vec![i(4)], vec![i(2)]],
        ),
        (
            "order by alias",
            "SELECT id, amount * 0.1 AS fee FROM orders WHERE amount > 90 ORDER BY fee DESC LIMIT 1",
            vec![vec![i(4), f(30.0)]],
        ),
        (
            "order by unprojected column",
            "SELECT id FROM orders WHERE cust = 10 ORDER BY placed DESC",
            vec![vec![i(2)], vec![i(1)]],
        ),
        (
            "distinct",
            "SELECT DISTINCT status FROM orders ORDER BY status",
            vec![vec![s("done")], vec![s("open")], vec![s("void")]],
        ),
        (
            "derived table",
            "SELECT big.id FROM (SELECT id, amount FROM orders WHERE amount > 90) AS big WHERE big.amount < 280 ORDER BY big.id",
            vec![vec![i(1)], vec![i(2)]],
        ),
        (
            "aggregate over derived table",
            "SELECT count(*) AS n FROM (SELECT cust FROM orders WHERE status = 'open') AS o",
            vec![vec![i(3)]],
        ),
        (
            "cast and concat",
            "SELECT cast(id as varchar) || '-' || status AS tag FROM orders WHERE id = 3",
            vec![vec![s("3-open")]],
        ),
        (
            "scalar functions",
            "SELECT upper(name) AS u, length(name) AS l, substr(name, 1, 3) AS pre FROM customers WHERE cust = 20",
            vec![vec![s("GLOBEX"), i(6), s("glo")]],
        ),
        (
            "limit zero",
            "SELECT id FROM orders LIMIT 0",
            vec![],
        ),
        (
            "empty group-by input yields no groups",
            "SELECT status, count(*) AS n FROM orders WHERE id > 100 GROUP BY status",
            vec![],
        ),
        (
            "global aggregate over empty input yields one row",
            "SELECT count(*) AS n, sum(amount) AS t FROM orders WHERE id > 100",
            vec![vec![i(0), Value::Null]],
        ),
        (
            "three-valued logic excludes NULL comparisons",
            "SELECT id FROM orders WHERE amount > 0 OR amount < 0 ORDER BY id",
            vec![vec![i(1)], vec![i(2)], vec![i(3)], vec![i(4)], vec![i(6)]],
        ),
        (
            "NOT over null comparison stays unknown",
            "SELECT id FROM orders WHERE NOT (amount > 0) ORDER BY id",
            vec![],
        ),
        (
            "date subtraction",
            // 1996-01-15 is 379 days after the epoch below; 1996-06-30 is
            // 546 days after it.
            "SELECT id FROM orders WHERE placed - DATE '1995-01-01' > 400 ORDER BY id",
            vec![vec![i(5)]],
        ),
        (
            "correlated EXISTS (semi join)",
            "SELECT name FROM customers c WHERE EXISTS \
             (SELECT 1 FROM orders o WHERE o.cust = c.cust AND o.status = 'done') ORDER BY name",
            vec![vec![s("acme")], vec![s("initech")]],
        ),
        (
            "NOT EXISTS (anti join)",
            "SELECT name FROM customers c WHERE NOT EXISTS \
             (SELECT 1 FROM orders o WHERE o.cust = c.cust) ORDER BY name",
            vec![vec![s("hooli")]],
        ),
        (
            "IN subquery (semi join)",
            "SELECT id FROM orders WHERE cust IN \
             (SELECT cust FROM customers WHERE tier = 'gold') ORDER BY id",
            vec![vec![i(1)], vec![i(2)], vec![i(4)]],
        ),
        (
            "IN over aggregating subquery",
            "SELECT name FROM customers WHERE cust IN \
             (SELECT cust FROM orders GROUP BY cust HAVING count(*) > 1) ORDER BY name",
            vec![vec![s("acme")], vec![s("globex")]],
        ),
        (
            "EXISTS combined with scalar filters",
            "SELECT id FROM orders o WHERE o.amount > 50 AND EXISTS \
             (SELECT 1 FROM customers c WHERE c.cust = o.cust AND c.tier = 'silver') ORDER BY id",
            vec![vec![i(3)]],
        ),
        (
            "group by ordinal and order by ordinal",
            "SELECT status, sum(amount) AS t FROM orders WHERE amount IS NOT NULL GROUP BY 1 ORDER BY 2 DESC",
            vec![
                vec![s("done"), f(550.0)],
                vec![s("open"), f(175.5)],
                vec![s("void"), f(10.0)],
            ],
        ),
    ]
}

fn single_engine() -> Cluster {
    let cluster = Cluster::lan(&["solo"], EngineProfile::postgres());
    let engine = cluster.engine("solo").unwrap();
    engine
        .load_table("orders", Relation::new(orders_fields(), orders_rows()))
        .unwrap();
    engine
        .load_table(
            "customers",
            Relation::new(customers_fields(), customers_rows()),
        )
        .unwrap();
    cluster
}

fn federation() -> (Cluster, GlobalCatalog) {
    let cluster = Cluster::lan(&["east", "west"], EngineProfile::postgres());
    cluster
        .engine("east")
        .unwrap()
        .load_table("orders", Relation::new(orders_fields(), orders_rows()))
        .unwrap();
    cluster
        .engine("west")
        .unwrap()
        .load_table(
            "customers",
            Relation::new(customers_fields(), customers_rows()),
        )
        .unwrap();
    let catalog = GlobalCatalog::discover(&cluster).unwrap();
    for t in catalog.table_names() {
        catalog.consult(&cluster, &t).unwrap();
    }
    (cluster, catalog)
}

#[test]
fn conformance_on_single_engine() {
    let cluster = single_engine();
    for (what, sql, expected) in cases() {
        let (rel, _) = cluster
            .query("solo", sql)
            .unwrap_or_else(|e| panic!("{what}: {e}\n{sql}"));
        let exp = Relation::new(rel.fields.clone(), expected);
        assert!(
            rel.same_bag(&exp),
            "{what}:\n{sql}\ngot\n{}\nexpected\n{}",
            rel.to_table_string(10),
            exp.to_table_string(10)
        );
        // Ordered queries must match row-for-row, not just as bags.
        if sql.to_ascii_uppercase().contains("ORDER BY") {
            for (a, b) in rel.rows().zip(exp.rows()) {
                let ra = Relation::new(rel.fields.clone(), vec![a]);
                let rb = Relation::new(rel.fields.clone(), vec![b]);
                assert!(ra.same_bag(&rb), "{what}: order mismatch\n{sql}");
            }
        }
    }
}

#[test]
fn conformance_through_federation() {
    let (cluster, catalog) = federation();
    let xdb = Xdb::new(&cluster, &catalog);
    for (what, sql, expected) in cases() {
        let out = xdb
            .submit(sql)
            .unwrap_or_else(|e| panic!("{what}: {e}\n{sql}"));
        let exp = Relation::new(out.relation.fields.clone(), expected);
        assert!(
            out.relation.same_bag(&exp),
            "{what} (federated):\n{sql}\ngot\n{}\nexpected\n{}",
            out.relation.to_table_string(10),
            exp.to_table_string(10)
        );
    }
}
