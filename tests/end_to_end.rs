//! End-to-end correctness: for every evaluated TPC-H query and every table
//! distribution, XDB's fully decentralized execution and all three
//! baselines return exactly the rows a single engine holding all tables
//! returns.

use xdb::baselines::{Mediator, MediatorConfig, Sclera};
use xdb::core::{GlobalCatalog, Xdb};
use xdb::engine::cluster::Cluster;
use xdb::engine::profile::EngineProfile;
use xdb::engine::relation::Relation;
use xdb::net::Scenario;
use xdb::tpch::{build_cluster, distributions, ProfileAssignment, TableDist, TpchQuery};

const SF: f64 = 0.005;

fn oracle(sql: &str) -> Relation {
    let cluster = Cluster::lan(&["solo"], EngineProfile::postgres());
    distributions::load_all_on(&cluster, "solo", SF).unwrap();
    cluster.query("solo", sql).unwrap().0
}

fn federation(td: TableDist) -> (Cluster, GlobalCatalog) {
    let mut cluster = build_cluster(
        td,
        SF,
        Scenario::OnPremise,
        &ProfileAssignment::uniform(EngineProfile::postgres()),
    )
    .unwrap();
    cluster.topology.add_node("mediator".into());
    let catalog = GlobalCatalog::discover(&cluster).unwrap();
    (cluster, catalog)
}

#[test]
fn xdb_matches_oracle_on_every_query_and_distribution() {
    for td in TableDist::ALL {
        let (cluster, catalog) = federation(td);
        let xdb = Xdb::new(&cluster, &catalog);
        for q in TpchQuery::ALL {
            let expected = oracle(q.sql());
            let got = xdb
                .submit(q.sql())
                .unwrap_or_else(|e| panic!("{} on {}: {e}", q.name(), td.name()));
            assert!(
                got.relation.same_bag(&expected),
                "{} on {} diverged:\n{}\nvs oracle\n{}",
                q.name(),
                td.name(),
                got.relation.to_table_string(8),
                expected.to_table_string(8)
            );
        }
    }
}

#[test]
fn extended_workload_matches_oracle() {
    // Q1/Q6 (single-relation: one-task delegation plans) and Q12/Q14
    // (two-relation cross-database joins) — beyond the paper's set.
    let (cluster, catalog) = federation(TableDist::Td1);
    let xdb = Xdb::new(&cluster, &catalog);
    for q in TpchQuery::EXTENDED {
        let expected = oracle(q.sql());
        let got = xdb.submit(q.sql()).unwrap();
        assert!(
            got.relation.same_bag(&expected),
            "{} diverged:\n{}\nvs\n{}",
            q.name(),
            got.relation.to_table_string(8),
            expected.to_table_string(8)
        );
        // Single-relation queries must delegate as exactly one task with
        // no inter-DBMS movement.
        if q.tables().len() == 1 {
            assert_eq!(got.delegation.tasks.len(), 1, "{}", q.name());
            assert!(got.delegation.edges.is_empty(), "{}", q.name());
        }
    }
}

#[test]
fn baselines_match_oracle_td1() {
    let (cluster, catalog) = federation(TableDist::Td1);
    for q in TpchQuery::ALL {
        let expected = oracle(q.sql());
        let garlic = Mediator::new(&cluster, &catalog, MediatorConfig::garlic("mediator"))
            .submit(q.sql())
            .unwrap();
        assert!(
            garlic.relation.same_bag(&expected),
            "garlic {} diverged",
            q.name()
        );
        let presto = Mediator::new(&cluster, &catalog, MediatorConfig::presto("mediator", 4))
            .submit(q.sql())
            .unwrap();
        assert!(
            presto.relation.same_bag(&expected),
            "presto {} diverged",
            q.name()
        );
        let sclera = Sclera::new(&cluster, &catalog, "mediator")
            .submit(q.sql())
            .unwrap();
        assert!(
            sclera.relation.same_bag(&expected),
            "sclera {} diverged",
            q.name()
        );
    }
}

#[test]
fn ordered_queries_preserve_order_through_delegation() {
    // Q3 and Q10 end with ORDER BY ... LIMIT; the decentralized result
    // must come back in exactly the oracle's order, not just the same bag.
    let (cluster, catalog) = federation(TableDist::Td1);
    let xdb = Xdb::new(&cluster, &catalog);
    for q in [TpchQuery::Q3, TpchQuery::Q10] {
        let expected = oracle(q.sql());
        let got = xdb.submit(q.sql()).unwrap().relation;
        assert_eq!(got.len(), expected.len());
        for (i, (g, e)) in got.rows().zip(expected.rows()).enumerate() {
            // Compare sort keys loosely (floats) via the bag helper on a
            // single-row relation.
            let gr = Relation::new(got.fields.clone(), vec![g]);
            let er = Relation::new(expected.fields.clone(), vec![e]);
            assert!(gr.same_bag(&er), "{} row {i} out of order", q.name());
        }
    }
}

#[test]
fn no_objects_leak_across_the_whole_workload() {
    let (cluster, catalog) = federation(TableDist::Td3);
    let xdb = Xdb::new(&cluster, &catalog);
    for q in TpchQuery::ALL {
        xdb.submit(q.sql()).unwrap();
    }
    for node in distributions::NODES {
        let names = cluster.engine(node).unwrap().with_catalog(|c| c.names());
        assert!(
            names
                .iter()
                .all(|n| !n.starts_with("xdb_q") && !n.starts_with("__task_")),
            "{node} leaked {names:?}"
        );
    }
}

#[test]
fn geo_distribution_changes_costs_not_results() {
    let mut geo = build_cluster(
        TableDist::Td1,
        SF,
        Scenario::GeoDistributed,
        &ProfileAssignment::uniform(EngineProfile::postgres()),
    )
    .unwrap();
    geo.topology.add_node("mediator".into());
    let catalog = GlobalCatalog::discover(&geo).unwrap();
    let xdb = Xdb::new(&geo, &catalog);
    let out = xdb.submit(TpchQuery::Q3.sql()).unwrap();
    assert!(out.relation.same_bag(&oracle(TpchQuery::Q3.sql())));

    // Same query on a LAN must be no slower than geo.
    let (lan, lan_catalog) = federation(TableDist::Td1);
    let lan_out = Xdb::new(&lan, &lan_catalog)
        .submit(TpchQuery::Q3.sql())
        .unwrap();
    assert!(
        lan_out.breakdown.exec_ms <= out.breakdown.exec_ms,
        "LAN {} should be <= GEO {}",
        lan_out.breakdown.exec_ms,
        out.breakdown.exec_ms
    );
}

#[test]
fn heterogeneous_federation_matches_oracle() {
    let mut cluster = build_cluster(
        TableDist::Td1,
        SF,
        Scenario::OnPremise,
        &ProfileAssignment::heterogeneous(),
    )
    .unwrap();
    cluster.topology.add_node("mediator".into());
    let catalog = GlobalCatalog::discover(&cluster).unwrap();
    let xdb = Xdb::new(&cluster, &catalog);
    for q in [TpchQuery::Q3, TpchQuery::Q8] {
        let got = xdb.submit(q.sql()).unwrap().relation;
        assert!(got.same_bag(&oracle(q.sql())), "{} diverged", q.name());
    }
}
