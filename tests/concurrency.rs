//! Concurrency: the federation is shared infrastructure — multiple clients
//! submit cross-database queries against the same engines simultaneously.
//! Catalog locking, per-query object naming, and the transfer ledger must
//! all hold up.

use std::sync::Arc;
use xdb::core::{GlobalCatalog, Xdb, XdbOptions};
use xdb::engine::profile::EngineProfile;
use xdb::net::Scenario;
use xdb::tpch::{build_cluster, distributions, ProfileAssignment, TableDist, TpchQuery};

const SF: f64 = 0.002;

#[test]
fn concurrent_submissions_share_one_federation() {
    let cluster = Arc::new(
        build_cluster(
            TableDist::Td1,
            SF,
            Scenario::OnPremise,
            &ProfileAssignment::uniform(EngineProfile::postgres()),
        )
        .unwrap(),
    );
    let catalog = Arc::new(GlobalCatalog::discover(&cluster).unwrap());

    // Reference results, computed serially first.
    let reference: Vec<_> = {
        let xdb = Xdb::new(&cluster, &catalog);
        TpchQuery::ALL
            .iter()
            .map(|q| xdb.submit(q.sql()).unwrap().relation)
            .collect()
    };

    // 4 threads × all queries, interleaved on the same cluster. Each
    // thread has its own client (its own query-id counter); ids are
    // globally unique because the counters start from different bases.
    let results: Vec<Vec<xdb::engine::relation::Relation>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let cluster = Arc::clone(&cluster);
                let catalog = Arc::clone(&catalog);
                s.spawn(move || {
                    let xdb = Xdb::new(&cluster, &catalog);
                    let mut out = Vec::new();
                    // Rotate the query order per thread to interleave.
                    for i in 0..TpchQuery::ALL.len() {
                        let q = TpchQuery::ALL[(i + t) % TpchQuery::ALL.len()];
                        out.push((q, xdb.submit(q.sql()).unwrap().relation));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap()
                    .into_iter()
                    .map(|(q, rel)| {
                        let idx = TpchQuery::ALL.iter().position(|x| *x == q).unwrap();
                        assert!(
                            rel.same_bag(&reference[idx]),
                            "{} diverged under concurrency",
                            q.name()
                        );
                        rel
                    })
                    .collect()
            })
            .collect()
    });
    assert_eq!(results.len(), 4);

    // No short-lived objects leaked by any thread.
    for node in distributions::NODES {
        let names = cluster.engine(node).unwrap().with_catalog(|c| c.names());
        assert!(
            names.iter().all(|n| !n.starts_with("xdb_q")),
            "{node} leaked {names:?}"
        );
    }
}

#[test]
fn parallel_execution_is_observationally_equivalent_to_sequential() {
    // The parallel task scheduler must be indistinguishable from the
    // sequential executor: identical result multisets, identical transfer
    // ledgers, and bit-identical simulated timings — across queries with
    // genuinely independent tasks (Q3/Q5/Q8) and all three TPC-H table
    // distributions.
    for td in [TableDist::Td1, TableDist::Td2, TableDist::Td3] {
        for q in [TpchQuery::Q3, TpchQuery::Q5, TpchQuery::Q8] {
            let run = |parallel: bool| {
                let cluster = build_cluster(
                    td,
                    SF,
                    Scenario::OnPremise,
                    &ProfileAssignment::uniform(EngineProfile::postgres()),
                )
                .unwrap();
                let catalog = GlobalCatalog::discover(&cluster).unwrap();
                let xdb = Xdb::new(&cluster, &catalog).with_options(XdbOptions {
                    parallel_execution: parallel,
                    ..Default::default()
                });
                let outcome = xdb.submit(q.sql()).unwrap();
                let bytes = cluster.ledger.total_bytes();
                let rows = cluster.ledger.total_rows();
                (outcome, bytes, rows)
            };
            let (seq, seq_bytes, seq_rows) = run(false);
            let (par, par_bytes, par_rows) = run(true);
            assert!(
                par.relation.same_bag(&seq.relation),
                "{} on {td:?}: parallel result diverged",
                q.name()
            );
            assert_eq!(
                par_bytes,
                seq_bytes,
                "{} on {td:?}: wire-byte ledgers diverged",
                q.name()
            );
            assert_eq!(
                par_rows,
                seq_rows,
                "{} on {td:?}: ledger row totals diverged",
                q.name()
            );
            assert_eq!(
                par.breakdown.exec_ms,
                seq.breakdown.exec_ms,
                "{} on {td:?}: simulated exec timings diverged",
                q.name()
            );
            assert_eq!(par.breakdown.total_ms(), seq.breakdown.total_ms());
        }
    }
}

#[test]
fn partitioned_kernels_match_sequential_under_the_parallel_scheduler() {
    // Engine-level partition parallelism composes with the task-level
    // parallel scheduler: at any partition count the decentralized results,
    // transfer ledgers, and simulated timings are exactly those of the
    // fully sequential kernels.
    for td in [TableDist::Td1, TableDist::Td2] {
        for q in [TpchQuery::Q3, TpchQuery::Q5, TpchQuery::Q8] {
            let run = |partitions: usize| {
                let cluster = build_cluster(
                    td,
                    SF,
                    Scenario::OnPremise,
                    &ProfileAssignment::uniform(EngineProfile::postgres()),
                )
                .unwrap();
                cluster.set_exec_partitions(partitions);
                let catalog = GlobalCatalog::discover(&cluster).unwrap();
                let xdb = Xdb::new(&cluster, &catalog).with_options(XdbOptions {
                    parallel_execution: true,
                    ..Default::default()
                });
                let outcome = xdb.submit(q.sql()).unwrap();
                let bytes = cluster.ledger.total_bytes();
                let rows = cluster.ledger.total_rows();
                (outcome, bytes, rows)
            };
            let (one, one_bytes, one_rows) = run(1);
            for parts in [2usize, 8] {
                let (par, par_bytes, par_rows) = run(parts);
                assert_eq!(
                    par.relation,
                    one.relation,
                    "{} on {td:?}: partitions={parts} changed the result",
                    q.name()
                );
                assert_eq!(par_bytes, one_bytes);
                assert_eq!(par_rows, one_rows);
                assert_eq!(par.breakdown.exec_ms, one.breakdown.exec_ms);
                assert_eq!(par.breakdown.total_ms(), one.breakdown.total_ms());
            }
        }
    }
}

#[test]
fn one_client_is_safe_across_threads_too() {
    // A single Xdb instance (one shared query-id counter) used from many
    // threads must still hand out unique object names.
    let cluster = Arc::new(
        build_cluster(
            TableDist::Td1,
            SF,
            Scenario::OnPremise,
            &ProfileAssignment::uniform(EngineProfile::postgres()),
        )
        .unwrap(),
    );
    let catalog = Arc::new(GlobalCatalog::discover(&cluster).unwrap());
    let xdb = Xdb::new(&cluster, &catalog);
    std::thread::scope(|s| {
        for _ in 0..4 {
            let xdb = &xdb;
            s.spawn(move || {
                for _ in 0..3 {
                    xdb.submit(TpchQuery::Q3.sql()).unwrap();
                }
            });
        }
    });
}
