//! Concurrency: the federation is shared infrastructure — multiple clients
//! submit cross-database queries against the same engines simultaneously.
//! Catalog locking, per-query object naming, and the transfer ledger must
//! all hold up.

use std::sync::Arc;
use xdb::core::{GlobalCatalog, Xdb};
use xdb::engine::profile::EngineProfile;
use xdb::net::Scenario;
use xdb::tpch::{build_cluster, distributions, ProfileAssignment, TableDist, TpchQuery};

const SF: f64 = 0.002;

#[test]
fn concurrent_submissions_share_one_federation() {
    let cluster = Arc::new(
        build_cluster(
            TableDist::Td1,
            SF,
            Scenario::OnPremise,
            &ProfileAssignment::uniform(EngineProfile::postgres()),
        )
        .unwrap(),
    );
    let catalog = Arc::new(GlobalCatalog::discover(&cluster).unwrap());

    // Reference results, computed serially first.
    let reference: Vec<_> = {
        let xdb = Xdb::new(&cluster, &catalog);
        TpchQuery::ALL
            .iter()
            .map(|q| xdb.submit(q.sql()).unwrap().relation)
            .collect()
    };

    // 4 threads × all queries, interleaved on the same cluster. Each
    // thread has its own client (its own query-id counter); ids are
    // globally unique because the counters start from different bases.
    let results: Vec<Vec<xdb::engine::relation::Relation>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let cluster = Arc::clone(&cluster);
                let catalog = Arc::clone(&catalog);
                s.spawn(move || {
                    let xdb = Xdb::new(&cluster, &catalog);
                    let mut out = Vec::new();
                    // Rotate the query order per thread to interleave.
                    for i in 0..TpchQuery::ALL.len() {
                        let q = TpchQuery::ALL[(i + t) % TpchQuery::ALL.len()];
                        out.push((q, xdb.submit(q.sql()).unwrap().relation));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap()
                    .into_iter()
                    .map(|(q, rel)| {
                        let idx = TpchQuery::ALL.iter().position(|x| *x == q).unwrap();
                        assert!(
                            rel.same_bag(&reference[idx]),
                            "{} diverged under concurrency",
                            q.name()
                        );
                        rel
                    })
                    .collect()
            })
            .collect()
    });
    assert_eq!(results.len(), 4);

    // No short-lived objects leaked by any thread.
    for node in distributions::NODES {
        let names = cluster.engine(node).unwrap().with_catalog(|c| c.names());
        assert!(
            names.iter().all(|n| !n.starts_with("xdb_q")),
            "{node} leaked {names:?}"
        );
    }
}

#[test]
fn one_client_is_safe_across_threads_too() {
    // A single Xdb instance (one shared query-id counter) used from many
    // threads must still hand out unique object names.
    let cluster = Arc::new(
        build_cluster(
            TableDist::Td1,
            SF,
            Scenario::OnPremise,
            &ProfileAssignment::uniform(EngineProfile::postgres()),
        )
        .unwrap(),
    );
    let catalog = Arc::new(GlobalCatalog::discover(&cluster).unwrap());
    let xdb = Xdb::new(&cluster, &catalog);
    std::thread::scope(|s| {
        for _ in 0..4 {
            let xdb = &xdb;
            s.spawn(move || {
                for _ in 0..3 {
                    xdb.submit(TpchQuery::Q3.sql()).unwrap();
                }
            });
        }
    });
}
