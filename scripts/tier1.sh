#!/usr/bin/env bash
# Tier-1 gate: everything must pass before a PR lands.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings

# Trace smoke test: the repro binary must emit a valid Chrome-trace JSON
# with at least one span on every lane (each engine node, client, net).
mkdir -p target
cargo run --release -q -p xdb-bench --bin repro -- \
  --sf 0.002 --trace target/tier1-smoke.trace.json fig9 \
  --out target/tier1-smoke-report.txt
cargo run --release -q -p xdb-bench --bin repro -- \
  --check-trace target/tier1-smoke.trace.json

# Columnar smoke test: the partition-parallel columnar executor must be
# byte-identical to the fully sequential engine (XDB_SEQUENTIAL pins both
# the task scheduler and the engines to one partition).
XDB_SEQUENTIAL=1 cargo run --release -q -p xdb-bench --bin repro -- \
  --sf 0.002 fig9 --out target/tier1-smoke-seq.txt
cmp target/tier1-smoke-report.txt target/tier1-smoke-seq.txt
