#!/usr/bin/env bash
# Tier-1 gate: everything must pass before a PR lands.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings
