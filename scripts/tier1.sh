#!/usr/bin/env bash
# Tier-1 gate: everything must pass before a PR lands.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings

# Trace smoke test: the repro binary must emit a valid Chrome-trace JSON
# with at least one span on every lane (each engine node, client, net).
mkdir -p target
cargo run --release -q -p xdb-bench --bin repro -- \
  --sf 0.002 --trace target/tier1-smoke.trace.json fig9 \
  --out target/tier1-smoke-report.txt
cargo run --release -q -p xdb-bench --bin repro -- \
  --check-trace target/tier1-smoke.trace.json

# Columnar smoke test: the partition-parallel columnar executor must be
# byte-identical to the fully sequential engine (XDB_SEQUENTIAL pins both
# the task scheduler and the engines to one partition).
XDB_SEQUENTIAL=1 cargo run --release -q -p xdb-bench --bin repro -- \
  --sf 0.002 fig9 --out target/tier1-smoke-seq.txt
cmp target/tier1-smoke-report.txt target/tier1-smoke-seq.txt

# Streaming smoke test: the transport chunk size of the compressed wire
# format is an implementation detail — single-row morsels and unbounded
# frames must both be byte-identical to the default (4096-row) run.
XDB_STREAM_CHUNK=1 cargo run --release -q -p xdb-bench --bin repro -- \
  --sf 0.002 fig9 --out target/tier1-smoke-chunk1.txt
cmp target/tier1-smoke-report.txt target/tier1-smoke-chunk1.txt
XDB_STREAM_CHUNK=0 cargo run --release -q -p xdb-bench --bin repro -- \
  --sf 0.002 fig9 --out target/tier1-smoke-unchunked.txt
cmp target/tier1-smoke-report.txt target/tier1-smoke-unchunked.txt

# Reactor smoke test: the morsel-driven edge reactor moves decode and
# consumer work onto a worker pool, but every deterministic observable
# must stay byte-identical to the fully sequential engine.
XDB_REACTOR_THREADS=2 cargo run --release -q -p xdb-bench --bin repro -- \
  --sf 0.002 fig9 --out target/tier1-smoke-reactor.txt
cmp target/tier1-smoke-reactor.txt target/tier1-smoke-seq.txt

# Telemetry smoke test: the workload monitor must render its dashboard
# plus Prometheus/JSON exports, the exports must be non-empty, and the
# structured event log must export as JSON lines.
cargo run --release -q -p xdb-bench --bin repro -- \
  --sf 0.002 --runs 2 --metrics target/tier1-monitor.prom \
  --json target/tier1-monitor.json monitor \
  --out target/tier1-monitor.txt \
  --log target/tier1-events.jsonl
grep -q 'live delegation objects' target/tier1-monitor.txt
grep -q 'monitor_latency_ms_bucket{' target/tier1-monitor.prom
grep -q '"values"' target/tier1-monitor.json
grep -q '"level":"info"' target/tier1-events.jsonl

# Multi-tenant admission smoke test: the folded and unfolded arms of the
# `repro tenants` scenario must produce bit-identical per-tenant result
# digests (plan folding is a pure optimization the tenants cannot
# observe), and the dashboard must carry the fold statistics.
cargo run --release -q -p xdb-bench --bin repro -- \
  --sf 0.002 --runs 2 tenants --digest target/tier1-tenants \
  --out target/tier1-tenants.txt
grep -q 'throughput speedup' target/tier1-tenants.txt
grep -q 'fully folded' target/tier1-tenants.txt
cmp target/tier1-tenants.folded.txt target/tier1-tenants.unfolded.txt

# Profiler + drift smoke test: `repro profile` must attribute every TD1
# query's latency, and two identical runs recorded through the history
# store must self-compare with zero drift findings (the analysis runs on
# the simulated clock, so any finding would be a real behavior change).
rm -rf target/tier1-history-a target/tier1-history-b
cargo run --release -q -p xdb-bench --bin repro -- \
  --sf 0.002 --history target/tier1-history-a profile \
  --out target/tier1-profile.txt
grep -q 'critical-path profile' target/tier1-profile.txt
grep -q 'dominant' target/tier1-profile.txt
cargo run --release -q -p xdb-bench --bin repro -- \
  --sf 0.002 --history target/tier1-history-b profile \
  --out /dev/null
cargo run --release -q -p xdb-bench --bin repro -- drift \
  --baseline target/tier1-history-a --current target/tier1-history-b \
  | tee target/tier1-drift.txt
grep -q 'no drift' target/tier1-drift.txt

# Cost-model observatory smoke test: `repro calibrate` must render a
# non-empty report with the predicted-vs-observed error distributions per
# engine/codec/edge shape and the per-query placement-regret table.
cargo run --release -q -p xdb-bench --bin repro -- \
  --sf 0.002 --runs 2 calibrate --out target/tier1-calibrate.txt
grep -q 'cost-model observatory' target/tier1-calibrate.txt
grep -q 'prediction error by engine' target/tier1-calibrate.txt
grep -q 'by codec' target/tier1-calibrate.txt
grep -q 'by edge shape' target/tier1-calibrate.txt
grep -q 'per-query placement regret' target/tier1-calibrate.txt

# Learned cost-model smoke test: the feedback loop must keep result rows
# bit-identical while it re-prices plans, the XDB_STATIC_COSTS kill
# switch must be fully deterministic (it reproduces the pre-learned
# plans bit-exactly — covered by the replay arms and the core unit
# tests), profiles must seed from a recorded history via --profiles, and
# a history compared against itself under a flip budget must stay clean.
rm -rf target/tier1-profiles
cargo run --release -q -p xdb-bench --bin repro -- \
  --sf 0.002 --history target/tier1-profiles fig9 --out /dev/null
cargo run --release -q -p xdb-bench --bin repro -- \
  --sf 0.002 --profiles target/tier1-profiles replay \
  --out target/tier1-replay.txt
grep -q 'plan flips:' target/tier1-replay.txt
grep -q 'result rows: bit-identical across arms' target/tier1-replay.txt
cargo run --release -q -p xdb-bench --bin repro -- \
  --sf 0.002 replay --out target/tier1-replay-self.txt
grep -q 'result rows: bit-identical across arms' target/tier1-replay-self.txt
XDB_STATIC_COSTS=1 cargo run --release -q -p xdb-bench --bin repro -- \
  --sf 0.002 fig9 --out target/tier1-smoke-static.txt
XDB_STATIC_COSTS=1 cargo run --release -q -p xdb-bench --bin repro -- \
  --sf 0.002 fig9 --out target/tier1-smoke-static-again.txt
cmp target/tier1-smoke-static.txt target/tier1-smoke-static-again.txt
cargo run --release -q -p xdb-bench --bin repro -- drift \
  --baseline target/tier1-profiles --current target/tier1-profiles \
  --flip-rate 25 | tee target/tier1-drift-flip.txt
grep -q 'no drift' target/tier1-drift-flip.txt

# Bench regression gate (opt-in: wall-clock benches are too noisy for CI
# defaults). XDB_BENCH_GATE=1 re-measures the exec kernels and the monitor
# workload and fails on threshold regressions vs BENCH_exec.json /
# BENCH_monitor.json.
if [ "${XDB_BENCH_GATE:-0}" = "1" ]; then
  scripts/bench_gate.sh
fi
