#!/usr/bin/env bash
# Run the executor-kernel micro-benchmarks and snapshot the results into
# BENCH_exec.json at the repo root, so successive PRs accumulate a perf
# trajectory for the columnar kernels. Usage: scripts/bench_snapshot.sh
set -euo pipefail
cd "$(dirname "$0")/.."

out=BENCH_exec.json
raw=$(for b in exec_kernels annotate_learned_vs_static wire_codec exec_stream_overlap; do
  cargo bench -q -p xdb-bench --bench "$b" 2>&1 | grep 'time:' || true
done)
if [ -z "$raw" ]; then
  echo "bench_snapshot: no timings in bench output" >&2
  exit 1
fi

{
  echo '{'
  echo '  "bench": "exec_kernels",'
  echo "  \"date\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
  echo "  \"commit\": \"$(git rev-parse --short HEAD 2>/dev/null || echo unknown)\","
  echo '  "unit": "ms",'
  echo '  "results": ['
  echo "$raw" | awk '
    function to_ms(v, u) {
      if (u == "s")  return v * 1000
      if (u == "ms") return v
      if (u ~ /^(µs|us)$/) return v / 1000
      return v / 1000000  # ns
    }
    {
      name = $1
      sub(/^[a-z0-9_]+\//, "", name)  # strip the criterion group prefix
      # line tail: time: [<min> <u> <med> <u> <max> <u>]
      match($0, /\[[^]]*\]/)
      split(substr($0, RSTART + 1, RLENGTH - 2), t, " ")
      printf "%s    {\"name\": \"%s\", \"min\": %.4f, \"median\": %.4f, \"max\": %.4f}", \
        (NR > 1 ? ",\n" : ""), name, \
        to_ms(t[1], t[2]), to_ms(t[3], t[4]), to_ms(t[5], t[6])
    }
    END { print "" }
  '
  echo '  ]'
  echo '}'
} > "$out"

echo "wrote $out:"
cat "$out"
