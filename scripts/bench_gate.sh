#!/usr/bin/env bash
# Bench regression gate: re-measure the executor-kernel micro-benchmarks
# and the deterministic monitor workload, then compare both against the
# checked-in baselines (BENCH_exec.json / BENCH_monitor.json) via
# `repro gate`. Exits non-zero when any gated series regressed past its
# threshold (wall-clock kernels: +50%; simulated monitor values: +0.5%).
#
# Usage: scripts/bench_gate.sh
# Opt into it from tier-1 with XDB_BENCH_GATE=1 scripts/tier1.sh.
# After an intentional behaviour change, re-baseline with
#   scripts/bench_snapshot.sh                                   # exec
#   repro --sf 0.002 --runs 2 --json BENCH_monitor.json monitor # monitor
# The monitor baseline also carries the multi-tenant admission series
# (tenants/folded/..., tenants/unfolded/..., tenants/mean_fold_hits);
# `repro gate` re-runs that workload at the baseline's recorded
# tenants/tenant_rounds shape whenever those keys are present. Since
# monitor schema v3 it additionally gates the cost-model observatory
# series — per-cell calibration error (.../cal_abs_err_pct), placement
# regret (.../regret_ms), and the per-codec byte split
# (.../codec_bytes/<codec>) — so a cost-model or codec skew fails here
# even when latency stays flat.
set -euo pipefail
cd "$(dirname "$0")/.."

current=$(mktemp /tmp/bench_gate_exec.XXXXXX.json)
trap 'rm -f "$current"' EXIT

echo "bench_gate: re-running exec_kernels micro-benchmarks..."
raw=$(for b in exec_kernels annotate_learned_vs_static wire_codec exec_stream_overlap; do
  cargo bench -q -p xdb-bench --bench "$b" 2>&1 | grep 'time:' || true
done)
if [ -z "$raw" ]; then
  echo "bench_gate: no timings in bench output" >&2
  exit 2
fi
{
  echo '{'
  echo '  "bench": "exec_kernels",'
  echo '  "unit": "ms",'
  echo '  "results": ['
  echo "$raw" | awk '
    function to_ms(v, u) {
      if (u == "s")  return v * 1000
      if (u == "ms") return v
      if (u ~ /^(µs|us)$/) return v / 1000
      return v / 1000000  # ns
    }
    {
      name = $1
      sub(/^[a-z0-9_]+\//, "", name)  # strip the criterion group prefix
      match($0, /\[[^]]*\]/)
      split(substr($0, RSTART + 1, RLENGTH - 2), t, " ")
      printf "%s    {\"name\": \"%s\", \"min\": %.4f, \"median\": %.4f, \"max\": %.4f}", \
        (NR > 1 ? ",\n" : ""), name, \
        to_ms(t[1], t[2]), to_ms(t[3], t[4]), to_ms(t[5], t[6])
    }
    END { print "" }
  '
  echo '  ]'
  echo '}'
} > "$current"

echo "bench_gate: re-running the monitor workload and comparing..."
cargo run -q --release -p xdb-bench --bin repro -- gate \
  --exec-baseline BENCH_exec.json --exec-current "$current" \
  --monitor-baseline BENCH_monitor.json

# Drift gate: re-run the TD1 profile with the history store on and
# compare the fresh records against the checked-in BENCH_history/
# baseline — plan flips, latency drift, critical-path composition
# shifts, and cost-model calibration drift fail with an attributed
# explanation. The fresh history dir is
# archived next to the BENCH_*.json snapshots for inspection.
# Re-baseline after an intentional change with
#   rm -rf BENCH_history && repro --sf 0.002 --history BENCH_history profile
echo "bench_gate: re-running the TD1 profile and checking for drift..."
rm -rf target/bench_gate_history
cargo run -q --release -p xdb-bench --bin repro -- \
  --sf 0.002 --history target/bench_gate_history profile --out /dev/null
cargo run -q --release -p xdb-bench --bin repro -- drift \
  --baseline BENCH_history --current target/bench_gate_history
