//! # xdb
//!
//! Facade crate for the XDB workspace — a from-scratch Rust reproduction
//! of *"In-Situ Cross-Database Query Processing"* (ICDE 2023).
//!
//! XDB is a middleware that runs cross-database analytics over existing
//! DBMSes **without a mediating execution engine**: it rewrites a query
//! into a *delegation plan* and deploys it onto the underlying DBMSes as a
//! chain of views and SQL/MED foreign tables, so the DBMSes execute the
//! query collaboratively in a fully decentralized pipeline.
//!
//! ## Quick start
//!
//! ```
//! use xdb::core::scenario::{self, ScenarioConfig};
//! use xdb::core::Xdb;
//!
//! // Three departmental DBMSes (citizens / vaccination / health records).
//! let (cluster, catalog) = scenario::build(ScenarioConfig::default()).unwrap();
//! let xdb = Xdb::new(&cluster, &catalog);
//! let outcome = xdb.submit(scenario::EXAMPLE_QUERY).unwrap();
//! assert!(!outcome.relation.is_empty());
//! // The query ran in-situ: no intermediate data ever reached the client.
//! println!("{}", outcome.delegation.notation());
//! ```
//!
//! ## Workspace map
//!
//! | crate | contents |
//! |---|---|
//! | [`sql`] | SQL parser, AST, logical algebra, shared optimizer passes |
//! | [`obs`] | tracing and metrics: spans, Chrome-trace export, snapshots |
//! | [`net`] | simulated network: topology, transfer ledger, timing model |
//! | [`engine`] | embedded DBMS substrate (catalog, executor, SQL/MED, EXPLAIN) |
//! | [`core`] | the XDB middleware: annotation, delegation, client |
//! | [`baselines`] | Garlic-, Presto-, and ScleraDB-like comparison systems |
//! | [`tpch`] | deterministic TPC-H generator, queries, table distributions |

pub use xdb_baselines as baselines;
pub use xdb_core as core;
pub use xdb_engine as engine;
pub use xdb_net as net;
pub use xdb_obs as obs;
pub use xdb_sql as sql;
pub use xdb_tpch as tpch;
