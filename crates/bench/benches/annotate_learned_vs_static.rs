//! Planning-path overhead of learned cost profiles: the full
//! parse→consult→annotate pipeline (`Xdb::plan`, no execution) with
//! static pricing vs a populated profile store. The learned path adds a
//! handful of BTreeMap lookups per candidate — this group keeps that
//! delta visible so profile-store growth can't silently tax every
//! planning cycle. `scripts/bench_snapshot.sh` folds the timings into
//! `BENCH_exec.json`, and `scripts/bench_gate.sh` gates regressions.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Duration;
use xdb_core::{CostProfiles, GlobalCatalog, Xdb, XdbOptions};
use xdb_engine::profile::EngineProfile;
use xdb_net::{Movement, NodeId, Scenario};
use xdb_tpch::{build_cluster, ProfileAssignment, TableDist, TpchQuery};

/// A profile store shaped like a long-running deployment's: samples at
/// every granularity for every TD1 edge, so lookups hit the deepest
/// (per-shape) table — the most work the learned path ever does.
fn populated_profiles() -> CostProfiles {
    let mut p = CostProfiles::default();
    let nodes = ["db1", "db2", "db3", "cloud"];
    for (i, from) in nodes.iter().enumerate() {
        for (j, to) in nodes.iter().enumerate() {
            if i == j {
                continue;
            }
            for m in [Movement::Implicit, Movement::Explicit] {
                for s in 0..16 {
                    p.observe_wire(from, to, m, 0.2 + 0.05 * (s as f64 + i as f64 + j as f64));
                }
            }
        }
        for s in 0..16 {
            p.observe_compute(from, 0.8 + 0.02 * (s as f64 + i as f64));
        }
    }
    p
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("annotate_learned_vs_static");
    g.sample_size(15)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let mut cluster = build_cluster(
        TableDist::Td1,
        0.002,
        Scenario::OnPremise,
        &ProfileAssignment::uniform(EngineProfile::postgres()),
    )
    .unwrap();
    cluster.topology.add_cloud_node(NodeId::new("cloud"));
    let catalog = GlobalCatalog::discover(&cluster).unwrap();

    for (tag, learned) in [("static", false), ("learned", true)] {
        if learned {
            catalog.set_profiles(populated_profiles());
        } else {
            catalog.set_profiles(CostProfiles::default());
        }
        let xdb = Xdb::new(&cluster, &catalog)
            .with_client_node("cloud")
            .with_options(XdbOptions {
                learned_costs: learned,
                freeze_profiles: true,
                ..Default::default()
            });
        // Warm the consult caches once so the loop times annotation, not
        // first-touch metadata probes.
        xdb.plan(TpchQuery::Q3.sql()).unwrap();
        for q in [TpchQuery::Q3, TpchQuery::Q8] {
            let name = format!("plan_{}_{}", q.name().to_lowercase(), tag);
            g.bench_function(&name, |b| b.iter(|| xdb.plan(black_box(q.sql())).unwrap()));
        }
    }

    g.finish();
    black_box(());
}

criterion_group!(benches, bench);
criterion_main!(benches);
