//! Tracing cost on the reproduction's own wall clock: the fig9 pipeline
//! with tracing in its three states — spans disabled at the source (the
//! `TraceCtx::off()` path every pre-trace call site compiled to), the
//! default coarse spans, and full per-operator profiling. The first two
//! must be indistinguishable (disabled tracing is a branch on a bool);
//! operator profiling must stay under a few percent.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use xdb_bench::experiments as exp;
use xdb_core::{Xdb, XdbOptions};
use xdb_tpch::{TableDist, TpchQuery};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_overhead");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    // Baseline: the fig9 wall clock (coarse spans on — the default path).
    g.bench_function("fig9_td1_default_tracing", |b| {
        b.iter(|| exp::fig09(TableDist::Td1, 0.002).unwrap())
    });

    // The six-query workload with per-operator profiling and Chrome-JSON
    // rendering on top — the full `repro --trace` cost.
    g.bench_function("fig9_td1_operator_tracing_and_export", |b| {
        b.iter(|| exp::trace_workload(0.002).unwrap().to_chrome_json())
    });

    // Submit-level comparison on one warmed federation: coarse spans vs
    // operator profiling, isolating the per-row bookkeeping.
    let env = exp::env(
        TableDist::Td1,
        0.002,
        xdb_net::Scenario::OnPremise,
        &xdb_tpch::ProfileAssignment::uniform(xdb_engine::profile::EngineProfile::postgres()),
    )
    .unwrap();
    for (label, trace_operators) in [
        ("submit_q8_coarse_spans", false),
        ("submit_q8_operator_spans", true),
    ] {
        let xdb = Xdb::new(&env.cluster, &env.catalog)
            .with_client_node(exp::CLOUD)
            .with_options(XdbOptions {
                trace_operators,
                ..Default::default()
            });
        g.bench_function(label, |b| {
            b.iter(|| {
                let out = xdb.submit(TpchQuery::Q8.sql()).unwrap();
                env.cluster.ledger.clear();
                out
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
