//! Criterion benchmark for table3 distributions — times the full
//! reproduction pipeline at a small scale factor (shape checks live in the
//! `repro` binary and EXPERIMENTS.md; this guards the harness's own cost).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3_distributions");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    g.bench_function("render_distributions", |b| {
        b.iter(xdb_tpch::distributions::render_table3)
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
