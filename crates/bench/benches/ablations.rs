//! Criterion benchmark for ablations — times the full
//! reproduction pipeline at a small scale factor (shape checks live in the
//! `repro` binary and EXPERIMENTS.md; this guards the harness's own cost).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use xdb_bench::experiments as exp;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    g.bench_function("movement_policy", |b| {
        b.iter(|| exp::ablation_movement(0.002).unwrap())
    });
    g.bench_function("candidate_pruning", |b| {
        b.iter(|| exp::ablation_pruning(0.002).unwrap())
    });
    g.bench_function("logical_rewrites", |b| {
        b.iter(|| exp::ablation_logical(0.002).unwrap())
    });
    g.bench_function("bushy_join_trees", |b| {
        b.iter(|| exp::ablation_bushy(0.002).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
