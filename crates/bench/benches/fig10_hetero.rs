//! Criterion benchmark for fig10 hetero — times the full
//! reproduction pipeline at a small scale factor (shape checks live in the
//! `repro` binary and EXPERIMENTS.md; this guards the harness's own cost).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use xdb_bench::experiments as exp;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_hetero");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    g.bench_function("heterogeneous_engines", |b| {
        b.iter(|| exp::fig10(0.002).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
