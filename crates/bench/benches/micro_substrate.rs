//! Micro-benchmarks of the substrate layers: parser, binder + logical
//! optimizer, annotation, executor operators, and the TPC-H generator.
//! These guard the real (wall-clock) cost of the reproduction's own code.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use xdb_core::annotate::{AnnotateOptions, Annotator};
use xdb_core::{GlobalCatalog, Xdb, XdbOptions};
use xdb_engine::cluster::Cluster;
use xdb_engine::profile::EngineProfile;
use xdb_net::Scenario;
use xdb_sql::bind::bind_select;
use xdb_sql::optimize::{optimize, OptimizeOptions};
use xdb_sql::parse_select;
use xdb_tpch::{build_cluster, ProfileAssignment, TableDist, TpchGen, TpchQuery, TpchTable};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro_substrate");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    // Parser on the largest workload query.
    g.bench_function("parse_q8", |b| {
        b.iter(|| parse_select(TpchQuery::Q8.sql()).unwrap())
    });

    // Binder + logical optimizer (8-relation DP join ordering).
    let cluster = build_cluster(
        TableDist::Td3,
        0.001,
        Scenario::OnPremise,
        &ProfileAssignment::uniform(EngineProfile::postgres()),
    )
    .unwrap();
    let catalog = GlobalCatalog::discover(&cluster).unwrap();
    for t in catalog.table_names() {
        catalog.consult(&cluster, &t).unwrap();
    }
    let q8 = parse_select(TpchQuery::Q8.sql()).unwrap();
    g.bench_function("bind_and_optimize_q8", |b| {
        b.iter(|| {
            let plan = bind_select(&q8, &catalog).unwrap();
            optimize(plan, &catalog, OptimizeOptions::default())
        })
    });

    // Annotation + finalization (Rules 1–4 over TD3).
    let optimized = optimize(
        bind_select(&q8, &catalog).unwrap(),
        &catalog,
        OptimizeOptions::default(),
    );
    g.bench_function("annotate_q8_td3", |b| {
        b.iter(|| {
            catalog.clear_placeholders();
            Annotator::new(&catalog, &cluster, AnnotateOptions::default())
                .run(&optimized)
                .unwrap()
        })
    });

    // Executor: hash join + aggregation over ~27k lineitem rows.
    let solo = Cluster::lan(&["solo"], EngineProfile::postgres());
    xdb_tpch::distributions::load_all_on(&solo, "solo", 0.01).unwrap();
    g.bench_function("execute_q3_sf001", |b| {
        b.iter(|| solo.query("solo", TpchQuery::Q3.sql()).unwrap())
    });

    // Generator throughput.
    g.bench_function("dbgen_lineitem_sf001", |b| {
        b.iter(|| TpchGen::new(0.01).table(TpchTable::Lineitem))
    });

    g.finish();

    // Parallel vs sequential decentralized execution (wall clock of the
    // full submit pipeline; both arms share one warmed federation). Edges
    // are forced explicit so every task materializes real work during the
    // DDL phase — the waves the parallel scheduler overlaps; with implicit
    // edges the work collapses into the (serial either way) root query.
    let mut g = c.benchmark_group("exec_parallel_vs_sequential");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    let exec_cluster = build_cluster(
        TableDist::Td2,
        0.1,
        Scenario::OnPremise,
        &ProfileAssignment::uniform(EngineProfile::postgres()),
    )
    .unwrap();
    let exec_catalog = GlobalCatalog::discover(&exec_cluster).unwrap();
    for (label, parallel) in [("sequential_q8", false), ("parallel_q8", true)] {
        let xdb = Xdb::new(&exec_cluster, &exec_catalog).with_options(XdbOptions {
            parallel_execution: parallel,
            annotate: AnnotateOptions {
                force_movement: Some(xdb_net::Movement::Explicit),
                ..Default::default()
            },
            ..Default::default()
        });
        g.bench_function(label, |b| {
            b.iter(|| {
                let out = xdb.submit(TpchQuery::Q8.sql()).unwrap();
                exec_cluster.ledger.clear();
                out
            })
        });
    }
    g.finish();

    // Annotation with and without the consultation cache (probe
    // memoization); the cached arm re-annotates a warmed federation.
    let mut g = c.benchmark_group("annotate_cache_on_off");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for (label, no_cache) in [("cache_on_q8", false), ("cache_off_q8", true)] {
        g.bench_function(label, |b| {
            b.iter(|| {
                catalog.clear_placeholders();
                Annotator::new(
                    &catalog,
                    &cluster,
                    AnnotateOptions {
                        no_consult_cache: no_cache,
                        ..Default::default()
                    },
                )
                .run(&optimized)
                .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
