//! Criterion benchmark for table2 characteristics — times the full
//! reproduction pipeline at a small scale factor (shape checks live in the
//! `repro` binary and EXPERIMENTS.md; this guards the harness's own cost).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_characteristics");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    g.bench_function("render_matrix", |b| {
        b.iter(xdb_core::characteristics::render_table)
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
