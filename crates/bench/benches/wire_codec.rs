//! Micro-benchmarks of the columnar wire codec (`xdb_net::wire`):
//! encoding a TD-flavoured relation into the compressed frame, decoding it
//! whole, and stream-decoding it in default-size transport morsels. Run
//! through `scripts/bench_snapshot.sh` these feed `BENCH_exec.json`, so
//! codec throughput rides the same regression gate as the executor
//! kernels.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Duration;
use xdb_engine::relation::Relation;
use xdb_net::wire;
use xdb_sql::value::{DataType, Value};

const ROWS: usize = 65_536;

/// Deterministic xorshift64* — same generator the scenario loader uses.
fn next(x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    x.wrapping_mul(0x2545F4914F6CDD1D)
}

/// The shapes real edges carry: a small-domain Int key (FOR/bitpack), a
/// wide Int (varint deltas), a Float (raw), a low-cardinality Str
/// (dictionary), a Date, and a skewed Bool (RLE), with a sprinkle of
/// NULLs for the null-run prefix.
fn relation() -> Relation {
    let mut x = 0x9E3779B97F4A7C15u64;
    let rows: Vec<Vec<Value>> = (0..ROWS)
        .map(|_| {
            let k = (next(&mut x) % 997) as i64;
            let v = next(&mut x) as i64;
            vec![
                if k % 53 == 0 {
                    Value::Null
                } else {
                    Value::Int(k)
                },
                Value::Int(v),
                Value::Float((k % 29) as f64 * 0.125),
                Value::str(format!("nation-{}", k % 25)),
                Value::Date(10_957 + (k % 365) as i32),
                Value::Bool(k % 17 != 0),
            ]
        })
        .collect();
    Relation::new(
        vec![
            ("k".to_string(), DataType::Int),
            ("v".to_string(), DataType::Int),
            ("w".to_string(), DataType::Float),
            ("n".to_string(), DataType::Str),
            ("d".to_string(), DataType::Date),
            ("f".to_string(), DataType::Bool),
        ],
        rows,
    )
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire_codec");
    g.sample_size(15)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let rel = relation();
    let enc = wire::encode(rel.columns(), rel.len());
    assert!(
        enc.encoded_bytes() * 2 <= rel.wire_bytes(),
        "codec lost its 2x edge on the benchmark relation: {} vs {}",
        enc.encoded_bytes(),
        rel.wire_bytes()
    );

    g.bench_function("wire_encode", |b| {
        b.iter(|| wire::encode(rel.columns(), rel.len()))
    });
    g.bench_function("wire_decode", |b| b.iter(|| wire::decode(&enc)));
    g.bench_function("wire_decode_chunked", |b| {
        b.iter(|| wire::decode_chunked(&enc, 4096))
    });

    g.finish();
    black_box(());
}

criterion_group!(benches, bench);
criterion_main!(benches);
