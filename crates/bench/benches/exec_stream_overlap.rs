//! End-to-end cost of the streamed dataflow edges: the full XDB
//! delegation pipeline over the vaccination scenario, varying only the
//! transport morsel size. Chunking must be (and, per the determinism
//! tests, is) unobservable in the simulated clock — this bench watches the
//! *wall-clock* overhead of the chunked encode → stream-decode loop, i.e.
//! what the host pays for pipelining the wire.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Duration;
use xdb_core::scenario::{self, ScenarioConfig};
use xdb_core::{Xdb, XdbOptions};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("exec_stream_overlap");
    g.sample_size(15)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let (cluster, catalog) = scenario::build(ScenarioConfig {
        citizens: 20_000,
        vaccination_events: 40_000,
        measurements: 120_000,
        ..Default::default()
    })
    .unwrap();

    for (name, chunk) in [
        ("edge_unbounded", 0usize),
        ("edge_chunk_4096", 4096),
        ("edge_chunk_256", 256),
    ] {
        g.bench_function(name, |b| {
            let xdb = Xdb::new(&cluster, &catalog).with_options(XdbOptions {
                stream_chunk_rows: chunk,
                ..Default::default()
            });
            b.iter(|| xdb.submit(scenario::EXAMPLE_QUERY).unwrap())
        });
    }

    g.finish();
    black_box(());
}

criterion_group!(benches, bench);
criterion_main!(benches);
