//! Wall-clock overlap of the streamed dataflow edges: the full XDB
//! delegation pipeline over the vaccination scenario, varying only the
//! transport morsel size. Chunking is (and, per the determinism tests,
//! must be) unobservable in the *simulated* clock; this bench watches the
//! host's wall clock, where morsel-wise edges are required to win.
//!
//! Since the edge reactor landed, a chunked edge never materializes at
//! the consumer: each decoded morsel probes the join hash table, gathers
//! its matches and folds them into the streaming aggregate while the
//! chunk is still cache-hot (`Execution::join_probe_streamed`). An
//! unbounded edge runs the same fused operators over one edge-sized
//! morsel, so every pass (decode, probe, gather, fold) re-walks a
//! multi-hundred-megabyte working set through L3/DRAM instead of L2. The
//! bench *asserts* real overlap — chunked strictly below unbounded on a
//! transfer-heavy query — before emitting the criterion series the
//! regression gate baselines (`BENCH_exec.json`).
//!
//! The query ships the wide 2M-row `measurements` relation to `vdb`
//! (placement pinned there so the big side is the foreign probe), joins
//! it against 300k local vaccination events (×3 fan-out: the join output
//! is ~6M rows, far past L3 when materialized at once) and folds it
//! into an eight-group aggregate. Minima over interleaved runs are
//! compared: scheduler noise on a single-core host only ever adds time,
//! so the minimum isolates the structural cache effect.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::{Duration, Instant};
use xdb_core::annotate::AnnotateOptions;
use xdb_core::global::GlobalCatalog;
use xdb_core::scenario::{self, ScenarioConfig};
use xdb_core::{Xdb, XdbOptions};
use xdb_engine::cluster::Cluster;
use xdb_net::NodeId;

/// Transfer-heavy: all four `measurements` columns cross the wire and the
/// consumer is a fused probe→gather→aggregate pipeline over the edge.
const TRANSFER_HEAVY_QUERY: &str = "SELECT vn.v_id, avg(m.u_ml) AS avg_u_ml, \
 min(m.mdate) AS first_m, max(m.id) AS max_id \
 FROM measurements m, vaccination vn \
 WHERE vn.c_id = m.c_id \
 GROUP BY vn.v_id ORDER BY vn.v_id";

fn build_env() -> (Cluster, GlobalCatalog) {
    scenario::build(ScenarioConfig {
        citizens: 100_000,
        vaccination_events: 300_000,
        measurements: 2_000_000,
        ..Default::default()
    })
    .unwrap()
}

fn make_xdb<'a>(cluster: &'a Cluster, catalog: &'a GlobalCatalog, chunk: usize) -> Xdb<'a> {
    Xdb::new(cluster, catalog).with_options(XdbOptions {
        stream_chunk_rows: chunk,
        // Pin the cross-database operators to vdb so the *large* relation
        // is the shipped probe side; cost-based placement would flip the
        // plan into a small-edge shape that exercises nothing.
        annotate: AnnotateOptions {
            allowed_placements: Some(vec![NodeId::new("vdb")]),
            ..Default::default()
        },
        ..Default::default()
    })
}

fn submit_ms(cluster: &Cluster, catalog: &GlobalCatalog, chunk: usize) -> f64 {
    let xdb = make_xdb(cluster, catalog, chunk);
    let t = Instant::now();
    black_box(xdb.submit(TRANSFER_HEAVY_QUERY).unwrap());
    t.elapsed().as_secs_f64() * 1e3
}

fn minimum(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::INFINITY, f64::min)
}

fn overlap_minima(cluster: &Cluster, catalog: &GlobalCatalog, pairs: usize) -> (f64, f64) {
    let mut unbounded = Vec::new();
    let mut chunked = Vec::new();
    for _ in 0..pairs {
        unbounded.push(submit_ms(cluster, catalog, 0));
        chunked.push(submit_ms(cluster, catalog, 4096));
    }
    (minimum(&unbounded), minimum(&chunked))
}

/// Interleaved A/B minima so clock drift and cache warmup hit both arms
/// equally; panics unless the chunked edge is strictly faster. One wider
/// re-measure guards against a pathological scheduling burst landing on
/// the chunked arm — the final comparison is still a hard gate.
fn assert_overlap(cluster: &Cluster, catalog: &GlobalCatalog) {
    // Warmup: both paths touch every table and populate the codec cache.
    submit_ms(cluster, catalog, 0);
    submit_ms(cluster, catalog, 4096);
    let (mut u, mut c) = overlap_minima(cluster, catalog, 6);
    if c >= u {
        eprintln!(
            "exec_stream_overlap: first pass inconclusive \
             (chunked {c:.2} ms >= unbounded {u:.2} ms), re-measuring"
        );
        (u, c) = overlap_minima(cluster, catalog, 10);
    }
    assert!(
        c < u,
        "no stream overlap: chunked min {c:.2} ms >= unbounded min {u:.2} ms"
    );
    eprintln!(
        "exec_stream_overlap: chunked {c:.2} ms < unbounded {u:.2} ms ({:.2}x)",
        u / c
    );
}

fn bench(c: &mut Criterion) {
    let (cluster, catalog) = build_env();
    assert_overlap(&cluster, &catalog);

    let mut g = c.benchmark_group("exec_stream_overlap");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    for (name, chunk) in [
        ("edge_unbounded", 0usize),
        ("edge_chunk_4096", 4096),
        ("edge_chunk_256", 256),
    ] {
        g.bench_function(name, |b| {
            let xdb = make_xdb(&cluster, &catalog, chunk);
            b.iter(|| xdb.submit(TRANSFER_HEAVY_QUERY).unwrap())
        });
    }
    g.finish();
    black_box(());
}

criterion_group!(benches, bench);
criterion_main!(benches);
