//! Micro-benchmarks of the columnar executor kernels against a
//! row-at-a-time reference implementation of the same operator. Each pair
//! computes the identical result; the gap is the cost of materializing
//! `Vec<Vec<Value>>` rows and dispatching on `Value` per cell instead of
//! running a typed column loop. `scripts/bench_snapshot.sh` parses this
//! output into `BENCH_exec.json` so later PRs inherit a perf trajectory.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::collections::HashMap;
use std::time::Duration;
use xdb_engine::expr::compile;
use xdb_engine::profile::EngineProfile;
use xdb_engine::relation::Relation;
use xdb_engine::vector;
use xdb_engine::{Engine, NoRemote};
use xdb_sql::algebra::{Field, PlanSchema};
use xdb_sql::ast::{BinaryOp, Expr};
use xdb_sql::value::{DataType, Value};

const FACT_ROWS: usize = 65_536;
const DIM_ROWS: i64 = 997;

/// Deterministic xorshift64* — same generator the scenario loader uses.
fn next(x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    x.wrapping_mul(0x2545F4914F6CDD1D)
}

/// fact(k Int, v Int, w Float, s Str) with a few NULL keys so the kernels
/// exercise their null-bitmap paths.
fn fact() -> Relation {
    let mut x = 0x9E3779B97F4A7C15u64;
    let rows: Vec<Vec<Value>> = (0..FACT_ROWS)
        .map(|_| {
            let k = (next(&mut x) % DIM_ROWS as u64) as i64;
            let v = (next(&mut x) % 10_000) as i64;
            vec![
                if v % 53 == 0 {
                    Value::Null
                } else {
                    Value::Int(k)
                },
                Value::Int(v),
                Value::Float((v % 29) as f64 * 0.125),
                Value::str(format!("s{}", v % 11)),
            ]
        })
        .collect();
    Relation::new(
        vec![
            ("k".to_string(), DataType::Int),
            ("v".to_string(), DataType::Int),
            ("w".to_string(), DataType::Float),
            ("s".to_string(), DataType::Str),
        ],
        rows,
    )
}

fn dim() -> Relation {
    let rows: Vec<Vec<Value>> = (0..DIM_ROWS)
        .map(|k| vec![Value::Int(k), Value::str(format!("g{}", k % 13))])
        .collect();
    Relation::new(
        vec![
            ("k".to_string(), DataType::Int),
            ("tag".to_string(), DataType::Str),
        ],
        rows,
    )
}

fn fact_schema() -> PlanSchema {
    PlanSchema::new(vec![
        Field::new(None::<&str>, "k", DataType::Int),
        Field::new(None::<&str>, "v", DataType::Int),
        Field::new(None::<&str>, "w", DataType::Float),
        Field::new(None::<&str>, "s", DataType::Str),
    ])
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("exec_kernels");
    g.sample_size(15)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let rel = fact();
    let schema = fact_schema();

    // Filter: predicate → selection vector vs a row-materializing loop.
    let pred = Expr::binary(
        BinaryOp::And,
        Expr::binary(
            BinaryOp::Lt,
            Expr::col("v"),
            Expr::Literal(Value::Int(5000)),
        ),
        Expr::binary(
            BinaryOp::Gt,
            Expr::col("w"),
            Expr::Literal(Value::Float(1.0)),
        ),
    );
    let pred = compile(&pred, &schema).unwrap();
    g.bench_function("filter_columnar", |b| {
        b.iter(|| vector::filter_sel(&pred, &rel).unwrap())
    });
    g.bench_function("filter_row_baseline", |b| {
        b.iter(|| {
            let mut sel: Vec<u32> = Vec::new();
            for i in 0..rel.len() {
                if pred.eval_predicate(&rel.row(i)).unwrap() {
                    sel.push(i as u32);
                }
            }
            sel
        })
    });

    // Projection arithmetic: v * 3 + k, typed column loop vs per-row eval.
    let proj = Expr::binary(
        BinaryOp::Plus,
        Expr::binary(BinaryOp::Mul, Expr::col("v"), Expr::Literal(Value::Int(3))),
        Expr::col("k"),
    );
    let proj = compile(&proj, &schema).unwrap();
    g.bench_function("project_columnar", |b| {
        b.iter(|| vector::eval_to_column(&proj, &rel).unwrap())
    });
    g.bench_function("project_row_baseline", |b| {
        b.iter(|| {
            (0..rel.len())
                .map(|i| proj.eval(&rel.row(i)).unwrap())
                .collect::<Vec<Value>>()
        })
    });

    // Hash join + grouped aggregation, end to end through the executor
    // (typed key columns, partition count 1 — the production default on
    // this host) vs hand-written row-at-a-time loops over `Relation::row`.
    let e = Engine::new("bench", EngineProfile::postgres());
    e.set_exec_partitions(1);
    e.load_table("fact", fact()).unwrap();
    e.load_table("dim", dim()).unwrap();
    g.bench_function("hash_join_columnar", |b| {
        b.iter(|| {
            e.execute_sql(
                "SELECT f.v, g.tag FROM fact f, dim g WHERE f.k = g.k AND f.v < 200",
                &NoRemote,
            )
            .unwrap()
        })
    });
    let build = dim();
    g.bench_function("hash_join_row_baseline", |b| {
        b.iter(|| {
            let mut table: HashMap<i64, Vec<usize>> = HashMap::new();
            for i in 0..build.len() {
                if let Value::Int(k) = build.value(i, 0) {
                    table.entry(k).or_default().push(i);
                }
            }
            let mut out: Vec<Vec<Value>> = Vec::new();
            for i in 0..rel.len() {
                let row = rel.row(i);
                let (Value::Int(k), Value::Int(v)) = (&row[0], &row[1]) else {
                    continue;
                };
                if *v >= 200 {
                    continue;
                }
                if let Some(matches) = table.get(k) {
                    for &m in matches {
                        out.push(vec![Value::Int(*v), build.value(m, 1)]);
                    }
                }
            }
            out
        })
    });

    g.bench_function("aggregate_columnar", |b| {
        b.iter(|| {
            e.execute_sql(
                "SELECT f.k, count(*) AS n, sum(f.w) AS sw FROM fact f GROUP BY f.k",
                &NoRemote,
            )
            .unwrap()
        })
    });
    // Multi-column group keys: the u128-packed kernel (Int key
    // range-compressed, Str key dictionary-interned) vs the same grouping
    // through row-materialized `Vec<Value>` keys.
    g.bench_function("aggregate_multikey_columnar", |b| {
        b.iter(|| {
            e.execute_sql(
                "SELECT f.k, f.s, count(*) AS n, sum(f.w) AS sw FROM fact f GROUP BY f.k, f.s",
                &NoRemote,
            )
            .unwrap()
        })
    });
    g.bench_function("aggregate_multikey_row_baseline", |b| {
        b.iter(|| {
            let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
            let mut groups: Vec<(Vec<Value>, i64, f64)> = Vec::new();
            for i in 0..rel.len() {
                let row = rel.row(i);
                let key = vec![row[0].clone(), row[3].clone()];
                let slot = *index.entry(key.clone()).or_insert_with(|| {
                    groups.push((key, 0, 0.0));
                    groups.len() - 1
                });
                groups[slot].1 += 1;
                if let Value::Float(w) = row[2] {
                    groups[slot].2 += w;
                }
            }
            groups
                .into_iter()
                .map(|(mut key, n, sw)| {
                    key.push(Value::Int(n));
                    key.push(Value::Float(sw));
                    key
                })
                .collect::<Vec<Vec<Value>>>()
        })
    });

    g.bench_function("aggregate_row_baseline", |b| {
        // Faithful to the pre-columnar engine: materialize each row as a
        // `Vec<Value>`, key groups by `Vec<Value>`, accumulate `Value`s.
        b.iter(|| {
            let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
            let mut groups: Vec<(Vec<Value>, i64, f64)> = Vec::new();
            for i in 0..rel.len() {
                let row = rel.row(i);
                let key = vec![row[0].clone()];
                let slot = *index.entry(key.clone()).or_insert_with(|| {
                    groups.push((key, 0, 0.0));
                    groups.len() - 1
                });
                groups[slot].1 += 1;
                if let Value::Float(w) = row[2] {
                    groups[slot].2 += w;
                }
            }
            groups
                .into_iter()
                .map(|(mut key, n, sw)| {
                    key.push(Value::Int(n));
                    key.push(Value::Float(sw));
                    key
                })
                .collect::<Vec<Vec<Value>>>()
        })
    });

    g.finish();
    black_box(());
}

criterion_group!(benches, bench);
criterion_main!(benches);
