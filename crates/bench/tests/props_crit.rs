//! Property test over the critical-path profiler: for any TD1 query, at
//! any executor partition count and any transport chunk size, the
//! critical-path latency attribution must sum *exactly* to the query's
//! end-to-end simulated time (integer-nanosecond telescoping — no
//! epsilon), the steps must tile the window contiguously, and the whole
//! analysis must be bit-identical across those settings.

use proptest::prelude::*;
use xdb_bench::experiments::{env, CLOUD};
use xdb_core::{Xdb, XdbOptions};
use xdb_engine::profile::EngineProfile;
use xdb_net::Scenario;
use xdb_obs::critical::{critical_path, ns, CriticalPath};
use xdb_tpch::{ProfileAssignment, TableDist, TpchQuery};

/// One TD1 run; returns (end-to-end simulated ms, critical path).
fn run_td1(q: TpchQuery, chunk: usize, partitions: usize, parallel: bool) -> (f64, CriticalPath) {
    let e = env(
        TableDist::Td1,
        0.002,
        Scenario::OnPremise,
        &ProfileAssignment::uniform(EngineProfile::postgres()),
    )
    .unwrap();
    e.cluster.ledger.clear();
    e.cluster.set_exec_partitions(partitions);
    let xdb = Xdb::new(&e.cluster, &e.catalog)
        .with_client_node(CLOUD)
        .with_options(XdbOptions {
            parallel_execution: parallel,
            stream_chunk_rows: chunk,
            ..Default::default()
        });
    let out = xdb.submit(q.sql()).unwrap();
    let crit = critical_path(&out.trace).expect("critical path");
    (out.breakdown.total_ms(), crit)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn attribution_sums_exactly_to_end_to_end_time(
        qi in 0usize..TpchQuery::ALL.len(),
        ppick in 0usize..3,
        cpick in 0usize..3,
        parallel in any::<bool>(),
    ) {
        let q = TpchQuery::ALL[qi];
        let partitions = [1usize, 2, 8][ppick];
        let chunk = [1usize, 4096, 0][cpick];
        let (total_ms, crit) = run_td1(q, chunk, partitions, parallel);
        // Exact integer equality: attribution tiles the window.
        prop_assert_eq!(crit.attributed_ns(), crit.total_ns);
        prop_assert_eq!(
            crit.attribution.iter().map(|a| a.ns).sum::<i64>(),
            crit.total_ns
        );
        prop_assert_eq!(crit.total_ns, ns(total_ms));
        // Steps are contiguous, gap-free, and start at the origin.
        prop_assert!(!crit.steps.is_empty());
        prop_assert_eq!(crit.steps[0].start_ns, 0);
        prop_assert_eq!(crit.steps.last().unwrap().end_ns, crit.total_ns);
        for w in crit.steps.windows(2) {
            prop_assert_eq!(w[0].end_ns, w[1].start_ns);
        }
        // The analysis itself is setting-invariant: the reference run
        // (sequential, 1 partition, unbounded chunks) produces the same
        // steps and the same attribution.
        let (_, reference) = run_td1(q, 0, 1, false);
        prop_assert_eq!(&crit.steps, &reference.steps);
        prop_assert_eq!(
            format!("{:?}", crit.attribution),
            format!("{:?}", reference.attribution)
        );
    }
}
