//! Calibration property: the observatory's side-effect-free
//! [`Calibration::analytic`] derivation must agree with the real
//! [`Calibration::probe`] — same reference node, factors equal to 1e-9
//! relative — on every cluster the harness can build: all three table
//! distributions × both profile assignments × a range of scale factors,
//! plus degenerate shapes (clusters whose resident relations are empty or
//! single-row). The probe ships its own synthetic table, so resident data
//! must never leak into the factors.

use proptest::prelude::*;
use xdb_core::calibration::Calibration;
use xdb_engine::cluster::Cluster;
use xdb_engine::profile::EngineProfile;
use xdb_engine::relation::Relation;
use xdb_net::{Scenario, Topology};
use xdb_sql::value::{DataType, Value};
use xdb_tpch::{build_cluster, ProfileAssignment, TableDist};

/// Probe and analytic must agree on every node of `cluster`.
fn assert_probe_matches_analytic(cluster: &Cluster, tag: &str) -> Result<(), TestCaseError> {
    let probed = Calibration::probe(cluster).expect("probe");
    let analytic = Calibration::analytic(cluster);
    prop_assert_eq!(
        probed.reference_node(),
        analytic.reference_node(),
        "{}: reference node diverged",
        tag
    );
    for node in cluster.node_names() {
        let p = probed.factor(&node).expect("probed factor");
        let a = analytic.factor(&node).expect("analytic factor");
        prop_assert!(
            (p - a).abs() <= 1e-9 * p.abs().max(1.0),
            "{}/{}: probe {} vs analytic {}",
            tag,
            node,
            p,
            a
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    /// All three table distributions, both profile assignments, several
    /// scale factors and scenarios: resident TPC-H data never perturbs
    /// the calibration factors.
    #[test]
    fn analytic_matches_probe_on_every_distribution(
        tdi in 0usize..TableDist::ALL.len(),
        hetero in any::<bool>(),
        sfi in 0usize..3,
        cloud in any::<bool>(),
    ) {
        let td = TableDist::ALL[tdi];
        let sf = [0.0005, 0.002, 0.01][sfi];
        let scenario = if cloud { Scenario::GeoDistributed } else { Scenario::OnPremise };
        let profiles = if hetero {
            ProfileAssignment::heterogeneous()
        } else {
            ProfileAssignment::uniform(EngineProfile::postgres())
        };
        let cluster = build_cluster(td, sf, scenario, &profiles).unwrap();
        let tag = format!("{td:?}/sf{sf}/hetero={hetero}/{scenario:?}");
        assert_probe_matches_analytic(&cluster, &tag)?;
    }

    /// Degenerate resident shapes: empty relations and single-row edge
    /// tables, across heterogeneous engines. The probe still calibrates
    /// off its own synthetic table, so factors stay finite, positive, and
    /// equal to the analytic derivation.
    #[test]
    fn analytic_matches_probe_on_degenerate_relations(
        rows in 0usize..2,
        hetero in any::<bool>(),
    ) {
        let mut cluster = Cluster::new(Topology::lan(&[]));
        let profiles: Vec<(&str, EngineProfile)> = if hetero {
            vec![
                ("pg", EngineProfile::postgres()),
                ("maria", EngineProfile::mariadb()),
                ("hive", EngineProfile::hive()),
            ]
        } else {
            vec![
                ("pg", EngineProfile::postgres()),
                ("pg2", EngineProfile::postgres()),
            ]
        };
        for (name, profile) in profiles {
            cluster.add_engine(name, profile);
            let rel = Relation::new(
                vec![
                    ("k".to_string(), DataType::Int),
                    ("v".to_string(), DataType::Float),
                ],
                (0..rows)
                    .map(|i| vec![Value::Int(i as i64), Value::Float(i as f64)])
                    .collect(),
            );
            cluster
                .engine(name)
                .unwrap()
                .load_table(&format!("edge_{name}"), rel)
                .unwrap();
        }
        let tag = format!("degenerate rows={rows} hetero={hetero}");
        assert_probe_matches_analytic(&cluster, &tag)?;
        let cal = Calibration::analytic(&cluster);
        for node in cluster.node_names() {
            let f = cal.factor(&node).unwrap();
            prop_assert!(f.is_finite() && f > 0.0, "{}/{}: factor {}", tag, node, f);
        }
    }
}
