//! Property test over the TD1 workload: a random TPC-H query executed
//! with a random transport chunk size must return exactly the relation
//! (and move exactly the encoded bytes) of the unchunked run — transport
//! morsels are unobservable end to end, not just codec-locally.

use proptest::prelude::*;
use xdb_bench::experiments::{env, CLOUD};
use xdb_core::{Xdb, XdbOptions};
use xdb_engine::profile::EngineProfile;
use xdb_engine::relation::Relation;
use xdb_net::{Purpose, Scenario};
use xdb_tpch::{ProfileAssignment, TableDist, TpchQuery};

/// One TD1 run at the given chunk size: (result, raw bytes, encoded
/// bytes) over the pipelined + materialized edges.
fn run_td1(q: TpchQuery, chunk: usize, parallel: bool) -> (Relation, u64, u64) {
    let e = env(
        TableDist::Td1,
        0.002,
        Scenario::OnPremise,
        &ProfileAssignment::uniform(EngineProfile::postgres()),
    )
    .unwrap();
    e.cluster.ledger.clear();
    let xdb = Xdb::new(&e.cluster, &e.catalog)
        .with_client_node(CLOUD)
        .with_options(XdbOptions {
            parallel_execution: parallel,
            stream_chunk_rows: chunk,
            ..Default::default()
        });
    let out = xdb.submit(q.sql()).unwrap();
    let raw = e.cluster.ledger.bytes_for(Purpose::InterDbmsPipeline)
        + e.cluster.ledger.bytes_for(Purpose::Materialization);
    let enc = e
        .cluster
        .ledger
        .encoded_bytes_for(Purpose::InterDbmsPipeline)
        + e.cluster.ledger.encoded_bytes_for(Purpose::Materialization);
    (out.relation, raw, enc)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn chunked_run_equals_unchunked(
        qi in 0usize..TpchQuery::ALL.len(),
        pick in 0usize..3,
        parallel in any::<bool>(),
    ) {
        let q = TpchQuery::ALL[qi];
        let chunk = [1usize, 7, 4096][pick];
        let (want, raw0, enc0) = run_td1(q, 0, parallel);
        let (got, raw, enc) = run_td1(q, chunk, parallel);
        // Bit-identical relation: same schema, same order, same values.
        prop_assert_eq!(&got.fields, &want.fields);
        prop_assert_eq!(got.columns(), want.columns());
        // Chunking must not change what the wire accounts for.
        prop_assert_eq!(raw, raw0);
        prop_assert_eq!(enc, enc0);
        prop_assert!(enc <= raw);
    }
}
