//! Tabular figure/table rendering for the reproduction harness.

/// One named series of (x-label, value) points.
#[derive(Debug, Clone)]
pub struct Series {
    pub name: String,
    pub points: Vec<(String, f64)>,
}

impl Series {
    pub fn new(name: impl Into<String>) -> Series {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    pub fn push(&mut self, x: impl Into<String>, y: f64) {
        self.points.push((x.into(), y));
    }

    pub fn get(&self, x: &str) -> Option<f64> {
        self.points.iter().find(|(l, _)| l == x).map(|(_, v)| *v)
    }
}

/// A reproduced figure or table: series over a shared x-axis.
#[derive(Debug, Clone)]
pub struct Figure {
    pub id: String,
    pub title: String,
    pub unit: &'static str,
    pub series: Vec<Series>,
    pub notes: Vec<String>,
}

impl Figure {
    pub fn new(id: impl Into<String>, title: impl Into<String>, unit: &'static str) -> Figure {
        Figure {
            id: id.into(),
            title: title.into(),
            unit,
            series: Vec::new(),
            notes: Vec::new(),
        }
    }

    pub fn series_mut(&mut self, name: &str) -> &mut Series {
        if let Some(i) = self.series.iter().position(|s| s.name == name) {
            &mut self.series[i]
        } else {
            self.series.push(Series::new(name));
            self.series.last_mut().unwrap()
        }
    }

    pub fn note(&mut self, n: impl Into<String>) {
        self.notes.push(n.into());
    }

    /// All x labels in first-appearance order.
    fn x_labels(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for s in &self.series {
            for (x, _) in &s.points {
                if !out.contains(x) {
                    out.push(x.clone());
                }
            }
        }
        out
    }

    /// Render as an aligned text table: one row per x label, one column
    /// per series.
    pub fn render(&self) -> String {
        let xs = self.x_labels();
        let mut out = format!("== {}: {} ({}) ==\n", self.id, self.title, self.unit);
        let xw = xs.iter().map(String::len).max().unwrap_or(4).max(4);
        let widths: Vec<usize> = self
            .series
            .iter()
            .map(|s| s.name.len().max(9) + 2)
            .collect();
        out.push_str(&format!("{:<xw$}", ""));
        for (s, w) in self.series.iter().zip(&widths) {
            out.push_str(&format!("{:>w$}", s.name, w = *w));
        }
        out.push('\n');
        for x in &xs {
            out.push_str(&format!("{x:<xw$}"));
            for (s, w) in self.series.iter().zip(&widths) {
                let w = *w;
                match s.get(x) {
                    Some(v) => {
                        if v.abs() >= 1000.0 {
                            out.push_str(&format!("{v:>w$.0}"));
                        } else if v.abs() < 0.01 && v != 0.0 {
                            // Keep orders-of-magnitude differences visible
                            // (Fig 14's "three orders less" claim).
                            out.push_str(&format!("{v:>w$.4}"));
                        } else {
                            out.push_str(&format!("{v:>w$.2}"));
                        }
                    }
                    None => out.push_str(&format!("{:>w$}", "-", w = w)),
                }
            }
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("  note: {n}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_and_fills_gaps() {
        let mut f = Figure::new("Fig X", "demo", "s");
        f.series_mut("a").push("q1", 1.0);
        f.series_mut("a").push("q2", 2.0);
        f.series_mut("b").push("q2", 12345.0);
        f.note("hello");
        let r = f.render();
        assert!(r.contains("Fig X"));
        assert!(r.contains("12345"));
        assert!(r.contains('-'), "missing gap marker: {r}");
        assert!(r.contains("note: hello"));
    }

    #[test]
    fn series_lookup() {
        let mut s = Series::new("x");
        s.push("a", 5.0);
        assert_eq!(s.get("a"), Some(5.0));
        assert_eq!(s.get("zz"), None);
    }
}
