//! Tabular figure/table rendering for the reproduction harness.

use std::collections::{HashMap, HashSet};

/// One named series of (x-label, value) points.
#[derive(Debug, Clone)]
pub struct Series {
    pub name: String,
    pub points: Vec<(String, f64)>,
}

impl Series {
    pub fn new(name: impl Into<String>) -> Series {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    pub fn push(&mut self, x: impl Into<String>, y: f64) {
        self.points.push((x.into(), y));
    }

    pub fn get(&self, x: &str) -> Option<f64> {
        self.points.iter().find(|(l, _)| l == x).map(|(_, v)| *v)
    }
}

/// A reproduced figure or table: series over a shared x-axis.
#[derive(Debug, Clone)]
pub struct Figure {
    pub id: String,
    pub title: String,
    pub unit: &'static str,
    pub series: Vec<Series>,
    pub notes: Vec<String>,
}

impl Figure {
    pub fn new(id: impl Into<String>, title: impl Into<String>, unit: &'static str) -> Figure {
        Figure {
            id: id.into(),
            title: title.into(),
            unit,
            series: Vec::new(),
            notes: Vec::new(),
        }
    }

    pub fn series_mut(&mut self, name: &str) -> &mut Series {
        if let Some(i) = self.series.iter().position(|s| s.name == name) {
            &mut self.series[i]
        } else {
            self.series.push(Series::new(name));
            self.series.last_mut().unwrap()
        }
    }

    pub fn note(&mut self, n: impl Into<String>) {
        self.notes.push(n.into());
    }

    /// All x labels in first-appearance order.
    fn x_labels(&self) -> Vec<String> {
        let mut seen: HashSet<&str> = HashSet::new();
        let mut out: Vec<String> = Vec::new();
        for s in &self.series {
            for (x, _) in &s.points {
                if seen.insert(x.as_str()) {
                    out.push(x.clone());
                }
            }
        }
        out
    }

    /// Render as an aligned text table: one row per x label, one column
    /// per series. Cells are looked up through per-series hash indexes
    /// built once up front — probing with `Series::get` per cell would
    /// rescan the whole series for every row, quadratic in points.
    pub fn render(&self) -> String {
        let xs = self.x_labels();
        let indexes: Vec<HashMap<&str, f64>> = self
            .series
            .iter()
            .map(|s| {
                let mut m = HashMap::with_capacity(s.points.len());
                for (x, v) in &s.points {
                    // First occurrence wins, matching `Series::get`.
                    m.entry(x.as_str()).or_insert(*v);
                }
                m
            })
            .collect();
        let mut out = format!("== {}: {} ({}) ==\n", self.id, self.title, self.unit);
        let xw = xs.iter().map(String::len).max().unwrap_or(4).max(4);
        let widths: Vec<usize> = self
            .series
            .iter()
            .map(|s| s.name.len().max(9) + 2)
            .collect();
        out.push_str(&format!("{:<xw$}", ""));
        for (s, w) in self.series.iter().zip(&widths) {
            out.push_str(&format!("{:>w$}", s.name, w = *w));
        }
        out.push('\n');
        for x in &xs {
            out.push_str(&format!("{x:<xw$}"));
            for (index, w) in indexes.iter().zip(&widths) {
                let w = *w;
                match index.get(x.as_str()).copied() {
                    Some(v) => {
                        if v.abs() >= 1000.0 {
                            out.push_str(&format!("{v:>w$.0}"));
                        } else if v.abs() < 0.01 && v != 0.0 {
                            // Keep orders-of-magnitude differences visible
                            // (Fig 14's "three orders less" claim).
                            out.push_str(&format!("{v:>w$.4}"));
                        } else {
                            out.push_str(&format!("{v:>w$.2}"));
                        }
                    }
                    None => out.push_str(&format!("{:>w$}", "-", w = w)),
                }
            }
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("  note: {n}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_and_fills_gaps() {
        let mut f = Figure::new("Fig X", "demo", "s");
        f.series_mut("a").push("q1", 1.0);
        f.series_mut("a").push("q2", 2.0);
        f.series_mut("b").push("q2", 12345.0);
        f.note("hello");
        let r = f.render();
        assert!(r.contains("Fig X"));
        assert!(r.contains("12345"));
        assert!(r.contains('-'), "missing gap marker: {r}");
        assert!(r.contains("note: hello"));
    }

    #[test]
    fn duplicate_x_labels_keep_first_value() {
        // `Series::get` returns the first matching point; the hashed
        // render path must agree.
        let mut f = Figure::new("Fig Y", "dups", "s");
        f.series_mut("a").push("q1", 1.0);
        f.series_mut("a").push("q1", 99.0);
        let r = f.render();
        assert!(r.contains("1.00"), "{r}");
        assert!(!r.contains("99.00"), "{r}");
        assert_eq!(r.matches("q1").count(), 1, "{r}");
    }

    #[test]
    fn series_lookup() {
        let mut s = Series::new("x");
        s.push("a", 5.0);
        assert_eq!(s.get("a"), Some(5.0));
        assert_eq!(s.get("zz"), None);
    }
}

#[cfg(test)]
mod audit {
    use super::*;

    #[test]
    #[ignore]
    fn time_render_10k() {
        let mut f = Figure::new("big", "audit", "ms");
        for s in 0..3 {
            let series = f.series_mut(&format!("s{s}"));
            for i in 0..10_000 {
                series.push(format!("x{i}"), i as f64);
            }
        }
        let t0 = std::time::Instant::now();
        let new = f.render();
        let t_new = t0.elapsed();
        // Old path: per-cell linear Series::get probe + Vec::contains dedup.
        let t0 = std::time::Instant::now();
        let mut xs: Vec<String> = Vec::new();
        for s in &f.series {
            for (x, _) in &s.points {
                if !xs.contains(x) {
                    xs.push(x.clone());
                }
            }
        }
        let mut old = String::new();
        for x in &xs {
            for s in &f.series {
                if let Some(v) = s.get(x) {
                    old.push_str(&format!("{v:.2} "));
                }
            }
        }
        let t_old = t0.elapsed();
        println!(
            "new render: {t_new:?}, old-style probes: {t_old:?}, lens {} {}",
            new.len(),
            old.len()
        );
    }
}
