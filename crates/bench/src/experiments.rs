//! Reproduction runners — one function per table/figure of the paper's
//! evaluation (see DESIGN.md §4 for the index).
//!
//! Scale factors are laptop-scale (default 0.1 ≈ the paper's mid-scale
//! setting, proportionally); the *shapes* — who wins, by what factor,
//! where crossovers fall — are the reproduction target, not absolute
//! seconds.

use crate::report::Figure;
use xdb_baselines::{Mediator, MediatorConfig, Sclera};
use xdb_core::annotate::AnnotateOptions;
use xdb_core::{GlobalCatalog, Xdb, XdbOptions};
use xdb_engine::cluster::Cluster;
use xdb_engine::error::Result;
use xdb_engine::profile::EngineProfile;
use xdb_net::{Movement, NodeId, Purpose, Scenario};
use xdb_tpch::{build_cluster, ProfileAssignment, TableDist, TpchQuery};

/// Name of the managed-cloud node hosting the middleware/mediator.
pub const CLOUD: &str = "cloud";

/// A loaded federation ready for experiments.
pub struct Env {
    pub cluster: Cluster,
    pub catalog: GlobalCatalog,
    pub sf: f64,
}

/// Build a TPC-H federation with the middleware/mediator on a metered
/// cloud node.
pub fn env(
    td: TableDist,
    sf: f64,
    scenario: Scenario,
    profiles: &ProfileAssignment,
) -> Result<Env> {
    let mut cluster = build_cluster(td, sf, scenario, profiles)?;
    cluster.topology.add_cloud_node(NodeId::new(CLOUD));
    let catalog = GlobalCatalog::discover(&cluster)?;
    Ok(Env {
        cluster,
        catalog,
        sf,
    })
}

fn pg() -> ProfileAssignment {
    ProfileAssignment::uniform(EngineProfile::postgres())
}

/// "Actual" execution time of a query with localized tables: one engine
/// holding everything (the paper's methodology for estimating the
/// data-movement share, Section VI-A).
pub fn localized_exec_ms(sf: f64, sql: &str) -> Result<f64> {
    let cluster = Cluster::lan(&["solo"], EngineProfile::postgres());
    xdb_tpch::distributions::load_all_on(&cluster, "solo", sf)?;
    let (_, report) = cluster.query("solo", sql)?;
    Ok(report.finish_ms)
}

/// Run XDB on an env; returns (exec_ms, total_ms, moved_bytes).
///
/// Set `XDB_SEQUENTIAL=1` to fall back to the sequential task executor —
/// simulated results are identical either way; only the reproduction's own
/// wall clock changes.
pub fn run_xdb(env: &Env, sql: &str) -> Result<(f64, f64, u64)> {
    env.cluster.ledger.clear();
    let xdb = Xdb::new(&env.cluster, &env.catalog)
        .with_client_node(CLOUD)
        .with_options(XdbOptions {
            parallel_execution: std::env::var_os("XDB_SEQUENTIAL").is_none(),
            ..Default::default()
        });
    let out = xdb.submit(sql)?;
    let moved = env.cluster.ledger.bytes_for(Purpose::InterDbmsPipeline)
        + env.cluster.ledger.bytes_for(Purpose::Materialization);
    Ok((out.breakdown.exec_ms, out.breakdown.total_ms(), moved))
}

// ------------------------------------------------------------- trace sink

/// Run all six TPC-H queries on TD1 with per-operator profiling enabled
/// and concatenate their traces onto one timeline — the payload behind
/// `repro --trace out.json`. Honors `XDB_SEQUENTIAL=1` like [`run_xdb`];
/// the emitted trace is bit-identical either way because span timestamps
/// come from the simulated clock, not the host.
pub fn trace_workload(sf: f64) -> Result<xdb_obs::QueryTrace> {
    let env = env(TableDist::Td1, sf, Scenario::OnPremise, &pg())?;
    let mut merged = xdb_obs::QueryTrace::default();
    let mut offset = 0.0f64;
    for q in TpchQuery::ALL {
        env.cluster.ledger.clear();
        let xdb = Xdb::new(&env.cluster, &env.catalog)
            .with_client_node(CLOUD)
            .with_options(XdbOptions {
                parallel_execution: std::env::var_os("XDB_SEQUENTIAL").is_none(),
                trace_operators: true,
                ..Default::default()
            });
        let out = xdb.submit(q.sql())?;
        let mut trace = out.trace;
        // The root span of every submission is named "query"; label it
        // with the TPC-H query so the merged timeline reads Q3, Q5, …
        if let Some(root) = trace.spans.iter_mut().find(|s| s.parent.is_none()) {
            root.name = q.name().to_string();
        }
        trace.shift_ms(offset);
        offset = trace.end_ms();
        merged.merge(trace);
    }
    Ok(merged)
}

// ------------------------------------------------------------------ Fig 1

/// Fig 1: the introduction experiment — total vs actual execution time of
/// TPC-H Q3 for Garlic and Presto (and XDB) at two scale factors.
pub fn fig01(sf_small: f64, sf_large: f64) -> Result<Figure> {
    let mut fig = Figure::new(
        "Fig 1",
        "MW overhead on Q3: total vs actual execution",
        "sim seconds",
    );
    for sf in [sf_small, sf_large] {
        let env = env(TableDist::Td1, sf, Scenario::OnPremise, &pg())?;
        let q3 = TpchQuery::Q3.sql();
        let actual = localized_exec_ms(sf, q3)? / 1000.0;
        let garlic =
            Mediator::new(&env.cluster, &env.catalog, MediatorConfig::garlic(CLOUD)).submit(q3)?;
        let presto = Mediator::new(&env.cluster, &env.catalog, MediatorConfig::presto(CLOUD, 4))
            .submit(q3)?;
        let (xdb_exec, _, _) = run_xdb(&env, q3)?;
        let x = format!("sf {sf}");
        fig.series_mut("garlic total")
            .push(&x, garlic.total_ms / 1000.0);
        fig.series_mut("garlic actual")
            .push(&x, (garlic.total_ms - garlic.transfer_ms) / 1000.0);
        fig.series_mut("presto total")
            .push(&x, presto.total_ms / 1000.0);
        fig.series_mut("presto actual")
            .push(&x, (presto.total_ms - presto.transfer_ms) / 1000.0);
        fig.series_mut("xdb total").push(&x, xdb_exec / 1000.0);
        fig.series_mut("localized").push(&x, actual);
    }
    fig.note("paper: actual ≈ 15% of Garlic's and ≈ 3% of Presto's total; XDB ≈ actual");
    Ok(fig)
}

// --------------------------------------------------------------- Fig 9a-c

/// Fig 9a–c: overall runtime of the six queries for XDB / Garlic /
/// Presto-4 / Sclera under one table distribution.
pub fn fig09(td: TableDist, sf: f64) -> Result<Figure> {
    let env = env(td, sf, Scenario::OnPremise, &pg())?;
    let mut fig = Figure::new(
        format!("Fig 9 ({})", td.name()),
        format!("overall runtime, {} sf {sf}", td.name()),
        "sim seconds",
    );
    for q in TpchQuery::ALL {
        let (xdb_exec, _, _) = run_xdb(&env, q.sql())?;
        let garlic = Mediator::new(&env.cluster, &env.catalog, MediatorConfig::garlic(CLOUD))
            .submit(q.sql())?;
        let presto = Mediator::new(&env.cluster, &env.catalog, MediatorConfig::presto(CLOUD, 4))
            .submit(q.sql())?;
        let sclera = Sclera::new(&env.cluster, &env.catalog, CLOUD).submit(q.sql())?;
        fig.series_mut("xdb").push(q.name(), xdb_exec / 1000.0);
        fig.series_mut("garlic")
            .push(q.name(), garlic.total_ms / 1000.0);
        fig.series_mut("presto4")
            .push(q.name(), presto.total_ms / 1000.0);
        fig.series_mut("sclera")
            .push(q.name(), sclera.total_ms / 1000.0);
        fig.series_mut("garlic µ")
            .push(q.name(), garlic.transfer_ms / 1000.0);
        fig.series_mut("presto µ")
            .push(q.name(), presto.transfer_ms / 1000.0);
    }
    fig.note("paper: XDB up to 4x vs Garlic, 6x vs Presto, 30x vs Sclera");
    Ok(fig)
}

// ----------------------------------------------------------------- Fig 10

/// Fig 10: heterogeneous engines (MariaDB@db2, Hive@db3), XDB vs Presto-4.
pub fn fig10(sf: f64) -> Result<Figure> {
    let env = env(
        TableDist::Td1,
        sf,
        Scenario::OnPremise,
        &ProfileAssignment::heterogeneous(),
    )?;
    let mut fig = Figure::new(
        "Fig 10",
        format!("heterogeneous DBMSes (TD1, sf {sf})"),
        "sim seconds",
    );
    for q in TpchQuery::ALL {
        let (xdb_exec, _, _) = run_xdb(&env, q.sql())?;
        let presto = Mediator::new(&env.cluster, &env.catalog, MediatorConfig::presto(CLOUD, 4))
            .submit(q.sql())?;
        fig.series_mut("xdb").push(q.name(), xdb_exec / 1000.0);
        fig.series_mut("presto4")
            .push(q.name(), presto.total_ms / 1000.0);
        fig.series_mut("speedup")
            .push(q.name(), presto.total_ms / xdb_exec);
    }
    fig.note("paper: XDB outperforms Presto by ~2x on average here");
    Ok(fig)
}

// ----------------------------------------------------------------- Fig 11

/// Fig 11: scaling Presto's workers (2/4/10) vs XDB, TD1.
pub fn fig11(sf: f64) -> Result<Figure> {
    let env = env(TableDist::Td1, sf, Scenario::OnPremise, &pg())?;
    let mut fig = Figure::new(
        "Fig 11",
        format!("scaled-out mediator vs decentralized execution (TD1, sf {sf})"),
        "sim seconds",
    );
    for q in TpchQuery::ALL {
        let (xdb_exec, _, _) = run_xdb(&env, q.sql())?;
        fig.series_mut("xdb").push(q.name(), xdb_exec / 1000.0);
        for workers in [2usize, 4, 10] {
            let presto = Mediator::new(
                &env.cluster,
                &env.catalog,
                MediatorConfig::presto(CLOUD, workers),
            )
            .submit(q.sql())?;
            fig.series_mut(&format!("presto{workers}"))
                .push(q.name(), presto.total_ms / 1000.0);
            fig.series_mut(&format!("presto{workers} actual"))
                .push(q.name(), (presto.total_ms - presto.transfer_ms) / 1000.0);
        }
    }
    fig.note("paper: adding workers shrinks the actual processing, not the total");
    Ok(fig)
}

// ---------------------------------------------------------------- Table 4

/// Table IV: delegation plan analysis — the `t_i --x--> t_j` edges of
/// Q3/Q5/Q8 under TD1/TD2 with *measured* moved row counts.
pub fn table4(sf: f64) -> Result<String> {
    let mut out =
        String::from("== Table IV: delegation plans with measured inter-DBMS movements ==\n");
    for td in [TableDist::Td1, TableDist::Td2] {
        let env = env(td, sf, Scenario::OnPremise, &pg())?;
        for q in [TpchQuery::Q3, TpchQuery::Q5, TpchQuery::Q8] {
            env.cluster.ledger.clear();
            let xdb = Xdb::new(&env.cluster, &env.catalog).with_client_node(CLOUD);
            let outcome = xdb.submit(q.sql())?;
            let transfers = env.cluster.ledger.snapshot();
            out.push_str(&format!("\n{} {} (sf {sf}):\n", td.name(), q.name()));
            let mut used = vec![false; transfers.len()];
            let mut total_rows = 0u64;
            for e in &outcome.delegation.edges {
                let from = outcome.delegation.task(e.from);
                let to = outcome.delegation.task(e.to);
                let want = match e.movement {
                    Movement::Implicit => Purpose::InterDbmsPipeline,
                    Movement::Explicit => Purpose::Materialization,
                };
                let rows = transfers
                    .iter()
                    .enumerate()
                    .find(|(i, t)| {
                        !used[*i] && t.purpose == want && t.from == from.dbms && t.to == to.dbms
                    })
                    .map(|(i, t)| {
                        used[i] = true;
                        t.rows
                    })
                    .unwrap_or(0);
                total_rows += rows;
                out.push_str(&format!(
                    "  {}:{} --{}--> {}:{}   {} rows\n",
                    from.dbms,
                    from.plan.compact_notation(),
                    e.movement,
                    to.dbms,
                    to.plan.compact_notation(),
                    rows
                ));
            }
            out.push_str(&format!(
                "  Σ moved: {} rows across {} movements ({} tasks)\n",
                total_rows,
                outcome.delegation.edges.len(),
                outcome.delegation.tasks.len()
            ));
        }
    }
    Ok(out)
}

// -------------------------------------------------------------- Fig 12/13

/// Fig 12: runtime scaling over data size for Q3 / Q9 / Q8 (TD1).
pub fn fig12(sfs: &[f64]) -> Result<Vec<Figure>> {
    let mut figures = Vec::new();
    for q in [TpchQuery::Q3, TpchQuery::Q9, TpchQuery::Q8] {
        let mut fig = Figure::new(
            format!("Fig 12 ({})", q.name()),
            format!("data scalability of {} (TD1)", q.name()),
            "sim seconds",
        );
        for &sf in sfs {
            let env = env(TableDist::Td1, sf, Scenario::OnPremise, &pg())?;
            let x = format!("sf {sf}");
            let (xdb_exec, _, _) = run_xdb(&env, q.sql())?;
            let garlic = Mediator::new(&env.cluster, &env.catalog, MediatorConfig::garlic(CLOUD))
                .submit(q.sql())?;
            let presto =
                Mediator::new(&env.cluster, &env.catalog, MediatorConfig::presto(CLOUD, 4))
                    .submit(q.sql())?;
            fig.series_mut("xdb").push(&x, xdb_exec / 1000.0);
            fig.series_mut("garlic").push(&x, garlic.total_ms / 1000.0);
            fig.series_mut("presto4").push(&x, presto.total_ms / 1000.0);
        }
        fig.note("paper: XDB outperforms at every scale; growth tracks intermediate data");
        figures.push(fig);
    }
    Ok(figures)
}

/// Fig 13: average runtime over all six queries vs scale factor (TD1).
pub fn fig13(sfs: &[f64]) -> Result<Figure> {
    let mut fig = Figure::new(
        "Fig 13",
        "average runtime over all queries (TD1)",
        "sim seconds",
    );
    for &sf in sfs {
        let env = env(TableDist::Td1, sf, Scenario::OnPremise, &pg())?;
        let x = format!("sf {sf}");
        let (mut sx, mut sg, mut sp, mut bytes) = (0.0, 0.0, 0.0, 0u64);
        for q in TpchQuery::ALL {
            let (xdb_exec, _, moved) = run_xdb(&env, q.sql())?;
            sx += xdb_exec;
            bytes += moved;
            sg += Mediator::new(&env.cluster, &env.catalog, MediatorConfig::garlic(CLOUD))
                .submit(q.sql())?
                .total_ms;
            sp += Mediator::new(&env.cluster, &env.catalog, MediatorConfig::presto(CLOUD, 4))
                .submit(q.sql())?
                .total_ms;
        }
        let n = TpchQuery::ALL.len() as f64;
        fig.series_mut("xdb").push(&x, sx / n / 1000.0);
        fig.series_mut("garlic").push(&x, sg / n / 1000.0);
        fig.series_mut("presto4").push(&x, sp / n / 1000.0);
        fig.series_mut("xdb MB moved")
            .push(&x, bytes as f64 / 1e6 / n);
    }
    fig.note("paper: 3x avg speedup vs Garlic, 4x vs Presto; runtime ∝ intermediate data");
    Ok(fig)
}

// ----------------------------------------------------------------- Fig 14

/// Fig 14: data transferred during execution — XDB on-premise, XDB
/// geo-distributed, Garlic, Presto (mediator in the cloud).
pub fn fig14(td: TableDist, sf: f64) -> Result<Figure> {
    let mut fig = Figure::new(
        format!("Fig 14 ({})", td.name()),
        format!("bytes moved over metered links ({}, sf {sf})", td.name()),
        "MB",
    );
    // On-premise: DBMSes on a LAN, middleware in the cloud. Metered
    // traffic = anything touching the cloud node.
    let onp = env(td, sf, Scenario::OnPremise, &pg())?;
    // Geo-distributed: every DBMS in its own DC; every link is metered.
    let geo = env(td, sf, Scenario::GeoDistributed, &pg())?;
    for q in TpchQuery::ALL {
        onp.cluster.ledger.clear();
        let xdb = Xdb::new(&onp.cluster, &onp.catalog).with_client_node(CLOUD);
        xdb.submit(q.sql())?;
        let xdb_onp = onp.cluster.ledger.bytes_touching(&NodeId::new(CLOUD));

        geo.cluster.ledger.clear();
        let xdb = Xdb::new(&geo.cluster, &geo.catalog).with_client_node(CLOUD);
        xdb.submit(q.sql())?;
        let xdb_geo = geo.cluster.ledger.total_bytes();

        onp.cluster.ledger.clear();
        let garlic = Mediator::new(&onp.cluster, &onp.catalog, MediatorConfig::garlic(CLOUD))
            .submit(q.sql())?;
        let presto = Mediator::new(&onp.cluster, &onp.catalog, MediatorConfig::presto(CLOUD, 4))
            .submit(q.sql())?;
        fig.series_mut("xdb (ONP)")
            .push(q.name(), xdb_onp as f64 / 1e6);
        fig.series_mut("xdb (GEO)")
            .push(q.name(), xdb_geo as f64 / 1e6);
        fig.series_mut("garlic")
            .push(q.name(), garlic.fetch_bytes as f64 / 1e6);
        fig.series_mut("presto")
            .push(q.name(), presto.fetch_bytes as f64 / 1e6);
    }
    fig.note("paper: XDB(ONP) sends only results+control to the cloud — up to 3 orders of magnitude less");
    Ok(fig)
}

// ----------------------------------------------------------------- Fig 15

/// Fig 15: XDB query-processing phase breakdown (prep / lopt / ann / exec)
/// across scale factors.
pub fn fig15(q: TpchQuery, td: TableDist, sfs: &[f64]) -> Result<Figure> {
    let mut fig = Figure::new(
        format!("Fig 15 ({} {})", q.name(), td.name()),
        format!("phase breakdown of {} on {}", q.name(), td.name()),
        "sim seconds",
    );
    for &sf in sfs {
        let env = env(td, sf, Scenario::OnPremise, &pg())?;
        let xdb = Xdb::new(&env.cluster, &env.catalog).with_client_node(CLOUD);
        let out = xdb.submit(q.sql())?;
        let x = format!("sf {sf}");
        let b = out.breakdown;
        fig.series_mut("prep").push(&x, b.prep_ms / 1000.0);
        fig.series_mut("lopt").push(&x, b.lopt_ms / 1000.0);
        fig.series_mut("ann").push(&x, b.ann_ms / 1000.0);
        fig.series_mut("exec").push(&x, b.exec_ms / 1000.0);
        fig.series_mut("overhead %")
            .push(&x, 100.0 * b.overhead_ms() / b.total_ms());
    }
    fig.note("paper: prep+lopt+ann stay <10s and sf-independent; exec dominates at scale");
    Ok(fig)
}

// -------------------------------------------------------------- ablations

/// Ablation: movement-type choice — cost-based vs all-implicit vs
/// all-explicit (design-choice study beyond the paper's figures).
pub fn ablation_movement(sf: f64) -> Result<Figure> {
    let env = env(TableDist::Td1, sf, Scenario::OnPremise, &pg())?;
    let mut fig = Figure::new(
        "Ablation A1",
        format!("movement-type policy (TD1, sf {sf})"),
        "sim seconds",
    );
    for (name, force) in [
        ("cost-based", None),
        ("all-implicit", Some(Movement::Implicit)),
        ("all-explicit", Some(Movement::Explicit)),
    ] {
        for q in TpchQuery::ALL {
            let xdb = Xdb::new(&env.cluster, &env.catalog)
                .with_client_node(CLOUD)
                .with_options(XdbOptions {
                    annotate: AnnotateOptions {
                        force_movement: force,
                        ..Default::default()
                    },
                    ..Default::default()
                });
            let out = xdb.submit(q.sql())?;
            fig.series_mut(name)
                .push(q.name(), out.breakdown.exec_ms / 1000.0);
        }
    }
    fig.note("cost-based should match or beat both forced policies");
    Ok(fig)
}

/// Ablation: annotation search-space pruning on/off — consulting
/// round-trips and resulting runtime.
pub fn ablation_pruning(sf: f64) -> Result<Figure> {
    let env = env(TableDist::Td3, sf, Scenario::OnPremise, &pg())?;
    let mut fig = Figure::new(
        "Ablation A2",
        format!("annotation candidate pruning (TD3, sf {sf})"),
        "value",
    );
    for (name, no_pruning) in [("pruned", false), ("exhaustive", true)] {
        for q in TpchQuery::ALL {
            let xdb = Xdb::new(&env.cluster, &env.catalog)
                .with_client_node(CLOUD)
                .with_options(XdbOptions {
                    annotate: AnnotateOptions {
                        no_pruning,
                        ..Default::default()
                    },
                    ..Default::default()
                });
            let out = xdb.submit(q.sql())?;
            fig.series_mut(&format!("{name} consults"))
                .push(q.name(), out.consult_roundtrips as f64);
            fig.series_mut(&format!("{name} exec s"))
                .push(q.name(), out.breakdown.exec_ms / 1000.0);
        }
    }
    fig.note("pruning cuts consulting to 4 options per cross-db op at equal plan quality");
    Ok(fig)
}

/// Ablation: logical-optimizer contributions (join reordering and
/// projection pushdown) measured by data moved and runtime.
pub fn ablation_logical(sf: f64) -> Result<Figure> {
    let env = env(TableDist::Td1, sf, Scenario::OnPremise, &pg())?;
    let mut fig = Figure::new(
        "Ablation A3",
        format!("logical optimizations (TD1, sf {sf})"),
        "value",
    );
    for (name, no_reorder, no_prune) in [
        ("full", false, false),
        ("no-reorder", true, false),
        ("no-pruning", false, true),
    ] {
        for q in TpchQuery::ALL {
            let xdb = Xdb::new(&env.cluster, &env.catalog)
                .with_client_node(CLOUD)
                .with_options(XdbOptions {
                    no_join_reorder: no_reorder,
                    no_column_pruning: no_prune,
                    ..Default::default()
                });
            env.cluster.ledger.clear();
            let out = xdb.submit(q.sql())?;
            let moved = env.cluster.ledger.bytes_for(Purpose::InterDbmsPipeline)
                + env.cluster.ledger.bytes_for(Purpose::Materialization);
            fig.series_mut(&format!("{name} MB"))
                .push(q.name(), moved as f64 / 1e6);
            fig.series_mut(&format!("{name} s"))
                .push(q.name(), out.breakdown.exec_ms / 1000.0);
        }
    }
    fig.note("both rewrites shrink inter-DBMS movement (Section IV-B1)");
    Ok(fig)
}

/// Ablation: left-deep vs bushy join trees (the paper's future-work
/// extension, footnote 5: bushy plans expose pipeline parallelism that
/// decentralized execution exploits).
pub fn ablation_bushy(sf: f64) -> Result<Figure> {
    let env = env(TableDist::Td3, sf, Scenario::OnPremise, &pg())?;
    let mut fig = Figure::new(
        "Ablation A4",
        format!("left-deep vs bushy join trees (TD3, sf {sf})"),
        "sim seconds",
    );
    for (name, bushy) in [("left-deep", false), ("bushy", true)] {
        for q in TpchQuery::ALL {
            let xdb = Xdb::new(&env.cluster, &env.catalog)
                .with_client_node(CLOUD)
                .with_options(XdbOptions {
                    bushy_joins: bushy,
                    ..Default::default()
                });
            let out = xdb.submit(q.sql())?;
            fig.series_mut(name)
                .push(q.name(), out.breakdown.exec_ms / 1000.0);
            if bushy {
                fig.series_mut("bushy tasks")
                    .push(q.name(), out.delegation.tasks.len() as f64);
            }
        }
    }
    fig.note("bushy subtrees pipeline in parallel across DBMSes (paper footnote 5)");
    Ok(fig)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEST_SF: f64 = 0.002;

    #[test]
    fn fig01_runs_and_orders_correctly() {
        let fig = fig01(TEST_SF, TEST_SF * 2.0).unwrap();
        let r = fig.render();
        assert!(r.contains("garlic total"), "{r}");
        // Actual ≤ total for both MW systems.
        for sys in ["garlic", "presto"] {
            for x in [format!("sf {TEST_SF}"), format!("sf {}", TEST_SF * 2.0)] {
                let total = fig
                    .series
                    .iter()
                    .find(|s| s.name == format!("{sys} total"))
                    .unwrap()
                    .get(&x)
                    .unwrap();
                let actual = fig
                    .series
                    .iter()
                    .find(|s| s.name == format!("{sys} actual"))
                    .unwrap()
                    .get(&x)
                    .unwrap();
                assert!(actual <= total, "{sys} {x}: {actual} > {total}");
            }
        }
    }

    #[test]
    fn fig09_has_all_queries_and_systems() {
        let fig = fig09(TableDist::Td1, TEST_SF).unwrap();
        assert_eq!(fig.series.len(), 6);
        for s in &fig.series {
            assert_eq!(s.points.len(), 6, "{} missing queries", s.name);
        }
    }

    #[test]
    fn table4_reports_rows() {
        let t = table4(TEST_SF).unwrap();
        assert!(t.contains("TD1 Q3"), "{t}");
        assert!(t.contains("rows"), "{t}");
        assert!(t.contains("--i-->") || t.contains("--e-->"), "{t}");
    }

    #[test]
    fn fig14_xdb_onp_is_smallest() {
        let fig = fig14(TableDist::Td1, TEST_SF).unwrap();
        for q in TpchQuery::ALL {
            let onp = fig.series[0].get(q.name()).unwrap();
            let garlic = fig
                .series
                .iter()
                .find(|s| s.name == "garlic")
                .unwrap()
                .get(q.name())
                .unwrap();
            assert!(
                onp < garlic,
                "{}: xdb_onp {onp} >= garlic {garlic}",
                q.name()
            );
        }
    }

    #[test]
    fn ablation_bushy_runs_and_matches() {
        let fig = ablation_bushy(TEST_SF).unwrap();
        assert!(fig.series.len() >= 2, "{}", fig.render());
    }

    #[test]
    fn trace_workload_concatenates_all_queries() {
        let trace = trace_workload(TEST_SF).unwrap();
        let roots = trace.spans.iter().filter(|s| s.parent.is_none()).count();
        assert_eq!(roots, TpchQuery::ALL.len());
        // One lane per engine node plus client and net.
        let lanes = trace.lanes();
        for lane in ["client", "net", "db1", "db2", "db3"] {
            assert!(
                lanes.iter().any(|l| l == lane),
                "missing lane {lane}: {lanes:?}"
            );
        }
        assert!(trace.counter("consults") > 0.0);
        assert!(trace.end_ms() > 0.0);
    }

    #[test]
    fn fig15_overhead_sf_independent() {
        let fig = fig15(TpchQuery::Q3, TableDist::Td1, &[TEST_SF, TEST_SF * 4.0]).unwrap();
        let ann = fig.series.iter().find(|s| s.name == "ann").unwrap();
        let a = ann.points[0].1;
        let b = ann.points[1].1;
        assert!(
            (a - b).abs() < 1e-9,
            "ann should not depend on sf: {a} vs {b}"
        );
    }
}
