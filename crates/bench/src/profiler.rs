//! The `repro profile` runner: critical-path bottleneck attribution for
//! the TD1 workload.
//!
//! Runs all six TPC-H queries on the TD1 on-premise federation, computes
//! each query's critical path (see `xdb_obs::critical`), and renders a
//! top-bottleneck table — which query is slowest, how many spans its
//! critical path has, and how its end-to-end simulated latency splits
//! into compute / transfer / consult / DDL. When the history sink is
//! enabled (`repro --history dir/`) every run is also recorded there,
//! labeled with the TPC-H query name.

use crate::experiments::{env, CLOUD};
use xdb_core::{Xdb, XdbOptions};
use xdb_engine::error::{EngineError, Result};
use xdb_engine::profile::EngineProfile;
use xdb_net::Scenario;
use xdb_obs::critical::{critical_path, ms, CriticalPath};
use xdb_tpch::{ProfileAssignment, TableDist, TpchQuery};

/// Critical-path profile of one workload query.
pub struct QueryProfile {
    pub name: String,
    pub total_ms: f64,
    pub crit: CriticalPath,
}

/// Run the six TD1 queries and profile each one's critical path.
/// Honors `XDB_SEQUENTIAL=1`; the profiles are bit-identical either way
/// (simulated clock).
pub fn profile_workload(sf: f64) -> Result<Vec<QueryProfile>> {
    let env = env(
        TableDist::Td1,
        sf,
        Scenario::OnPremise,
        &ProfileAssignment::uniform(EngineProfile::postgres()),
    )?;
    let mut out = Vec::new();
    for q in TpchQuery::ALL {
        env.cluster.ledger.clear();
        let telemetry = env.cluster.telemetry();
        telemetry.history.set_label(q.name());
        let xdb = Xdb::new(&env.cluster, &env.catalog)
            .with_client_node(CLOUD)
            .with_options(XdbOptions {
                parallel_execution: std::env::var_os("XDB_SEQUENTIAL").is_none(),
                ..Default::default()
            });
        let outcome = xdb.submit(q.sql())?;
        telemetry.history.set_label("");
        let crit = critical_path(&outcome.trace).ok_or_else(|| {
            EngineError::Execution(format!("{} produced a trace without a root span", q.name()))
        })?;
        out.push(QueryProfile {
            name: q.name().to_string(),
            total_ms: outcome.breakdown.total_ms(),
            crit,
        });
    }
    Ok(out)
}

/// Render the top-bottleneck table, slowest query first.
pub fn render_table(sf: f64, profiles: &[QueryProfile]) -> String {
    let mut sorted: Vec<&QueryProfile> = profiles.iter().collect();
    sorted.sort_by(|a, b| {
        b.total_ms
            .partial_cmp(&a.total_ms)
            .unwrap()
            .then(a.name.cmp(&b.name))
    });
    let mut out = format!("TD1 critical-path profile (sf {sf})\n");
    out.push_str(&format!(
        "{:<6} {:>10} {:>6} {:>10} {:>10} {:>10} {:>10}  {}\n",
        "query", "total_ms", "spans", "compute", "transfer", "consult", "ddl", "dominant"
    ));
    for p in &sorted {
        let cats = p.crit.category_ns();
        let cat = |name: &str| ms(cats.get(name).copied().unwrap_or(0));
        let dominant = match p.crit.dominant() {
            Some(top) => format!(
                "{:.0}% {} on {}",
                p.crit.share_pct(top.ns),
                top.category.label(),
                top.location
            ),
            None => "-".to_string(),
        };
        out.push_str(&format!(
            "{:<6} {:>10.3} {:>6} {:>10.3} {:>10.3} {:>10.3} {:>10.3}  {}\n",
            p.name,
            p.total_ms,
            p.crit.steps.len(),
            cat("compute"),
            cat("transfer"),
            cat("consult"),
            cat("ddl"),
            dominant
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_covers_workload_and_attributes_latency() {
        let profiles = profile_workload(0.002).unwrap();
        assert_eq!(profiles.len(), TpchQuery::ALL.len());
        for p in &profiles {
            // Attribution tiles the whole end-to-end window exactly.
            assert_eq!(p.crit.attributed_ns(), p.crit.total_ns, "{}", p.name);
            assert!(p.crit.steps.len() >= 2, "{}", p.name);
            assert!(
                (ms(p.crit.total_ns) - p.total_ms).abs() < 1e-6,
                "{}",
                p.name
            );
        }
        let table = render_table(0.002, &profiles);
        assert!(table.contains("dominant"), "{table}");
        for q in TpchQuery::ALL {
            assert!(table.contains(q.name()), "{table}");
        }
    }
}
