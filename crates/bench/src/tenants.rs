//! `repro tenants` — the multi-tenant admission benchmark.
//!
//! Replays a skewed TD1 query mix from many simulated tenants through the
//! session layer ([`xdb_core::QueryServer`]) twice over the same
//! submission list: once with concurrent-plan folding enabled (the
//! production configuration) and once with every admission planned and
//! executed in isolation. Folding is a pure optimization — both arms must
//! produce bit-identical per-tenant results — so the benchmark reports
//! the spread: latency quantiles, throughput, fold hits, fragments
//! deployed, consultation probes, and DDL statements per arm.
//!
//! The tenant mix is deliberately skewed twice over, mirroring real fleet
//! traffic: a zipf-ish tenant distribution (low-numbered tenants submit
//! most of the load) and a hot-query distribution (~60% of admissions
//! replay the workload's hottest query). Hot duplicates landing in one
//! scheduling window are exactly what the folding planner exists for.
//!
//! Every number is taken off the simulated clock, so the whole report is
//! deterministic across invocations and rides the monitor regression-gate
//! baseline (`BENCH_monitor.json`, see [`crate::gate`]) as `tenants/...`
//! series. Latency series deliberately exclude control-message byte
//! counts, which depend on the decimal width of process-global query ids.

use crate::experiments::{env, CLOUD};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;
use xdb_core::{QueryServer, SessionOptions, SessionReport, Submission, TenantOutcome, XdbOptions};
use xdb_engine::error::Result;
use xdb_engine::profile::EngineProfile;
use xdb_net::Scenario;
use xdb_obs::Telemetry;
use xdb_tpch::{ProfileAssignment, TableDist, TpchQuery};

/// One admission arm (folded or unfolded) aggregated over the whole run.
#[derive(Debug, Clone)]
pub struct TenantsArm {
    pub p50_ms: f64,
    pub p95_ms: f64,
    pub p99_ms: f64,
    /// Simulated wall-clock time from first admission to last completion.
    pub makespan_ms: f64,
    pub throughput_qps: f64,
    pub mean_fold_hits: f64,
    pub full_folds: u64,
    pub fold_hits: u64,
    pub fragments_deployed: u64,
    pub plan_cache_hits: u64,
    pub consult_probes: u64,
    pub ddl_statements: u64,
    /// One line per admission: tenant, result shape, and an FNV-1a hash
    /// of every result cell. Deliberately independent of query ids, so
    /// digests compare byte-for-byte across arms and across processes.
    pub digests: Vec<String>,
}

impl TenantsArm {
    fn from_report(report: &SessionReport) -> TenantsArm {
        TenantsArm {
            p50_ms: report.latency_quantile(0.50),
            p95_ms: report.latency_quantile(0.95),
            p99_ms: report.latency_quantile(0.99),
            makespan_ms: report.makespan_ms,
            throughput_qps: report.throughput_qps(),
            mean_fold_hits: report.mean_fold_hits(),
            full_folds: report.full_folds,
            fold_hits: report.fold_hits,
            fragments_deployed: report.fragments_deployed,
            plan_cache_hits: report.plan_cache_hits,
            consult_probes: report.consult_probes,
            ddl_statements: report.ddl_statements,
            digests: report.outcomes.iter().map(digest_line).collect(),
        }
    }

    /// The digest file body: one line per admission, newline-terminated.
    pub fn digest(&self) -> String {
        let mut out = String::new();
        for line in &self.digests {
            out.push_str(line);
            out.push('\n');
        }
        out
    }
}

/// The two-arm comparison `repro tenants` renders and the gate consumes.
#[derive(Debug, Clone)]
pub struct TenantsReport {
    pub sf: f64,
    pub tenants: usize,
    pub rounds: usize,
    /// Total admissions (`tenants * rounds`).
    pub queries: usize,
    pub folded: TenantsArm,
    pub unfolded: TenantsArm,
}

/// Deterministic xorshift64* — same generator the kernel benches use.
fn next(x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    x.wrapping_mul(0x2545F4914F6CDD1D)
}

fn fnv1a64(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// One admission's observable result, independent of query ids: ordered
/// result cells hashed, plus the tenant and result shape in clear.
pub fn digest_line(o: &TenantOutcome) -> String {
    let mut cells = String::new();
    for i in 0..o.relation.len() {
        for c in 0..o.relation.width() {
            let _ = write!(cells, "{:?}|", o.relation.value(i, c));
        }
        cells.push('\n');
    }
    format!(
        "{:04} {} {}x{} {:016x}",
        o.index,
        o.tenant,
        o.relation.len(),
        o.relation.width(),
        fnv1a64(&cells)
    )
}

/// Build the skewed submission list: `rounds` scheduling windows of
/// `tenants` admissions each, tenant identity zipf-ish (min of two
/// uniform draws) and ~60% of the traffic on the hottest TD1 query.
pub fn submissions(tenants: usize, rounds: usize) -> Vec<Submission> {
    let mut x = 0x243F6A8885A308D3u64;
    let all = TpchQuery::ALL;
    let mut subs = Vec::with_capacity(tenants * rounds);
    for _ in 0..rounds {
        for _ in 0..tenants {
            let a = (next(&mut x) % tenants as u64) as usize;
            let b = (next(&mut x) % tenants as u64) as usize;
            let q = if next(&mut x) % 10 < 6 {
                all[0]
            } else {
                all[(next(&mut x) % all.len() as u64) as usize]
            };
            subs.push(Submission::new(format!("tenant-{:02}", a.min(b)), q.sql()));
        }
    }
    subs
}

/// Run the two-arm tenant workload: `tenants` simulated tenants replaying
/// the skewed TD1 mix for `rounds` scheduling windows, folded vs
/// unfolded, each against a freshly built federation with isolated
/// telemetry.
pub fn run_tenants(sf: f64, tenants: usize, rounds: usize) -> Result<TenantsReport> {
    let subs = submissions(tenants, rounds);
    let folded = run_arm(sf, &subs, tenants, true)?;
    let unfolded = run_arm(sf, &subs, tenants, false)?;
    Ok(TenantsReport {
        sf,
        tenants,
        rounds,
        queries: subs.len(),
        folded,
        unfolded,
    })
}

fn run_arm(sf: f64, subs: &[Submission], window: usize, fold: bool) -> Result<TenantsArm> {
    let mut e = env(
        TableDist::Td1,
        sf,
        Scenario::OnPremise,
        &ProfileAssignment::uniform(EngineProfile::postgres()),
    )?;
    let telemetry = Telemetry::new_handle();
    e.catalog.set_telemetry(Arc::clone(&telemetry));
    e.cluster.set_telemetry(telemetry);
    let server = QueryServer::new(
        &e.cluster,
        &e.catalog,
        SessionOptions {
            xdb: XdbOptions::default(),
            fold,
            window,
        },
    )
    .with_client_node(CLOUD);
    let report = server.run(subs)?;
    Ok(TenantsArm::from_report(&report))
}

impl TenantsReport {
    /// Folded-over-unfolded throughput gain.
    pub fn speedup(&self) -> f64 {
        if self.folded.makespan_ms > 0.0 {
            self.unfolded.makespan_ms / self.folded.makespan_ms
        } else {
            0.0
        }
    }

    /// Deterministic scalar values for the regression gate, keyed
    /// `tenants/arm/metric`. Every series is higher-is-worse except
    /// `mean_fold_hits`, which is informational: the gate flags any
    /// change on it, and the throughput regression it would mask is
    /// caught by `ms_per_query`.
    pub fn flat_values(&self) -> BTreeMap<String, f64> {
        let mut v = BTreeMap::new();
        for (arm, name) in [(&self.folded, "folded"), (&self.unfolded, "unfolded")] {
            v.insert(format!("tenants/{name}/p50_ms"), arm.p50_ms);
            v.insert(format!("tenants/{name}/p95_ms"), arm.p95_ms);
            v.insert(format!("tenants/{name}/p99_ms"), arm.p99_ms);
            v.insert(
                format!("tenants/{name}/ms_per_query"),
                arm.makespan_ms / self.queries as f64,
            );
        }
        v.insert(
            "tenants/mean_fold_hits".to_string(),
            self.folded.mean_fold_hits,
        );
        v
    }

    /// The text dashboard.
    pub fn render_dashboard(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== multi-tenant admission: TD1 sf {}, {} tenants x {} round(s), {} queries ==",
            self.sf, self.tenants, self.rounds, self.queries
        );
        let _ = writeln!(
            out,
            "{:<9} {:>10} {:>10} {:>10} {:>13} {:>9} {:>6} {:>6} {:>6} {:>9} {:>6}",
            "arm",
            "p50 ms",
            "p95 ms",
            "p99 ms",
            "makespan ms",
            "qps",
            "folds",
            "hits",
            "frags",
            "consults",
            "ddls"
        );
        for (arm, name) in [(&self.folded, "folded"), (&self.unfolded, "unfolded")] {
            let _ = writeln!(
                out,
                "{:<9} {:>10.3} {:>10.3} {:>10.3} {:>13.3} {:>9.1} {:>6} {:>6} {:>6} {:>9} {:>6}",
                name,
                arm.p50_ms,
                arm.p95_ms,
                arm.p99_ms,
                arm.makespan_ms,
                arm.throughput_qps,
                arm.full_folds,
                arm.fold_hits,
                arm.fragments_deployed,
                arm.consult_probes,
                arm.ddl_statements
            );
        }
        let _ = writeln!(
            out,
            "throughput speedup {:.2}x; consult probes {} -> {}; ddl statements {} -> {}",
            self.speedup(),
            self.unfolded.consult_probes,
            self.folded.consult_probes,
            self.unfolded.ddl_statements,
            self.folded.ddl_statements
        );
        let _ = writeln!(
            out,
            "folding: {}/{} admissions fully folded, mean fold hits {:.2}, {} plan-cache hits",
            self.folded.full_folds,
            self.queries,
            self.folded.mean_fold_hits,
            self.folded.plan_cache_hits
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEST_SF: f64 = 0.002;

    #[test]
    fn folded_and_unfolded_arms_agree_and_folding_pays() {
        let r = run_tenants(TEST_SF, 8, 2).unwrap();
        assert_eq!(r.queries, 16);
        // Folding is invisible per tenant...
        assert_eq!(r.folded.digests, r.unfolded.digests);
        // ...and strictly cheaper for the fleet.
        assert!(r.folded.full_folds > 0, "{:?}", r.folded);
        assert!(r.folded.consult_probes < r.unfolded.consult_probes);
        assert!(r.folded.ddl_statements < r.unfolded.ddl_statements);
        assert!(r.folded.makespan_ms < r.unfolded.makespan_ms);
        assert!(r.folded.p95_ms <= r.unfolded.p95_ms);
        // The dashboard carries the headline numbers.
        let dash = r.render_dashboard();
        assert!(dash.contains("throughput speedup"), "{dash}");
        assert!(dash.contains("fully folded"), "{dash}");
    }

    #[test]
    fn acceptance_bar_at_64_tenants() {
        // The ISSUE 6 acceptance bar: at 64 tenants on the shared-prefix
        // TD1 mix, shared fragments deploy once, consult probes and DDL
        // statements drop measurably, throughput improves >= 1.5x, and
        // p95 latency does not regress — with bit-identical results.
        let r = run_tenants(TEST_SF, 64, 1).unwrap();
        assert_eq!(r.folded.digests, r.unfolded.digests);
        assert!(
            r.speedup() >= 1.5,
            "throughput speedup {:.2}x below the 1.5x bar",
            r.speedup()
        );
        assert!(r.folded.p95_ms <= r.unfolded.p95_ms);
        // Hot duplicates fold: far fewer fragments deployed than the
        // unfolded run's every-admission deployment.
        assert!(r.folded.full_folds > r.queries as u64 / 2);
        assert!(r.folded.ddl_statements * 2 < r.unfolded.ddl_statements);
        assert!(r.folded.consult_probes * 2 < r.unfolded.consult_probes);
    }

    #[test]
    fn values_are_deterministic_across_invocations() {
        // The gate depends on it: two fresh runs (different global query
        // ids) must produce identical latency series and digests.
        let a = run_tenants(TEST_SF, 4, 2).unwrap();
        let b = run_tenants(TEST_SF, 4, 2).unwrap();
        assert_eq!(a.flat_values(), b.flat_values());
        assert_eq!(a.folded.digest(), b.folded.digest());
        let gate = crate::gate::compare("tenants", &a.flat_values(), &b.flat_values(), 0.5);
        assert!(gate.passed(), "{}", gate.render());
    }

    fn same_width(ids: &[u64]) -> bool {
        let w = ids[0].to_string().len();
        ids.iter().all(|i| i.to_string().len() == w)
    }

    /// Replace every decimal run after `xdb_q` / `"query":` with `N` so
    /// runs with different global query ids compare equal.
    fn normalize_ids(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        let bytes = s.as_bytes();
        let mut i = 0usize;
        while i < bytes.len() {
            out.push(bytes[i] as char);
            let here = &s[..=i];
            if here.ends_with("xdb_q") || here.ends_with("\"query\":") {
                let mut j = i + 1;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                if j > i + 1 {
                    out.push('N');
                    i = j;
                    continue;
                }
            }
            i += 1;
        }
        out
    }

    /// (query ids, per-admission observables, deterministic snapshot,
    /// makespan) for one admission run over `subs`.
    fn admit(
        subs: &[Submission],
        window: usize,
        threads: Option<usize>,
    ) -> (Vec<u64>, Vec<String>, String, f64) {
        let mut e = env(
            TableDist::Td1,
            TEST_SF,
            Scenario::OnPremise,
            &ProfileAssignment::uniform(EngineProfile::postgres()),
        )
        .unwrap();
        let telemetry = Telemetry::new_handle();
        e.catalog.set_telemetry(Arc::clone(&telemetry));
        e.cluster.set_telemetry(Arc::clone(&telemetry));
        let server = QueryServer::new(
            &e.cluster,
            &e.catalog,
            SessionOptions {
                xdb: XdbOptions::default(),
                fold: true,
                window,
            },
        )
        .with_client_node(CLOUD);
        let report = match threads {
            Some(k) => server.run_concurrent(subs, k),
            None => server.run(subs),
        }
        .unwrap();
        let ids = report.outcomes.iter().map(|o| o.query_id).collect();
        let fps = report
            .outcomes
            .iter()
            .map(|o| format!("{} {:?}", digest_line(o), o.breakdown))
            .collect();
        let snap = telemetry.metrics.deterministic_snapshot().render();
        (ids, fps, snap, report.makespan_ms)
    }

    #[test]
    fn concurrent_admission_is_deterministic_at_1_8_64_tenants() {
        // Satellite of ISSUE 6: the interleaved TD1 mix must produce a
        // bit-identical deterministic_snapshot() whether the submissions
        // arrive concurrently or sequentially, at 1, 8, and 64 tenants.
        // Query-id decimal widths leak into control-message byte counts,
        // so retry until both runs drew same-width ids.
        for &n in &[1usize, 8, 64] {
            let subs = submissions(n, 1);
            let mut done = false;
            for _ in 0..12 {
                let seq = admit(&subs, n, None);
                let conc = admit(&subs, n, Some(4));
                let mut ids = seq.0.clone();
                ids.extend(&conc.0);
                if !same_width(&ids) {
                    continue;
                }
                assert_eq!(seq.1, conc.1, "observables diverged at {n} tenants");
                assert_eq!(
                    normalize_ids(&seq.2),
                    normalize_ids(&conc.2),
                    "snapshots diverged at {n} tenants"
                );
                assert_eq!(seq.3, conc.3, "makespans diverged at {n} tenants");
                done = true;
                break;
            }
            assert!(done, "query-id widths never aligned at {n} tenants");
        }
    }
}
