//! `repro calibrate` — the cost-model observatory report.
//!
//! Runs the six-query TPC-H workload against a TDx on-premise federation
//! with an in-memory history store, then folds every run's
//! predicted-vs-observed cost observation (see `xdb_core::observatory`)
//! into calibration-error distributions — wire-time error per consuming
//! engine, byte error per wire codec, wire-time error per edge shape,
//! compute-unit calibration per engine — plus a per-query
//! placement-regret table (observed cost of the chosen plan vs the
//! model's best rejected candidate).
//!
//! Everything is taken off the simulated clock and the deterministic
//! ledger, so the whole report is bit-identical across invocations and
//! executor modes.

use crate::experiments::{env, CLOUD};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;
use xdb_core::{Xdb, XdbOptions};
use xdb_engine::error::Result;
use xdb_engine::profile::EngineProfile;
use xdb_net::Scenario;
use xdb_obs::costmodel::ErrorStats;
use xdb_obs::{summarize, CalibrationSummary, Telemetry};
use xdb_tpch::{ProfileAssignment, TableDist, TpchQuery};

/// Per-query regret/error aggregation (means per run).
#[derive(Debug, Clone, Default)]
pub struct QueryCalibration {
    pub query: String,
    pub runs: u64,
    /// Cross-database placement decisions per run.
    pub decisions: f64,
    /// Mean predicted cost of the chosen candidates (Eq. 1 ms) per run.
    pub predicted_ms: f64,
    /// Mean observed cost (compute terms + re-priced movements) per run.
    pub observed_ms: f64,
    /// Mean positive placement regret per run.
    pub regret_ms: f64,
    /// Mean |wire-time prediction error| in percent across matched edges.
    pub wire_abs_err_pct: f64,
}

/// Output of [`run_calibrate`].
pub struct CalibrateReport {
    pub sf: f64,
    pub runs: usize,
    pub td: TableDist,
    pub summary: CalibrationSummary,
    /// Workload order (Q1..), one row per TPC-H query.
    pub per_query: Vec<QueryCalibration>,
}

/// Run the six-query workload `runs` times on `td` and aggregate the
/// cost-model observatory records. Honors `XDB_SEQUENTIAL=1`; the report
/// is bit-identical either way.
pub fn run_calibrate(td: TableDist, sf: f64, runs: usize) -> Result<CalibrateReport> {
    let parallel = std::env::var_os("XDB_SEQUENTIAL").is_none();
    // Isolated telemetry with an in-memory history store: the observatory
    // bundle rides every history record, which is exactly the join this
    // report aggregates.
    let telemetry = Telemetry::new_handle();
    telemetry.history.enable_memory();
    let mut e = env(
        td,
        sf,
        Scenario::OnPremise,
        &ProfileAssignment::uniform(EngineProfile::postgres()),
    )?;
    e.catalog.set_telemetry(Arc::clone(&telemetry));
    e.cluster.set_telemetry(Arc::clone(&telemetry));
    for q in TpchQuery::ALL {
        telemetry.history.set_label(q.name());
        for _ in 0..runs {
            e.cluster.ledger.clear();
            let xdb = Xdb::new(&e.cluster, &e.catalog)
                .with_client_node(CLOUD)
                .with_options(XdbOptions {
                    parallel_execution: parallel,
                    ..Default::default()
                });
            xdb.submit(q.sql())?;
        }
    }
    telemetry.history.set_label("");
    let records = telemetry.history.records();
    let summary = summarize(&records);

    let mut per: BTreeMap<String, QueryCalibration> = BTreeMap::new();
    for r in &records {
        let qc = per
            .entry(r.label.clone())
            .or_insert_with(|| QueryCalibration {
                query: r.label.clone(),
                ..Default::default()
            });
        qc.runs += 1;
        qc.decisions += r.cost.decisions.len() as f64;
        qc.predicted_ms += r.cost.decisions.iter().map(|d| d.predicted_ms).sum::<f64>();
        qc.observed_ms += r.cost.decisions.iter().map(|d| d.observed_ms).sum::<f64>();
        qc.regret_ms += r.cost.regret_ms();
        qc.wire_abs_err_pct += r.cost.wire_abs_err_pct();
    }
    let per_query = TpchQuery::ALL
        .iter()
        .filter_map(|q| per.remove(q.name()))
        .map(|mut qc| {
            let n = qc.runs.max(1) as f64;
            qc.decisions /= n;
            qc.predicted_ms /= n;
            qc.observed_ms /= n;
            qc.regret_ms /= n;
            qc.wire_abs_err_pct /= n;
            qc
        })
        .collect();
    Ok(CalibrateReport {
        sf,
        runs,
        td,
        summary,
        per_query,
    })
}

fn stats_table(out: &mut String, header: &str, rows: &BTreeMap<String, ErrorStats>) {
    let _ = writeln!(out, "{header}");
    let _ = writeln!(
        out,
        "  {:<28} {:>5} {:>9} {:>9} {:>9} {:>9}",
        "key", "n", "mean%", "mean|%|", "min%", "max%"
    );
    for (key, s) in rows {
        let _ = writeln!(
            out,
            "  {:<28} {:>5} {:>9.1} {:>9.1} {:>9.1} {:>9.1}",
            key,
            s.count,
            s.mean_pct(),
            s.mean_abs_pct(),
            s.min_pct,
            s.max_pct
        );
    }
}

impl CalibrateReport {
    /// The text report `repro calibrate` prints.
    pub fn render(&self) -> String {
        let s = &self.summary;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== cost-model observatory: {} calibration (sf {}, {} run(s) per query) ==",
            self.td.name(),
            self.sf,
            self.runs
        );
        let _ = writeln!(
            out,
            "decisions {}, matched edges {}, unmatched edges {}",
            s.decisions, s.matched_edges, s.unmatched_edges
        );
        let _ = writeln!(
            out,
            "placement regret: {:.3} ms positive, {:+.3} ms net",
            s.regret_ms, s.net_regret_ms
        );
        stats_table(
            &mut out,
            "wire-time prediction error by engine:",
            &s.wire_by_engine,
        );
        stats_table(
            &mut out,
            "byte prediction error by codec (estimated raw vs wire encoded):",
            &s.bytes_by_codec,
        );
        stats_table(
            &mut out,
            "wire-time prediction error by edge shape:",
            &s.wire_by_shape,
        );
        let _ = writeln!(out, "compute calibration by engine (reference units):");
        let _ = writeln!(
            out,
            "  {:<28} {:>12} {:>12} {:>7}",
            "engine", "pred ms", "obs ms", "ratio"
        );
        for (engine, (pred, obs)) in &s.compute_by_engine {
            let ratio = if *obs > 0.0 { pred / obs } else { 0.0 };
            let _ = writeln!(
                out,
                "  {:<28} {:>12.3} {:>12.3} {:>6.2}x",
                engine, pred, obs, ratio
            );
        }
        let _ = writeln!(out, "per-query placement regret:");
        let _ = writeln!(
            out,
            "  {:<6} {:>5} {:>5} {:>12} {:>12} {:>10} {:>10}",
            "query", "runs", "dec", "pred ms", "obs ms", "regret ms", "wire|%|"
        );
        for q in &self.per_query {
            let _ = writeln!(
                out,
                "  {:<6} {:>5} {:>5.0} {:>12.3} {:>12.3} {:>10.3} {:>10.1}",
                q.query,
                q.runs,
                q.decisions,
                q.predicted_ms,
                q.observed_ms,
                q.regret_ms,
                q.wire_abs_err_pct
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEST_SF: f64 = 0.002;

    #[test]
    fn calibrate_covers_workload_and_renders() {
        let report = run_calibrate(TableDist::Td1, TEST_SF, 1).unwrap();
        let s = &report.summary;
        assert!(s.decisions > 0, "no placement decisions recorded");
        assert!(s.matched_edges > 0, "no ledger edges joined");
        assert!(!s.wire_by_engine.is_empty());
        assert!(!s.bytes_by_codec.is_empty());
        assert!(!s.wire_by_shape.is_empty());
        assert!(!s.compute_by_engine.is_empty());
        // All six queries run and the label survives into the table.
        assert_eq!(report.per_query.len(), TpchQuery::ALL.len());
        for q in &report.per_query {
            assert_eq!(q.runs, 1);
            assert!(q.predicted_ms >= 0.0);
        }
        // At least one query makes a real cross-database decision.
        assert!(report.per_query.iter().any(|q| q.decisions > 0.0));
        let text = report.render();
        assert!(text.contains("cost-model observatory"), "{text}");
        assert!(text.contains("placement regret"), "{text}");
        assert!(text.contains("prediction error by engine"), "{text}");
        assert!(text.contains("by codec"), "{text}");
        assert!(text.contains("by edge shape"), "{text}");
        for q in TpchQuery::ALL {
            assert!(text.contains(q.name()), "{text}");
        }
    }

    #[test]
    fn calibrate_is_deterministic_across_invocations() {
        let a = run_calibrate(TableDist::Td1, TEST_SF, 1).unwrap();
        let b = run_calibrate(TableDist::Td1, TEST_SF, 1).unwrap();
        assert_eq!(a.render(), b.render());
    }
}
