//! Performance-drift detection over query-history stores.
//!
//! `repro drift --baseline dir/ --current dir/` loads two history
//! directories (see `xdb_obs::history`), groups records by
//! `(sql_fnv, deployment)`, and flags three kinds of drift:
//!
//! 1. **Plan flips** — the canonical plan fingerprint changed for the
//!    same SQL and deployment (the annotator placed tasks or chose
//!    movements differently);
//! 2. **Latency drift** — mean end-to-end simulated time moved beyond a
//!    noise band (default ±5%);
//! 3. **Composition shifts** — the critical-path category mix changed:
//!    a different dominant category (e.g. compute-bound → transfer-
//!    bound) or any category's share moving by more than 15 points;
//! 4. **Calibration drift** — the cost-model observatory's mean
//!    |wire-time prediction error| moved by more than 10 points: the
//!    Eq. 1–3 model got systematically better or worse at pricing the
//!    wire (e.g. a cost-profile or codec skew). Skipped when either side
//!    carries no observatory data (schema-v1 baselines), so old baselines
//!    keep working.
//!
//! Everything compares simulated-clock state, so a self-compare of two
//! runs of the same build is *exactly* zero findings — any finding is a
//! real behavior change, not noise. Process-varying fields (`query_id`)
//! are ignored. The bench gate runs this as part of tier-1 when
//! `XDB_BENCH_GATE=1`.

use std::collections::BTreeMap;
use xdb_obs::costmodel::{error_pct, ErrorStats};
use xdb_obs::history::{load_history_dir, HistoryRecord};

/// Default latency noise band, percent.
pub const DEFAULT_NOISE_PCT: f64 = 5.0;
/// Default tolerated share of query groups whose plan may flip between
/// two *learned-cost* histories (`repro drift --flip-rate`). Feedback is
/// expected to re-place some queries as profiles converge; more than this
/// share flipping at once signals an unstable or corrupted profile store.
pub const DEFAULT_FLIP_RATE_PCT: f64 = 25.0;
/// A category's critical-path share moving by more than this many
/// percentage points is a composition shift.
pub const COMPOSITION_POINTS: f64 = 15.0;
/// The observatory's mean |wire-time prediction error| moving by more
/// than this many percentage points is calibration drift.
pub const CALIBRATION_POINTS: f64 = 10.0;

/// What kind of drift a finding describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftKind {
    /// Plan fingerprint changed for the same SQL + deployment.
    PlanFlip,
    /// Mean latency moved beyond the noise band.
    Latency,
    /// Critical-path composition changed.
    Composition,
    /// Cost-model wire-time prediction error moved beyond the band.
    Calibration,
    /// A baseline query group is absent from the current store.
    Coverage,
    /// Learned-cost histories: more query groups flipped plans than the
    /// tolerated share.
    FlipRate,
}

impl DriftKind {
    pub fn label(self) -> &'static str {
        match self {
            DriftKind::PlanFlip => "plan-flip",
            DriftKind::Latency => "latency",
            DriftKind::Composition => "composition",
            DriftKind::Calibration => "calibration",
            DriftKind::Coverage => "coverage",
            DriftKind::FlipRate => "flip-rate",
        }
    }
}

/// One attributed drift finding.
#[derive(Debug, Clone)]
pub struct DriftFinding {
    pub kind: DriftKind,
    /// Display name of the query group (workload label if recorded,
    /// otherwise the SQL hash).
    pub query: String,
    pub detail: String,
}

/// Outcome of one baseline/current comparison.
#[derive(Debug, Default)]
pub struct DriftReport {
    /// Query groups compared (present on both sides).
    pub compared: usize,
    /// Query groups only in the current store (informational).
    pub new_groups: usize,
    pub findings: Vec<DriftFinding>,
    /// Plan flips tolerated under a `--flip-rate` budget (informational:
    /// learned-cost feedback is *expected* to re-place some queries).
    pub tolerated: Vec<DriftFinding>,
}

impl DriftReport {
    pub fn passed(&self) -> bool {
        self.findings.is_empty()
    }

    pub fn render(&self) -> String {
        let mut out = format!(
            "drift: {} query group(s) compared, {} finding(s)",
            self.compared,
            self.findings.len()
        );
        if self.new_groups > 0 {
            out.push_str(&format!(
                " ({} new group(s) not in baseline)",
                self.new_groups
            ));
        }
        if !self.tolerated.is_empty() {
            out.push_str(&format!(
                ", {} tolerated plan flip(s)",
                self.tolerated.len()
            ));
        }
        out.push('\n');
        for f in &self.findings {
            out.push_str(&format!(
                "  [{:<11}] {}: {}\n",
                f.kind.label(),
                f.query,
                f.detail
            ));
        }
        for f in &self.tolerated {
            out.push_str(&format!(
                "  (tolerated) [{:<11}] {}: {}\n",
                f.kind.label(),
                f.query,
                f.detail
            ));
        }
        if self.passed() {
            out.push_str("  no drift\n");
        }
        out
    }
}

/// Aggregate view of one `(sql_fnv, deployment)` group.
struct Group {
    display: String,
    fingerprints: Vec<String>,
    mean_total_ms: f64,
    /// Mean critical-path share per category, percent.
    shares: BTreeMap<String, f64>,
    /// Wire-time prediction error across every matched observatory edge
    /// of the group. `count == 0` for schema-v1 records without cost
    /// observations.
    cal: ErrorStats,
}

fn group(records: &[HistoryRecord]) -> BTreeMap<(String, String), Group> {
    let mut buckets: BTreeMap<(String, String), Vec<&HistoryRecord>> = BTreeMap::new();
    for r in records {
        buckets
            .entry((r.sql_fnv.clone(), r.deployment.clone()))
            .or_default()
            .push(r);
    }
    buckets
        .into_iter()
        .map(|(key, rs)| {
            let display = rs
                .iter()
                .find(|r| !r.label.is_empty())
                .map(|r| r.label.clone())
                .unwrap_or_else(|| format!("sql:{}", key.0));
            let mut fingerprints: Vec<String> = rs.iter().map(|r| r.fingerprint.clone()).collect();
            fingerprints.sort();
            fingerprints.dedup();
            let mean_total_ms = rs.iter().map(|r| r.total_ms).sum::<f64>() / rs.len() as f64;
            // Mean per-category share of the critical path across runs.
            let mut shares: BTreeMap<String, f64> = BTreeMap::new();
            for r in rs.iter() {
                let total: f64 = r.critical.iter().map(|(_, _, ms)| ms).sum();
                if total <= 0.0 {
                    continue;
                }
                for (cat, ms) in r.critical_by_category() {
                    *shares.entry(cat).or_insert(0.0) += 100.0 * ms / total;
                }
            }
            for v in shares.values_mut() {
                *v /= rs.len() as f64;
            }
            let mut cal = ErrorStats::default();
            for r in rs.iter() {
                for d in &r.cost.decisions {
                    for e in d.edges.iter().filter(|e| e.matched) {
                        cal.push(error_pct(e.pred_wire_ms, e.obs_wire_ms));
                    }
                }
            }
            (
                key,
                Group {
                    display,
                    fingerprints,
                    mean_total_ms,
                    shares,
                    cal,
                },
            )
        })
        .collect()
}

fn dominant(shares: &BTreeMap<String, f64>) -> Option<(&str, f64)> {
    shares
        .iter()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(b.0.cmp(a.0)))
        .map(|(k, v)| (k.as_str(), *v))
}

/// Compare two history-record sets. `noise_pct` is the latency band in
/// percent (see [`DEFAULT_NOISE_PCT`]).
pub fn compare(
    baseline: &[HistoryRecord],
    current: &[HistoryRecord],
    noise_pct: f64,
) -> DriftReport {
    compare_with(baseline, current, noise_pct, None)
}

/// [`compare`] with an optional plan-flip budget for learned-cost
/// histories.
///
/// When `flip_tolerance_pct` is set *and both stores carry learned-cost
/// records* (schema v3's `learned_costs` marker), individual plan flips
/// are tolerated — reported informationally — up to that share of the
/// compared query groups; beyond it a single [`DriftKind::FlipRate`]
/// finding fails the report. When either side predates the marker (a v2
/// or static-cost baseline), flips keep their original strict
/// [`DriftKind::PlanFlip`] semantics, so existing baselines behave
/// unchanged.
pub fn compare_with(
    baseline: &[HistoryRecord],
    current: &[HistoryRecord],
    noise_pct: f64,
    flip_tolerance_pct: Option<f64>,
) -> DriftReport {
    let learned_mode = flip_tolerance_pct.is_some()
        && baseline.iter().any(|r| r.learned_costs)
        && current.iter().any(|r| r.learned_costs);
    let base = group(baseline);
    let cur = group(current);
    let mut report = DriftReport {
        new_groups: cur.keys().filter(|k| !base.contains_key(*k)).count(),
        ..DriftReport::default()
    };
    let mut flips: Vec<DriftFinding> = Vec::new();
    for (key, b) in &base {
        let Some(c) = cur.get(key) else {
            report.findings.push(DriftFinding {
                kind: DriftKind::Coverage,
                query: b.display.clone(),
                detail: format!(
                    "present in baseline ({} run(s)) but missing from current store",
                    baseline
                        .iter()
                        .filter(|r| r.sql_fnv == key.0 && r.deployment == key.1)
                        .count()
                ),
            });
            continue;
        };
        report.compared += 1;
        if b.fingerprints != c.fingerprints {
            let finding = DriftFinding {
                kind: DriftKind::PlanFlip,
                query: c.display.clone(),
                detail: format!(
                    "plan fingerprint changed: baseline {:?} -> current {:?}",
                    b.fingerprints, c.fingerprints
                ),
            };
            if learned_mode {
                flips.push(finding);
            } else {
                report.findings.push(finding);
            }
        }
        if b.mean_total_ms > 0.0 {
            let delta_pct = 100.0 * (c.mean_total_ms - b.mean_total_ms) / b.mean_total_ms;
            if delta_pct.abs() > noise_pct {
                report.findings.push(DriftFinding {
                    kind: DriftKind::Latency,
                    query: c.display.clone(),
                    detail: format!(
                        "mean total {:.3} ms -> {:.3} ms ({:+.1}%, band ±{}%)",
                        b.mean_total_ms, c.mean_total_ms, delta_pct, noise_pct
                    ),
                });
            }
        }
        // Calibration drift needs observatory data on both sides: v1
        // baselines (no cost observations) are simply not checked.
        if b.cal.count > 0 && c.cal.count > 0 {
            let (be, ce) = (b.cal.mean_abs_pct(), c.cal.mean_abs_pct());
            if (ce - be).abs() > CALIBRATION_POINTS {
                report.findings.push(DriftFinding {
                    kind: DriftKind::Calibration,
                    query: c.display.clone(),
                    detail: format!(
                        "mean |wire-time prediction error| moved {be:.1}% -> {ce:.1}% \
                         (>{CALIBRATION_POINTS} points)"
                    ),
                });
            }
        }
        let bd = dominant(&b.shares);
        let cd = dominant(&c.shares);
        if let (Some((bcat, bshare)), Some((ccat, cshare))) = (bd, cd) {
            if bcat != ccat {
                report.findings.push(DriftFinding {
                    kind: DriftKind::Composition,
                    query: c.display.clone(),
                    detail: format!(
                        "critical path went {bcat}-bound ({bshare:.0}%) -> \
                         {ccat}-bound ({cshare:.0}%)"
                    ),
                });
            } else {
                // Same dominant category: still flag any category whose
                // share moved by more than the threshold.
                for cat in b.shares.keys().chain(c.shares.keys()) {
                    let bs = b.shares.get(cat).copied().unwrap_or(0.0);
                    let cs = c.shares.get(cat).copied().unwrap_or(0.0);
                    if (cs - bs).abs() > COMPOSITION_POINTS {
                        report.findings.push(DriftFinding {
                            kind: DriftKind::Composition,
                            query: c.display.clone(),
                            detail: format!(
                                "{cat} share of the critical path moved \
                                 {bs:.1}% -> {cs:.1}% (>{COMPOSITION_POINTS} points)"
                            ),
                        });
                        break;
                    }
                }
            }
        }
    }
    if learned_mode && !flips.is_empty() {
        let tolerance = flip_tolerance_pct.unwrap_or(DEFAULT_FLIP_RATE_PCT);
        let rate = 100.0 * flips.len() as f64 / report.compared.max(1) as f64;
        if rate > tolerance {
            report.findings.push(DriftFinding {
                kind: DriftKind::FlipRate,
                query: "(all groups)".to_string(),
                detail: format!(
                    "{} of {} learned-cost group(s) flipped plans ({rate:.0}%, \
                     tolerated {tolerance:.0}%)",
                    flips.len(),
                    report.compared
                ),
            });
        }
        report.tolerated = flips;
    }
    report
}

/// Load two history directories and compare them.
pub fn compare_dirs(baseline: &str, current: &str, noise_pct: f64) -> Result<DriftReport, String> {
    compare_dirs_with(baseline, current, noise_pct, None)
}

/// [`compare_dirs`] with a plan-flip budget (see [`compare_with`]).
pub fn compare_dirs_with(
    baseline: &str,
    current: &str,
    noise_pct: f64,
    flip_tolerance_pct: Option<f64>,
) -> Result<DriftReport, String> {
    let base = load_history_dir(baseline)?;
    let cur = load_history_dir(current)?;
    if base.is_empty() {
        return Err(format!("baseline {baseline} holds no history records"));
    }
    Ok(compare_with(&base, &cur, noise_pct, flip_tolerance_pct))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(label: &str, fingerprint: &str, total_ms: f64) -> HistoryRecord {
        HistoryRecord {
            schema_version: xdb_obs::HISTORY_SCHEMA_VERSION,
            label: label.to_string(),
            deployment: "xdb".to_string(),
            sql_fnv: format!("fnv-{label}"),
            fingerprint: fingerprint.to_string(),
            query_id: 1,
            total_ms,
            phases: vec![("exec".to_string(), total_ms)],
            consult_hits: 0,
            consult_misses: 0,
            crit_spans: 3,
            critical: vec![
                ("compute".to_string(), "hdb".to_string(), 0.7 * total_ms),
                (
                    "transfer".to_string(),
                    "cdb->hdb".to_string(),
                    0.3 * total_ms,
                ),
            ],
            edges: Vec::new(),
            statements: Vec::new(),
            cost: Default::default(),
            learned_costs: false,
        }
    }

    /// Attach an observatory bundle with one matched wire edge priced
    /// `pred_wire_ms` by the model and `obs_wire_ms` by the ledger.
    fn with_cal(mut r: HistoryRecord, pred_wire_ms: f64, obs_wire_ms: f64) -> HistoryRecord {
        r.cost = xdb_obs::CostObservation {
            decisions: vec![xdb_obs::DecisionObs {
                dbms: "hdb".to_string(),
                edges: vec![xdb_obs::EdgeJoin {
                    from: "cdb".to_string(),
                    to: "hdb".to_string(),
                    movement: "implicit".to_string(),
                    engine: "hdb".to_string(),
                    codec: "dict".to_string(),
                    pred_wire_ms,
                    obs_wire_ms,
                    matched: true,
                    ..Default::default()
                }],
                ..Default::default()
            }],
            ..Default::default()
        };
        r
    }

    #[test]
    fn self_compare_is_clean() {
        let records = vec![record("Q3", "aaaa", 100.0), record("Q5", "bbbb", 250.0)];
        let report = compare(&records, &records, DEFAULT_NOISE_PCT);
        assert!(report.passed(), "{}", report.render());
        assert_eq!(report.compared, 2);
        assert!(report.render().contains("no drift"));
    }

    #[test]
    fn plan_flip_is_flagged() {
        let base = vec![record("Q3", "aaaa", 100.0)];
        let cur = vec![record("Q3", "cccc", 100.0)];
        let report = compare(&base, &cur, DEFAULT_NOISE_PCT);
        assert!(!report.passed());
        assert_eq!(report.findings[0].kind, DriftKind::PlanFlip);
        assert!(report.render().contains("plan-flip"), "{}", report.render());
    }

    #[test]
    fn latency_regression_beyond_band_is_flagged() {
        let base = vec![record("Q3", "aaaa", 100.0)];
        let cur = vec![record("Q3", "aaaa", 125.0)];
        let report = compare(&base, &cur, DEFAULT_NOISE_PCT);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].kind, DriftKind::Latency);
        assert!(report.findings[0].detail.contains("+25.0%"));
        // Inside the band: clean.
        let cur = vec![record("Q3", "aaaa", 103.0)];
        assert!(compare(&base, &cur, DEFAULT_NOISE_PCT).passed());
    }

    #[test]
    fn composition_shift_is_flagged() {
        let base = vec![record("Q3", "aaaa", 100.0)];
        let mut flipped = record("Q3", "aaaa", 100.0);
        // Same total, but now transfer-bound.
        flipped.critical = vec![
            ("transfer".to_string(), "cdb->hdb".to_string(), 80.0),
            ("compute".to_string(), "hdb".to_string(), 20.0),
        ];
        let report = compare(&base, &[flipped], DEFAULT_NOISE_PCT);
        assert!(report
            .findings
            .iter()
            .any(|f| f.kind == DriftKind::Composition
                && f.detail.contains("compute-bound")
                && f.detail.contains("transfer-bound")));
    }

    #[test]
    fn cost_profile_skew_is_flagged_as_calibration_drift() {
        // Baseline: the model prices the wire perfectly. Current: the same
        // edge costs 4x the prediction (an injected cost-profile skew) —
        // the |error| jumps 0% -> 75%, far past the 10-point band.
        let base = vec![with_cal(record("Q3", "aaaa", 100.0), 10.0, 10.0)];
        let skew = vec![with_cal(record("Q3", "aaaa", 100.0), 10.0, 40.0)];
        let report = compare(&base, &skew, DEFAULT_NOISE_PCT);
        assert!(!report.passed());
        let f = report
            .findings
            .iter()
            .find(|f| f.kind == DriftKind::Calibration)
            .expect("calibration finding");
        assert!(
            f.detail.contains("wire-time prediction error"),
            "{}",
            f.detail
        );
        assert!(
            report.render().contains("calibration"),
            "{}",
            report.render()
        );
        // Self-compare with observatory data stays clean.
        assert!(compare(&base, &base, DEFAULT_NOISE_PCT).passed());
    }

    #[test]
    fn v1_baselines_without_cost_data_skip_the_calibration_check() {
        // A schema-v1 baseline has no observatory bundle; even a current
        // store with large prediction error must not be compared against
        // nothing.
        let base = vec![record("Q3", "aaaa", 100.0)];
        let cur = vec![with_cal(record("Q3", "aaaa", 100.0), 10.0, 40.0)];
        let report = compare(&base, &cur, DEFAULT_NOISE_PCT);
        assert!(report.passed(), "{}", report.render());
    }

    fn learned(mut r: HistoryRecord, fingerprint: &str) -> HistoryRecord {
        r.learned_costs = true;
        r.fingerprint = fingerprint.to_string();
        r
    }

    #[test]
    fn flip_rate_tolerates_learned_flips_within_budget() {
        // 4 groups, 1 flips = 25% — inside a 30% budget.
        let base: Vec<_> = ["Q1", "Q2", "Q3", "Q4"]
            .iter()
            .map(|q| learned(record(q, "aaaa", 100.0), "aaaa"))
            .collect();
        let mut cur = base.clone();
        cur[0] = learned(record("Q1", "ffff", 100.0), "ffff");
        let report = compare_with(&base, &cur, DEFAULT_NOISE_PCT, Some(30.0));
        assert!(report.passed(), "{}", report.render());
        assert_eq!(report.tolerated.len(), 1);
        assert_eq!(report.tolerated[0].kind, DriftKind::PlanFlip);
        assert!(report.render().contains("tolerated"), "{}", report.render());
    }

    #[test]
    fn flip_rate_beyond_budget_is_a_finding() {
        let base: Vec<_> = ["Q1", "Q2", "Q3", "Q4"]
            .iter()
            .map(|q| learned(record(q, "aaaa", 100.0), "aaaa"))
            .collect();
        let mut cur = base.clone();
        cur[0] = learned(record("Q1", "ffff", 100.0), "ffff");
        cur[1] = learned(record("Q2", "gggg", 100.0), "gggg");
        // 50% of groups flipped against a 25% budget.
        let report = compare_with(&base, &cur, DEFAULT_NOISE_PCT, Some(DEFAULT_FLIP_RATE_PCT));
        assert!(!report.passed());
        let f = report
            .findings
            .iter()
            .find(|f| f.kind == DriftKind::FlipRate)
            .expect("flip-rate finding");
        assert!(f.detail.contains("2 of 4"), "{}", f.detail);
        assert_eq!(report.tolerated.len(), 2);
        assert!(report.render().contains("flip-rate"), "{}", report.render());
    }

    #[test]
    fn v2_baselines_without_learned_marker_keep_strict_flips() {
        // Baseline predates the learned_costs marker: even with a flip
        // budget requested, a flip is the original hard PlanFlip finding.
        let base = vec![record("Q1", "aaaa", 100.0)];
        let cur = vec![learned(record("Q1", "ffff", 100.0), "ffff")];
        let report = compare_with(&base, &cur, DEFAULT_NOISE_PCT, Some(DEFAULT_FLIP_RATE_PCT));
        assert!(!report.passed());
        assert_eq!(report.findings[0].kind, DriftKind::PlanFlip);
        assert!(report.tolerated.is_empty());
    }

    #[test]
    fn missing_group_is_a_coverage_finding() {
        let base = vec![record("Q3", "aaaa", 100.0), record("Q5", "bbbb", 250.0)];
        let cur = vec![record("Q3", "aaaa", 100.0)];
        let report = compare(&base, &cur, DEFAULT_NOISE_PCT);
        assert_eq!(report.compared, 1);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].kind, DriftKind::Coverage);
        // New groups in current are informational, not findings.
        let report = compare(&cur, &base, DEFAULT_NOISE_PCT);
        assert!(report.passed(), "{}", report.render());
        assert_eq!(report.new_groups, 1);
    }
}
