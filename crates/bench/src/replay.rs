//! `repro replay` — learned-vs-static calibration replay.
//!
//! Re-annotates the recorded six-query workload twice over identical
//! data: once with the static Eq. 1–3 cost model (`XDB_STATIC_COSTS`
//! semantics) and once priced through a fixed learned profile store
//! (`--profiles dir/`, typically the history a previous `repro … profile`
//! run wrote). Both arms execute for real, so every plan flip is reported
//! with its *predicted* delta (chosen-candidate Eq. 1 cost) and its
//! *measured* deltas (simulated wall clock, encoded wire bytes, placement
//! regret) — plus a result-row digest check proving the flip changed the
//! plan, not the answer.
//!
//! The learned arm prices against a **frozen** profile snapshot (no live
//! absorption), so the comparison is a pure function of the inputs:
//! replaying with no profiles (or an empty store) must report **zero**
//! flips — the tier-1 self-compare that pins the learned path's
//! bit-exact-fallback contract in CI.

use crate::experiments::{env, CLOUD};
use std::fmt::Write as _;
use std::sync::Arc;
use xdb_core::{CostProfiles, Xdb, XdbOptions};
use xdb_engine::error::Result;
use xdb_engine::profile::EngineProfile;
use xdb_net::Scenario;
use xdb_obs::{summarize, Telemetry};
use xdb_tpch::{ProfileAssignment, TableDist, TpchQuery};

/// One query's measurements under one cost-model arm.
#[derive(Debug, Clone, Default)]
pub struct ReplayArm {
    /// Canonical delegation-plan fingerprint.
    pub fingerprint: String,
    /// End-to-end simulated time.
    pub total_ms: f64,
    /// Encoded bytes this query put on the wire (ledger total).
    pub encoded_bytes: u64,
    /// Positive placement regret (observed chosen vs best rejected).
    pub regret_ms: f64,
    /// Predicted Eq. 1 cost of the chosen candidates.
    pub predicted_ms: f64,
    /// FNV digest of the ordered result cells.
    pub digest: u64,
}

/// Static-vs-learned comparison of one workload query.
#[derive(Debug, Clone)]
pub struct ReplayRow {
    pub query: String,
    pub static_arm: ReplayArm,
    pub learned_arm: ReplayArm,
}

impl ReplayRow {
    /// Did the learned profiles change the delegation plan?
    pub fn flipped(&self) -> bool {
        self.static_arm.fingerprint != self.learned_arm.fingerprint
    }

    /// Measured wall-clock delta, percent (negative = learned faster).
    pub fn wall_delta_pct(&self) -> f64 {
        if self.static_arm.total_ms <= 0.0 {
            return 0.0;
        }
        100.0 * (self.learned_arm.total_ms - self.static_arm.total_ms) / self.static_arm.total_ms
    }

    /// Measured encoded-byte delta, percent (negative = learned moved
    /// fewer bytes).
    pub fn bytes_delta_pct(&self) -> f64 {
        if self.static_arm.encoded_bytes == 0 {
            return 0.0;
        }
        100.0 * (self.learned_arm.encoded_bytes as f64 - self.static_arm.encoded_bytes as f64)
            / self.static_arm.encoded_bytes as f64
    }
}

/// Output of [`run_replay`].
pub struct ReplayReport {
    pub sf: f64,
    pub td: TableDist,
    /// Description of the profile store the learned arm priced against.
    pub profile_source: String,
    pub rows: Vec<ReplayRow>,
    /// Mean |wire-time prediction error| across matched edges, static arm.
    pub static_wire_abs_err_pct: f64,
    /// Same, learned arm.
    pub learned_wire_abs_err_pct: f64,
    /// Net placement regret (observed minus best alternative; negative =
    /// chosen plans beat every rejected candidate), per arm.
    pub static_net_regret_ms: f64,
    pub learned_net_regret_ms: f64,
}

impl ReplayReport {
    pub fn flips(&self) -> usize {
        self.rows.iter().filter(|r| r.flipped()).count()
    }

    /// Every flip kept the result rows bit-identical.
    pub fn results_identical(&self) -> bool {
        self.rows
            .iter()
            .all(|r| r.static_arm.digest == r.learned_arm.digest)
    }
}

fn digest_relation(rel: &xdb_engine::relation::Relation) -> u64 {
    let mut cells = String::new();
    for i in 0..rel.len() {
        for c in 0..rel.width() {
            let _ = write!(cells, "{:?}|", rel.value(i, c));
        }
        cells.push('\n');
    }
    let mut h = 0xcbf29ce484222325u64;
    for b in cells.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Per-query outcomes labelled by query name, plus the arm's total wall
/// time (ms) and its mean absolute wire-prediction error (percent).
type ArmOutcome = (Vec<(String, ReplayArm)>, f64, f64);

/// Run the workload once under one cost-model arm. `profiles` is the
/// frozen store the learned arm prices against (`None` → static model).
fn run_arm(td: TableDist, sf: f64, profiles: Option<&CostProfiles>) -> Result<ArmOutcome> {
    let parallel = std::env::var_os("XDB_SEQUENTIAL").is_none();
    let telemetry = Telemetry::new_handle();
    telemetry.history.enable_memory();
    let mut e = env(
        td,
        sf,
        Scenario::OnPremise,
        &ProfileAssignment::uniform(EngineProfile::postgres()),
    )?;
    e.catalog.set_telemetry(Arc::clone(&telemetry));
    e.cluster.set_telemetry(Arc::clone(&telemetry));
    if let Some(p) = profiles {
        e.catalog.set_profiles(p.clone());
    }
    let mut arms = Vec::new();
    for q in TpchQuery::ALL {
        telemetry.history.set_label(q.name());
        e.cluster.ledger.clear();
        let xdb = Xdb::new(&e.cluster, &e.catalog)
            .with_client_node(CLOUD)
            .with_options(XdbOptions {
                parallel_execution: parallel,
                // Both arms pin the cost mode explicitly so ambient
                // XDB_STATIC_COSTS cannot skew the comparison; the
                // learned arm never absorbs (frozen snapshot).
                learned_costs: profiles.is_some(),
                freeze_profiles: true,
                ..Default::default()
            });
        let outcome = xdb.submit(q.sql())?;
        let encoded_bytes = e
            .cluster
            .ledger
            .snapshot()
            .iter()
            .map(|t| t.encoded_bytes)
            .sum();
        arms.push((
            q.name().to_string(),
            ReplayArm {
                fingerprint: xdb_core::annotate::plan_fingerprint(&outcome.delegation),
                total_ms: outcome.breakdown.total_ms(),
                encoded_bytes,
                regret_ms: outcome.cost.regret_ms(),
                predicted_ms: outcome.cost.decisions.iter().map(|d| d.predicted_ms).sum(),
                digest: digest_relation(&outcome.relation),
            },
        ));
    }
    telemetry.history.set_label("");
    let records = telemetry.history.records();
    let summary = summarize(&records);
    let wire_abs = summary
        .wire_by_shape
        .values()
        .fold((0.0f64, 0u64), |(s, n), e| {
            (s + e.mean_abs_pct() * e.count as f64, n + e.count)
        });
    let wire_abs_err = if wire_abs.1 > 0 {
        wire_abs.0 / wire_abs.1 as f64
    } else {
        0.0
    };
    Ok((arms, wire_abs_err, summary.net_regret_ms))
}

/// Replay the workload under static and learned pricing and join the two
/// arms per query.
pub fn run_replay(
    td: TableDist,
    sf: f64,
    profiles: Option<&CostProfiles>,
    profile_source: &str,
) -> Result<ReplayReport> {
    let (static_rows, static_err, static_net) = run_arm(td, sf, None)?;
    let (learned_rows, learned_err, learned_net) = run_arm(td, sf, profiles)?;
    let rows = static_rows
        .into_iter()
        .zip(learned_rows)
        .map(|((query, s), (_, l))| ReplayRow {
            query,
            static_arm: s,
            learned_arm: l,
        })
        .collect();
    Ok(ReplayReport {
        sf,
        td,
        profile_source: profile_source.to_string(),
        rows,
        static_wire_abs_err_pct: static_err,
        learned_wire_abs_err_pct: learned_err,
        static_net_regret_ms: static_net,
        learned_net_regret_ms: learned_net,
    })
}

impl ReplayReport {
    /// The text report `repro replay` prints. The "plan flips: N of M"
    /// line is the tier-1 self-compare anchor.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== replay: static vs learned cost model ({}, sf {}) ==",
            self.td.name(),
            self.sf
        );
        let _ = writeln!(out, "learned profiles: {}", self.profile_source);
        let _ = writeln!(
            out,
            "plan flips: {} of {} quer{}",
            self.flips(),
            self.rows.len(),
            if self.rows.len() == 1 { "y" } else { "ies" }
        );
        let _ = writeln!(
            out,
            "  {:<6} {:<5} {:>12} {:>12} {:>8} {:>14} {:>14} {:>8} {:>7}",
            "query",
            "flip",
            "static ms",
            "learned ms",
            "wall%",
            "static enc B",
            "learned enc B",
            "bytes%",
            "rows"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "  {:<6} {:<5} {:>12.3} {:>12.3} {:>+7.1}% {:>14} {:>14} {:>+7.1}% {:>7}",
                r.query,
                if r.flipped() { "FLIP" } else { "-" },
                r.static_arm.total_ms,
                r.learned_arm.total_ms,
                r.wall_delta_pct(),
                r.static_arm.encoded_bytes,
                r.learned_arm.encoded_bytes,
                r.bytes_delta_pct(),
                if r.static_arm.digest == r.learned_arm.digest {
                    "same"
                } else {
                    "DIFFER"
                }
            );
        }
        for r in self.rows.iter().filter(|r| r.flipped()) {
            let _ = writeln!(
                out,
                "  {}: predicted {:.3} -> {:.3} ms, regret {:.3} -> {:.3} ms",
                r.query,
                r.static_arm.predicted_ms,
                r.learned_arm.predicted_ms,
                r.static_arm.regret_ms,
                r.learned_arm.regret_ms
            );
        }
        let _ = writeln!(
            out,
            "wire |err|: static {:.1}% -> learned {:.1}%; net regret: \
             {:+.3} ms -> {:+.3} ms",
            self.static_wire_abs_err_pct,
            self.learned_wire_abs_err_pct,
            self.static_net_regret_ms,
            self.learned_net_regret_ms
        );
        let _ = writeln!(
            out,
            "result rows: {}",
            if self.results_identical() {
                "bit-identical across arms"
            } else {
                "DIFFER — learned plans changed answers"
            }
        );
        out
    }
}

/// Learn a profile store by running the workload once with live feedback
/// (the in-process equivalent of seeding from a `--history` directory).
pub fn learn_profiles(td: TableDist, sf: f64) -> Result<CostProfiles> {
    let parallel = std::env::var_os("XDB_SEQUENTIAL").is_none();
    let telemetry = Telemetry::new_handle();
    let mut e = env(
        td,
        sf,
        Scenario::OnPremise,
        &ProfileAssignment::uniform(EngineProfile::postgres()),
    )?;
    e.catalog.set_telemetry(Arc::clone(&telemetry));
    e.cluster.set_telemetry(Arc::clone(&telemetry));
    for q in TpchQuery::ALL {
        let xdb = Xdb::new(&e.cluster, &e.catalog)
            .with_client_node(CLOUD)
            .with_options(XdbOptions {
                parallel_execution: parallel,
                learned_costs: true,
                freeze_profiles: false,
                ..Default::default()
            });
        xdb.submit(q.sql())?;
    }
    Ok(e.catalog.profiles_snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEST_SF: f64 = 0.002;

    #[test]
    fn self_compare_reports_zero_flips() {
        // No profiles: the learned arm prices with an empty store, which
        // must fall back to the static model bit-exactly.
        let report = run_replay(TableDist::Td1, TEST_SF, None, "(none)").unwrap();
        assert_eq!(report.flips(), 0, "{}", report.render());
        assert!(report.results_identical());
        for r in &report.rows {
            assert_eq!(r.static_arm.fingerprint, r.learned_arm.fingerprint);
            assert_eq!(r.static_arm.total_ms, r.learned_arm.total_ms);
            assert_eq!(r.static_arm.encoded_bytes, r.learned_arm.encoded_bytes);
        }
        assert_eq!(
            report.static_wire_abs_err_pct,
            report.learned_wire_abs_err_pct
        );
        assert!(report.render().contains("plan flips: 0 of"));
    }

    #[test]
    fn replay_with_workload_profiles_keeps_results_identical() {
        // Learn profiles from one calibration pass of the same workload,
        // then replay against them: whatever flips, answers must not.
        let profiles = learn_profiles(TableDist::Td1, TEST_SF).unwrap();
        assert!(!profiles.is_empty());
        let report = run_replay(TableDist::Td1, TEST_SF, Some(&profiles), "(test)").unwrap();
        assert!(report.results_identical(), "{}", report.render());
        // Deterministic: a second replay renders bit-identically.
        let again = run_replay(TableDist::Td1, TEST_SF, Some(&profiles), "(test)").unwrap();
        assert_eq!(report.render(), again.render());
    }
}
