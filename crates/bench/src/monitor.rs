//! `repro monitor` — the fleet workload monitor.
//!
//! Runs the six-query TPC-H workload N times under every deployment
//! (XDB, Garlic, Presto-4, Sclera) against a TD1 federation per
//! engine-link profile (on-premise LAN and geo-distributed WAN) and
//! aggregates the fleet telemetry into profile × query × deployment cells:
//! latency quantiles (p50/p95/p99), bytes moved over the wire,
//! consultation-cache hit rate, and the live-delegation-object high-water
//! mark per engine. Three renderings: a text dashboard, a Prometheus text
//! exposition, and a JSON export (the latter doubles as the regression-gate
//! baseline, see [`crate::gate`]).
//!
//! Every number is taken off the simulated clock and the deterministic
//! telemetry registry, so the whole report is bit-identical between the
//! sequential and parallel executors and across repeated invocations.

use crate::experiments::{env, Env, CLOUD};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;
use xdb_baselines::{Mediator, MediatorConfig, Sclera};
use xdb_core::{Xdb, XdbOptions};
use xdb_engine::error::{EngineError, Result};
use xdb_engine::profile::EngineProfile;
use xdb_net::{Purpose, Scenario};
use xdb_obs::trace::{json_number, json_string};
use xdb_obs::{Metric, MetricRegistry, Telemetry};
use xdb_tpch::{ProfileAssignment, TableDist, TpchQuery};

/// Deployment names, in dashboard order.
pub const DEPLOYMENTS: [&str; 4] = ["xdb", "garlic", "presto4", "sclera"];

/// Engine-link profiles the monitor covers, in dashboard order. The
/// on-premise LAN is the regime most of the reproduction runs in; the
/// geo-distributed profile (high-latency / low-bandwidth WAN links, see
/// [`Scenario::GeoDistributed`]) is transfer-bound, where the streamed
/// morsel edges and the reactor matter most — keeping it in the gate
/// baseline protects that regime from regressions.
pub const PROFILES: [(&str, Scenario); 2] = [
    ("onprem", Scenario::OnPremise),
    ("geo", Scenario::GeoDistributed),
];

/// One dashboard cell: a (profile, query, deployment) triple aggregated
/// over N runs.
#[derive(Debug, Clone)]
pub struct MonitorRow {
    pub profile: &'static str,
    pub query: &'static str,
    pub deployment: &'static str,
    pub runs: u64,
    pub p50_ms: f64,
    pub p95_ms: f64,
    pub p99_ms: f64,
    /// Mean raw (uncompressed) bytes moved between DBMSes (XDB) or into
    /// the mediator (Garlic/Presto/Sclera) per run.
    pub mean_bytes: f64,
    /// Mean encoded bytes actually sent over the wire after the
    /// `net::wire` columnar codec — what the transfer-time model charged.
    pub mean_encoded_bytes: f64,
    /// Consultation-cache hit rate over the probes this cell issued.
    pub cache_hit_rate: f64,
    /// Mean encoded bytes per run split by wire codec, over every ledger
    /// edge of the run (codec name → bytes). This is the per-codec split
    /// the history store already records per edge
    /// (`Transfer::codec_bytes`), surfaced per dashboard cell.
    pub codec_bytes: Vec<(String, f64)>,
    /// Mean |predicted vs observed wire-time error| in percent over the
    /// cost-model observatory's matched edges (XDB cells only; mediators
    /// make no Eq. 1–3 placement decisions).
    pub cal_abs_err_pct: f64,
    /// Mean positive placement regret per run in simulated ms (XDB cells
    /// only): observed cost of the chosen plan beyond the model's best
    /// rejected candidate.
    pub regret_ms: f64,
    /// Share of this cell's runs whose learned-cost plan differs from the
    /// static-cost plan for the same SQL (XDB cells only; schema v4).
    /// Flips are expected as profiles accrue — the gate's job is to catch
    /// the *rate* moving, which means pricing or feedback changed.
    pub plan_flip_rate: f64,
}

/// Aggregated monitor output plus the registries behind it.
pub struct MonitorReport {
    pub sf: f64,
    pub runs: usize,
    pub rows: Vec<MonitorRow>,
    /// Per-engine high-water mark of the `ddl.objects_live` gauge over the
    /// whole workload — how many delegation artifacts were ever live at
    /// once on each node.
    pub objects_live_hwm: Vec<(String, f64)>,
    /// The monitor's own aggregation registry
    /// (`monitor.latency_ms{query,deployment}`, …).
    registry: MetricRegistry,
    /// Prometheus rendering of the fleet-wide telemetry captured during
    /// the workload (engine/net/consult/xdb series).
    fleet_prometheus: String,
}

/// Run the monitor workload against the process-global telemetry handle.
pub fn run_monitor(sf: f64, runs: usize) -> Result<MonitorReport> {
    run_monitor_with(sf, runs, None)
}

/// Like [`run_monitor`], but with an isolated [`Telemetry`] handle so
/// tests do not observe unrelated traffic on the global registry.
pub fn run_monitor_with(
    sf: f64,
    runs: usize,
    telemetry: Option<Arc<Telemetry>>,
) -> Result<MonitorReport> {
    let parallel = std::env::var_os("XDB_SEQUENTIAL").is_none();
    let registry = MetricRegistry::new();
    let mut envs = Vec::new();
    let mut fleet = None;
    for (pname, scenario) in PROFILES {
        let mut e = env(
            TableDist::Td1,
            sf,
            scenario,
            &ProfileAssignment::uniform(EngineProfile::postgres()),
        )?;
        // All profile federations share one telemetry handle so the fleet
        // rendering and the live-object high-water marks cover the whole
        // workload (when no handle is passed in, every cluster already
        // shares the process-global one).
        if let Some(t) = &telemetry {
            e.catalog.set_telemetry(Arc::clone(t));
            e.cluster.set_telemetry(Arc::clone(t));
        }
        fleet.get_or_insert_with(|| Arc::clone(e.cluster.telemetry()));
        envs.push((pname, e));
    }
    let fleet = fleet.expect("at least one monitor profile");
    // Per-cell accumulators the registry does not model: the per-codec
    // byte split (variable key set) and the observatory error/regret sums.
    type Cell = (String, String, String);
    let mut codec_cells: BTreeMap<Cell, BTreeMap<String, f64>> = BTreeMap::new();
    let mut cal_cells: BTreeMap<Cell, (f64, f64)> = BTreeMap::new();
    let mut flip_cells: BTreeMap<Cell, f64> = BTreeMap::new();
    for (pname, e) in &envs {
        for q in TpchQuery::ALL {
            for dep in DEPLOYMENTS {
                for _ in 0..runs {
                    // Bracket each run with catalog snapshots: the diff is
                    // the per-run consultation delta, immune to everything
                    // the workload did before.
                    let before = e.catalog.metrics_snapshot();
                    let sample = run_one(e, dep, q.sql(), parallel)?;
                    let delta = e.catalog.metrics_snapshot().diff(&before);
                    let labels = [
                        ("profile", *pname),
                        ("query", q.name()),
                        ("deployment", dep),
                    ];
                    registry.observe("monitor.latency_ms", &labels, sample.latency_ms);
                    registry.observe("monitor.bytes_moved", &labels, sample.moved as f64);
                    registry.observe(
                        "monitor.encoded_bytes_moved",
                        &labels,
                        sample.encoded as f64,
                    );
                    registry.counter_add("monitor.runs", &labels, 1.0);
                    registry.counter_add(
                        "monitor.cache_hits",
                        &labels,
                        delta.get("consult.cache_hits"),
                    );
                    registry.counter_add(
                        "monitor.cache_misses",
                        &labels,
                        delta.get("consult.cache_misses"),
                    );
                    let cell = (pname.to_string(), q.name().to_string(), dep.to_string());
                    let codecs = codec_cells.entry(cell.clone()).or_default();
                    for (codec, bytes) in sample.codec_bytes {
                        registry.counter_add(
                            "monitor.codec_bytes",
                            &[
                                ("profile", pname),
                                ("query", q.name()),
                                ("deployment", dep),
                                ("codec", codec),
                            ],
                            bytes as f64,
                        );
                        *codecs.entry(codec.to_string()).or_insert(0.0) += bytes as f64;
                    }
                    if dep == "xdb" {
                        registry.observe(
                            "monitor.cal_abs_err_pct",
                            &labels,
                            sample.cal_abs_err_pct,
                        );
                        registry.observe("monitor.regret_ms", &labels, sample.regret_ms);
                        let cal = cal_cells.entry(cell.clone()).or_insert((0.0, 0.0));
                        cal.0 += sample.cal_abs_err_pct;
                        cal.1 += sample.regret_ms;
                        // Did learned pricing change the plan? Re-plan the
                        // same SQL with the kill switch thrown and compare
                        // fingerprints. Planning is side-effect-free (no
                        // DDL), so later cells only see the extra consult
                        // traffic this probe shares with every other run.
                        let static_xdb = Xdb::new(&e.cluster, &e.catalog)
                            .with_client_node(CLOUD)
                            .with_options(XdbOptions {
                                parallel_execution: parallel,
                                learned_costs: false,
                                ..Default::default()
                            });
                        let (static_plan, _, _, _) = static_xdb.plan(q.sql())?;
                        let static_fp = xdb_core::annotate::plan_fingerprint(&static_plan);
                        let flipped = match &sample.fingerprint {
                            Some(fp) => (*fp != static_fp) as u64 as f64,
                            None => 0.0,
                        };
                        registry.observe("monitor.plan_flip", &labels, flipped);
                        *flip_cells.entry(cell).or_insert(0.0) += flipped;
                    }
                }
            }
        }
    }

    let mut rows = Vec::new();
    for (pname, _) in &envs {
        for q in TpchQuery::ALL {
            for dep in DEPLOYMENTS {
                let labels = [
                    ("profile", *pname),
                    ("query", q.name()),
                    ("deployment", dep),
                ];
                let (p50, p95, p99, n) = match registry.get("monitor.latency_ms", &labels) {
                    Some(Metric::Histogram(h)) => (
                        h.quantile(0.50),
                        h.quantile(0.95),
                        h.quantile(0.99),
                        h.count,
                    ),
                    _ => (0.0, 0.0, 0.0, 0),
                };
                let mean_bytes = match registry.get("monitor.bytes_moved", &labels) {
                    Some(Metric::Histogram(h)) => h.mean(),
                    _ => 0.0,
                };
                let mean_encoded_bytes = match registry.get("monitor.encoded_bytes_moved", &labels)
                {
                    Some(Metric::Histogram(h)) => h.mean(),
                    _ => 0.0,
                };
                let hits = registry.value("monitor.cache_hits", &labels);
                let probes = hits + registry.value("monitor.cache_misses", &labels);
                let cell = (pname.to_string(), q.name().to_string(), dep.to_string());
                let per_run = |sum: f64| if n > 0 { sum / n as f64 } else { 0.0 };
                let codec_bytes: Vec<(String, f64)> = codec_cells
                    .get(&cell)
                    .map(|m| m.iter().map(|(k, v)| (k.clone(), per_run(*v))).collect())
                    .unwrap_or_default();
                let (cal_abs_err_pct, regret_ms) = cal_cells
                    .get(&cell)
                    .map(|(err, regret)| (per_run(*err), per_run(*regret)))
                    .unwrap_or((0.0, 0.0));
                let plan_flip_rate = flip_cells.get(&cell).map(|f| per_run(*f)).unwrap_or(0.0);
                rows.push(MonitorRow {
                    profile: pname,
                    query: q.name(),
                    deployment: dep,
                    runs: n,
                    p50_ms: p50,
                    p95_ms: p95,
                    p99_ms: p99,
                    mean_bytes,
                    mean_encoded_bytes,
                    cache_hit_rate: if probes > 0.0 { hits / probes } else { 0.0 },
                    codec_bytes,
                    cal_abs_err_pct,
                    regret_ms,
                    plan_flip_rate,
                });
            }
        }
    }
    let mut objects_live_hwm: Vec<(String, f64)> = envs[0]
        .1
        .cluster
        .node_names()
        .into_iter()
        .map(|n| {
            let hwm = fleet
                .metrics
                .high_water("ddl.objects_live", &[("engine", &n)]);
            (n, hwm)
        })
        .collect();
    objects_live_hwm.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(MonitorReport {
        sf,
        runs,
        rows,
        objects_live_hwm,
        registry,
        fleet_prometheus: fleet.metrics.render_prometheus(),
    })
}

/// One run's observations, taken off the per-run ledger and (for XDB)
/// the query's cost-model observatory record.
struct RunSample {
    latency_ms: f64,
    moved: u64,
    encoded: u64,
    /// Encoded bytes per wire codec over every ledger edge of the run.
    codec_bytes: Vec<(&'static str, u64)>,
    cal_abs_err_pct: f64,
    regret_ms: f64,
    /// Canonical fingerprint of the executed plan (XDB only) — compared
    /// against a static-cost re-plan to detect learned-pricing flips.
    fingerprint: Option<String>,
}

/// Sum the per-codec byte split across every edge the run appended to the
/// (cleared-per-run) ledger.
fn codec_split(e: &Env) -> Vec<(&'static str, u64)> {
    let mut split: BTreeMap<&'static str, u64> = BTreeMap::new();
    for t in e.cluster.ledger.snapshot() {
        for (codec, bytes) in t.codec_bytes {
            *split.entry(codec).or_insert(0) += bytes;
        }
    }
    split.into_iter().collect()
}

/// Execute `sql` once under `deployment`. Latency is end-to-end simulated
/// time including the middleware phases, matching what each system's user
/// would observe.
fn run_one(e: &Env, deployment: &str, sql: &str, parallel: bool) -> Result<RunSample> {
    e.cluster.ledger.clear();
    match deployment {
        "xdb" => {
            let xdb = Xdb::new(&e.cluster, &e.catalog)
                .with_client_node(CLOUD)
                .with_options(XdbOptions {
                    parallel_execution: parallel,
                    ..Default::default()
                });
            let out = xdb.submit(sql)?;
            let moved = e.cluster.ledger.bytes_for(Purpose::InterDbmsPipeline)
                + e.cluster.ledger.bytes_for(Purpose::Materialization);
            let encoded = e
                .cluster
                .ledger
                .encoded_bytes_for(Purpose::InterDbmsPipeline)
                + e.cluster.ledger.encoded_bytes_for(Purpose::Materialization);
            Ok(RunSample {
                latency_ms: out.breakdown.total_ms(),
                moved,
                encoded,
                codec_bytes: codec_split(e),
                cal_abs_err_pct: out.cost.wire_abs_err_pct(),
                regret_ms: out.cost.regret_ms(),
                fingerprint: Some(xdb_core::annotate::plan_fingerprint(&out.delegation)),
            })
        }
        "garlic" => {
            let r =
                Mediator::new(&e.cluster, &e.catalog, MediatorConfig::garlic(CLOUD)).submit(sql)?;
            Ok(RunSample {
                latency_ms: r.total_ms,
                moved: r.fetch_bytes,
                encoded: r.fetch_encoded_bytes,
                codec_bytes: codec_split(e),
                cal_abs_err_pct: 0.0,
                regret_ms: 0.0,
                fingerprint: None,
            })
        }
        "presto4" => {
            let r = Mediator::new(&e.cluster, &e.catalog, MediatorConfig::presto(CLOUD, 4))
                .submit(sql)?;
            Ok(RunSample {
                latency_ms: r.total_ms,
                moved: r.fetch_bytes,
                encoded: r.fetch_encoded_bytes,
                codec_bytes: codec_split(e),
                cal_abs_err_pct: 0.0,
                regret_ms: 0.0,
                fingerprint: None,
            })
        }
        "sclera" => {
            let r = Sclera::new(&e.cluster, &e.catalog, CLOUD).submit(sql)?;
            Ok(RunSample {
                latency_ms: r.total_ms,
                moved: r.moved_bytes,
                encoded: r.moved_encoded_bytes,
                codec_bytes: codec_split(e),
                cal_abs_err_pct: 0.0,
                regret_ms: 0.0,
                fingerprint: None,
            })
        }
        other => Err(EngineError::Unsupported(format!(
            "unknown deployment {other:?}"
        ))),
    }
}

impl MonitorReport {
    /// The text dashboard.
    pub fn render_dashboard(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== fleet monitor: TD1 sf {}, {} run(s) per deployment ==",
            self.sf, self.runs
        );
        let _ = writeln!(
            out,
            "{:<7} {:<6} {:<10} {:>4} {:>12} {:>12} {:>12} {:>12} {:>10} {:>7} {:>10} {:>8} {:>10}",
            "profile",
            "query",
            "deploy",
            "runs",
            "p50 ms",
            "p95 ms",
            "p99 ms",
            "moved KB",
            "wire KB",
            "ratio",
            "cache hit",
            "calerr%",
            "regret ms"
        );
        let mut raw_total = 0.0f64;
        let mut enc_total = 0.0f64;
        let mut codec_totals: BTreeMap<&str, f64> = BTreeMap::new();
        for r in &self.rows {
            let ratio = if r.mean_encoded_bytes > 0.0 {
                r.mean_bytes / r.mean_encoded_bytes
            } else {
                0.0
            };
            raw_total += r.mean_bytes;
            enc_total += r.mean_encoded_bytes;
            for (codec, bytes) in &r.codec_bytes {
                *codec_totals.entry(codec).or_insert(0.0) += bytes * r.runs as f64;
            }
            let _ = writeln!(
                out,
                "{:<7} {:<6} {:<10} {:>4} {:>12.3} {:>12.3} {:>12.3} {:>12.1} {:>10.1} {:>6.2}x {:>9.1}% {:>8.1} {:>10.3}",
                r.profile,
                r.query,
                r.deployment,
                r.runs,
                r.p50_ms,
                r.p95_ms,
                r.p99_ms,
                r.mean_bytes / 1e3,
                r.mean_encoded_bytes / 1e3,
                ratio,
                100.0 * r.cache_hit_rate,
                r.cal_abs_err_pct,
                r.regret_ms
            );
        }
        if enc_total > 0.0 {
            let _ = writeln!(
                out,
                "wire codec: {:.1} KB raw -> {:.1} KB encoded ({:.2}x compression)",
                raw_total / 1e3,
                enc_total / 1e3,
                raw_total / enc_total
            );
        }
        if !codec_totals.is_empty() {
            let mut line = String::from("codec split (all wire edges):");
            for (codec, bytes) in &codec_totals {
                let _ = write!(line, " {codec}={:.1}KB", bytes / 1e3);
            }
            let _ = writeln!(out, "{line}");
        }
        let mut hwm_line = String::from("live delegation objects (high-water):");
        let mut max = 0.0f64;
        for (node, hwm) in &self.objects_live_hwm {
            let _ = write!(hwm_line, " {node}={hwm}");
            max = max.max(*hwm);
        }
        let _ = writeln!(out, "{hwm_line}  [fleet max {max}]");
        out
    }

    /// Prometheus text exposition: the monitor's aggregation series
    /// followed by the fleet-wide telemetry captured during the workload.
    pub fn render_prometheus(&self) -> String {
        let mut out = self.registry.render_prometheus();
        out.push_str(&self.fleet_prometheus);
        out
    }

    /// Deterministic scalar values for the regression gate, keyed
    /// `profile/query/deployment/metric` (schema v2; v1 had no profile
    /// segment).
    pub fn flat_values(&self) -> BTreeMap<String, f64> {
        let mut v = BTreeMap::new();
        for r in &self.rows {
            v.insert(
                format!("{}/{}/{}/p50_ms", r.profile, r.query, r.deployment),
                r.p50_ms,
            );
            v.insert(
                format!("{}/{}/{}/mean_bytes", r.profile, r.query, r.deployment),
                r.mean_bytes,
            );
            v.insert(
                format!("{}/{}/{}/mean_enc_bytes", r.profile, r.query, r.deployment),
                r.mean_encoded_bytes,
            );
            for (codec, bytes) in &r.codec_bytes {
                v.insert(
                    format!(
                        "{}/{}/{}/codec_bytes/{}",
                        r.profile, r.query, r.deployment, codec
                    ),
                    *bytes,
                );
            }
            if r.deployment == "xdb" {
                v.insert(
                    format!("{}/{}/{}/cal_abs_err_pct", r.profile, r.query, r.deployment),
                    r.cal_abs_err_pct,
                );
                v.insert(
                    format!("{}/{}/{}/regret_ms", r.profile, r.query, r.deployment),
                    r.regret_ms,
                );
                v.insert(
                    format!("{}/{}/{}/plan_flip_rate", r.profile, r.query, r.deployment),
                    r.plan_flip_rate,
                );
            }
        }
        v
    }

    /// JSON export; also the [`crate::gate`] baseline format
    /// (`BENCH_monitor.json`).
    pub fn to_json(&self) -> String {
        self.to_json_with(&[], &BTreeMap::new())
    }

    /// [`MonitorReport::to_json`] with extra top-level numeric fields and
    /// extra gate series spliced into `"values"` — how the multi-tenant
    /// admission series ([`crate::tenants`]) ride the monitor baseline.
    pub fn to_json_with(
        &self,
        extra_fields: &[(&str, f64)],
        extra_values: &BTreeMap<String, f64>,
    ) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"bench\": \"monitor\",");
        let _ = writeln!(
            out,
            "  \"schema_version\": {},",
            crate::gate::MONITOR_SCHEMA_VERSION
        );
        let _ = writeln!(out, "  \"workload\": \"TD1\",");
        let _ = writeln!(out, "  \"sf\": {},", json_number(self.sf));
        let _ = writeln!(out, "  \"runs\": {},", self.runs);
        for (k, v) in extra_fields {
            let _ = writeln!(out, "  {}: {},", json_string(k), json_number(*v));
        }
        out.push_str("  \"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            let mut codecs = String::from("{");
            for (j, (codec, bytes)) in r.codec_bytes.iter().enumerate() {
                let _ = write!(
                    codecs,
                    "{}{}: {}",
                    if j > 0 { ", " } else { "" },
                    json_string(codec),
                    json_number(*bytes)
                );
            }
            codecs.push('}');
            let _ = writeln!(
                out,
                "    {{\"profile\": {}, \"query\": {}, \"deployment\": {}, \"runs\": {}, \
                 \"p50_ms\": {}, \"p95_ms\": {}, \"p99_ms\": {}, \
                 \"mean_bytes\": {}, \"mean_enc_bytes\": {}, \"cache_hit_rate\": {}, \
                 \"codec_bytes\": {}, \"cal_abs_err_pct\": {}, \"regret_ms\": {}, \
                 \"plan_flip_rate\": {}}}{}",
                json_string(r.profile),
                json_string(r.query),
                json_string(r.deployment),
                r.runs,
                json_number(r.p50_ms),
                json_number(r.p95_ms),
                json_number(r.p99_ms),
                json_number(r.mean_bytes),
                json_number(r.mean_encoded_bytes),
                json_number(r.cache_hit_rate),
                codecs,
                json_number(r.cal_abs_err_pct),
                json_number(r.regret_ms),
                json_number(r.plan_flip_rate),
                if i + 1 < self.rows.len() { "," } else { "" }
            );
        }
        out.push_str("  ],\n");
        out.push_str("  \"objects_live_hwm\": {");
        for (i, (node, hwm)) in self.objects_live_hwm.iter().enumerate() {
            let _ = write!(
                out,
                "{}{}: {}",
                if i > 0 { ", " } else { "" },
                json_string(node),
                json_number(*hwm)
            );
        }
        out.push_str("},\n");
        out.push_str("  \"values\": {\n");
        let mut values = self.flat_values();
        for (k, v) in extra_values {
            values.insert(k.clone(), *v);
        }
        for (i, (k, v)) in values.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {}: {}{}",
                json_string(k),
                json_number(*v),
                if i + 1 < values.len() { "," } else { "" }
            );
        }
        out.push_str("  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdb_obs::json;

    const TEST_SF: f64 = 0.002;

    #[test]
    fn monitor_covers_all_cells() {
        let report = run_monitor_with(TEST_SF, 2, Some(Telemetry::new_handle())).unwrap();
        assert_eq!(
            report.rows.len(),
            PROFILES.len() * TpchQuery::ALL.len() * DEPLOYMENTS.len()
        );
        for r in &report.rows {
            assert_eq!(r.runs, 2, "{}/{}", r.query, r.deployment);
            assert!(
                r.p50_ms > 0.0,
                "{}/{} has zero latency",
                r.query,
                r.deployment
            );
            assert!(r.p50_ms <= r.p95_ms && r.p95_ms <= r.p99_ms);
            assert!(
                r.mean_bytes > 0.0,
                "{}/{} moved nothing",
                r.query,
                r.deployment
            );
            assert!(
                r.mean_encoded_bytes > 0.0 && r.mean_encoded_bytes <= r.mean_bytes,
                "{}/{} encoded {} vs raw {}",
                r.query,
                r.deployment,
                r.mean_encoded_bytes,
                r.mean_bytes
            );
        }
        // With 2 runs per cell every second consultation hits the cache
        // (no DDL invalidates base-table probes between runs), so the
        // workload-wide hit rate must be well above zero.
        assert!(
            report.rows.iter().any(|r| r.cache_hit_rate > 0.0),
            "no cell ever hit the consultation cache"
        );
        // XDB deploys delegation artifacts on every engine at some point.
        let max_hwm = report
            .objects_live_hwm
            .iter()
            .map(|(_, h)| *h)
            .fold(0.0f64, f64::max);
        assert!(max_hwm > 0.0, "{:?}", report.objects_live_hwm);
        // The WAN profile has to bite: every geo cell pays at least the
        // latency of its on-premise twin (same data, slower links).
        for geo in report.rows.iter().filter(|r| r.profile == "geo") {
            let onprem = report
                .rows
                .iter()
                .find(|r| {
                    r.profile == "onprem" && r.query == geo.query && r.deployment == geo.deployment
                })
                .unwrap();
            assert!(
                geo.p50_ms >= onprem.p50_ms,
                "{}/{}: geo p50 {} < onprem p50 {}",
                geo.query,
                geo.deployment,
                geo.p50_ms,
                onprem.p50_ms
            );
        }
    }

    #[test]
    fn renders_are_complete_and_valid() {
        let report = run_monitor_with(TEST_SF, 1, Some(Telemetry::new_handle())).unwrap();
        let dash = report.render_dashboard();
        for dep in DEPLOYMENTS {
            assert!(dash.contains(dep), "{dash}");
        }
        for (pname, _) in PROFILES {
            assert!(dash.contains(pname), "{dash}");
        }
        assert!(dash.contains("live delegation objects"), "{dash}");

        let prom = report.render_prometheus();
        assert!(prom.contains("monitor_latency_ms_bucket{"), "{prom}");
        assert!(prom.contains("le=\"+Inf\""), "{prom}");
        // The fleet series captured during the workload ride along.
        assert!(prom.contains("ddl_objects_live"), "{prom}");

        let parsed = json::parse(&report.to_json()).expect("monitor JSON parses");
        let rows = parsed.get("rows").and_then(json::Value::as_array).unwrap();
        assert_eq!(rows.len(), report.rows.len());
        assert!(parsed.get("values").is_some());
    }

    #[test]
    fn observatory_columns_and_codec_split_populated() {
        let report = run_monitor_with(TEST_SF, 1, Some(Telemetry::new_handle())).unwrap();
        for r in &report.rows {
            // Every cell moved compressed data, so the per-codec split the
            // history store records must surface here too.
            assert!(
                !r.codec_bytes.is_empty(),
                "{}/{}/{} has no codec split",
                r.profile,
                r.query,
                r.deployment
            );
            let split: f64 = r.codec_bytes.iter().map(|(_, b)| *b).sum();
            assert!(split > 0.0);
            if r.deployment != "xdb" {
                // Mediators make no Eq. 1–3 placement decisions.
                assert_eq!(r.cal_abs_err_pct, 0.0);
                assert_eq!(r.regret_ms, 0.0);
            }
        }
        // The observatory bites on at least one XDB cell: the estimator
        // prices raw bytes, the wire moves encoded bytes, so the error
        // series cannot be identically zero.
        assert!(
            report
                .rows
                .iter()
                .filter(|r| r.deployment == "xdb")
                .any(|r| r.cal_abs_err_pct > 0.0),
            "no xdb cell reports calibration error"
        );
        let v = report.flat_values();
        assert!(v.keys().any(|k| k.contains("/codec_bytes/")), "{v:?}");
        assert!(v.keys().any(|k| k.ends_with("/cal_abs_err_pct")));
        assert!(v.keys().any(|k| k.ends_with("/regret_ms")));
        assert!(v.keys().any(|k| k.ends_with("/plan_flip_rate")));
        let parsed = json::parse(&report.to_json()).expect("monitor JSON parses");
        let rows = parsed.get("rows").and_then(json::Value::as_array).unwrap();
        for row in rows {
            assert!(row.get("codec_bytes").is_some());
            assert!(row.get("cal_abs_err_pct").is_some());
            assert!(row.get("regret_ms").is_some());
            assert!(row.get("plan_flip_rate").is_some());
        }
        // Flip rates are shares of runs: [0, 1] on xdb cells, 0 elsewhere.
        for r in &report.rows {
            assert!(
                (0.0..=1.0).contains(&r.plan_flip_rate),
                "{}/{}/{}: flip rate {}",
                r.profile,
                r.query,
                r.deployment,
                r.plan_flip_rate
            );
            if r.deployment != "xdb" {
                assert_eq!(r.plan_flip_rate, 0.0);
            }
        }
    }

    #[test]
    fn wire_codec_at_least_halves_xdb_bytes() {
        // The ISSUE 5 acceptance bar: on the TD1 workload the columnar
        // codec moves at least 2x fewer bytes over XDB's streamed edges
        // than the raw wire size.
        let report = run_monitor_with(TEST_SF, 1, Some(Telemetry::new_handle())).unwrap();
        let (mut raw, mut enc) = (0.0f64, 0.0f64);
        for r in report.rows.iter().filter(|r| r.deployment == "xdb") {
            raw += r.mean_bytes;
            enc += r.mean_encoded_bytes;
        }
        assert!(
            raw >= 2.0 * enc,
            "xdb TD1 compression below 2x: raw {raw} encoded {enc}"
        );
    }

    #[test]
    fn monitor_is_deterministic_across_invocations() {
        let a = run_monitor_with(TEST_SF, 1, Some(Telemetry::new_handle())).unwrap();
        let b = run_monitor_with(TEST_SF, 1, Some(Telemetry::new_handle())).unwrap();
        assert_eq!(a.flat_values(), b.flat_values());
        assert_eq!(a.objects_live_hwm, b.objects_live_hwm);
    }
}
