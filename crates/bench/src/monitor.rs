//! `repro monitor` — the fleet workload monitor.
//!
//! Runs the six-query TPC-H workload N times under every deployment
//! (XDB, Garlic, Presto-4, Sclera) against a TD1 federation per
//! engine-link profile (on-premise LAN and geo-distributed WAN) and
//! aggregates the fleet telemetry into profile × query × deployment cells:
//! latency quantiles (p50/p95/p99), bytes moved over the wire,
//! consultation-cache hit rate, and the live-delegation-object high-water
//! mark per engine. Three renderings: a text dashboard, a Prometheus text
//! exposition, and a JSON export (the latter doubles as the regression-gate
//! baseline, see [`crate::gate`]).
//!
//! Every number is taken off the simulated clock and the deterministic
//! telemetry registry, so the whole report is bit-identical between the
//! sequential and parallel executors and across repeated invocations.

use crate::experiments::{env, Env, CLOUD};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;
use xdb_baselines::{Mediator, MediatorConfig, Sclera};
use xdb_core::{Xdb, XdbOptions};
use xdb_engine::error::{EngineError, Result};
use xdb_engine::profile::EngineProfile;
use xdb_net::{Purpose, Scenario};
use xdb_obs::trace::{json_number, json_string};
use xdb_obs::{Metric, MetricRegistry, Telemetry};
use xdb_tpch::{ProfileAssignment, TableDist, TpchQuery};

/// Deployment names, in dashboard order.
pub const DEPLOYMENTS: [&str; 4] = ["xdb", "garlic", "presto4", "sclera"];

/// Engine-link profiles the monitor covers, in dashboard order. The
/// on-premise LAN is the regime most of the reproduction runs in; the
/// geo-distributed profile (high-latency / low-bandwidth WAN links, see
/// [`Scenario::GeoDistributed`]) is transfer-bound, where the streamed
/// morsel edges and the reactor matter most — keeping it in the gate
/// baseline protects that regime from regressions.
pub const PROFILES: [(&str, Scenario); 2] = [
    ("onprem", Scenario::OnPremise),
    ("geo", Scenario::GeoDistributed),
];

/// One dashboard cell: a (profile, query, deployment) triple aggregated
/// over N runs.
#[derive(Debug, Clone)]
pub struct MonitorRow {
    pub profile: &'static str,
    pub query: &'static str,
    pub deployment: &'static str,
    pub runs: u64,
    pub p50_ms: f64,
    pub p95_ms: f64,
    pub p99_ms: f64,
    /// Mean raw (uncompressed) bytes moved between DBMSes (XDB) or into
    /// the mediator (Garlic/Presto/Sclera) per run.
    pub mean_bytes: f64,
    /// Mean encoded bytes actually sent over the wire after the
    /// `net::wire` columnar codec — what the transfer-time model charged.
    pub mean_encoded_bytes: f64,
    /// Consultation-cache hit rate over the probes this cell issued.
    pub cache_hit_rate: f64,
}

/// Aggregated monitor output plus the registries behind it.
pub struct MonitorReport {
    pub sf: f64,
    pub runs: usize,
    pub rows: Vec<MonitorRow>,
    /// Per-engine high-water mark of the `ddl.objects_live` gauge over the
    /// whole workload — how many delegation artifacts were ever live at
    /// once on each node.
    pub objects_live_hwm: Vec<(String, f64)>,
    /// The monitor's own aggregation registry
    /// (`monitor.latency_ms{query,deployment}`, …).
    registry: MetricRegistry,
    /// Prometheus rendering of the fleet-wide telemetry captured during
    /// the workload (engine/net/consult/xdb series).
    fleet_prometheus: String,
}

/// Run the monitor workload against the process-global telemetry handle.
pub fn run_monitor(sf: f64, runs: usize) -> Result<MonitorReport> {
    run_monitor_with(sf, runs, None)
}

/// Like [`run_monitor`], but with an isolated [`Telemetry`] handle so
/// tests do not observe unrelated traffic on the global registry.
pub fn run_monitor_with(
    sf: f64,
    runs: usize,
    telemetry: Option<Arc<Telemetry>>,
) -> Result<MonitorReport> {
    let parallel = std::env::var_os("XDB_SEQUENTIAL").is_none();
    let registry = MetricRegistry::new();
    let mut envs = Vec::new();
    let mut fleet = None;
    for (pname, scenario) in PROFILES {
        let mut e = env(
            TableDist::Td1,
            sf,
            scenario,
            &ProfileAssignment::uniform(EngineProfile::postgres()),
        )?;
        // All profile federations share one telemetry handle so the fleet
        // rendering and the live-object high-water marks cover the whole
        // workload (when no handle is passed in, every cluster already
        // shares the process-global one).
        if let Some(t) = &telemetry {
            e.catalog.set_telemetry(Arc::clone(t));
            e.cluster.set_telemetry(Arc::clone(t));
        }
        fleet.get_or_insert_with(|| Arc::clone(e.cluster.telemetry()));
        envs.push((pname, e));
    }
    let fleet = fleet.expect("at least one monitor profile");
    for (pname, e) in &envs {
        for q in TpchQuery::ALL {
            for dep in DEPLOYMENTS {
                for _ in 0..runs {
                    // Bracket each run with catalog snapshots: the diff is
                    // the per-run consultation delta, immune to everything
                    // the workload did before.
                    let before = e.catalog.metrics_snapshot();
                    let (latency_ms, moved, encoded) = run_one(e, dep, q.sql(), parallel)?;
                    let delta = e.catalog.metrics_snapshot().diff(&before);
                    let labels = [
                        ("profile", *pname),
                        ("query", q.name()),
                        ("deployment", dep),
                    ];
                    registry.observe("monitor.latency_ms", &labels, latency_ms);
                    registry.observe("monitor.bytes_moved", &labels, moved as f64);
                    registry.observe("monitor.encoded_bytes_moved", &labels, encoded as f64);
                    registry.counter_add("monitor.runs", &labels, 1.0);
                    registry.counter_add(
                        "monitor.cache_hits",
                        &labels,
                        delta.get("consult.cache_hits"),
                    );
                    registry.counter_add(
                        "monitor.cache_misses",
                        &labels,
                        delta.get("consult.cache_misses"),
                    );
                }
            }
        }
    }

    let mut rows = Vec::new();
    for (pname, _) in &envs {
        for q in TpchQuery::ALL {
            for dep in DEPLOYMENTS {
                let labels = [
                    ("profile", *pname),
                    ("query", q.name()),
                    ("deployment", dep),
                ];
                let (p50, p95, p99, n) = match registry.get("monitor.latency_ms", &labels) {
                    Some(Metric::Histogram(h)) => (
                        h.quantile(0.50),
                        h.quantile(0.95),
                        h.quantile(0.99),
                        h.count,
                    ),
                    _ => (0.0, 0.0, 0.0, 0),
                };
                let mean_bytes = match registry.get("monitor.bytes_moved", &labels) {
                    Some(Metric::Histogram(h)) => h.mean(),
                    _ => 0.0,
                };
                let mean_encoded_bytes = match registry.get("monitor.encoded_bytes_moved", &labels)
                {
                    Some(Metric::Histogram(h)) => h.mean(),
                    _ => 0.0,
                };
                let hits = registry.value("monitor.cache_hits", &labels);
                let probes = hits + registry.value("monitor.cache_misses", &labels);
                rows.push(MonitorRow {
                    profile: pname,
                    query: q.name(),
                    deployment: dep,
                    runs: n,
                    p50_ms: p50,
                    p95_ms: p95,
                    p99_ms: p99,
                    mean_bytes,
                    mean_encoded_bytes,
                    cache_hit_rate: if probes > 0.0 { hits / probes } else { 0.0 },
                });
            }
        }
    }
    let mut objects_live_hwm: Vec<(String, f64)> = envs[0]
        .1
        .cluster
        .node_names()
        .into_iter()
        .map(|n| {
            let hwm = fleet
                .metrics
                .high_water("ddl.objects_live", &[("engine", &n)]);
            (n, hwm)
        })
        .collect();
    objects_live_hwm.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(MonitorReport {
        sf,
        runs,
        rows,
        objects_live_hwm,
        registry,
        fleet_prometheus: fleet.metrics.render_prometheus(),
    })
}

/// Execute `sql` once under `deployment`, returning (latency_ms,
/// bytes_moved). Latency is end-to-end simulated time including the
/// middleware phases, matching what each system's user would observe.
fn run_one(e: &Env, deployment: &str, sql: &str, parallel: bool) -> Result<(f64, u64, u64)> {
    e.cluster.ledger.clear();
    match deployment {
        "xdb" => {
            let xdb = Xdb::new(&e.cluster, &e.catalog)
                .with_client_node(CLOUD)
                .with_options(XdbOptions {
                    parallel_execution: parallel,
                    ..Default::default()
                });
            let out = xdb.submit(sql)?;
            let moved = e.cluster.ledger.bytes_for(Purpose::InterDbmsPipeline)
                + e.cluster.ledger.bytes_for(Purpose::Materialization);
            let encoded = e
                .cluster
                .ledger
                .encoded_bytes_for(Purpose::InterDbmsPipeline)
                + e.cluster.ledger.encoded_bytes_for(Purpose::Materialization);
            Ok((out.breakdown.total_ms(), moved, encoded))
        }
        "garlic" => {
            let r =
                Mediator::new(&e.cluster, &e.catalog, MediatorConfig::garlic(CLOUD)).submit(sql)?;
            Ok((r.total_ms, r.fetch_bytes, r.fetch_encoded_bytes))
        }
        "presto4" => {
            let r = Mediator::new(&e.cluster, &e.catalog, MediatorConfig::presto(CLOUD, 4))
                .submit(sql)?;
            Ok((r.total_ms, r.fetch_bytes, r.fetch_encoded_bytes))
        }
        "sclera" => {
            let r = Sclera::new(&e.cluster, &e.catalog, CLOUD).submit(sql)?;
            Ok((r.total_ms, r.moved_bytes, r.moved_encoded_bytes))
        }
        other => Err(EngineError::Unsupported(format!(
            "unknown deployment {other:?}"
        ))),
    }
}

impl MonitorReport {
    /// The text dashboard.
    pub fn render_dashboard(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== fleet monitor: TD1 sf {}, {} run(s) per deployment ==",
            self.sf, self.runs
        );
        let _ = writeln!(
            out,
            "{:<7} {:<6} {:<10} {:>4} {:>12} {:>12} {:>12} {:>12} {:>10} {:>7} {:>10}",
            "profile",
            "query",
            "deploy",
            "runs",
            "p50 ms",
            "p95 ms",
            "p99 ms",
            "moved KB",
            "wire KB",
            "ratio",
            "cache hit"
        );
        let mut raw_total = 0.0f64;
        let mut enc_total = 0.0f64;
        for r in &self.rows {
            let ratio = if r.mean_encoded_bytes > 0.0 {
                r.mean_bytes / r.mean_encoded_bytes
            } else {
                0.0
            };
            raw_total += r.mean_bytes;
            enc_total += r.mean_encoded_bytes;
            let _ = writeln!(
                out,
                "{:<7} {:<6} {:<10} {:>4} {:>12.3} {:>12.3} {:>12.3} {:>12.1} {:>10.1} {:>6.2}x {:>9.1}%",
                r.profile,
                r.query,
                r.deployment,
                r.runs,
                r.p50_ms,
                r.p95_ms,
                r.p99_ms,
                r.mean_bytes / 1e3,
                r.mean_encoded_bytes / 1e3,
                ratio,
                100.0 * r.cache_hit_rate
            );
        }
        if enc_total > 0.0 {
            let _ = writeln!(
                out,
                "wire codec: {:.1} KB raw -> {:.1} KB encoded ({:.2}x compression)",
                raw_total / 1e3,
                enc_total / 1e3,
                raw_total / enc_total
            );
        }
        let mut hwm_line = String::from("live delegation objects (high-water):");
        let mut max = 0.0f64;
        for (node, hwm) in &self.objects_live_hwm {
            let _ = write!(hwm_line, " {node}={hwm}");
            max = max.max(*hwm);
        }
        let _ = writeln!(out, "{hwm_line}  [fleet max {max}]");
        out
    }

    /// Prometheus text exposition: the monitor's aggregation series
    /// followed by the fleet-wide telemetry captured during the workload.
    pub fn render_prometheus(&self) -> String {
        let mut out = self.registry.render_prometheus();
        out.push_str(&self.fleet_prometheus);
        out
    }

    /// Deterministic scalar values for the regression gate, keyed
    /// `profile/query/deployment/metric` (schema v2; v1 had no profile
    /// segment).
    pub fn flat_values(&self) -> BTreeMap<String, f64> {
        let mut v = BTreeMap::new();
        for r in &self.rows {
            v.insert(
                format!("{}/{}/{}/p50_ms", r.profile, r.query, r.deployment),
                r.p50_ms,
            );
            v.insert(
                format!("{}/{}/{}/mean_bytes", r.profile, r.query, r.deployment),
                r.mean_bytes,
            );
            v.insert(
                format!("{}/{}/{}/mean_enc_bytes", r.profile, r.query, r.deployment),
                r.mean_encoded_bytes,
            );
        }
        v
    }

    /// JSON export; also the [`crate::gate`] baseline format
    /// (`BENCH_monitor.json`).
    pub fn to_json(&self) -> String {
        self.to_json_with(&[], &BTreeMap::new())
    }

    /// [`MonitorReport::to_json`] with extra top-level numeric fields and
    /// extra gate series spliced into `"values"` — how the multi-tenant
    /// admission series ([`crate::tenants`]) ride the monitor baseline.
    pub fn to_json_with(
        &self,
        extra_fields: &[(&str, f64)],
        extra_values: &BTreeMap<String, f64>,
    ) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"bench\": \"monitor\",");
        let _ = writeln!(
            out,
            "  \"schema_version\": {},",
            crate::gate::MONITOR_SCHEMA_VERSION
        );
        let _ = writeln!(out, "  \"workload\": \"TD1\",");
        let _ = writeln!(out, "  \"sf\": {},", json_number(self.sf));
        let _ = writeln!(out, "  \"runs\": {},", self.runs);
        for (k, v) in extra_fields {
            let _ = writeln!(out, "  {}: {},", json_string(k), json_number(*v));
        }
        out.push_str("  \"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"profile\": {}, \"query\": {}, \"deployment\": {}, \"runs\": {}, \
                 \"p50_ms\": {}, \"p95_ms\": {}, \"p99_ms\": {}, \
                 \"mean_bytes\": {}, \"mean_enc_bytes\": {}, \"cache_hit_rate\": {}}}{}",
                json_string(r.profile),
                json_string(r.query),
                json_string(r.deployment),
                r.runs,
                json_number(r.p50_ms),
                json_number(r.p95_ms),
                json_number(r.p99_ms),
                json_number(r.mean_bytes),
                json_number(r.mean_encoded_bytes),
                json_number(r.cache_hit_rate),
                if i + 1 < self.rows.len() { "," } else { "" }
            );
        }
        out.push_str("  ],\n");
        out.push_str("  \"objects_live_hwm\": {");
        for (i, (node, hwm)) in self.objects_live_hwm.iter().enumerate() {
            let _ = write!(
                out,
                "{}{}: {}",
                if i > 0 { ", " } else { "" },
                json_string(node),
                json_number(*hwm)
            );
        }
        out.push_str("},\n");
        out.push_str("  \"values\": {\n");
        let mut values = self.flat_values();
        for (k, v) in extra_values {
            values.insert(k.clone(), *v);
        }
        for (i, (k, v)) in values.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {}: {}{}",
                json_string(k),
                json_number(*v),
                if i + 1 < values.len() { "," } else { "" }
            );
        }
        out.push_str("  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdb_obs::json;

    const TEST_SF: f64 = 0.002;

    #[test]
    fn monitor_covers_all_cells() {
        let report = run_monitor_with(TEST_SF, 2, Some(Telemetry::new_handle())).unwrap();
        assert_eq!(
            report.rows.len(),
            PROFILES.len() * TpchQuery::ALL.len() * DEPLOYMENTS.len()
        );
        for r in &report.rows {
            assert_eq!(r.runs, 2, "{}/{}", r.query, r.deployment);
            assert!(
                r.p50_ms > 0.0,
                "{}/{} has zero latency",
                r.query,
                r.deployment
            );
            assert!(r.p50_ms <= r.p95_ms && r.p95_ms <= r.p99_ms);
            assert!(
                r.mean_bytes > 0.0,
                "{}/{} moved nothing",
                r.query,
                r.deployment
            );
            assert!(
                r.mean_encoded_bytes > 0.0 && r.mean_encoded_bytes <= r.mean_bytes,
                "{}/{} encoded {} vs raw {}",
                r.query,
                r.deployment,
                r.mean_encoded_bytes,
                r.mean_bytes
            );
        }
        // With 2 runs per cell every second consultation hits the cache
        // (no DDL invalidates base-table probes between runs), so the
        // workload-wide hit rate must be well above zero.
        assert!(
            report.rows.iter().any(|r| r.cache_hit_rate > 0.0),
            "no cell ever hit the consultation cache"
        );
        // XDB deploys delegation artifacts on every engine at some point.
        let max_hwm = report
            .objects_live_hwm
            .iter()
            .map(|(_, h)| *h)
            .fold(0.0f64, f64::max);
        assert!(max_hwm > 0.0, "{:?}", report.objects_live_hwm);
        // The WAN profile has to bite: every geo cell pays at least the
        // latency of its on-premise twin (same data, slower links).
        for geo in report.rows.iter().filter(|r| r.profile == "geo") {
            let onprem = report
                .rows
                .iter()
                .find(|r| {
                    r.profile == "onprem" && r.query == geo.query && r.deployment == geo.deployment
                })
                .unwrap();
            assert!(
                geo.p50_ms >= onprem.p50_ms,
                "{}/{}: geo p50 {} < onprem p50 {}",
                geo.query,
                geo.deployment,
                geo.p50_ms,
                onprem.p50_ms
            );
        }
    }

    #[test]
    fn renders_are_complete_and_valid() {
        let report = run_monitor_with(TEST_SF, 1, Some(Telemetry::new_handle())).unwrap();
        let dash = report.render_dashboard();
        for dep in DEPLOYMENTS {
            assert!(dash.contains(dep), "{dash}");
        }
        for (pname, _) in PROFILES {
            assert!(dash.contains(pname), "{dash}");
        }
        assert!(dash.contains("live delegation objects"), "{dash}");

        let prom = report.render_prometheus();
        assert!(prom.contains("monitor_latency_ms_bucket{"), "{prom}");
        assert!(prom.contains("le=\"+Inf\""), "{prom}");
        // The fleet series captured during the workload ride along.
        assert!(prom.contains("ddl_objects_live"), "{prom}");

        let parsed = json::parse(&report.to_json()).expect("monitor JSON parses");
        let rows = parsed.get("rows").and_then(json::Value::as_array).unwrap();
        assert_eq!(rows.len(), report.rows.len());
        assert!(parsed.get("values").is_some());
    }

    #[test]
    fn wire_codec_at_least_halves_xdb_bytes() {
        // The ISSUE 5 acceptance bar: on the TD1 workload the columnar
        // codec moves at least 2x fewer bytes over XDB's streamed edges
        // than the raw wire size.
        let report = run_monitor_with(TEST_SF, 1, Some(Telemetry::new_handle())).unwrap();
        let (mut raw, mut enc) = (0.0f64, 0.0f64);
        for r in report.rows.iter().filter(|r| r.deployment == "xdb") {
            raw += r.mean_bytes;
            enc += r.mean_encoded_bytes;
        }
        assert!(
            raw >= 2.0 * enc,
            "xdb TD1 compression below 2x: raw {raw} encoded {enc}"
        );
    }

    #[test]
    fn monitor_is_deterministic_across_invocations() {
        let a = run_monitor_with(TEST_SF, 1, Some(Telemetry::new_handle())).unwrap();
        let b = run_monitor_with(TEST_SF, 1, Some(Telemetry::new_handle())).unwrap();
        assert_eq!(a.flat_values(), b.flat_values());
        assert_eq!(a.objects_live_hwm, b.objects_live_hwm);
    }
}
