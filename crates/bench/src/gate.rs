//! Bench regression gate: compare a current measurement set against a
//! checked-in baseline (`BENCH_exec.json` for the wall-clock kernel
//! micro-benchmarks, `BENCH_monitor.json` for the deterministic simulated
//! monitor workload) and fail when any series regressed past its
//! threshold.
//!
//! Two kinds of series, two thresholds:
//!
//! * **Wall-clock** kernel medians are noisy (shared CI hosts, thermal
//!   variance), so the exec gate defaults to a generous 50% slack — it
//!   catches order-of-magnitude regressions, not single-digit drift.
//! * **Simulated** monitor values are bit-deterministic, so the monitor
//!   gate defaults to 0.5% slack: any behavioural change that moves
//!   latency or bytes must re-baseline explicitly.
//!
//! Driven by `repro gate` (see `scripts/bench_gate.sh`); all comparisons
//! treat *higher is worse* — every gated series is a latency or a byte
//! count.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use xdb_obs::json;

/// Default slack for wall-clock criterion medians (percent).
pub const EXEC_THRESHOLD_PCT: f64 = 50.0;
/// Default slack for deterministic simulated monitor values (percent).
pub const MONITOR_THRESHOLD_PCT: f64 = 0.5;
/// Version of the monitor snapshot layout (`repro monitor --json`,
/// `BENCH_monitor.json`). The gate rejects mismatched-version baselines
/// instead of mis-parsing them. v2 added the engine-link profile
/// dimension (`onprem` / `geo`): rows carry a `"profile"` field and gate
/// keys read `profile/query/deployment/metric`. v3 added the per-codec
/// byte split (`.../codec_bytes/<codec>`) and the cost-model observatory
/// series (`.../cal_abs_err_pct`, `.../regret_ms` on XDB cells). v4 added
/// the learned-cost plan-flip share (`.../plan_flip_rate` on XDB cells):
/// each run's learned-cost plan compared against a static-cost re-plan of
/// the same SQL, so a pricing or feedback change that silently starts (or
/// stops) flipping plans fails the gate even when latency stays flat.
pub const MONITOR_SCHEMA_VERSION: u64 = 4;

/// One gated series.
#[derive(Debug, Clone)]
pub struct GateCheck {
    pub name: String,
    pub baseline: f64,
    pub current: f64,
    /// Relative change in percent; positive = slower / more bytes.
    pub delta_pct: f64,
    pub regressed: bool,
}

/// Outcome of comparing one measurement set against its baseline.
#[derive(Debug, Clone)]
pub struct GateReport {
    pub label: String,
    pub threshold_pct: f64,
    pub checks: Vec<GateCheck>,
    /// Baseline series missing from the current measurement — treated as
    /// failures so a silently dropped benchmark cannot pass the gate.
    pub missing: Vec<String>,
}

impl GateReport {
    pub fn passed(&self) -> bool {
        self.missing.is_empty() && self.checks.iter().all(|c| !c.regressed)
    }

    pub fn regressions(&self) -> Vec<&GateCheck> {
        self.checks.iter().filter(|c| c.regressed).collect()
    }

    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== gate: {} (threshold +{}%) ==",
            self.label, self.threshold_pct
        );
        for c in &self.checks {
            let _ = writeln!(
                out,
                "{} {:<32} baseline {:>12.4}  current {:>12.4}  {:>+8.2}%",
                if c.regressed { "FAIL" } else { " ok " },
                c.name,
                c.baseline,
                c.current,
                c.delta_pct
            );
        }
        for m in &self.missing {
            let _ = writeln!(out, "FAIL {m:<32} missing from current measurement");
        }
        let _ = writeln!(
            out,
            "gate: {} — {}/{} series within +{}%{}",
            if self.passed() { "PASS" } else { "FAIL" },
            self.checks.iter().filter(|c| !c.regressed).count(),
            self.checks.len(),
            self.threshold_pct,
            if self.missing.is_empty() {
                String::new()
            } else {
                format!(", {} missing", self.missing.len())
            }
        );
        out
    }
}

/// Compare `current` against `baseline`: a series regresses when it grew
/// past `threshold_pct` percent. Series present only in `current` (newly
/// added benchmarks) pass silently; series present only in `baseline`
/// fail as missing.
pub fn compare(
    label: &str,
    baseline: &BTreeMap<String, f64>,
    current: &BTreeMap<String, f64>,
    threshold_pct: f64,
) -> GateReport {
    let mut checks = Vec::new();
    let mut missing = Vec::new();
    for (name, &base) in baseline {
        let Some(&cur) = current.get(name) else {
            missing.push(name.clone());
            continue;
        };
        let delta_pct = if base.abs() > f64::EPSILON {
            100.0 * (cur - base) / base
        } else if cur.abs() > f64::EPSILON {
            f64::INFINITY
        } else {
            0.0
        };
        checks.push(GateCheck {
            name: name.clone(),
            baseline: base,
            current: cur,
            delta_pct,
            regressed: delta_pct > threshold_pct,
        });
    }
    GateReport {
        label: label.to_string(),
        threshold_pct,
        checks,
        missing,
    }
}

/// Parse a `BENCH_exec.json`-shaped snapshot
/// (`{"results": [{"name", "median", ...}]}`) into `name -> median ms`.
pub fn parse_exec_snapshot(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let value = json::parse(text)?;
    let results = value
        .get("results")
        .and_then(json::Value::as_array)
        .ok_or_else(|| "snapshot has no results array".to_string())?;
    let mut out = BTreeMap::new();
    for r in results {
        let name = r
            .get("name")
            .and_then(json::Value::as_str)
            .ok_or_else(|| "result entry without name".to_string())?;
        let median = r
            .get("median")
            .and_then(json::Value::as_f64)
            .ok_or_else(|| format!("result {name:?} without numeric median"))?;
        out.insert(name.to_string(), median);
    }
    if out.is_empty() {
        return Err("snapshot has an empty results array".to_string());
    }
    Ok(out)
}

/// Parse a `BENCH_monitor.json`-shaped snapshot (`{"values": {...}}`,
/// as emitted by [`crate::monitor::MonitorReport::to_json`]) into a flat
/// `key -> value` map.
pub fn parse_monitor_snapshot(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let value = json::parse(text)?;
    let version = value
        .get("schema_version")
        .and_then(json::Value::as_f64)
        .ok_or_else(|| {
            format!(
                "snapshot has no schema_version (this build expects {MONITOR_SCHEMA_VERSION}); \
                 re-baseline with `repro monitor --json`"
            )
        })? as u64;
    if version != MONITOR_SCHEMA_VERSION {
        return Err(format!(
            "snapshot schema_version {version} (this build supports {MONITOR_SCHEMA_VERSION})"
        ));
    }
    let Some(json::Value::Object(pairs)) = value.get("values") else {
        return Err("snapshot has no values object".to_string());
    };
    let mut out = BTreeMap::new();
    for (k, v) in pairs {
        let n = v
            .as_f64()
            .ok_or_else(|| format!("value {k:?} is not a number"))?;
        out.insert(k.clone(), n);
    }
    if out.is_empty() {
        return Err("snapshot has an empty values object".to_string());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(pairs: &[(&str, f64)]) -> BTreeMap<String, f64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn passes_within_threshold_fails_beyond() {
        let base = map(&[("a", 10.0), ("b", 20.0)]);
        let cur = map(&[("a", 10.4), ("b", 29.0)]);
        let report = compare("t", &base, &cur, 50.0);
        assert!(report.passed(), "{}", report.render());
        let report = compare("t", &base, &cur, 5.0);
        assert!(!report.passed());
        let regs = report.regressions();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].name, "b");
        assert!(report.render().contains("FAIL b"));
    }

    #[test]
    fn improvements_and_new_series_pass() {
        let base = map(&[("a", 10.0)]);
        let cur = map(&[("a", 4.0), ("brand_new", 99.0)]);
        let report = compare("t", &base, &cur, 0.5);
        assert!(report.passed(), "{}", report.render());
        assert_eq!(report.checks.len(), 1);
    }

    #[test]
    fn missing_series_fail() {
        let base = map(&[("a", 10.0), ("gone", 5.0)]);
        let cur = map(&[("a", 10.0)]);
        let report = compare("t", &base, &cur, 50.0);
        assert!(!report.passed());
        assert_eq!(report.missing, vec!["gone".to_string()]);
    }

    #[test]
    fn parses_exec_snapshot_format() {
        let text = r#"{
          "bench": "exec_kernels", "unit": "ms",
          "results": [
            {"name": "filter_columnar", "min": 1.8, "median": 1.94, "max": 2.1},
            {"name": "hash_join", "min": 3.0, "median": 3.5, "max": 4.0}
          ]
        }"#;
        let m = parse_exec_snapshot(text).unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m["filter_columnar"], 1.94);
        assert!(parse_exec_snapshot("{}").is_err());
    }

    #[test]
    fn parses_monitor_snapshot_format() {
        let text = r#"{"bench": "monitor", "schema_version": 4,
            "values": {"onprem/Q3/xdb/p50_ms": 12.5, "onprem/Q3/xdb/plan_flip_rate": 0.0}}"#;
        let m = parse_monitor_snapshot(text).unwrap();
        assert_eq!(m["onprem/Q3/xdb/p50_ms"], 12.5);
        assert!(parse_monitor_snapshot(r#"{"schema_version": 4, "values": {}}"#).is_err());
    }

    #[test]
    fn monitor_snapshot_schema_version_is_enforced() {
        // Missing version: pre-versioning baseline, rejected with a
        // re-baseline hint.
        let err = parse_monitor_snapshot(r#"{"values": {"a": 1}}"#).unwrap_err();
        assert!(err.contains("schema_version"), "{err}");
        // Mismatched version: rejected instead of mis-parsed.
        let err =
            parse_monitor_snapshot(r#"{"schema_version": 99, "values": {"a": 1}}"#).unwrap_err();
        assert!(err.contains("99"), "{err}");
    }

    #[test]
    fn shipped_exec_baseline_covers_all_bench_groups() {
        // The exec gate treats baseline-only series as failures, so every
        // criterion group `scripts/bench_snapshot.sh` runs must be present
        // in the checked-in baseline — a dropped group would otherwise
        // silently fall out of the gate.
        let m = parse_exec_snapshot(include_str!("../../../BENCH_exec.json")).unwrap();
        for series in [
            "filter_columnar",
            "aggregate_columnar",
            "aggregate_multikey_columnar",
            "wire_encode",
            "wire_decode",
            "wire_decode_chunked",
            "edge_unbounded",
            "edge_chunk_4096",
            "edge_chunk_256",
        ] {
            assert!(m.contains_key(series), "BENCH_exec.json missing {series}");
        }
    }

    #[test]
    fn monitor_roundtrips_through_gate() {
        let report =
            crate::monitor::run_monitor_with(0.002, 1, Some(xdb_obs::Telemetry::new_handle()))
                .unwrap();
        let baseline = parse_monitor_snapshot(&report.to_json()).unwrap();
        let gate = compare("monitor", &baseline, &report.flat_values(), 0.5);
        assert!(gate.passed(), "{}", gate.render());
        assert_eq!(gate.checks.len(), baseline.len());
    }
}
