//! `repro` — regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! repro all                      # everything (EXPERIMENTS.md is this output)
//! repro fig1|fig9|fig10|fig11|fig12|fig13|fig14|fig15
//! repro table2|table3|table4
//! repro ablations
//! repro --sf 0.05 fig9           # override the default scale factor
//! repro --out report.txt all     # write the report to a file
//! repro --trace out.json fig9    # also emit a Chrome-trace JSON of the
//!                                # six-query TD1 workload (open in
//!                                # chrome://tracing or ui.perfetto.dev)
//! repro --check-trace out.json   # validate a previously emitted trace
//! repro --log events.jsonl fig9  # export the structured event log of the
//!                                # run as JSON lines
//! repro monitor --runs 3         # fleet workload monitor: per-query ×
//!                                # per-deployment latency/bytes/cache
//!                                # dashboard; --metrics prom.txt and
//!                                # --json monitor.json add Prometheus
//!                                # and JSON exports (the JSON also
//!                                # carries the tenants/... gate series)
//! repro tenants --tenants 8 --runs 2
//!                                # multi-tenant admission benchmark:
//!                                # folded vs unfolded arms over a skewed
//!                                # TD1 mix; --digest P writes per-tenant
//!                                # result digests to P.folded.txt /
//!                                # P.unfolded.txt (must compare equal)
//! repro gate --monitor-baseline BENCH_monitor.json \
//!            --exec-baseline BENCH_exec.json --exec-current cur.json
//!                                # regression gate: exit 1 on threshold
//!                                # breach (scripts/bench_gate.sh)
//! repro profile                  # critical-path bottleneck table over
//!                                # the six TD1 queries
//! repro calibrate --runs 2       # cost-model observatory: predicted-vs-
//!                                # observed calibration error per engine/
//!                                # codec/edge shape + per-query placement
//!                                # regret (--td 1|2|3 picks the table
//!                                # distribution)
//! repro drift --baseline dir/ --current dir/ [--band PCT] [--flip-rate PCT]
//!                                # performance-drift detection between
//!                                # two history stores: exit 1 on plan
//!                                # flips, latency drift, critical-path
//!                                # composition shifts, or cost-model
//!                                # calibration drift; --flip-rate
//!                                # tolerates that share of plan flips
//!                                # between learned-cost histories
//! repro replay [--profiles dir/] [--td 1|2|3]
//!                                # learned-vs-static cost-model replay:
//!                                # re-annotate the workload under both
//!                                # pricing modes, report every plan flip
//!                                # with predicted + measured deltas
//! repro --profiles dir/ fig9     # seed the learned cost profiles of any
//!                                # target from dir/history.jsonl
//!                                # (XDB_PROFILE_DIR works too;
//!                                # XDB_STATIC_COSTS=1 disables learned
//!                                # pricing entirely)
//! repro --history dir/ profile   # record query history (JSON lines) to
//!                                # dir/history.jsonl (XDB_HISTORY_DIR
//!                                # works for any target)
//! repro --log-level warn fig9    # event-log record-time filter
//!                                # (XDB_LOG_LEVEL)
//! ```

use std::io::Write;
use xdb_bench::experiments as exp;
use xdb_bench::{calibrate, drift, gate, monitor, profiler, replay, tenants};
use xdb_obs::json;
use xdb_tpch::{TableDist, TpchQuery};

fn main() {
    // Escape hatch for overhead measurement: disable the always-on fleet
    // telemetry (metrics registry + event log) entirely.
    if std::env::var_os("XDB_TELEMETRY_OFF").is_some() {
        xdb_obs::telemetry::global().set_enabled(false);
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut sf = 0.05f64;
    let mut runs = 3usize;
    let mut tenant_count = 8usize;
    let mut digest_path: Option<String> = None;
    let mut targets: Vec<String> = Vec::new();
    let mut trace_path: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut log_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut exec_baseline: Option<String> = None;
    let mut exec_current: Option<String> = None;
    let mut monitor_baseline: Option<String> = None;
    let mut history_dir: Option<String> = None;
    let mut log_level: Option<String> = None;
    let mut drift_baseline: Option<String> = None;
    let mut drift_current: Option<String> = None;
    let mut drift_band = drift::DEFAULT_NOISE_PCT;
    let mut flip_rate: Option<f64> = None;
    let mut profiles_dir: Option<String> = None;
    let mut calibrate_td = TableDist::Td1;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--sf" => {
                sf = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--sf takes a number");
            }
            "--runs" => {
                runs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--runs takes a count");
            }
            "--tenants" => {
                tenant_count = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--tenants takes a count");
            }
            "--digest" => digest_path = Some(it.next().expect("--digest takes a path prefix")),
            "--trace" => trace_path = Some(it.next().expect("--trace takes a file path")),
            "--out" => out_path = Some(it.next().expect("--out takes a file path")),
            "--check-trace" => {
                check_path = Some(it.next().expect("--check-trace takes a file path"));
            }
            "--log" => log_path = Some(it.next().expect("--log takes a file path")),
            "--metrics" => metrics_path = Some(it.next().expect("--metrics takes a file path")),
            "--json" => json_path = Some(it.next().expect("--json takes a file path")),
            "--exec-baseline" => {
                exec_baseline = Some(it.next().expect("--exec-baseline takes a file path"));
            }
            "--exec-current" => {
                exec_current = Some(it.next().expect("--exec-current takes a file path"));
            }
            "--monitor-baseline" => {
                monitor_baseline = Some(it.next().expect("--monitor-baseline takes a file path"));
            }
            "--history" => history_dir = Some(it.next().expect("--history takes a directory")),
            "--log-level" => {
                log_level = Some(it.next().expect("--log-level takes debug|info|warn|error"));
            }
            "--td" => {
                calibrate_td = match it.next().as_deref() {
                    Some("1") | Some("td1") => TableDist::Td1,
                    Some("2") | Some("td2") => TableDist::Td2,
                    Some("3") | Some("td3") => TableDist::Td3,
                    other => {
                        eprintln!("repro: --td takes 1|2|3, got {other:?}");
                        std::process::exit(2);
                    }
                };
            }
            "--baseline" => drift_baseline = Some(it.next().expect("--baseline takes a directory")),
            "--current" => drift_current = Some(it.next().expect("--current takes a directory")),
            "--band" => {
                drift_band = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--band takes a percentage");
            }
            "--flip-rate" => {
                flip_rate = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--flip-rate takes a percentage"),
                );
            }
            "--profiles" => {
                profiles_dir = Some(it.next().expect("--profiles takes a history directory"));
            }
            _ => targets.push(a.to_ascii_lowercase()),
        }
    }
    // Record-time event filter: events below the level are never retained
    // (they are dropped in `EventLog::log`, not at export). The CLI flag
    // wins over `XDB_LOG_LEVEL`.
    if let Some(s) = log_level.or_else(|| std::env::var("XDB_LOG_LEVEL").ok()) {
        match xdb_obs::Level::parse(&s) {
            Some(level) => xdb_obs::telemetry::global().events.set_min_level(level),
            None => {
                eprintln!("repro: unknown log level {s:?} (debug|info|warn|error)");
                std::process::exit(2);
            }
        }
    }
    // Query-history store: every submission appends one JSON-lines record
    // to <dir>/history.jsonl.
    if let Some(dir) = history_dir.or_else(|| std::env::var("XDB_HISTORY_DIR").ok()) {
        if let Err(e) = xdb_obs::telemetry::global().history.enable_dir(&dir) {
            eprintln!("repro: cannot open history dir {dir}: {e}");
            std::process::exit(2);
        }
        eprintln!("(history: recording to {dir}/history.jsonl)");
    }
    // Learned cost profiles: aggregate a recorded workload's history into
    // per-(engine, edge-shape) pricing factors and seed every catalog this
    // process builds with them.  The store is also handed to `replay` as
    // its learned arm.
    let mut loaded_profiles: Option<xdb_core::CostProfiles> = None;
    let mut profile_source = String::from("(workload self-calibration)");
    if let Some(dir) = &profiles_dir {
        match xdb_core::CostProfiles::from_history_dir(dir) {
            Ok(p) => {
                eprintln!("(profiles: {} from {dir})", p.describe());
                xdb_core::set_seed_profiles(Some(p.clone()));
                profile_source = dir.clone();
                loaded_profiles = Some(p);
            }
            Err(e) => {
                eprintln!("repro: cannot load cost profiles from {dir}: {e}");
                std::process::exit(2);
            }
        }
    }
    if let Some(path) = check_path {
        check_trace(&path);
        return;
    }
    if targets.iter().any(|t| t == "gate") {
        run_gate(exec_baseline, exec_current, monitor_baseline);
        return;
    }
    if targets.iter().any(|t| t == "drift") {
        run_drift(drift_baseline, drift_current, drift_band, flip_rate);
        return;
    }
    if targets.is_empty() && trace_path.is_none() {
        eprintln!(
            "usage: repro [--sf X] [--out report.txt] [--trace out.json] [--log events.jsonl] \
             <all|fig1|fig9|fig10|fig11|fig12|fig13|fig14|fig15|table2|table3|table4|ablations>\n\
             \x20      repro [--sf X] [--runs N] [--metrics prom.txt] [--json monitor.json] monitor\n\
             \x20      repro [--sf X] [--runs R] [--tenants N] [--digest prefix] tenants\n\
             \x20      repro gate [--exec-baseline B --exec-current C] [--monitor-baseline B]\n\
             \x20      repro [--sf X] [--history dir] profile\n\
             \x20      repro [--sf X] [--runs N] [--td 1|2|3] calibrate\n\
             \x20      repro [--sf X] [--td 1|2|3] [--profiles dir] replay\n\
             \x20      repro drift --baseline dir --current dir [--band PCT] [--flip-rate PCT]\n\
             \x20      repro --check-trace out.json"
        );
        std::process::exit(2);
    }
    let mut out: Box<dyn Write> = match &out_path {
        Some(path) => Box::new(std::fs::File::create(path).expect("create --out file")),
        None => Box::new(std::io::stdout()),
    };
    let all = targets.iter().any(|t| t == "all");
    let want = |name: &str| all || targets.iter().any(|t| t == name);
    let t0 = std::time::Instant::now();

    if want("table2") {
        writeln!(out, "== Table II: system characteristics ==").unwrap();
        write!(out, "{}", xdb_core::characteristics::render_table()).unwrap();
        writeln!(out).unwrap();
    }
    if want("table3") {
        writeln!(out, "== Table III: table distributions ==").unwrap();
        write!(out, "{}", xdb_tpch::distributions::render_table3()).unwrap();
        writeln!(out).unwrap();
    }
    if want("fig1") {
        write!(out, "{}", exp::fig01(sf / 5.0, sf).expect("fig1").render()).unwrap();
        writeln!(out).unwrap();
    }
    if want("fig9") {
        for td in TableDist::ALL {
            write!(out, "{}", exp::fig09(td, sf).expect("fig9").render()).unwrap();
            writeln!(out).unwrap();
        }
    }
    if want("fig10") {
        write!(out, "{}", exp::fig10(sf).expect("fig10").render()).unwrap();
        writeln!(out).unwrap();
    }
    if want("fig11") {
        write!(out, "{}", exp::fig11(sf).expect("fig11").render()).unwrap();
        writeln!(out).unwrap();
    }
    if want("table4") {
        write!(out, "{}", exp::table4(sf).expect("table4")).unwrap();
        writeln!(out).unwrap();
    }
    if want("fig12") {
        let sfs = [sf / 10.0, sf / 2.0, sf, sf * 2.0];
        for fig in exp::fig12(&sfs).expect("fig12") {
            write!(out, "{}", fig.render()).unwrap();
            writeln!(out).unwrap();
        }
    }
    if want("fig13") {
        let sfs = [sf / 10.0, sf / 2.0, sf, sf * 2.0];
        write!(out, "{}", exp::fig13(&sfs).expect("fig13").render()).unwrap();
        writeln!(out).unwrap();
    }
    if want("fig14") {
        for td in [TableDist::Td1, TableDist::Td2] {
            write!(out, "{}", exp::fig14(td, sf).expect("fig14").render()).unwrap();
            writeln!(out).unwrap();
        }
    }
    if want("fig15") {
        let sfs = [sf / 10.0, sf / 2.0, sf, sf * 2.0];
        write!(
            out,
            "{}",
            exp::fig15(TpchQuery::Q3, TableDist::Td1, &sfs)
                .expect("fig15a")
                .render()
        )
        .unwrap();
        writeln!(out).unwrap();
        write!(
            out,
            "{}",
            exp::fig15(TpchQuery::Q8, TableDist::Td3, &sfs)
                .expect("fig15b")
                .render()
        )
        .unwrap();
        writeln!(out).unwrap();
    }
    if want("ablations") {
        write!(out, "{}", exp::ablation_movement(sf).expect("a1").render()).unwrap();
        writeln!(out).unwrap();
        write!(out, "{}", exp::ablation_pruning(sf).expect("a2").render()).unwrap();
        writeln!(out).unwrap();
        write!(out, "{}", exp::ablation_logical(sf).expect("a3").render()).unwrap();
        writeln!(out).unwrap();
        write!(out, "{}", exp::ablation_bushy(sf).expect("a4").render()).unwrap();
        writeln!(out).unwrap();
    }
    // `monitor` is deliberately not part of `all`: it re-runs the whole
    // workload N times and has its own output formats.
    if targets.iter().any(|t| t == "monitor") {
        let report = monitor::run_monitor(sf, runs).expect("monitor workload");
        write!(out, "{}", report.render_dashboard()).unwrap();
        if let Some(path) = &metrics_path {
            std::fs::write(path, report.render_prometheus()).expect("write --metrics file");
            eprintln!("(metrics: Prometheus exposition -> {path})");
        }
        if let Some(path) = &json_path {
            // The monitor JSON doubles as the regression-gate baseline;
            // ride the multi-tenant admission series along so the gate
            // covers plan folding too.
            let tr = tenants::run_tenants(sf, tenant_count, runs).expect("tenants workload");
            let json = report.to_json_with(
                &[
                    ("tenants", tenant_count as f64),
                    ("tenant_rounds", runs as f64),
                ],
                &tr.flat_values(),
            );
            std::fs::write(path, json).expect("write --json file");
            eprintln!("(monitor JSON incl. tenant series -> {path})");
        }
    }
    // `calibrate` is likewise not part of `all`: it re-runs the six-query
    // workload with the cost-model observatory and has its own report.
    if targets.iter().any(|t| t == "calibrate") {
        let report = calibrate::run_calibrate(calibrate_td, sf, runs).expect("calibrate workload");
        write!(out, "{}", report.render()).unwrap();
    }
    // `replay` is likewise not part of `all`: it re-annotates the workload
    // under static and learned pricing and reports every plan flip.  With
    // no --profiles directory it first runs the workload once with live
    // feedback enabled and replays against that self-calibrated store.
    if targets.iter().any(|t| t == "replay") {
        let profiles = match loaded_profiles {
            Some(p) => p,
            None => replay::learn_profiles(calibrate_td, sf).expect("profile-learning workload"),
        };
        let store = if profiles.is_empty() {
            None
        } else {
            Some(profiles)
        };
        let report = replay::run_replay(calibrate_td, sf, store.as_ref(), &profile_source)
            .expect("replay workload");
        write!(out, "{}", report.render()).unwrap();
    }
    // `profile` is likewise not part of `all`: it re-runs the six-query
    // workload with critical-path analysis and has its own table format.
    if targets.iter().any(|t| t == "profile") {
        let profiles = profiler::profile_workload(sf).expect("profile workload");
        write!(out, "{}", profiler::render_table(sf, &profiles)).unwrap();
    }
    // `tenants` is likewise not part of `all`: it runs the whole skewed
    // mix twice (folded + unfolded) and has its own digest export.
    if targets.iter().any(|t| t == "tenants") {
        let report = tenants::run_tenants(sf, tenant_count, runs).expect("tenants workload");
        write!(out, "{}", report.render_dashboard()).unwrap();
        if let Some(prefix) = &digest_path {
            let fp = format!("{prefix}.folded.txt");
            let up = format!("{prefix}.unfolded.txt");
            std::fs::write(&fp, report.folded.digest()).expect("write folded digest");
            std::fs::write(&up, report.unfolded.digest()).expect("write unfolded digest");
            eprintln!("(digests: {fp} / {up})");
        }
    }
    if let Some(path) = trace_path {
        let trace = exp::trace_workload(sf).expect("trace workload");
        std::fs::write(&path, trace.to_chrome_json()).expect("write --trace file");
        eprintln!(
            "(trace: {} spans across {} lanes -> {path})",
            trace.spans.len(),
            trace.lanes().len()
        );
    }
    if let Some(path) = log_path {
        let events = xdb_obs::telemetry::global().events.to_jsonl();
        let n = events.lines().count();
        std::fs::write(&path, events).expect("write --log file");
        eprintln!("(log: {n} structured events -> {path})");
    }
    out.flush().unwrap();
    eprintln!("(repro finished in {:.1?})", t0.elapsed());
}

/// `repro gate`: compare fresh measurements against checked-in baselines;
/// exit 1 when any gated series regressed past its threshold. The exec
/// gate compares two snapshot files (the current one is produced by
/// `scripts/bench_gate.sh` re-running the criterion bench); the monitor
/// gate re-runs the deterministic monitor workload at the baseline's own
/// sf/runs and compares in-process.
fn run_gate(
    exec_baseline: Option<String>,
    exec_current: Option<String>,
    monitor_baseline: Option<String>,
) {
    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("gate: cannot read {path}: {e}");
            std::process::exit(2);
        })
    };
    let parse = |what: &str, r: Result<std::collections::BTreeMap<String, f64>, String>| {
        r.unwrap_or_else(|e| {
            eprintln!("gate: bad {what} snapshot: {e}");
            std::process::exit(2);
        })
    };
    let mut ran = false;
    let mut passed = true;
    if let Some(base_path) = exec_baseline {
        let cur_path = exec_current.unwrap_or_else(|| {
            eprintln!("gate: --exec-baseline requires --exec-current");
            std::process::exit(2);
        });
        let base = parse(
            "exec baseline",
            gate::parse_exec_snapshot(&read(&base_path)),
        );
        let cur = parse("exec current", gate::parse_exec_snapshot(&read(&cur_path)));
        let report = gate::compare("exec_kernels", &base, &cur, gate::EXEC_THRESHOLD_PCT);
        print!("{}", report.render());
        passed &= report.passed();
        ran = true;
    }
    if let Some(base_path) = monitor_baseline {
        let text = read(&base_path);
        let base = parse("monitor baseline", gate::parse_monitor_snapshot(&text));
        // Re-run at the baseline's own parameters so the series line up.
        let doc = json::parse(&text).expect("monitor baseline re-parse");
        let sf = doc.get("sf").and_then(json::Value::as_f64).unwrap_or(0.002);
        let runs = doc.get("runs").and_then(json::Value::as_f64).unwrap_or(2.0) as usize;
        let mut current = monitor::run_monitor(sf, runs)
            .expect("monitor workload")
            .flat_values();
        // Baselines that carry multi-tenant admission series re-run the
        // tenants workload at the baseline's own shape so they line up.
        if base.keys().any(|k| k.starts_with("tenants/")) {
            let tn = doc
                .get("tenants")
                .and_then(json::Value::as_f64)
                .unwrap_or(8.0) as usize;
            let rounds = doc
                .get("tenant_rounds")
                .and_then(json::Value::as_f64)
                .unwrap_or(2.0) as usize;
            current.extend(
                tenants::run_tenants(sf, tn, rounds)
                    .expect("tenants workload")
                    .flat_values(),
            );
        }
        let report = gate::compare("monitor", &base, &current, gate::MONITOR_THRESHOLD_PCT);
        print!("{}", report.render());
        passed &= report.passed();
        ran = true;
    }
    if !ran {
        eprintln!("gate: nothing to compare — pass --exec-baseline/--exec-current and/or --monitor-baseline");
        std::process::exit(2);
    }
    if !passed {
        std::process::exit(1);
    }
}

/// `repro drift`: compare two history directories; exit 1 when any drift
/// was found (plan flip, latency beyond the band, composition shift,
/// cost-model calibration drift, or a baseline query missing from the
/// current store), 2 on usage or load errors (including schema-version
/// mismatches).  With `--flip-rate PCT`, plan flips between learned-cost
/// histories are tolerated up to that share of compared plan groups —
/// learned pricing is *expected* to move plans as profiles accrue.
fn run_drift(
    baseline: Option<String>,
    current: Option<String>,
    band_pct: f64,
    flip_rate: Option<f64>,
) {
    let (Some(base), Some(cur)) = (baseline, current) else {
        eprintln!("drift: pass --baseline dir/ and --current dir/");
        std::process::exit(2);
    };
    let report = drift::compare_dirs_with(&base, &cur, band_pct, flip_rate).unwrap_or_else(|e| {
        eprintln!("drift: {e}");
        std::process::exit(2);
    });
    print!("{}", report.render());
    if !report.passed() {
        std::process::exit(1);
    }
}

/// Validate a Chrome-trace JSON file emitted by `--trace`: it must parse,
/// and every named lane must carry at least one complete ("X") event.
/// Exits 2 on any violation.
fn check_trace(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("check-trace: cannot read {path}: {e}");
        std::process::exit(2);
    });
    let value = json::parse(&text).unwrap_or_else(|e| {
        eprintln!("check-trace: {path} is not valid JSON: {e}");
        std::process::exit(2);
    });
    let Some(events) = value.get("traceEvents").and_then(json::Value::as_array) else {
        eprintln!("check-trace: {path} has no traceEvents array");
        std::process::exit(2);
    };
    let mut lanes: Vec<(f64, String)> = Vec::new(); // (tid, name)
    let mut x_tids: Vec<f64> = Vec::new();
    for e in events {
        let ph = e.get("ph").and_then(json::Value::as_str);
        let tid = e.get("tid").and_then(json::Value::as_f64);
        match ph {
            Some("M") if e.get("name").and_then(json::Value::as_str) == Some("thread_name") => {
                let name = e
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(json::Value::as_str)
                    .unwrap_or("?")
                    .to_string();
                lanes.push((tid.unwrap_or(-1.0), name));
            }
            Some("X") => x_tids.push(tid.unwrap_or(-1.0)),
            _ => {}
        }
    }
    if lanes.is_empty() || x_tids.is_empty() {
        eprintln!(
            "check-trace: {path} has {} lanes and {} X events",
            lanes.len(),
            x_tids.len()
        );
        std::process::exit(2);
    }
    let mut bad = false;
    for (tid, name) in &lanes {
        let n = x_tids.iter().filter(|t| *t == tid).count();
        if n == 0 {
            eprintln!("check-trace: lane {name:?} (tid {tid}) has no spans");
            bad = true;
        }
    }
    if bad {
        std::process::exit(2);
    }
    println!(
        "check-trace: {path} OK — {} X events across {} lanes",
        x_tids.len(),
        lanes.len()
    );
}
