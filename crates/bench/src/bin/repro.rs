//! `repro` — regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! repro all              # everything (EXPERIMENTS.md is this output)
//! repro fig1|fig9|fig10|fig11|fig12|fig13|fig14|fig15
//! repro table2|table3|table4
//! repro ablations
//! repro --sf 0.05 fig9   # override the default scale factor
//! ```

use xdb_bench::experiments as exp;
use xdb_tpch::{TableDist, TpchQuery};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut sf = 0.05f64;
    let mut targets: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--sf" {
            sf = it
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--sf takes a number");
        } else {
            targets.push(a.to_ascii_lowercase());
        }
    }
    if targets.is_empty() {
        eprintln!("usage: repro [--sf X] <all|fig1|fig9|fig10|fig11|fig12|fig13|fig14|fig15|table2|table3|table4|ablations>");
        std::process::exit(2);
    }
    let all = targets.iter().any(|t| t == "all");
    let want = |name: &str| all || targets.iter().any(|t| t == name);
    let t0 = std::time::Instant::now();

    if want("table2") {
        println!("== Table II: system characteristics ==");
        print!("{}", xdb_core::characteristics::render_table());
        println!();
    }
    if want("table3") {
        println!("== Table III: table distributions ==");
        print!("{}", xdb_tpch::distributions::render_table3());
        println!();
    }
    if want("fig1") {
        print!("{}", exp::fig01(sf / 5.0, sf).expect("fig1").render());
        println!();
    }
    if want("fig9") {
        for td in TableDist::ALL {
            print!("{}", exp::fig09(td, sf).expect("fig9").render());
            println!();
        }
    }
    if want("fig10") {
        print!("{}", exp::fig10(sf).expect("fig10").render());
        println!();
    }
    if want("fig11") {
        print!("{}", exp::fig11(sf).expect("fig11").render());
        println!();
    }
    if want("table4") {
        print!("{}", exp::table4(sf).expect("table4"));
        println!();
    }
    if want("fig12") {
        let sfs = [sf / 10.0, sf / 2.0, sf, sf * 2.0];
        for fig in exp::fig12(&sfs).expect("fig12") {
            print!("{}", fig.render());
            println!();
        }
    }
    if want("fig13") {
        let sfs = [sf / 10.0, sf / 2.0, sf, sf * 2.0];
        print!("{}", exp::fig13(&sfs).expect("fig13").render());
        println!();
    }
    if want("fig14") {
        for td in [TableDist::Td1, TableDist::Td2] {
            print!("{}", exp::fig14(td, sf).expect("fig14").render());
            println!();
        }
    }
    if want("fig15") {
        let sfs = [sf / 10.0, sf / 2.0, sf, sf * 2.0];
        print!(
            "{}",
            exp::fig15(TpchQuery::Q3, TableDist::Td1, &sfs)
                .expect("fig15a")
                .render()
        );
        println!();
        print!(
            "{}",
            exp::fig15(TpchQuery::Q8, TableDist::Td3, &sfs)
                .expect("fig15b")
                .render()
        );
        println!();
    }
    if want("ablations") {
        print!("{}", exp::ablation_movement(sf).expect("a1").render());
        println!();
        print!("{}", exp::ablation_pruning(sf).expect("a2").render());
        println!();
        print!("{}", exp::ablation_logical(sf).expect("a3").render());
        println!();
        print!("{}", exp::ablation_bushy(sf).expect("a4").render());
        println!();
    }
    eprintln!("(repro finished in {:.1?})", t0.elapsed());
}
