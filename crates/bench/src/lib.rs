//! # xdb-bench
//!
//! The reproduction harness: one runner per table/figure of the paper's
//! evaluation ([`experiments`]), rendered as aligned text ([`report`]).
//!
//! Two entry points:
//! - `cargo run --release -p xdb-bench --bin repro -- <experiment|all>` —
//!   regenerate the tables/figures (this is what EXPERIMENTS.md records);
//! - `cargo bench -p xdb-bench` — Criterion benchmarks, one per
//!   table/figure, timing each reproduction pipeline at a small scale.

pub mod experiments;
pub mod report;
