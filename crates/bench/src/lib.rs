//! # xdb-bench
//!
//! The reproduction harness: one runner per table/figure of the paper's
//! evaluation ([`experiments`]), rendered as aligned text ([`report`]).
//!
//! Entry points:
//! - `cargo run --release -p xdb-bench --bin repro -- <experiment|all>` —
//!   regenerate the tables/figures (this is what EXPERIMENTS.md records);
//! - `repro monitor --runs N` — the fleet workload monitor ([`monitor`]):
//!   per-query × per-deployment latency/bytes/cache dashboards;
//! - `repro tenants --tenants N --runs R` — the multi-tenant admission
//!   benchmark ([`tenants`]): folded vs unfolded arms over a skewed TD1
//!   mix, with per-tenant result digests;
//! - `repro gate` — the bench regression gate ([`gate`]), comparing fresh
//!   measurements against `BENCH_exec.json` / `BENCH_monitor.json`;
//! - `repro profile` — critical-path bottleneck attribution for the TD1
//!   workload ([`profiler`]);
//! - `repro drift --baseline dir/ --current dir/` — performance-drift
//!   detection over query-history stores ([`drift`]), with a
//!   `--flip-rate` budget for learned-cost histories;
//! - `repro replay [--profiles dir/]` — learned-vs-static cost-model
//!   replay ([`replay`]): re-annotates the workload under both pricing
//!   modes and reports every plan flip with predicted and measured
//!   deltas;
//! - `cargo bench -p xdb-bench` — Criterion benchmarks, one per
//!   table/figure, timing each reproduction pipeline at a small scale.

pub mod calibrate;
pub mod drift;
pub mod experiments;
pub mod gate;
pub mod monitor;
pub mod profiler;
pub mod replay;
pub mod report;
pub mod tenants;
