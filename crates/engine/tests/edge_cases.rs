//! Engine edge-case suite: behaviours not covered by the module unit
//! tests — composite keys, self joins, non-equi joins, NULL handling in
//! every operator, and DDL lifecycle corners.

use xdb_engine::cluster::Cluster;
use xdb_engine::profile::EngineProfile;
use xdb_engine::relation::Relation;
use xdb_engine::{EngineError, NoRemote};
use xdb_sql::value::{date, Value};

fn cluster() -> Cluster {
    let c = Cluster::lan(&["db"], EngineProfile::postgres());
    c.execute_script(
        "db",
        "CREATE TABLE pairs (a BIGINT, b BIGINT, tag VARCHAR);
         INSERT INTO pairs VALUES
           (1, 1, 'one-one'), (1, 2, 'one-two'), (2, 1, 'two-one'), (2, 2, 'two-two');
         CREATE TABLE lookup (a BIGINT, b BIGINT, label VARCHAR);
         INSERT INTO lookup VALUES (1, 2, 'L12'), (2, 2, 'L22'), (3, 3, 'L33');
         CREATE TABLE events (id BIGINT, day DATE, name VARCHAR);
         INSERT INTO events VALUES
           (1, DATE '1995-01-01', 'alpha'), (2, DATE '1995-06-15', 'omega'),
           (3, DATE '1996-02-29', 'leap'), (4, NULL, NULL);",
    )
    .unwrap();
    c
}

fn q(c: &Cluster, sql: &str) -> Relation {
    c.query("db", sql).unwrap().0
}

#[test]
fn composite_key_join() {
    let c = cluster();
    let r = q(
        &c,
        "SELECT p.tag, l.label FROM pairs p, lookup l WHERE p.a = l.a AND p.b = l.b ORDER BY p.tag",
    );
    assert_eq!(r.len(), 2);
    assert_eq!(r.value(0, 0), Value::str("one-two"));
    assert_eq!(r.value(0, 1), Value::str("L12"));
    assert_eq!(r.value(1, 0), Value::str("two-two"));
}

#[test]
fn self_join_with_aliases() {
    let c = cluster();
    // Pairs (x, y) with swapped counterparts.
    let r = q(
        &c,
        "SELECT p1.tag, p2.tag FROM pairs p1, pairs p2 \
         WHERE p1.a = p2.b AND p1.b = p2.a AND p1.a < p1.b",
    );
    assert_eq!(r.len(), 1);
    assert_eq!(r.value(0, 0), Value::str("one-two"));
    assert_eq!(r.value(0, 1), Value::str("two-one"));
}

#[test]
fn non_equi_join_falls_back_to_nested_loop() {
    let c = cluster();
    let r = q(
        &c,
        "SELECT count(*) AS n FROM pairs p, lookup l WHERE p.a < l.a",
    );
    // pairs.a values {1,1,2,2}; lookup.a values {1,2,3}.
    // 1<2,1<3 (x2 rows with a=1 → 4), 2<3 (x2 rows with a=2 → 2) = 6.
    assert_eq!(r.value(0, 0), Value::Int(6));
}

#[test]
fn inequality_plus_equality_uses_residual() {
    let c = cluster();
    let r = q(
        &c,
        "SELECT p.tag FROM pairs p, lookup l WHERE p.a = l.a AND p.b < l.b ORDER BY p.tag",
    );
    // a=1: lookup (1,2): pairs (1,1) passes. a=2: lookup (2,2): pairs (2,1).
    assert_eq!(r.len(), 2);
    assert_eq!(r.value(0, 0), Value::str("one-one"));
    assert_eq!(r.value(1, 0), Value::str("two-one"));
}

#[test]
fn min_max_over_strings_and_dates() {
    let c = cluster();
    let r = q(
        &c,
        "SELECT min(name) AS lo, max(name) AS hi, min(day) AS first, max(day) AS last FROM events",
    );
    assert_eq!(r.value(0, 0), Value::str("alpha"));
    assert_eq!(r.value(0, 1), Value::str("omega"));
    assert_eq!(
        r.value(0, 2),
        Value::Date(date::parse("1995-01-01").unwrap())
    );
    assert_eq!(
        r.value(0, 3),
        Value::Date(date::parse("1996-02-29").unwrap())
    );
}

#[test]
fn distinct_treats_null_as_one_group() {
    let c = cluster();
    c.execute_script(
        "db",
        "CREATE TABLE n (v BIGINT);
         INSERT INTO n VALUES (1), (NULL), (1), (NULL), (2);",
    )
    .unwrap();
    let r = q(&c, "SELECT DISTINCT v FROM n");
    assert_eq!(r.len(), 3);
    let r = q(&c, "SELECT v, count(*) AS c FROM n GROUP BY v");
    assert_eq!(r.len(), 3);
    let null_group = r
        .rows()
        .find(|row| row[0].is_null())
        .expect("null group exists");
    assert_eq!(null_group[1], Value::Int(2));
}

#[test]
fn insert_evaluates_expressions() {
    let c = cluster();
    c.execute_script(
        "db",
        "CREATE TABLE calc (x BIGINT, y VARCHAR, z DATE);
         INSERT INTO calc VALUES (2 + 3 * 4, upper('ok'), DATE '1995-01-01' + INTERVAL '2' MONTH);",
    )
    .unwrap();
    let r = q(&c, "SELECT * FROM calc");
    assert_eq!(r.value(0, 0), Value::Int(14));
    assert_eq!(r.value(0, 1), Value::str("OK"));
    assert_eq!(
        r.value(0, 2),
        Value::Date(date::parse("1995-03-01").unwrap())
    );
}

#[test]
fn order_by_mixed_directions() {
    let c = cluster();
    let r = q(&c, "SELECT a, b FROM pairs ORDER BY a ASC, b DESC");
    let got: Vec<(i64, i64)> = r
        .rows()
        .map(|row| (row[0].as_int().unwrap(), row[1].as_int().unwrap()))
        .collect();
    assert_eq!(got, vec![(1, 2), (1, 1), (2, 2), (2, 1)]);
}

#[test]
fn view_lifecycle_drop_and_recreate() {
    let c = cluster();
    c.execute("db", "CREATE VIEW v AS SELECT a FROM pairs WHERE b = 1")
        .unwrap();
    assert_eq!(
        q(&c, "SELECT count(*) AS n FROM v").value(0, 0),
        Value::Int(2)
    );
    c.execute("db", "DROP VIEW v").unwrap();
    assert!(c.query("db", "SELECT * FROM v").is_err());
    c.execute("db", "CREATE VIEW v AS SELECT b FROM pairs WHERE a = 2")
        .unwrap();
    assert_eq!(
        q(&c, "SELECT count(*) AS n FROM v").value(0, 0),
        Value::Int(2)
    );
}

#[test]
fn dropping_table_breaks_dependent_view_at_query_time() {
    let c = cluster();
    c.execute("db", "CREATE VIEW lv AS SELECT label FROM lookup")
        .unwrap();
    c.execute("db", "DROP TABLE lookup").unwrap();
    let err = c.query("db", "SELECT * FROM lv").unwrap_err();
    assert!(matches!(err, EngineError::Bind(_)), "{err}");
}

#[test]
fn explain_statement_returns_estimates_row() {
    let c = cluster();
    let r = q(&c, "EXPLAIN SELECT * FROM pairs WHERE a = 1");
    assert_eq!(r.width(), 3);
    assert_eq!(r.len(), 1);
}

#[test]
fn group_by_date_extract_with_nulls() {
    let c = cluster();
    let r = q(
        &c,
        "SELECT extract(year from day) AS y, count(*) AS n FROM events GROUP BY y ORDER BY 1",
    );
    // 1995 (x2), 1996, NULL year group.
    assert_eq!(r.len(), 3);
}

#[test]
fn like_on_null_is_not_a_match() {
    let c = cluster();
    let r = q(&c, "SELECT count(*) AS n FROM events WHERE name LIKE '%p%'");
    assert_eq!(r.value(0, 0), Value::Int(2)); // alpha, leap — NULL excluded
}

#[test]
fn engine_rejects_unknown_statement_targets() {
    let c = cluster();
    assert!(matches!(
        c.execute("db", "DROP TABLE ghost").unwrap_err(),
        EngineError::Catalog(_)
    ));
    assert!(matches!(
        c.execute("db", "INSERT INTO ghost VALUES (1)").unwrap_err(),
        EngineError::Catalog(_)
    ));
}

#[test]
fn load_table_rejects_duplicates() {
    let c = cluster();
    let rel = Relation::new(vec![("x".into(), xdb_sql::DataType::Int)], vec![]);
    c.engine("db")
        .unwrap()
        .load_table("fresh", rel.clone())
        .unwrap();
    assert!(c.engine("db").unwrap().load_table("fresh", rel).is_err());
}

#[test]
fn create_if_not_exists_is_idempotent() {
    let c = cluster();
    c.execute("db", "CREATE TABLE IF NOT EXISTS pairs (zz BIGINT)")
        .unwrap();
    // Original schema intact.
    assert_eq!(
        q(&c, "SELECT count(*) AS n FROM pairs").value(0, 0),
        Value::Int(4)
    );
    // Plain CREATE still errors.
    assert!(c.execute("db", "CREATE TABLE pairs (zz BIGINT)").is_err());
}

#[test]
fn no_remote_is_rejected_for_foreign_scan() {
    let c = cluster();
    c.execute(
        "db",
        "CREATE FOREIGN TABLE ft (x BIGINT) SERVER elsewhere OPTIONS (remote 'r')",
    )
    .unwrap();
    let engine = c.engine("db").unwrap();
    let err = engine
        .execute_sql("SELECT * FROM ft", &NoRemote)
        .unwrap_err();
    assert!(matches!(err, EngineError::Remote(_)));
}
