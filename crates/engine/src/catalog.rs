//! Per-engine catalog: base tables (with statistics), views, and SQL/MED
//! foreign tables and servers.

use crate::error::{EngineError, Result};
use crate::relation::Relation;
use std::collections::HashMap;
use std::sync::Arc;
use xdb_sql::ast::{ColumnDef, ObjectKind, SelectStmt};
use xdb_sql::bind::{ResolvedRelation, SchemaProvider};
use xdb_sql::column::{Column, TypedCol};
use xdb_sql::hash::FastSet;
use xdb_sql::stats::{ColumnStats, StatsProvider};
use xdb_sql::value::{DataType, Value};

/// Statistics of one base table, recomputed on load.
#[derive(Debug, Clone, Default)]
pub struct TableStats {
    pub row_count: f64,
    pub columns: HashMap<String, ColumnStats>,
}

/// A stored base table. The whole relation (schema + rows) is shared via
/// `Arc`, so catalog snapshots are cheap and identity scans can hand out
/// the stored relation without copying a single row.
#[derive(Debug, Clone)]
pub struct TableData {
    pub data: Arc<Relation>,
    pub stats: TableStats,
}

impl TableData {
    pub fn fields(&self) -> &[(String, DataType)] {
        &self.data.fields
    }

    /// Deep copy for callers that need an owned relation.
    pub fn to_relation(&self) -> Relation {
        (*self.data).clone()
    }
}

/// One catalog entry.
#[derive(Debug, Clone)]
pub enum CatalogEntry {
    Table(TableData),
    /// A view stores its defining query; binding expands it in place.
    View {
        query: Box<SelectStmt>,
    },
    /// A SQL/MED foreign table: schema + pointer to a relation on another
    /// server.
    ForeignTable {
        fields: Vec<(String, DataType)>,
        server: String,
        remote_name: String,
    },
}

impl CatalogEntry {
    pub fn kind(&self) -> ObjectKind {
        match self {
            CatalogEntry::Table(_) => ObjectKind::Table,
            CatalogEntry::View { .. } => ObjectKind::View,
            CatalogEntry::ForeignTable { .. } => ObjectKind::ForeignTable,
        }
    }
}

/// The catalog of one engine. Cloning snapshots the whole catalog (cheap:
/// table rows are `Arc`-shared).
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    entries: HashMap<String, CatalogEntry>,
}

impl Catalog {
    pub fn new() -> Catalog {
        Catalog::default()
    }

    fn key(name: &str) -> String {
        name.to_ascii_lowercase()
    }

    pub fn get(&self, name: &str) -> Option<&CatalogEntry> {
        self.entries.get(&Self::key(name))
    }

    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.entries.keys().cloned().collect();
        v.sort();
        v
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total stored rows across all base tables (views and foreign tables
    /// hold no local rows). Feeds the per-engine `catalog.rows` gauge.
    pub fn total_rows(&self) -> u64 {
        self.entries
            .values()
            .map(|e| match e {
                CatalogEntry::Table(t) => t.data.len() as u64,
                _ => 0,
            })
            .sum()
    }

    fn insert_new(&mut self, name: &str, entry: CatalogEntry) -> Result<()> {
        let key = Self::key(name);
        if self.entries.contains_key(&key) {
            return Err(EngineError::Catalog(format!(
                "relation {name:?} already exists"
            )));
        }
        self.entries.insert(key, entry);
        Ok(())
    }

    pub fn create_table(&mut self, name: &str, columns: &[ColumnDef]) -> Result<()> {
        let fields: Vec<(String, DataType)> = columns
            .iter()
            .map(|c| (c.name.clone(), c.data_type))
            .collect();
        self.insert_new(
            name,
            CatalogEntry::Table(TableData {
                stats: TableStats {
                    row_count: 0.0,
                    columns: HashMap::new(),
                },
                data: Arc::new(Relation::new(fields, Vec::new())),
            }),
        )
    }

    /// Create (or replace the contents of) a table directly from a
    /// materialized relation — the loader path and CREATE TABLE AS.
    pub fn create_table_from(&mut self, name: &str, rel: Relation) -> Result<()> {
        let stats = compute_stats(&rel);
        self.insert_new(
            name,
            CatalogEntry::Table(TableData {
                data: Arc::new(rel),
                stats,
            }),
        )
    }

    pub fn insert_rows(&mut self, name: &str, new_rows: Vec<Vec<Value>>) -> Result<()> {
        let entry = self
            .entries
            .get_mut(&Self::key(name))
            .ok_or_else(|| EngineError::Catalog(format!("unknown table {name:?}")))?;
        let CatalogEntry::Table(t) = entry else {
            return Err(EngineError::Catalog(format!(
                "{name:?} is not a base table"
            )));
        };
        for r in &new_rows {
            if r.len() != t.data.width() {
                return Err(EngineError::Catalog(format!(
                    "row width {} does not match table {name:?} width {}",
                    r.len(),
                    t.data.width()
                )));
            }
        }
        Arc::make_mut(&mut t.data).append_rows(new_rows);
        t.stats = compute_stats(&t.data);
        Ok(())
    }

    pub fn create_view(&mut self, name: &str, query: SelectStmt, or_replace: bool) -> Result<()> {
        let key = Self::key(name);
        if or_replace {
            if let Some(existing) = self.entries.get(&key) {
                if existing.kind() != ObjectKind::View {
                    return Err(EngineError::Catalog(format!(
                        "{name:?} exists and is not a view"
                    )));
                }
                self.entries.remove(&key);
            }
        }
        self.insert_new(
            name,
            CatalogEntry::View {
                query: Box::new(query),
            },
        )
    }

    pub fn create_foreign_table(
        &mut self,
        name: &str,
        columns: &[ColumnDef],
        server: &str,
        remote_name: Option<&str>,
    ) -> Result<()> {
        self.insert_new(
            name,
            CatalogEntry::ForeignTable {
                fields: columns
                    .iter()
                    .map(|c| (c.name.clone(), c.data_type))
                    .collect(),
                server: server.to_string(),
                remote_name: remote_name.unwrap_or(name).to_string(),
            },
        )
    }

    pub fn drop(&mut self, kind: ObjectKind, name: &str, if_exists: bool) -> Result<()> {
        let key = Self::key(name);
        match self.entries.get(&key) {
            Some(entry) => {
                if entry.kind() != kind {
                    return Err(EngineError::Catalog(format!(
                        "{name:?} is a {:?}, not a {kind:?}",
                        entry.kind()
                    )));
                }
                self.entries.remove(&key);
                Ok(())
            }
            None if if_exists => Ok(()),
            None => Err(EngineError::Catalog(format!("unknown object {name:?}"))),
        }
    }

    /// Fields of any relation kind, for metadata consultation.
    pub fn relation_fields(&self, name: &str) -> Option<Vec<(String, DataType)>> {
        match self.get(name)? {
            CatalogEntry::Table(t) => Some(t.fields().to_vec()),
            CatalogEntry::ForeignTable { fields, .. } => Some(fields.clone()),
            CatalogEntry::View { .. } => None, // requires binding; engine handles it
        }
    }
}

impl SchemaProvider for Catalog {
    fn resolve_relation(&self, name: &str) -> Option<ResolvedRelation> {
        match self.get(name)? {
            CatalogEntry::Table(t) => Some(ResolvedRelation::Base {
                fields: t.fields().to_vec(),
            }),
            CatalogEntry::ForeignTable { fields, .. } => Some(ResolvedRelation::Base {
                fields: fields.clone(),
            }),
            CatalogEntry::View { query } => Some(ResolvedRelation::View {
                query: query.clone(),
            }),
        }
    }
}

impl StatsProvider for Catalog {
    fn table_rows(&self, relation: &str) -> Option<f64> {
        match self.get(relation)? {
            CatalogEntry::Table(t) => Some(t.stats.row_count),
            _ => None,
        }
    }

    fn column_stats(&self, relation: &str, column: &str) -> Option<ColumnStats> {
        match self.get(relation)? {
            CatalogEntry::Table(t) => t.stats.columns.get(&column.to_ascii_lowercase()).cloned(),
            _ => None,
        }
    }
}

/// Compute row count, per-column distinct counts, and min/max. One pass
/// per column over the typed vectors (values are cheap to clone: strings
/// are `Arc`-shared).
/// min / max / n_distinct of one typed column, entirely on the native
/// representation. `cmp` must match `Value::total_cmp` restricted to two
/// non-null values of this type; `key` must map equal-by-`Value::eq` values
/// to equal keys and distinct ones to distinct keys (so the set size equals
/// the `HashSet<Value>` size the generic path would produce).
fn typed_stats<T, K: std::hash::Hash + Eq>(
    col: &TypedCol<T>,
    cmp: impl Fn(&T, &T) -> std::cmp::Ordering,
    key: impl Fn(&T) -> K,
    wrap: impl Fn(&T) -> Value,
) -> ColumnStats {
    let mut distinct: FastSet<K> = FastSet::default();
    let mut min: Option<&T> = None;
    let mut max: Option<&T> = None;
    let dense = col.nulls.none_set();
    for (i, v) in col.data.iter().enumerate() {
        if !dense && col.nulls.get(i) {
            continue;
        }
        match min {
            Some(m) if cmp(v, m) != std::cmp::Ordering::Less => {}
            _ => min = Some(v),
        }
        match max {
            Some(m) if cmp(v, m) != std::cmp::Ordering::Greater => {}
            _ => max = Some(v),
        }
        distinct.insert(key(v));
    }
    ColumnStats {
        n_distinct: distinct.len() as f64,
        min: min.map(&wrap),
        max: max.map(&wrap),
    }
}

fn column_stats(col: &Column) -> ColumnStats {
    match col {
        Column::Int(c) => typed_stats(c, |a, b| a.cmp(b), |v| *v, |v| Value::Int(*v)),
        // Float total_cmp: partial_cmp, with the NaN case degrading to the
        // type-tag tie (Equal); equality and hence distinctness is by bits.
        Column::Float(c) => typed_stats(
            c,
            |a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal),
            |v| v.to_bits(),
            |v| Value::Float(*v),
        ),
        Column::Str(c) => typed_stats(
            c,
            |a, b| a.as_ref().cmp(b.as_ref()),
            Arc::clone,
            |v| Value::Str(Arc::clone(v)),
        ),
        Column::Date(c) => typed_stats(c, |a, b| a.cmp(b), |v| *v, |v| Value::Date(*v)),
        Column::Bool(c) => typed_stats(c, |a, b| a.cmp(b), |v| *v, |v| Value::Bool(*v)),
        Column::Mixed(_) => {
            // Heterogeneous values: keep the general Value-based path (the
            // cross-type Int/Float equality rules live in `Value::eq`).
            let mut distinct: std::collections::HashSet<Value> =
                std::collections::HashSet::with_capacity(1024);
            let mut min: Option<Value> = None;
            let mut max: Option<Value> = None;
            for v in col.iter() {
                if v.is_null() {
                    continue;
                }
                match &min {
                    Some(m) if v.total_cmp(m) != std::cmp::Ordering::Less => {}
                    _ => min = Some(v.clone()),
                }
                match &max {
                    Some(m) if v.total_cmp(m) != std::cmp::Ordering::Greater => {}
                    _ => max = Some(v.clone()),
                }
                distinct.insert(v);
            }
            ColumnStats {
                n_distinct: distinct.len() as f64,
                min,
                max,
            }
        }
    }
}

pub fn compute_stats(rel: &Relation) -> TableStats {
    let mut columns = HashMap::with_capacity(rel.width());
    for ((name, _), col) in rel.fields.iter().zip(rel.columns()) {
        columns.insert(name.to_ascii_lowercase(), column_stats(col));
    }
    TableStats {
        row_count: rel.len() as f64,
        columns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdb_sql::parser::parse_select;

    fn cols(defs: &[(&str, DataType)]) -> Vec<ColumnDef> {
        defs.iter()
            .map(|(n, t)| ColumnDef {
                name: n.to_string(),
                data_type: *t,
            })
            .collect()
    }

    #[test]
    fn create_insert_stats() {
        let mut c = Catalog::new();
        c.create_table("t", &cols(&[("a", DataType::Int), ("b", DataType::Str)]))
            .unwrap();
        c.insert_rows(
            "t",
            vec![
                vec![Value::Int(1), Value::str("x")],
                vec![Value::Int(2), Value::str("x")],
                vec![Value::Int(2), Value::Null],
            ],
        )
        .unwrap();
        assert_eq!(c.table_rows("t"), Some(3.0));
        let a = c.column_stats("t", "a").unwrap();
        assert_eq!(a.n_distinct, 2.0);
        assert_eq!(a.min, Some(Value::Int(1)));
        assert_eq!(a.max, Some(Value::Int(2)));
        let b = c.column_stats("t", "b").unwrap();
        assert_eq!(b.n_distinct, 1.0); // NULL ignored
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut c = Catalog::new();
        c.create_table("t", &cols(&[("a", DataType::Int)])).unwrap();
        assert!(c.create_table("T", &cols(&[("a", DataType::Int)])).is_err());
    }

    #[test]
    fn row_width_checked() {
        let mut c = Catalog::new();
        c.create_table("t", &cols(&[("a", DataType::Int)])).unwrap();
        assert!(c.insert_rows("t", vec![vec![]]).is_err());
    }

    #[test]
    fn views_and_foreign_tables() {
        let mut c = Catalog::new();
        c.create_view("v", parse_select("SELECT 1 AS one").unwrap(), false)
            .unwrap();
        assert!(matches!(
            c.resolve_relation("V"),
            Some(ResolvedRelation::View { .. })
        ));
        // OR REPLACE works on views only.
        c.create_view("v", parse_select("SELECT 2 AS two").unwrap(), true)
            .unwrap();
        c.create_foreign_table(
            "ft",
            &cols(&[("x", DataType::Int)]),
            "db2",
            Some("remote_x"),
        )
        .unwrap();
        match c.get("ft") {
            Some(CatalogEntry::ForeignTable {
                server,
                remote_name,
                ..
            }) => {
                assert_eq!(server, "db2");
                assert_eq!(remote_name, "remote_x");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn drop_semantics() {
        let mut c = Catalog::new();
        c.create_table("t", &cols(&[("a", DataType::Int)])).unwrap();
        // Wrong kind errors.
        assert!(c.drop(ObjectKind::View, "t", false).is_err());
        c.drop(ObjectKind::Table, "t", false).unwrap();
        assert!(c.drop(ObjectKind::Table, "t", false).is_err());
        c.drop(ObjectKind::Table, "t", true).unwrap(); // IF EXISTS
    }

    #[test]
    fn snapshot_is_cheap_and_isolated() {
        let mut c = Catalog::new();
        c.create_table("t", &cols(&[("a", DataType::Int)])).unwrap();
        c.insert_rows("t", vec![vec![Value::Int(1)]]).unwrap();
        let snap = c.clone();
        c.insert_rows("t", vec![vec![Value::Int(2)]]).unwrap();
        assert_eq!(snap.table_rows("t"), Some(1.0));
        assert_eq!(c.table_rows("t"), Some(2.0));
    }
}
