//! # xdb-engine
//!
//! The embedded relational DBMS substrate of the XDB reproduction. Each
//! [`engine::Engine`] stands in for one underlying DBMS of the paper's
//! testbed (PostgreSQL / MariaDB / Hive, selected by [`profile`]), complete
//! with:
//!
//! - a catalog of base tables (with statistics), views, and SQL/MED
//!   foreign tables ([`catalog`]);
//! - local binding + optimization (the engine reorders operations within a
//!   task, as the paper's execution-autonomy assumption demands);
//! - a materializing executor over real tuples with work accounting
//!   ([`exec`], [`expr`]);
//! - EXPLAIN-style cost probes answering the XDB optimizer's "consulting"
//!   requests;
//! - a [`cluster::Cluster`] that wires engines over the simulated network
//!   and implements the foreign-data-wrapper fetch path.

pub mod catalog;
pub mod cluster;
pub mod engine;
pub mod error;
pub mod exec;
pub mod expr;
pub mod profile;
pub mod relation;
pub mod vector;

pub use cluster::Cluster;
pub use engine::{
    default_stream_chunk_rows, Engine, ExecReport, ExplainInfo, NoRemote, Remote, StatementOutcome,
    DEFAULT_STREAM_CHUNK_ROWS,
};
pub use error::{EngineError, Result};
pub use profile::EngineProfile;
pub use relation::Relation;
