//! Per-vendor engine performance profiles.
//!
//! The paper's testbed mixes PostgreSQL, MariaDB and Hive (Section VI-A,
//! Fig 10). We reproduce the *relative* behaviours its analysis relies on:
//! MariaDB "is not designed to be a high-performance OLAP DBMS", Hive "is
//! designed to handle data on a distributed file system but ... operates on
//! one node only" (large fixed start-up, decent throughput), and the FDW
//! transfer protocol differences (binary vs JDBC).

use xdb_net::params;
use xdb_sql::display::Dialect;

/// Capability flags of a vendor's SQL/MED wrapper implementation. The
/// paper's "Preventing Undesirable Executions" discussion exists because
/// these differ across vendors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FdwCapabilities {
    /// Wrapper may push filters across to the remote side.
    pub pushdown_filters: bool,
    /// Wrapper may push projections across to the remote side.
    pub pushdown_projections: bool,
}

/// Simulation profile of one DBMS vendor.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineProfile {
    /// Vendor label ("postgres", "mariadb", "hive").
    pub vendor: &'static str,
    /// SQL dialect the engine speaks.
    pub dialect: Dialect,
    /// Simulated milliseconds per work unit (one tuple through one
    /// operator, before per-operator weights).
    pub cpu_tuple_cost_ms: f64,
    /// Extra multiplier on join/aggregate work (OLAP weakness shows here).
    pub olap_factor: f64,
    /// Fixed per-query start-up time.
    pub startup_ms: f64,
    /// Per-row cost of writing a materialized relation (CREATE TABLE AS).
    pub write_cost_ms: f64,
    /// Per-row overhead of consuming a *pipelined* foreign table through
    /// this engine's wrapper (the γ of the movement-cost model; see
    /// DESIGN.md §3).
    pub foreign_row_cost_ms: f64,
    /// Per-byte multiplier of the wrapper's transfer protocol.
    pub protocol_overhead: f64,
    /// What this vendor's wrapper is allowed to push down.
    pub fdw: FdwCapabilities,
}

impl EngineProfile {
    /// PostgreSQL-like: the baseline OLTP/OLAP allrounder with binary FDW
    /// transfer (postgres_fdw).
    pub fn postgres() -> EngineProfile {
        EngineProfile {
            vendor: "postgres",
            dialect: Dialect::PostgresLike,
            cpu_tuple_cost_ms: 0.0001,
            olap_factor: 1.0,
            startup_ms: 5.0,
            write_cost_ms: 0.00015,
            foreign_row_cost_ms: 0.00005,
            protocol_overhead: params::BINARY_PROTOCOL_OVERHEAD,
            fdw: FdwCapabilities {
                pushdown_filters: true,
                pushdown_projections: true,
            },
        }
    }

    /// MariaDB-like: fine row-store, weak at analytical joins/aggregations
    /// (the paper's Fig 10 discussion), CONNECT-engine style wrapper that
    /// does not push operations down.
    pub fn mariadb() -> EngineProfile {
        EngineProfile {
            vendor: "mariadb",
            dialect: Dialect::MariaDbLike,
            cpu_tuple_cost_ms: 0.0004,
            // No hash join: block-nested-loop effects make large
            // analytical joins an order of magnitude costlier than the
            // per-tuple scan gap alone suggests.
            olap_factor: 6.0,
            startup_ms: 4.0,
            write_cost_ms: 0.0003,
            // The CONNECT-engine wrapper fetches row-at-a-time with no
            // batching: consuming foreign data through MariaDB is an
            // order of magnitude pricier than postgres_fdw.
            foreign_row_cost_ms: 0.0010,
            protocol_overhead: 1.5 * params::BINARY_PROTOCOL_OVERHEAD,
            fdw: FdwCapabilities {
                pushdown_filters: false,
                pushdown_projections: false,
            },
        }
    }

    /// Hive-like: high fixed start-up (container/JVM/MR planning), decent
    /// scan throughput, JDBC storage-handler transfers.
    pub fn hive() -> EngineProfile {
        EngineProfile {
            vendor: "hive",
            dialect: Dialect::HiveLike,
            cpu_tuple_cost_ms: 0.0004,
            olap_factor: 2.0,
            startup_ms: 60.0,
            write_cost_ms: 0.0004,
            // JDBC storage-handler fetch: deserialization per row.
            foreign_row_cost_ms: 0.0012,
            protocol_overhead: params::JDBC_PROTOCOL_OVERHEAD,
            fdw: FdwCapabilities {
                pushdown_filters: true,
                pushdown_projections: false,
            },
        }
    }

    /// Convert accumulated work units into simulated milliseconds.
    pub fn work_ms(&self, scan_units: f64, olap_units: f64) -> f64 {
        (scan_units + olap_units * self.olap_factor) * self.cpu_tuple_cost_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_reproduce_paper_relativities() {
        let pg = EngineProfile::postgres();
        let maria = EngineProfile::mariadb();
        let hive = EngineProfile::hive();
        // MariaDB pays more for the same OLAP work.
        assert!(maria.work_ms(0.0, 1e6) > pg.work_ms(0.0, 1e6));
        // Hive start-up dwarfs the others (scaled to the simulation's
        // compressed time base).
        assert!(hive.startup_ms > 10.0 * pg.startup_ms);
        // Hive's JDBC transfer costs more per byte than Postgres binary.
        assert!(hive.protocol_overhead > pg.protocol_overhead);
        // Postgres pushes down; MariaDB's wrapper does not.
        assert!(pg.fdw.pushdown_filters && !maria.fdw.pushdown_filters);
    }

    #[test]
    fn work_ms_scales_linearly() {
        let pg = EngineProfile::postgres();
        assert!((pg.work_ms(2e6, 0.0) - 2.0 * pg.work_ms(1e6, 0.0)).abs() < 1e-9);
    }
}
