//! The embedded DBMS engine: SQL in, relations out.
//!
//! Each engine stands in for one underlying DBMS of the federation
//! (PostgreSQL/MariaDB/Hive per its [`EngineProfile`]). It owns a catalog,
//! binds and locally optimizes incoming SQL (the engine is free to reorder
//! operations *within* a task — exactly the autonomy the paper grants
//! underlying DBMSes), executes plans over real tuples, and reports both
//! measured cardinalities and simulated timing.

use crate::catalog::{Catalog, CatalogEntry};
use crate::error::{EngineError, Result};
use crate::exec::{
    project_columns, project_columns_owned, project_columns_shared, ExecRel, Execution, ScanOutput,
    ScanResolver, Scratch, StreamedScan,
};
use crate::profile::EngineProfile;
use crate::relation::Relation;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use xdb_net::{compose_finish, EdgeTiming, Movement, NodeId, Purpose};
use xdb_obs::{ExecProfile, Telemetry};
use xdb_sql::algebra::LogicalPlan;
use xdb_sql::ast::Statement;
use xdb_sql::bind::bind_select;
use xdb_sql::optimize::{optimize, OptimizeOptions};
use xdb_sql::stats::{ColumnStats, Estimator};
use xdb_sql::value::{DataType, Value};

/// Maximum depth of cross-engine recursion (cycle guard for view chains).
pub const MAX_FETCH_DEPTH: usize = 32;

/// Execution report of one statement.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecReport {
    pub rows: u64,
    pub bytes: u64,
    /// Local work on this engine, simulated ms.
    pub work_ms: f64,
    /// Finish time including upstream (remote) dependencies, simulated ms
    /// from query start.
    pub finish_ms: f64,
    /// Per-operator execution profile, present only when the engine has
    /// operator tracing enabled (see [`Engine::set_op_tracing`]).
    pub profile: Option<Box<ExecProfile>>,
}

/// Result of executing one statement.
#[derive(Debug, Clone)]
pub struct StatementOutcome {
    /// Present for SELECT and EXPLAIN.
    pub relation: Option<Relation>,
    pub report: ExecReport,
}

/// EXPLAIN-style estimate, the engine's answer to a "consulting" probe
/// (Section IV-B2).
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainInfo {
    pub est_rows: f64,
    pub est_bytes: f64,
    /// Estimated execution cost in this engine's (calibratable) cost units.
    pub est_cost: f64,
}

/// A request to fetch `SELECT * FROM relation` from another engine.
pub struct FetchRequest<'a> {
    pub server: &'a str,
    pub relation: &'a str,
    pub consumer: NodeId,
    /// Per-byte protocol multiplier of the *consumer's* wrapper.
    pub protocol_overhead: f64,
    pub purpose: Purpose,
    pub depth: usize,
}

/// Reply to a fetch: the data plus timing of producer and wire.
pub struct FetchReply {
    pub relation: Relation,
    pub producer_finish_ms: f64,
    pub transfer_ms: f64,
    /// Execution profile of the producer side, when operator tracing is on.
    pub producer_profile: Option<Box<ExecProfile>>,
}

/// Reply metadata of a streamed fetch: everything [`FetchReply`] carries
/// except the relation itself, which was already delivered morsel by
/// morsel to the consumer's callback.
pub struct FetchStreamReply {
    /// Schema of the streamed edge (every morsel shares it).
    pub fields: Vec<(String, DataType)>,
    /// Total rows delivered across all morsels.
    pub nrows: usize,
    pub producer_finish_ms: f64,
    pub transfer_ms: f64,
    /// Execution profile of the producer side, when operator tracing is on.
    pub producer_profile: Option<Box<ExecProfile>>,
}

/// Consumer-side morsel sink for a streamed fetch. Returning an error
/// cancels the edge (the producer side unblocks and abandons the stream).
pub type MorselSink<'a> = dyn FnMut(&Relation) -> Result<()> + 'a;

/// Something that can execute remote fetches on behalf of an engine — in
/// practice the [`crate::cluster::Cluster`]. Kept as a trait so engines can
/// run standalone and so tests can inject failures.
pub trait Remote {
    fn fetch(&self, request: FetchRequest<'_>) -> Result<FetchReply>;

    /// Fetch a relation as a morsel stream: `on_morsel` observes every
    /// transport chunk in edge order, and the reply carries only
    /// metadata. Byte accounting, simulated timings, and the
    /// concatenation of the morsels are bit-identical to [`Remote::fetch`];
    /// what changes is wall-clock shape (decode and consumer compute can
    /// overlap under the reactor). The default delivers the whole
    /// relation as a single morsel.
    fn fetch_stream(
        &self,
        request: FetchRequest<'_>,
        on_morsel: &mut MorselSink<'_>,
    ) -> Result<FetchStreamReply> {
        let reply = self.fetch(request)?;
        if !reply.relation.is_empty() {
            on_morsel(&reply.relation)?;
        }
        Ok(FetchStreamReply {
            fields: reply.relation.fields.clone(),
            nrows: reply.relation.len(),
            producer_finish_ms: reply.producer_finish_ms,
            transfer_ms: reply.transfer_ms,
            producer_profile: reply.producer_profile,
        })
    }
}

/// A `Remote` that refuses all fetches (standalone engines).
pub struct NoRemote;

impl Remote for NoRemote {
    fn fetch(&self, request: FetchRequest<'_>) -> Result<FetchReply> {
        Err(EngineError::Remote(format!(
            "no remote connectivity (fetch of {:?} from {:?})",
            request.relation, request.server
        )))
    }
}

/// One embedded DBMS instance.
pub struct Engine {
    pub node: NodeId,
    pub profile: EngineProfile,
    catalog: RwLock<Catalog>,
    /// Bumped on every catalog mutation except those against transient
    /// per-query objects (see [`is_transient_object`]); consultation caches
    /// key their entries to the generation they observed and treat a
    /// mismatch as a stale entry (any DDL against base objects invalidates
    /// all cached probes for this node).
    ddl_generation: AtomicU64,
    /// When set, every executed plan carries a per-operator
    /// [`ExecProfile`] in its report. Off by default: the executor then
    /// skips all per-operator bookkeeping.
    trace_ops: AtomicBool,
    /// Hash partitions for parallel join/aggregation kernels. 1 means
    /// fully sequential; any value yields bit-identical results (row
    /// order included), so this only trades wall-clock for threads.
    exec_partitions: AtomicUsize,
    /// Transport morsel size (rows) for streamed dataflow edges; 0 means
    /// unbounded (one chunk per edge). Codec state is computed per edge,
    /// never per chunk, so any value yields bit-identical results,
    /// ledgers, and simulated timings — only the quarantined `net.chunks`
    /// metric (and wall-clock overlap) changes.
    stream_chunk_rows: AtomicUsize,
    /// Reactor worker budget for streamed edges; 0 disables the reactor
    /// (morsels decode inline on the consuming thread). Like the other
    /// two knobs, any value yields bit-identical observables — the
    /// reactor only moves wall-clock decode work onto pool threads.
    reactor_threads: AtomicUsize,
    /// Reusable per-query executor scratch (hash tables, chain buffers).
    /// Executions pop one on entry and push it back after the run, so
    /// steady-state queries stop reallocating their largest structures.
    scratch_pool: Mutex<Vec<Scratch>>,
    /// Fleet telemetry sink. Per-engine gauges (`ddl.objects_live`,
    /// `catalog.rows`) are published while holding the catalog write lock,
    /// so their value sequence is exactly the catalog mutation order;
    /// scheduling-dependent counts (scratch-pool reuse) go under the
    /// `sched.` prefix and are excluded from determinism comparisons.
    telemetry: RwLock<Arc<Telemetry>>,
}

/// Short-lived, per-query namespaced objects: delegation views / foreign
/// tables / materializations (`xdb_q…`) and mediator scratch tables
/// (`__task_…`). They are created and dropped around every submission and
/// are never the target of a consultation probe.
pub fn is_transient_object(name: &str) -> bool {
    let n = name.trim_start_matches('"');
    n.starts_with("xdb_q") || n.starts_with("__task_")
}

impl Engine {
    pub fn new(node: impl Into<String>, profile: EngineProfile) -> Engine {
        let engine = Engine {
            node: NodeId::new(node),
            profile,
            catalog: RwLock::new(Catalog::new()),
            ddl_generation: AtomicU64::new(0),
            trace_ops: AtomicBool::new(false),
            exec_partitions: AtomicUsize::new(default_exec_partitions()),
            stream_chunk_rows: AtomicUsize::new(default_stream_chunk_rows()),
            reactor_threads: AtomicUsize::new(xdb_net::reactor::default_threads()),
            scratch_pool: Mutex::new(Vec::new()),
            telemetry: RwLock::new(Arc::clone(xdb_obs::telemetry::global())),
        };
        engine.publish_partitions_gauge();
        engine
    }

    /// Current telemetry handle.
    pub fn telemetry(&self) -> Arc<Telemetry> {
        Arc::clone(&self.telemetry.read())
    }

    /// Swap the telemetry sink (tests attach an isolated handle) and
    /// re-publish this engine's gauges under it.
    pub fn set_telemetry(&self, telemetry: Arc<Telemetry>) {
        *self.telemetry.write() = telemetry;
        self.publish_partitions_gauge();
        let catalog = self.catalog.read();
        self.publish_catalog_gauges(&catalog);
    }

    fn publish_partitions_gauge(&self) {
        let labels = [("engine", self.node.as_str())];
        self.telemetry().metrics.gauge_set(
            "exec.partitions",
            &labels,
            self.exec_partitions() as f64,
        );
        // Under `sched.` so chunk-size bit-identity comparisons never see
        // the knob itself.
        self.telemetry().metrics.gauge_set(
            "sched.stream_chunk_rows",
            &labels,
            self.stream_chunk_rows() as f64,
        );
        self.telemetry().metrics.gauge_set(
            "sched.reactor_threads",
            &labels,
            self.reactor_threads() as f64,
        );
    }

    /// Publish `ddl.objects_live` / `catalog.rows` for this engine. Called
    /// with the catalog (write) lock held so the gauge value sequence
    /// mirrors catalog mutation order; during execution both quantities
    /// only grow (drops happen in the sequential cleanup phase), so the
    /// high-water marks are deterministic too.
    fn publish_catalog_gauges(&self, catalog: &Catalog) {
        let t = self.telemetry();
        let labels = [("engine", self.node.as_str())];
        t.metrics
            .gauge_set("ddl.objects_live", &labels, catalog.len() as f64);
        t.metrics
            .gauge_set("catalog.rows", &labels, catalog.total_rows() as f64);
    }

    /// Enable or disable per-operator execution profiles on this engine.
    pub fn set_op_tracing(&self, on: bool) {
        self.trace_ops.store(on, Ordering::Release);
    }

    /// Whether per-operator execution profiles are being collected.
    pub fn op_tracing(&self) -> bool {
        self.trace_ops.load(Ordering::Acquire)
    }

    /// Set the number of hash partitions used by the parallel join and
    /// aggregation kernels (clamped to at least 1). Partitioning never
    /// changes results — output row order is preserved exactly.
    pub fn set_exec_partitions(&self, n: usize) {
        self.exec_partitions.store(n.max(1), Ordering::Release);
        self.publish_partitions_gauge();
    }

    /// Current executor partition count.
    pub fn exec_partitions(&self) -> usize {
        self.exec_partitions.load(Ordering::Acquire)
    }

    /// Set the transport morsel size (rows) for streamed dataflow edges;
    /// 0 means unbounded. Never changes results or simulated timings —
    /// codec state is per edge, so only consumption granularity moves.
    pub fn set_stream_chunk_rows(&self, rows: usize) {
        self.stream_chunk_rows.store(rows, Ordering::Release);
        self.publish_partitions_gauge();
    }

    /// Current transport morsel size (rows); 0 = unbounded.
    pub fn stream_chunk_rows(&self) -> usize {
        self.stream_chunk_rows.load(Ordering::Acquire)
    }

    /// Set the reactor worker budget for streamed edges (0 = off, decode
    /// inline). Never changes results, ledgers, or simulated timings.
    pub fn set_reactor_threads(&self, n: usize) {
        self.reactor_threads.store(n, Ordering::Release);
        self.publish_partitions_gauge();
    }

    /// Current reactor worker budget; 0 = reactor off.
    pub fn reactor_threads(&self) -> usize {
        self.reactor_threads.load(Ordering::Acquire)
    }

    /// Run read-only catalog access.
    pub fn with_catalog<T>(&self, f: impl FnOnce(&Catalog) -> T) -> T {
        f(&self.catalog.read())
    }

    /// Run catalog mutation.
    pub fn with_catalog_mut<T>(&self, f: impl FnOnce(&mut Catalog) -> T) -> T {
        let out = {
            let mut catalog = self.catalog.write();
            let out = f(&mut catalog);
            self.publish_catalog_gauges(&catalog);
            out
        };
        self.ddl_generation.fetch_add(1, Ordering::Release);
        out
    }

    /// Catalog mutation on behalf of a named object. Per-query transient
    /// objects (delegation views / foreign tables / materializations,
    /// mediator scratch tables) are namespaced and never the target of a
    /// consultation probe, so creating or dropping them leaves cached
    /// probes against this node's base tables valid.
    pub fn with_catalog_mut_for<T>(&self, object: &str, f: impl FnOnce(&mut Catalog) -> T) -> T {
        if is_transient_object(object) {
            let mut catalog = self.catalog.write();
            let out = f(&mut catalog);
            self.publish_catalog_gauges(&catalog);
            out
        } else {
            self.with_catalog_mut(f)
        }
    }

    /// Current catalog generation; changes whenever the catalog is mutated.
    pub fn ddl_generation(&self) -> u64 {
        self.ddl_generation.load(Ordering::Acquire)
    }

    /// Count one executed DDL statement of `kind` (commutative, so the
    /// totals are identical under any executor interleaving).
    fn note_ddl(&self, kind: &'static str) {
        self.telemetry().metrics.counter_add(
            "ddl.statements",
            &[("engine", self.node.as_str()), ("kind", kind)],
            1.0,
        );
    }

    /// Bulk-load a table (generator path); replaces nothing, errors on
    /// duplicates.
    pub fn load_table(&self, name: &str, rel: Relation) -> Result<()> {
        self.with_catalog_mut(|c| c.create_table_from(name, rel))
    }

    /// Parse and execute one statement.
    pub fn execute_sql(&self, sql: &str, remote: &dyn Remote) -> Result<StatementOutcome> {
        self.execute_sql_at(sql, remote, 0)
    }

    pub(crate) fn execute_sql_at(
        &self,
        sql: &str,
        remote: &dyn Remote,
        depth: usize,
    ) -> Result<StatementOutcome> {
        let stmt = xdb_sql::parse_statement(sql)?;
        self.execute_statement(&stmt, remote, depth)
    }

    /// Execute a parsed statement.
    pub fn execute_statement(
        &self,
        stmt: &Statement,
        remote: &dyn Remote,
        depth: usize,
    ) -> Result<StatementOutcome> {
        if depth > MAX_FETCH_DEPTH {
            return Err(EngineError::Remote(
                "maximum cross-engine recursion depth exceeded (view cycle?)".into(),
            ));
        }
        match stmt {
            Statement::Select(s) => {
                let (rel, report) =
                    self.run_select(s, remote, depth, Purpose::InterDbmsPipeline)?;
                Ok(StatementOutcome {
                    relation: Some(rel),
                    report,
                })
            }
            Statement::Explain(s) => {
                let info = self.explain_select(s)?;
                let rel = Relation::new(
                    vec![
                        ("est_rows".to_string(), DataType::Float),
                        ("est_bytes".to_string(), DataType::Float),
                        ("est_cost".to_string(), DataType::Float),
                    ],
                    vec![vec![
                        Value::Float(info.est_rows),
                        Value::Float(info.est_bytes),
                        Value::Float(info.est_cost),
                    ]],
                );
                Ok(StatementOutcome {
                    relation: Some(rel),
                    report: ExecReport::default(),
                })
            }
            Statement::CreateTable {
                name,
                columns,
                if_not_exists,
            } => {
                let result = self.with_catalog_mut_for(name, |c| c.create_table(name, columns));
                match result {
                    Err(EngineError::Catalog(_)) if *if_not_exists => {}
                    other => {
                        other?;
                        self.note_ddl("create_table");
                    }
                }
                Ok(ddl_outcome())
            }
            Statement::CreateView {
                name,
                query,
                or_replace,
            } => {
                // Validate the view binds against the current catalog.
                let snapshot = self.catalog.read().clone();
                bind_select(query, &snapshot)?;
                self.with_catalog_mut_for(name, |c| {
                    c.create_view(name, (**query).clone(), *or_replace)
                })?;
                self.note_ddl("create_view");
                Ok(ddl_outcome())
            }
            Statement::CreateForeignTable {
                name,
                columns,
                server,
                remote_name,
            } => {
                self.with_catalog_mut_for(name, |c| {
                    c.create_foreign_table(name, columns, server, remote_name.as_deref())
                })?;
                self.note_ddl("create_foreign_table");
                Ok(ddl_outcome())
            }
            Statement::CreateTableAs { name, query } => {
                // Execute (pulling remote data through the wrapper), then
                // materialize locally: the paper's explicit data movement.
                let (rel, mut report) =
                    self.run_select(query, remote, depth, Purpose::Materialization)?;
                let import_ms = rel.len() as f64 * self.profile.write_cost_ms;
                report.work_ms += import_ms;
                report.finish_ms += import_ms;
                // The result already arrived morsel-wise over the streamed
                // edge; store it as-is. (A simulated per-chunk re-copy via
                // `rechunk` produced bit-identical tables at every chunk
                // size — and therefore only cost wall clock.)
                self.with_catalog_mut_for(name, |c| c.create_table_from(name, rel))?;
                self.note_ddl("create_table_as");
                Ok(StatementOutcome {
                    relation: None,
                    report,
                })
            }
            Statement::Insert { table, rows } => {
                let empty = xdb_sql::algebra::PlanSchema::default();
                let mut evaluated = Vec::with_capacity(rows.len());
                for row in rows {
                    let mut out = Vec::with_capacity(row.len());
                    for e in row {
                        let c = crate::expr::compile(e, &empty)?;
                        out.push(c.eval(&[])?);
                    }
                    evaluated.push(out);
                }
                self.with_catalog_mut_for(table, |c| c.insert_rows(table, evaluated))?;
                Ok(ddl_outcome())
            }
            Statement::Drop {
                kind,
                name,
                if_exists,
            } => {
                self.with_catalog_mut_for(name, |c| c.drop(*kind, name, *if_exists))?;
                self.note_ddl("drop");
                Ok(ddl_outcome())
            }
        }
    }

    /// Bind, locally optimize, and execute a SELECT.
    fn run_select(
        &self,
        stmt: &xdb_sql::SelectStmt,
        remote: &dyn Remote,
        depth: usize,
        purpose: Purpose,
    ) -> Result<(Relation, ExecReport)> {
        let snapshot = self.catalog.read().clone();
        let plan = bind_select(stmt, &snapshot)?;
        let plan = optimize(plan, &snapshot, OptimizeOptions::default());
        self.run_plan(&plan, &snapshot, remote, depth, purpose)
    }

    /// Execute an already-optimized plan against a catalog snapshot.
    fn run_plan(
        &self,
        plan: &LogicalPlan,
        snapshot: &Catalog,
        remote: &dyn Remote,
        depth: usize,
        purpose: Purpose,
    ) -> Result<(Relation, ExecReport)> {
        let resolver = EngineResolver {
            engine: self,
            snapshot,
            remote,
            depth,
            purpose,
            foreign_rows: std::cell::Cell::new(0),
        };
        let telemetry = self.telemetry();
        let engine_label = [("engine", self.node.as_str())];
        let mut exec = Execution::new(&resolver);
        exec.partitions = self.exec_partitions();
        exec.reactor_threads = self.reactor_threads();
        // Scratch reuse depends on how concurrent executions interleave on
        // the shared pool, so these counters live under the reserved
        // `sched.` prefix (excluded from determinism comparisons).
        if let Some(s) = self.scratch_pool.lock().pop() {
            exec.scratch = s;
            telemetry
                .metrics
                .counter_add("sched.scratch_reuse", &engine_label, 1.0);
        } else {
            telemetry
                .metrics
                .counter_add("sched.scratch_alloc", &engine_label, 1.0);
        }
        if self.op_tracing() {
            exec.collect_ops();
        }
        let rel = exec.run(plan)?;
        self.scratch_pool
            .lock()
            .push(std::mem::take(&mut exec.scratch));
        let foreign_rows = resolver.foreign_rows.get();
        let work_ms = self.profile.work_ms(exec.scan_units, exec.olap_units)
            + foreign_rows as f64 * self.profile.foreign_row_cost_ms;
        let finish_ms = compose_finish(self.profile.startup_ms, work_ms, &exec.edges);
        let profile = exec.ops.take().map(|ops| {
            Box::new(ExecProfile {
                node: self.node.as_str().to_string(),
                rows: rel.len() as u64,
                bytes: rel.wire_bytes(),
                work_ms,
                finish_ms,
                ops,
                remotes: std::mem::take(&mut exec.remotes),
            })
        });
        // Simulated-clock work per executed statement: histogram observes
        // are order-independent, so this is safe from concurrent fetches.
        telemetry
            .metrics
            .observe("engine.statement_ms", &engine_label, work_ms);
        let report = ExecReport {
            rows: rel.len() as u64,
            bytes: rel.wire_bytes(),
            work_ms,
            finish_ms,
            profile,
        };
        Ok((rel, report))
    }

    /// Answer an EXPLAIN probe without executing: estimated rows, bytes,
    /// and cost in this engine's units.
    pub fn explain_select(&self, stmt: &xdb_sql::SelectStmt) -> Result<ExplainInfo> {
        let snapshot = self.catalog.read().clone();
        let plan = bind_select(stmt, &snapshot)?;
        let plan = optimize(plan, &snapshot, OptimizeOptions::default());
        Ok(self.explain_plan(&plan, &snapshot))
    }

    /// Cost a plan with this engine's estimator and profile.
    pub fn explain_plan(&self, plan: &LogicalPlan, snapshot: &Catalog) -> ExplainInfo {
        let est = Estimator::new(snapshot);
        let rows = est.rows(plan);
        let bytes = est.bytes(plan);
        // Rough cost: every operator touches its input once.
        let mut cost = 0.0;
        fn walk(plan: &LogicalPlan, est: &Estimator, cost: &mut f64) {
            for c in plan.children() {
                walk(c, est, cost);
                *cost += est.rows(c);
            }
            *cost += est.rows(plan);
        }
        walk(plan, &est, &mut cost);
        ExplainInfo {
            est_rows: rows,
            est_bytes: bytes,
            est_cost: cost * self.profile.cpu_tuple_cost_ms * self.profile.olap_factor,
        }
    }

    /// Metadata consultation: fields of a relation (expanding views by
    /// binding their queries).
    pub fn relation_fields(&self, name: &str) -> Result<Vec<(String, DataType)>> {
        let snapshot = self.catalog.read().clone();
        match snapshot.get(name) {
            Some(CatalogEntry::View { query }) => {
                let plan = bind_select(query, &snapshot)?;
                Ok(plan
                    .schema()
                    .fields
                    .into_iter()
                    .map(|f| (f.name, f.data_type))
                    .collect())
            }
            Some(_) => snapshot
                .relation_fields(name)
                .ok_or_else(|| EngineError::Catalog(format!("unknown relation {name:?}"))),
            None => Err(EngineError::Catalog(format!("unknown relation {name:?}"))),
        }
    }

    /// Statistics consultation for the cross-database optimizer.
    pub fn consult_stats(&self, relation: &str) -> Option<(f64, HashMap<String, ColumnStats>)> {
        let catalog = self.catalog.read();
        match catalog.get(relation) {
            Some(CatalogEntry::Table(t)) => Some((t.stats.row_count, t.stats.columns.clone())),
            _ => None,
        }
    }
}

/// Default kernel parallelism: the machine's parallelism capped at 8
/// partitions (hash-partition fan-out flattens quickly beyond that), or
/// fully sequential when `XDB_SEQUENTIAL` is set — the same switch the
/// bench harness uses for its sequential baselines.
fn default_exec_partitions() -> usize {
    if std::env::var_os("XDB_SEQUENTIAL").is_some() {
        return 1;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get().min(8))
}

/// Default transport morsel size for streamed edges. `XDB_STREAM_CHUNK`
/// overrides it (`0` = unbounded, one chunk per edge); the CI smoke runs
/// `repro fig9` under 1 / default / 0 and asserts byte-identical output.
pub const DEFAULT_STREAM_CHUNK_ROWS: usize = 4096;

/// Resolve the morsel size from the environment, falling back to
/// [`DEFAULT_STREAM_CHUNK_ROWS`].
pub fn default_stream_chunk_rows() -> usize {
    match std::env::var("XDB_STREAM_CHUNK") {
        Ok(v) => v.trim().parse().unwrap_or(DEFAULT_STREAM_CHUNK_ROWS),
        Err(_) => DEFAULT_STREAM_CHUNK_ROWS,
    }
}

fn ddl_outcome() -> StatementOutcome {
    StatementOutcome {
        relation: None,
        report: ExecReport::default(),
    }
}

/// Scan resolver over a catalog snapshot: local tables are projected in
/// place; foreign tables trigger a remote fetch through the wrapper.
struct EngineResolver<'a> {
    engine: &'a Engine,
    snapshot: &'a Catalog,
    remote: &'a dyn Remote,
    depth: usize,
    purpose: Purpose,
    foreign_rows: std::cell::Cell<u64>,
}

impl ScanResolver for EngineResolver<'_> {
    fn scan(&self, relation: &str, wanted: &[(String, DataType)]) -> Result<ScanOutput> {
        match self.snapshot.get(relation) {
            Some(CatalogEntry::Table(t)) => {
                let rel = project_columns_shared(&t.data, wanted)?;
                Ok(ScanOutput {
                    relation: rel,
                    edge: None,
                    remote: None,
                })
            }
            Some(CatalogEntry::ForeignTable {
                server,
                remote_name,
                ..
            }) => {
                let reply = self.remote.fetch(FetchRequest {
                    server,
                    relation: remote_name,
                    consumer: self.engine.node.clone(),
                    protocol_overhead: self.engine.profile.protocol_overhead,
                    purpose: self.purpose,
                    depth: self.depth + 1,
                })?;
                self.foreign_rows
                    .set(self.foreign_rows.get() + reply.relation.len() as u64);
                let rel = ExecRel::Owned(project_columns_owned(reply.relation, wanted)?);
                Ok(ScanOutput {
                    relation: rel,
                    edge: Some(EdgeTiming {
                        producer_finish_ms: reply.producer_finish_ms,
                        transfer_ms: reply.transfer_ms,
                        import_ms: 0.0,
                        movement: Movement::Implicit,
                    }),
                    remote: reply.producer_profile,
                })
            }
            Some(CatalogEntry::View { .. }) => Err(EngineError::Execution(format!(
                "view {relation:?} reached the executor unexpanded"
            ))),
            None => Err(EngineError::Catalog(format!(
                "unknown relation {relation:?}"
            ))),
        }
    }

    /// Only foreign tables stream (see `scan_stream`); the executor uses
    /// this to commit to a streamed pipeline before running anything.
    fn streams(&self, relation: &str) -> bool {
        matches!(
            self.snapshot.get(relation),
            Some(CatalogEntry::ForeignTable { .. })
        )
    }

    /// Only foreign tables stream: their rows arrive over a decoded wire
    /// edge with natural chunk boundaries. Local tables stay on the
    /// materialized path, which hands out `Arc`s without copying a row.
    fn scan_stream(
        &self,
        relation: &str,
        wanted: &[(String, DataType)],
        on_morsel: &mut MorselSink<'_>,
    ) -> Result<Option<StreamedScan>> {
        let Some(CatalogEntry::ForeignTable {
            server,
            remote_name,
            ..
        }) = self.snapshot.get(relation)
        else {
            return Ok(None);
        };
        let mut sink = |m: &Relation| -> Result<()> {
            let projected = project_columns(m, wanted)?;
            on_morsel(&projected)
        };
        let reply = self.remote.fetch_stream(
            FetchRequest {
                server,
                relation: remote_name,
                consumer: self.engine.node.clone(),
                protocol_overhead: self.engine.profile.protocol_overhead,
                purpose: self.purpose,
                depth: self.depth + 1,
            },
            &mut sink,
        )?;
        self.foreign_rows
            .set(self.foreign_rows.get() + reply.nrows as u64);
        Ok(Some(StreamedScan {
            nrows: reply.nrows,
            edge: Some(EdgeTiming {
                producer_finish_ms: reply.producer_finish_ms,
                transfer_ms: reply.transfer_ms,
                import_ms: 0.0,
                movement: Movement::Implicit,
            }),
            remote: reply.producer_profile,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> Engine {
        let e = Engine::new("db1", EngineProfile::postgres());
        for sql in [
            "CREATE TABLE emp (id BIGINT, name VARCHAR, dept VARCHAR, salary DOUBLE)",
            "INSERT INTO emp VALUES (1, 'ann', 'eng', 100.0), (2, 'bob', 'eng', 80.0), (3, 'cat', 'ops', 90.0)",
            "CREATE TABLE dept (dname VARCHAR, budget BIGINT)",
            "INSERT INTO dept VALUES ('eng', 1000), ('ops', 500)",
        ] {
            e.execute_sql(sql, &NoRemote).unwrap();
        }
        e
    }

    fn rows(e: &Engine, sql: &str) -> Relation {
        e.execute_sql(sql, &NoRemote).unwrap().relation.unwrap()
    }

    #[test]
    fn end_to_end_select() {
        let e = engine();
        let r = rows(
            &e,
            "SELECT e.name, d.budget FROM emp e, dept d WHERE e.dept = d.dname AND e.salary >= 90 ORDER BY e.name",
        );
        assert_eq!(r.len(), 2);
        assert_eq!(r.value(0, 0), Value::str("ann"));
        assert_eq!(r.value(0, 1), Value::Int(1000));
    }

    #[test]
    fn views_expand() {
        let e = engine();
        e.execute_sql(
            "CREATE VIEW rich AS SELECT name, salary FROM emp WHERE salary > 85",
            &NoRemote,
        )
        .unwrap();
        let r = rows(&e, "SELECT count(*) AS n FROM rich");
        assert_eq!(r.value(0, 0), Value::Int(2));
        // Views of views.
        e.execute_sql(
            "CREATE VIEW richer AS SELECT name FROM rich WHERE salary > 95",
            &NoRemote,
        )
        .unwrap();
        let r = rows(&e, "SELECT * FROM richer");
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn view_validation_fails_on_bad_column() {
        let e = engine();
        let err = e
            .execute_sql("CREATE VIEW bad AS SELECT nothere FROM emp", &NoRemote)
            .unwrap_err();
        assert!(matches!(err, EngineError::Bind(_)));
    }

    #[test]
    fn create_table_as_materializes() {
        let e = engine();
        let out = e
            .execute_sql(
                "CREATE TABLE eng_only AS SELECT name, salary FROM emp WHERE dept = 'eng'",
                &NoRemote,
            )
            .unwrap();
        assert!(out.report.work_ms > 0.0);
        let r = rows(&e, "SELECT count(*) AS n FROM eng_only");
        assert_eq!(r.value(0, 0), Value::Int(2));
    }

    #[test]
    fn foreign_table_without_remote_errors() {
        let e = engine();
        e.execute_sql(
            "CREATE FOREIGN TABLE ft (x BIGINT) SERVER other OPTIONS (remote 'r')",
            &NoRemote,
        )
        .unwrap();
        let err = e.execute_sql("SELECT * FROM ft", &NoRemote).unwrap_err();
        assert!(matches!(err, EngineError::Remote(_)));
    }

    #[test]
    fn explain_returns_estimates() {
        let e = engine();
        let r = rows(&e, "EXPLAIN SELECT * FROM emp WHERE salary > 90");
        assert_eq!(r.len(), 1);
        let info = e
            .explain_select(&xdb_sql::parse_select("SELECT * FROM emp").unwrap())
            .unwrap();
        assert_eq!(info.est_rows, 3.0);
        assert!(info.est_cost > 0.0);
    }

    #[test]
    fn reports_include_timing() {
        let e = engine();
        let out = e.execute_sql("SELECT * FROM emp", &NoRemote).unwrap();
        let report = out.report;
        assert_eq!(report.rows, 3);
        assert!(report.bytes > 0);
        assert!(report.finish_ms >= e.profile.startup_ms);
    }

    #[test]
    fn drop_and_if_exists() {
        let e = engine();
        e.execute_sql("DROP TABLE dept", &NoRemote).unwrap();
        assert!(e.execute_sql("SELECT * FROM dept", &NoRemote).is_err());
        e.execute_sql("DROP TABLE IF EXISTS dept", &NoRemote)
            .unwrap();
    }

    #[test]
    fn consult_stats_reports_distincts() {
        let e = engine();
        let (rows, cols) = e.consult_stats("emp").unwrap();
        assert_eq!(rows, 3.0);
        assert_eq!(cols.get("dept").unwrap().n_distinct, 2.0);
        assert!(e.consult_stats("nope").is_none());
    }

    #[test]
    fn transient_ddl_leaves_generation_alone() {
        let e = engine();
        let before = e.ddl_generation();
        // Per-query delegation objects and mediator scratch tables come and
        // go around every submission; they must not invalidate cached
        // consultation probes against base tables.
        e.execute_sql("CREATE VIEW xdb_q1_t0 AS SELECT name FROM emp", &NoRemote)
            .unwrap();
        e.execute_sql("CREATE TABLE __task_0 AS SELECT name FROM emp", &NoRemote)
            .unwrap();
        e.execute_sql("DROP VIEW xdb_q1_t0", &NoRemote).unwrap();
        e.execute_sql("DROP TABLE __task_0", &NoRemote).unwrap();
        assert_eq!(e.ddl_generation(), before);
        // DDL against a base object still invalidates.
        e.execute_sql("CREATE TABLE copy_emp AS SELECT name FROM emp", &NoRemote)
            .unwrap();
        assert!(e.ddl_generation() > before);
    }

    #[test]
    fn relation_fields_expands_views() {
        let e = engine();
        e.execute_sql(
            "CREATE VIEW v AS SELECT name, salary * 2 AS double_pay FROM emp",
            &NoRemote,
        )
        .unwrap();
        let fields = e.relation_fields("v").unwrap();
        assert_eq!(fields.len(), 2);
        assert_eq!(fields[1].0, "double_pay");
        assert_eq!(fields[1].1, DataType::Float);
    }
}
