//! A federation of engines connected by the simulated network.
//!
//! The cluster is the "physical testbed": one engine per node, a topology
//! between them, and the transfer ledger. It implements [`Remote`] so that
//! an engine scanning a foreign table transparently triggers `SELECT * FROM
//! <relation>` on the owning engine — the SQL/MED wrapper mechanics of
//! Section V, including the recursive trickle-down execution of Figure 8.

use crate::engine::{
    Engine, ExecReport, FetchReply, FetchRequest, FetchStreamReply, MorselSink, Remote,
    StatementOutcome, MAX_FETCH_DEPTH,
};
use crate::error::{EngineError, Result};
use crate::profile::EngineProfile;
use crate::relation::Relation;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use xdb_net::{reactor, wire, Ledger, NodeId, Topology};
use xdb_obs::{ExecProfile, Telemetry};

/// A set of named engines plus network fabric and transfer accounting.
pub struct Cluster {
    engines: HashMap<String, Arc<Engine>>,
    /// Per-node step locks for parallel delegation: a DBMS executes one
    /// delegated *top-level* statement at a time (nested foreign-table
    /// fetches triggered by that statement are not re-locked, so a thread
    /// never holds more than one node lock and cannot deadlock).
    step_locks: HashMap<String, Mutex<()>>,
    pub topology: Topology,
    pub ledger: Ledger,
    /// Fleet telemetry shared by this cluster's engines, its ledger, and
    /// any [`ScopedCluster`] scratch ledgers. Defaults to the
    /// process-global handle so binaries can export without plumbing;
    /// tests that assert on absolute values attach an isolated handle via
    /// [`Cluster::set_telemetry`].
    telemetry: Arc<Telemetry>,
    /// Per-query wire-codec state cache: when one query streams the same
    /// relation over multiple edges, the producer-side encode (including
    /// the string-dictionary build) is derived once and reused. Keyed by
    /// relation identity — producer node, relation name, the producer's
    /// DDL generation at encode time, and the row count — so any catalog
    /// mutation invalidates stale entries. Cleared at the start of every
    /// submission ([`Cluster::clear_codec_cache`]).
    codec_cache: Mutex<HashMap<CodecCacheKey, Arc<wire::Encoded>>>,
}

/// Codec-cache identity: (producer node, relation name, producer DDL
/// generation at encode time, row count).
type CodecCacheKey = (String, String, u64, usize);

impl Cluster {
    pub fn new(topology: Topology) -> Cluster {
        let telemetry = Arc::clone(xdb_obs::telemetry::global());
        Cluster {
            engines: HashMap::new(),
            step_locks: HashMap::new(),
            topology,
            ledger: Ledger::new().with_telemetry(Arc::clone(&telemetry)),
            telemetry,
            codec_cache: Mutex::new(HashMap::new()),
        }
    }

    /// Drop all memoized per-query wire-codec state. Called by the client
    /// at the start of every submission: dictionary reuse is scoped to one
    /// query's edges, never across queries.
    pub fn clear_codec_cache(&self) {
        self.codec_cache.lock().clear();
    }

    /// This cluster's telemetry handle.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Attach a (typically isolated) telemetry handle: repoints the
    /// ledger and every engine, re-publishing their gauges under it.
    pub fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        self.ledger = self.ledger.clone().with_telemetry(Arc::clone(&telemetry));
        for engine in self.engines.values() {
            engine.set_telemetry(Arc::clone(&telemetry));
        }
        self.telemetry = telemetry;
    }

    /// Build a LAN cluster with the given nodes, all with the same profile.
    pub fn lan(nodes: &[&str], profile: EngineProfile) -> Cluster {
        let mut c = Cluster::new(Topology::lan(nodes));
        for n in nodes {
            c.add_engine(n, profile.clone());
        }
        c
    }

    pub fn add_engine(&mut self, node: &str, profile: EngineProfile) -> Arc<Engine> {
        self.topology.add_node(NodeId::new(node));
        let engine = Arc::new(Engine::new(node, profile));
        engine.set_telemetry(Arc::clone(&self.telemetry));
        self.engines.insert(node.to_string(), Arc::clone(&engine));
        self.step_locks.insert(node.to_string(), Mutex::new(()));
        engine
    }

    /// Serialize top-level delegated statements per node: runs `f` while
    /// holding the node's step lock. Unknown nodes fall through unlocked
    /// (they will error when the engine is looked up).
    pub fn with_step_lock<T>(&self, node: &str, f: impl FnOnce() -> T) -> T {
        match self.step_locks.get(node) {
            Some(lock) => {
                let _guard = lock.lock();
                f()
            }
            None => f(),
        }
    }

    pub fn engine(&self, node: &str) -> Result<&Arc<Engine>> {
        self.engines
            .get(node)
            .ok_or_else(|| EngineError::Remote(format!("unknown server {node:?}")))
    }

    pub fn node_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.engines.keys().cloned().collect();
        v.sort();
        v
    }

    /// Execute one SQL statement on a node.
    pub fn execute(&self, node: &str, sql: &str) -> Result<StatementOutcome> {
        self.engine(node)?.execute_sql_at(sql, self, 0)
    }

    /// Execute a SELECT and return its rows + report.
    pub fn query(&self, node: &str, sql: &str) -> Result<(Relation, ExecReport)> {
        let out = self.execute(node, sql)?;
        let rel = out
            .relation
            .ok_or_else(|| EngineError::Execution("statement returned no rows".into()))?;
        Ok((rel, out.report))
    }

    /// Execute a script of `;`-separated statements on a node, returning
    /// the last statement's outcome.
    pub fn execute_script(&self, node: &str, sql: &str) -> Result<Option<StatementOutcome>> {
        let stmts = xdb_sql::parse_script(sql)?;
        let engine = self.engine(node)?;
        let mut last = None;
        for stmt in &stmts {
            last = Some(engine.execute_statement(stmt, self, 0)?);
        }
        Ok(last)
    }

    /// Producer half shared by [`Cluster::fetch_with`] and
    /// [`Cluster::fetch_stream_with`]: execute the producer-side scan and
    /// derive (or reuse) the edge's codec state. Everything past this
    /// point differs only in *how* the decoded rows reach the consumer.
    fn produce_edge(&self, request: &FetchRequest<'_>, remote: &dyn Remote) -> Result<EdgeSource> {
        if request.depth > MAX_FETCH_DEPTH {
            return Err(EngineError::Remote(
                "maximum cross-engine recursion depth exceeded".into(),
            ));
        }
        let producer = self.engine(request.server)?;
        let sql = format!(
            "SELECT * FROM {}",
            producer.profile.dialect.ident(request.relation)
        );
        let outcome = producer.execute_sql_at(&sql, remote, request.depth)?;
        let relation = outcome
            .relation
            .ok_or_else(|| EngineError::Remote("fetch produced no relation".into()))?;
        // Every edge really goes through the wire codec: encode once at
        // the producer (codec state spans the whole edge, so the encoded
        // size is chunk-invariant), then stream-decode at transport
        // granularity on the consumer side. The decoded rows — not the
        // producer's — are what flow on, so codec correctness is
        // load-bearing for every query result.
        //
        // Within one query the same relation often feeds several edges
        // (fan-out consumers, repeated foreign scans). The encoded frame —
        // string dictionaries included — is a pure function of the
        // relation's content, so reuse it instead of re-deriving per edge.
        // The DDL generation in the key invalidates entries the moment the
        // producer's catalog changes. The hit *count* is
        // scheduling-dependent under the parallel executor (two threads can
        // race to the first encode), so `net.codec.dict_reuse` lives in the
        // quarantined `net.codec` metric namespace; the encoded bytes
        // themselves are deterministic either way.
        let cache_key = (
            producer.node.as_str().to_string(),
            request.relation.to_string(),
            producer.ddl_generation(),
            relation.len(),
        );
        let cached = self.codec_cache.lock().get(&cache_key).cloned();
        let encoded = match cached {
            Some(enc) => {
                self.telemetry
                    .metrics
                    .counter_add("net.codec.dict_reuse", &[], 1.0);
                enc
            }
            None => {
                let enc = Arc::new(wire::encode(relation.columns(), relation.len()));
                self.codec_cache.lock().insert(cache_key, Arc::clone(&enc));
                enc
            }
        };
        Ok(EdgeSource {
            producer: Arc::clone(producer),
            bytes: relation.wire_bytes(),
            fields: relation.fields.clone(),
            nrows: relation.len(),
            encoded,
            chunk_rows: producer.stream_chunk_rows(),
            producer_finish_ms: outcome.report.finish_ms,
            producer_profile: outcome.report.profile,
        })
    }

    /// Consumer half shared by both fetch flavors: record the transfer
    /// into `ledger` and price it on the simulated clock. Call order
    /// relative to the producer scan is identical in both flavors, so the
    /// ledger record sequence never depends on how the edge streamed.
    fn account_edge(
        &self,
        request: &FetchRequest<'_>,
        src: &EdgeSource,
        stats: &wire::WireStats,
        ledger: &Ledger,
    ) -> f64 {
        ledger.record_wire(
            &src.producer.node,
            &request.consumer,
            src.bytes,
            src.nrows as u64,
            request.purpose,
            stats,
        );
        // The simulated transfer pays for encoded bytes — compression is
        // what the streaming plane buys.
        self.topology.transfer_ms(
            &src.producer.node,
            &request.consumer,
            stats.encoded_bytes,
            request.protocol_overhead,
        )
    }

    /// Shared fetch body: execute the producer-side scan, record the
    /// transfer into `ledger`, and pass `remote` down so nested
    /// foreign-table scans recurse through the same accounting context.
    fn fetch_with(
        &self,
        request: FetchRequest<'_>,
        remote: &dyn Remote,
        ledger: &Ledger,
    ) -> Result<FetchReply> {
        let src = self.produce_edge(&request, remote)?;
        let stats = src.encoded.stats(src.chunk_rows);
        let columns = wire::decode_chunked(&src.encoded, src.chunk_rows);
        let relation = Relation::from_columns(src.fields.clone(), columns, src.nrows);
        let transfer_ms = self.account_edge(&request, &src, &stats, ledger);
        Ok(FetchReply {
            relation,
            producer_finish_ms: src.producer_finish_ms,
            transfer_ms,
            producer_profile: src.producer_profile,
        })
    }

    /// Streamed fetch body: identical producer scan, codec state, ledger
    /// record, and simulated timing as [`Cluster::fetch_with`], but the
    /// decoded rows reach `on_morsel` one transport chunk at a time. With
    /// reactor workers available the decode runs ahead on the pool behind
    /// a bounded channel, overlapping with the consumer's compute; with
    /// none (or a single-chunk edge) it runs inline. Both paths deliver
    /// the exact same morsel sequence.
    fn fetch_stream_with(
        &self,
        request: FetchRequest<'_>,
        remote: &dyn Remote,
        ledger: &Ledger,
        on_morsel: &mut MorselSink<'_>,
    ) -> Result<FetchStreamReply> {
        let src = self.produce_edge(&request, remote)?;
        let stats = src.encoded.stats(src.chunk_rows);
        let step = if src.chunk_rows == 0 {
            src.nrows
        } else {
            src.chunk_rows
        };
        let threads = src.producer.reactor_threads();
        if src.nrows == 0 {
            // Zero-row edges ship no morsels; the consumer builds its
            // empty relation from the reply's schema.
        } else if threads > 0 && src.nrows > step {
            // Reactor path: a pool worker decodes morsels ahead of the
            // consumer through a bounded channel. Wall-clock only — the
            // morsel sequence is the inline one by construction.
            self.telemetry
                .metrics
                .counter_add("sched.reactor_edges", &[], 1.0);
            let chan = Arc::new(reactor::EdgeChannel::<Relation>::new(
                reactor::EDGE_CHANNEL_CAPACITY,
            ));
            let tx = Arc::clone(&chan);
            let enc = Arc::clone(&src.encoded);
            let fields = src.fields.clone();
            reactor::spawn(threads, move || {
                let guard = reactor::PoisonGuard::new(Arc::clone(&tx));
                let mut dec = wire::StreamDecoder::with_morsel_capacity(&enc, step);
                while dec.remaining() > 0 {
                    let k = step.min(dec.remaining());
                    let cols = dec.take_columns(step);
                    if tx
                        .send(Relation::from_columns(fields.clone(), cols, k))
                        .is_err()
                    {
                        // The consumer bailed out (its guard poisoned the
                        // channel): abandon the stream, nothing to clean.
                        guard.defuse();
                        return;
                    }
                }
                tx.close();
                guard.defuse();
            });
            let guard = reactor::PoisonGuard::new(Arc::clone(&chan));
            let mut morsels = 0u64;
            loop {
                match chan.recv() {
                    // An `on_morsel` error returns here with the guard
                    // still armed, poisoning the channel so the decode
                    // worker unblocks instead of waiting on a full ring.
                    Ok(Some(rel)) => {
                        morsels += 1;
                        on_morsel(&rel)?;
                    }
                    Ok(None) => break,
                    Err(reactor::Poisoned) => {
                        guard.defuse();
                        return Err(EngineError::Execution(
                            "edge reactor worker panicked mid-stream".into(),
                        ));
                    }
                }
            }
            guard.defuse();
            self.telemetry
                .metrics
                .counter_add("sched.reactor_morsels", &[], morsels as f64);
        } else {
            // Inline path: decode each morsel on the consuming thread,
            // still fused with consumption (no whole-edge intermediate).
            let mut dec = wire::StreamDecoder::with_morsel_capacity(&src.encoded, step);
            while dec.remaining() > 0 {
                let k = step.min(dec.remaining());
                let cols = dec.take_columns(step);
                on_morsel(&Relation::from_columns(src.fields.clone(), cols, k))?;
            }
        }
        let transfer_ms = self.account_edge(&request, &src, &stats, ledger);
        Ok(FetchStreamReply {
            fields: src.fields,
            nrows: src.nrows,
            producer_finish_ms: src.producer_finish_ms,
            transfer_ms,
            producer_profile: src.producer_profile,
        })
    }

    /// Enable or disable per-operator execution profiles on every engine.
    pub fn set_op_tracing(&self, on: bool) {
        for engine in self.engines.values() {
            engine.set_op_tracing(on);
        }
    }

    /// Set the executor kernel partition count on every engine (1 =
    /// sequential). Results are bit-identical at any setting.
    pub fn set_exec_partitions(&self, n: usize) {
        for engine in self.engines.values() {
            engine.set_exec_partitions(n);
        }
    }

    /// Set the streamed-edge transport morsel size on every engine
    /// (0 = unbounded). Results, ledgers and simulated timings are
    /// bit-identical at any setting.
    pub fn set_stream_chunk_rows(&self, rows: usize) {
        for engine in self.engines.values() {
            engine.set_stream_chunk_rows(rows);
        }
    }

    /// Set the edge-reactor worker budget on every engine (0 = off,
    /// morsels decode inline). Results, ledgers and simulated timings are
    /// bit-identical at any setting.
    pub fn set_reactor_threads(&self, n: usize) {
        for engine in self.engines.values() {
            engine.set_reactor_threads(n);
        }
    }
}

/// Producer-side state of one edge, shared by the materializing and the
/// streaming fetch paths.
struct EdgeSource {
    producer: Arc<Engine>,
    /// Uncompressed wire bytes of the producer relation (ledger's raw
    /// byte model).
    bytes: u64,
    fields: Vec<(String, xdb_sql::value::DataType)>,
    nrows: usize,
    encoded: Arc<wire::Encoded>,
    chunk_rows: usize,
    producer_finish_ms: f64,
    producer_profile: Option<Box<ExecProfile>>,
}

impl Remote for Cluster {
    fn fetch(&self, request: FetchRequest<'_>) -> Result<FetchReply> {
        self.fetch_with(request, self, &self.ledger)
    }

    fn fetch_stream(
        &self,
        request: FetchRequest<'_>,
        on_morsel: &mut MorselSink<'_>,
    ) -> Result<FetchStreamReply> {
        self.fetch_stream_with(request, self, &self.ledger, on_morsel)
    }
}

/// A view of a [`Cluster`] that records transfers into a private scratch
/// ledger instead of the shared one.
///
/// The parallel executor gives each concurrently-running task group its
/// own `ScopedCluster`; after the barrier the scratch ledgers are
/// [`Ledger::absorb`]ed into the cluster ledger in script order, so the
/// merged record sequence is identical to a sequential run no matter how
/// the groups interleaved in real time.
pub struct ScopedCluster<'a> {
    cluster: &'a Cluster,
    /// Scratch ledger; transfers triggered by this scope land here.
    pub ledger: Ledger,
}

impl<'a> ScopedCluster<'a> {
    pub fn new(cluster: &'a Cluster) -> ScopedCluster<'a> {
        ScopedCluster {
            cluster,
            // The scratch ledger shares the cluster's telemetry handle:
            // counters bump at record time (never on absorb), so totals
            // match a sequential run exactly.
            ledger: Ledger::new().with_telemetry(Arc::clone(&cluster.telemetry)),
        }
    }

    /// Execute one SQL statement on a node, recording any triggered
    /// transfers into this scope's ledger.
    pub fn execute(&self, node: &str, sql: &str) -> Result<StatementOutcome> {
        self.cluster.engine(node)?.execute_sql_at(sql, self, 0)
    }
}

impl Remote for ScopedCluster<'_> {
    fn fetch(&self, request: FetchRequest<'_>) -> Result<FetchReply> {
        // Pass `self` down, not the cluster: nested fetches triggered by
        // this scope's statements must also record into the scratch ledger.
        self.cluster.fetch_with(request, self, &self.ledger)
    }

    fn fetch_stream(
        &self,
        request: FetchRequest<'_>,
        on_morsel: &mut MorselSink<'_>,
    ) -> Result<FetchStreamReply> {
        self.cluster
            .fetch_stream_with(request, self, &self.ledger, on_morsel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdb_net::Purpose;
    use xdb_sql::value::Value;

    /// Two-engine federation: R on db_r, S on db_s, joined in-situ on db_s
    /// through a foreign table — the paper's running example from
    /// Section V-A ("Leveraging SQL/MED").
    fn two_node() -> Cluster {
        let c = Cluster::lan(&["db_r", "db_s"], EngineProfile::postgres());
        c.execute_script(
            "db_r",
            "CREATE TABLE r (x BIGINT, y VARCHAR);
             INSERT INTO r VALUES (1, 'a'), (2, 'b'), (3, 'c');",
        )
        .unwrap();
        c.execute_script(
            "db_s",
            "CREATE TABLE s (x BIGINT, z VARCHAR);
             INSERT INTO s VALUES (2, 'beta'), (3, 'gamma'), (4, 'delta');",
        )
        .unwrap();
        c
    }

    #[test]
    fn foreign_table_join_in_situ() {
        let c = two_node();
        c.execute(
            "db_s",
            "CREATE FOREIGN TABLE r_ft (x BIGINT, y VARCHAR) SERVER db_r OPTIONS (remote 'r')",
        )
        .unwrap();
        let (rel, report) = c
            .query(
                "db_s",
                "SELECT r_ft.y, s.z FROM r_ft, s WHERE r_ft.x = s.x ORDER BY r_ft.y",
            )
            .unwrap();
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.value(0, 0), Value::str("b"));
        assert_eq!(rel.value(0, 1), Value::str("beta"));
        // The fetch crossed the wire and was recorded.
        assert!(c.ledger.total_bytes() > 0);
        assert_eq!(c.ledger.total_rows(), 3); // all of r moved
                                              // Composed timing includes the remote producer.
        assert!(report.finish_ms > report.work_ms);
    }

    #[test]
    fn virtual_relation_preserves_semantics() {
        // The paper's "Preventing Undesirable Executions": create a view
        // (virtual relation) on the producer so filters/projections are
        // evaluated there, then a foreign table pointing at the view.
        let c = two_node();
        c.execute("db_r", "CREATE VIEW r_v AS SELECT x, y FROM r WHERE x >= 2")
            .unwrap();
        c.execute(
            "db_s",
            "CREATE FOREIGN TABLE r_vft (x BIGINT, y VARCHAR) SERVER db_r OPTIONS (remote 'r_v')",
        )
        .unwrap();
        c.ledger.clear();
        let (rel, _) = c
            .query("db_s", "SELECT s.z FROM r_vft, s WHERE r_vft.x = s.x")
            .unwrap();
        assert_eq!(rel.len(), 2);
        // Only the filtered rows crossed the network.
        assert_eq!(c.ledger.total_rows(), 2);
    }

    #[test]
    fn cascaded_views_across_three_engines() {
        // db_a -> db_b -> db_c pipeline, Figure 8 style.
        let mut c = two_node();
        c.add_engine("db_t", EngineProfile::postgres());
        c.execute(
            "db_s",
            "CREATE FOREIGN TABLE r_ft (x BIGINT, y VARCHAR) SERVER db_r OPTIONS (remote 'r')",
        )
        .unwrap();
        c.execute(
            "db_s",
            "CREATE VIEW rs AS SELECT r_ft.y, s.z FROM r_ft, s WHERE r_ft.x = s.x",
        )
        .unwrap();
        c.execute(
            "db_t",
            "CREATE FOREIGN TABLE rs_ft (y VARCHAR, z VARCHAR) SERVER db_s OPTIONS (remote 'rs')",
        )
        .unwrap();
        let (rel, report) = c.query("db_t", "SELECT count(*) AS n FROM rs_ft").unwrap();
        assert_eq!(rel.value(0, 0), Value::Int(2));
        // Two hops recorded: db_r→db_s and db_s→db_t.
        assert_eq!(c.ledger.len(), 2);
        assert!(report.finish_ms > 0.0);
    }

    #[test]
    fn materialization_via_ctas_over_foreign_table() {
        let c = two_node();
        c.execute(
            "db_s",
            "CREATE FOREIGN TABLE r_ft (x BIGINT, y VARCHAR) SERVER db_r OPTIONS (remote 'r')",
        )
        .unwrap();
        c.execute("db_s", "CREATE TABLE r_mat AS SELECT * FROM r_ft")
            .unwrap();
        assert_eq!(
            c.ledger.bytes_for(Purpose::Materialization),
            c.ledger.total_bytes()
        );
        // Materialized copy is now local: querying it moves nothing.
        c.ledger.clear();
        let (rel, _) = c.query("db_s", "SELECT count(*) AS n FROM r_mat").unwrap();
        assert_eq!(rel.value(0, 0), Value::Int(3));
        assert!(c.ledger.is_empty());
    }

    #[test]
    fn codec_state_reused_across_repeated_edges() {
        // Same relation pulled over two edges: the second fetch must reuse
        // the memoized encode (dictionaries included) and say so on the
        // `net.codec.dict_reuse` counter; a producer-side catalog change
        // or an explicit cache clear must invalidate the entry.
        let mut c = two_node();
        let telemetry = Telemetry::new_handle();
        c.set_telemetry(Arc::clone(&telemetry));
        c.execute(
            "db_s",
            "CREATE FOREIGN TABLE r_ft (x BIGINT, y VARCHAR) SERVER db_r OPTIONS (remote 'r')",
        )
        .unwrap();
        let reuse = || telemetry.metrics.value("net.codec.dict_reuse", &[]);

        let (a, _) = c.query("db_s", "SELECT r_ft.y FROM r_ft").unwrap();
        assert_eq!(reuse(), 0.0, "first edge must pay the encode");
        let (b, _) = c.query("db_s", "SELECT r_ft.y FROM r_ft").unwrap();
        assert_eq!(reuse(), 1.0, "repeated edge must hit the codec cache");
        assert!(a.same_bag(&b), "cached frames must decode identically");

        // A base-table catalog mutation on the producer bumps its DDL
        // generation, so the memoized frame no longer matches.
        c.execute(
            "db_r",
            "CREATE VIEW r_recent AS SELECT x, y FROM r WHERE x >= 2",
        )
        .unwrap();
        c.query("db_s", "SELECT r_ft.y FROM r_ft").unwrap();
        assert_eq!(reuse(), 1.0, "stale codec state must not be reused");

        c.query("db_s", "SELECT r_ft.y FROM r_ft").unwrap();
        assert_eq!(reuse(), 2.0);
        c.clear_codec_cache();
        c.query("db_s", "SELECT r_ft.y FROM r_ft").unwrap();
        assert_eq!(reuse(), 2.0, "cleared cache must re-encode");
    }

    #[test]
    fn unknown_server_errors() {
        let c = two_node();
        c.execute(
            "db_s",
            "CREATE FOREIGN TABLE bad (x BIGINT) SERVER nowhere OPTIONS (remote 'r')",
        )
        .unwrap();
        let err = c.query("db_s", "SELECT * FROM bad").unwrap_err();
        assert!(matches!(err, EngineError::Remote(_)));
    }

    #[test]
    fn view_cycle_detected() {
        let c = two_node();
        // a (db_r) reads b (db_s); b reads a — a cross-engine cycle.
        c.execute(
            "db_r",
            "CREATE FOREIGN TABLE b_ft (x BIGINT) SERVER db_s OPTIONS (remote 'b')",
        )
        .unwrap();
        c.execute("db_r", "CREATE VIEW a AS SELECT x FROM b_ft")
            .unwrap();
        c.execute(
            "db_s",
            "CREATE FOREIGN TABLE a_ft (x BIGINT) SERVER db_r OPTIONS (remote 'a')",
        )
        .unwrap();
        c.execute("db_s", "CREATE VIEW b AS SELECT x FROM a_ft")
            .unwrap();
        let err = c.query("db_r", "SELECT * FROM a").unwrap_err();
        assert!(
            matches!(&err, EngineError::Remote(m) if m.contains("depth")),
            "{err}"
        );
    }

    #[test]
    fn heterogeneous_profiles_affect_timing() {
        let mut c = Cluster::new(Topology::lan(&[]));
        c.add_engine("pg", EngineProfile::postgres());
        c.add_engine("hv", EngineProfile::hive());
        for node in ["pg", "hv"] {
            c.execute_script(
                node,
                "CREATE TABLE t (x BIGINT); INSERT INTO t VALUES (1), (2), (3);",
            )
            .unwrap();
        }
        let (_, pg) = c.query("pg", "SELECT count(*) AS n FROM t").unwrap();
        let (_, hv) = c.query("hv", "SELECT count(*) AS n FROM t").unwrap();
        // Hive's start-up dominates.
        let gap = EngineProfile::hive().startup_ms - EngineProfile::postgres().startup_ms;
        assert!(hv.finish_ms > pg.finish_ms + 0.9 * gap);
    }
}
