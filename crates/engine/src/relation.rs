//! In-memory relations (materialized operator outputs and table storage).

use xdb_sql::value::{DataType, Value};

/// A materialized relation: a flat schema plus row-major tuples.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Relation {
    /// Output columns as (name, type) — qualifiers are a plan-level notion
    /// and never survive materialization.
    pub fields: Vec<(String, DataType)>,
    pub rows: Vec<Vec<Value>>,
}

impl Relation {
    pub fn new(fields: Vec<(String, DataType)>, rows: Vec<Vec<Value>>) -> Relation {
        Relation { fields, rows }
    }

    pub fn empty(fields: Vec<(String, DataType)>) -> Relation {
        Relation {
            fields,
            rows: Vec::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    pub fn width(&self) -> usize {
        self.fields.len()
    }

    /// Total size of this relation on the (simulated) wire.
    pub fn wire_bytes(&self) -> u64 {
        // Per-row framing overhead plus per-value payloads.
        self.rows
            .iter()
            .map(|r| 4 + r.iter().map(Value::wire_size).sum::<u64>())
            .sum()
    }

    /// Index of a column by case-insensitive name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.fields
            .iter()
            .position(|(n, _)| n.eq_ignore_ascii_case(name))
    }

    /// Render as an aligned text table (examples and the repro binary).
    pub fn to_table_string(&self, max_rows: usize) -> String {
        let mut widths: Vec<usize> = self.fields.iter().map(|(n, _)| n.len()).collect();
        let shown = self.rows.iter().take(max_rows);
        let rendered: Vec<Vec<String>> = shown
            .map(|r| r.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        for (i, (n, _)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push_str(" | ");
            }
            out.push_str(&format!("{n:<w$}", w = widths[i]));
        }
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 3 * widths.len().saturating_sub(1)),
        );
        out.push('\n');
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    out.push_str(" | ");
                }
                out.push_str(&format!("{cell:<w$}", w = widths[i]));
            }
            out.push('\n');
        }
        if self.rows.len() > max_rows {
            out.push_str(&format!("... ({} rows total)\n", self.rows.len()));
        }
        out
    }

    /// Multiset equality: same fields (names, order) and the same bag of
    /// rows regardless of order. The correctness oracle for decentralized
    /// vs single-engine execution.
    pub fn same_bag(&self, other: &Relation) -> bool {
        if self.fields.len() != other.fields.len() || self.rows.len() != other.rows.len() {
            return false;
        }
        let mut a: Vec<&Vec<Value>> = self.rows.iter().collect();
        let mut b: Vec<&Vec<Value>> = other.rows.iter().collect();
        let cmp = |x: &&Vec<Value>, y: &&Vec<Value>| {
            for (vx, vy) in x.iter().zip(y.iter()) {
                let ord = vx.total_cmp(vy);
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        };
        a.sort_by(cmp);
        b.sort_by(cmp);
        a.iter().zip(b.iter()).all(|(x, y)| approx_row_eq(x, y))
    }
}

/// Row equality with small float tolerance (aggregation order may differ
/// between plans).
fn approx_row_eq(a: &[Value], b: &[Value]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    a.iter().zip(b.iter()).all(|(x, y)| match (x, y) {
        (Value::Float(fx), Value::Float(fy)) => {
            let scale = fx.abs().max(fy.abs()).max(1.0);
            (fx - fy).abs() <= 1e-6 * scale
        }
        _ => x == y,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(rows: Vec<Vec<Value>>) -> Relation {
        Relation::new(
            vec![
                ("a".to_string(), DataType::Int),
                ("b".to_string(), DataType::Str),
            ],
            rows,
        )
    }

    #[test]
    fn wire_bytes_counts_payload_and_framing() {
        let r = rel(vec![vec![Value::Int(1), Value::str("xy")]]);
        // framing 4 + int 8 + (4 + 2) string.
        assert_eq!(r.wire_bytes(), 18);
    }

    #[test]
    fn same_bag_ignores_order() {
        let r1 = rel(vec![
            vec![Value::Int(1), Value::str("a")],
            vec![Value::Int(2), Value::str("b")],
        ]);
        let r2 = rel(vec![
            vec![Value::Int(2), Value::str("b")],
            vec![Value::Int(1), Value::str("a")],
        ]);
        assert!(r1.same_bag(&r2));
        let r3 = rel(vec![
            vec![Value::Int(1), Value::str("a")],
            vec![Value::Int(1), Value::str("a")],
        ]);
        assert!(!r1.same_bag(&r3));
    }

    #[test]
    fn same_bag_float_tolerance() {
        let f1 = Relation::new(
            vec![("x".to_string(), DataType::Float)],
            vec![vec![Value::Float(1.000000001)]],
        );
        let f2 = Relation::new(
            vec![("x".to_string(), DataType::Float)],
            vec![vec![Value::Float(1.0)]],
        );
        assert!(f1.same_bag(&f2));
    }

    #[test]
    fn table_string_truncates() {
        let r = rel(vec![
            vec![Value::Int(1), Value::str("a")],
            vec![Value::Int(2), Value::str("b")],
        ]);
        let s = r.to_table_string(1);
        assert!(s.contains("(2 rows total)"));
    }

    #[test]
    fn column_index_case_insensitive() {
        let r = rel(vec![]);
        assert_eq!(r.column_index("B"), Some(1));
        assert_eq!(r.column_index("nope"), None);
    }
}
