//! In-memory relations (materialized operator outputs and table storage).
//!
//! Storage is columnar: a flat schema plus one typed column vector per
//! field (`xdb_sql::column::Column`), each `Arc`-shared so projections and
//! scans are pointer copies. Row order is part of a relation's identity —
//! every accessor presents rows exactly as a row-major layout would, so
//! results, ledgers and traces stay bit-identical with the old engine.

use std::sync::OnceLock;
use xdb_sql::column::{Column, ColumnBuilder, SchemaIndex};
use xdb_sql::value::{DataType, Value};

/// A materialized relation: a flat schema plus typed column vectors.
#[derive(Debug, Clone, Default)]
pub struct Relation {
    /// Output columns as (name, type) — qualifiers are a plan-level notion
    /// and never survive materialization.
    pub fields: Vec<(String, DataType)>,
    columns: Vec<Column>,
    /// Kept separately because zero-width relations (`SELECT` with no FROM)
    /// still have a row count.
    nrows: usize,
    /// Lazily built pre-lowered name → position map.
    index: OnceLock<SchemaIndex>,
}

impl PartialEq for Relation {
    fn eq(&self, other: &Relation) -> bool {
        self.fields == other.fields && self.nrows == other.nrows && self.columns == other.columns
    }
}

impl Relation {
    /// Build from row-major tuples (data generators, INSERT, tests). Every
    /// row must match the schema width.
    pub fn new(fields: Vec<(String, DataType)>, rows: Vec<Vec<Value>>) -> Relation {
        let nrows = rows.len();
        let width = fields.len();
        let mut builders: Vec<ColumnBuilder> = (0..width)
            .map(|_| ColumnBuilder::with_capacity(nrows))
            .collect();
        for mut row in rows {
            debug_assert_eq!(row.len(), width, "row width mismatch");
            for (b, v) in builders.iter_mut().zip(row.drain(..)) {
                b.push(v);
            }
        }
        Relation {
            fields,
            columns: builders.into_iter().map(ColumnBuilder::finish).collect(),
            nrows,
            index: OnceLock::new(),
        }
    }

    /// Build directly from columns. `nrows` is explicit so zero-width
    /// relations keep their cardinality.
    pub fn from_columns(
        fields: Vec<(String, DataType)>,
        columns: Vec<Column>,
        nrows: usize,
    ) -> Relation {
        debug_assert_eq!(fields.len(), columns.len());
        debug_assert!(columns.iter().all(|c| c.len() == nrows));
        Relation {
            fields,
            columns,
            nrows,
            index: OnceLock::new(),
        }
    }

    pub fn empty(fields: Vec<(String, DataType)>) -> Relation {
        let columns = fields.iter().map(|(_, t)| Column::empty_of(*t)).collect();
        Relation {
            fields,
            columns,
            nrows: 0,
            index: OnceLock::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.nrows
    }

    pub fn is_empty(&self) -> bool {
        self.nrows == 0
    }

    pub fn width(&self) -> usize {
        self.fields.len()
    }

    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// The value at (row, column) — exact variant preservation.
    pub fn value(&self, row: usize, col: usize) -> Value {
        self.columns[col].value(row)
    }

    /// Materialize row `i` (display, residual fallback, tests).
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.value(i)).collect()
    }

    /// Iterate rows in order as owned tuples — the row-major compatibility
    /// view. Column-at-a-time access is cheaper where it matters.
    pub fn rows(&self) -> impl Iterator<Item = Vec<Value>> + '_ {
        (0..self.nrows).map(|i| self.row(i))
    }

    /// Total size of this relation on the (simulated) wire. Computed
    /// per-column; totals are identical to the row-major model (4 bytes of
    /// framing per row plus per-value payloads).
    pub fn wire_bytes(&self) -> u64 {
        4 * self.nrows as u64 + self.columns.iter().map(Column::wire_bytes).sum::<u64>()
    }

    /// Pre-lowered name → position map, built once on first use.
    pub fn schema_index(&self) -> &SchemaIndex {
        self.index
            .get_or_init(|| SchemaIndex::build(self.fields.iter().map(|(n, _)| n.as_str())))
    }

    /// Index of a column by case-insensitive name (one hash probe).
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.schema_index().get(name)
    }

    /// Rebuild this relation by ingesting it in `chunk_rows`-row morsels
    /// (`0` = unbounded, a cheap clone) — the materialization-side half of
    /// a streamed explicit edge. Column variants, null bitmaps, and
    /// therefore values and wire bytes are preserved exactly, so the
    /// result is bit-identical to the input at every chunk size.
    pub fn rechunk(&self, chunk_rows: usize) -> Relation {
        if chunk_rows == 0 || self.nrows <= chunk_rows {
            return self.clone();
        }
        let mut columns: Vec<Column> = self.columns.iter().map(Column::empty_like).collect();
        let mut off = 0;
        while off < self.nrows {
            let take = chunk_rows.min(self.nrows - off);
            for (acc, src) in columns.iter_mut().zip(self.columns.iter()) {
                acc.append_range(src, off, take);
            }
            off += take;
        }
        Relation::from_columns(self.fields.clone(), columns, self.nrows)
    }

    /// Append row-major tuples (INSERT path — small batches).
    pub fn append_rows(&mut self, new_rows: Vec<Vec<Value>>) {
        if new_rows.is_empty() {
            return;
        }
        let mut all: Vec<Vec<Value>> = self.rows().collect();
        all.extend(new_rows);
        *self = Relation::new(std::mem::take(&mut self.fields), all);
    }

    /// Render as an aligned text table (examples and the repro binary).
    /// Only the first `max_rows` rows are ever materialized as strings.
    pub fn to_table_string(&self, max_rows: usize) -> String {
        let shown = self.nrows.min(max_rows);
        let mut widths: Vec<usize> = self.fields.iter().map(|(n, _)| n.len()).collect();
        let mut rendered: Vec<Vec<String>> = Vec::with_capacity(shown);
        for r in 0..shown {
            let row: Vec<String> = self
                .columns
                .iter()
                .map(|c| c.value(r).to_string())
                .collect();
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
            rendered.push(row);
        }
        let mut out = String::new();
        for (i, (n, _)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push_str(" | ");
            }
            out.push_str(&format!("{n:<w$}", w = widths[i]));
        }
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 3 * widths.len().saturating_sub(1)),
        );
        out.push('\n');
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    out.push_str(" | ");
                }
                out.push_str(&format!("{cell:<w$}", w = widths[i]));
            }
            out.push('\n');
        }
        if self.nrows > max_rows {
            out.push_str(&format!("... ({} rows total)\n", self.nrows));
        }
        out
    }

    /// Multiset equality: same fields (names, order) and the same bag of
    /// rows regardless of order. The correctness oracle for decentralized
    /// vs single-engine execution.
    pub fn same_bag(&self, other: &Relation) -> bool {
        if self.fields.len() != other.fields.len() || self.nrows != other.nrows {
            return false;
        }
        let mut a: Vec<Vec<Value>> = self.rows().collect();
        let mut b: Vec<Vec<Value>> = other.rows().collect();
        let cmp = |x: &Vec<Value>, y: &Vec<Value>| {
            for (vx, vy) in x.iter().zip(y.iter()) {
                let ord = vx.total_cmp(vy);
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        };
        a.sort_by(cmp);
        b.sort_by(cmp);
        a.iter().zip(b.iter()).all(|(x, y)| approx_row_eq(x, y))
    }
}

/// Row equality with small float tolerance (aggregation order may differ
/// between plans).
fn approx_row_eq(a: &[Value], b: &[Value]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    a.iter().zip(b.iter()).all(|(x, y)| match (x, y) {
        (Value::Float(fx), Value::Float(fy)) => {
            let scale = fx.abs().max(fy.abs()).max(1.0);
            (fx - fy).abs() <= 1e-6 * scale
        }
        _ => x == y,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(rows: Vec<Vec<Value>>) -> Relation {
        Relation::new(
            vec![
                ("a".to_string(), DataType::Int),
                ("b".to_string(), DataType::Str),
            ],
            rows,
        )
    }

    #[test]
    fn wire_bytes_counts_payload_and_framing() {
        let r = rel(vec![vec![Value::Int(1), Value::str("xy")]]);
        // framing 4 + int 8 + (4 + 2) string.
        assert_eq!(r.wire_bytes(), 18);
    }

    #[test]
    fn columnar_storage_roundtrips_rows() {
        let rows = vec![
            vec![Value::Int(1), Value::str("a")],
            vec![Value::Null, Value::Null],
            vec![Value::Int(-5), Value::str("")],
        ];
        let r = rel(rows.clone());
        assert_eq!(r.len(), 3);
        assert_eq!(r.rows().collect::<Vec<_>>(), rows);
        assert_eq!(r.value(2, 0), Value::Int(-5));
        assert_eq!(r.row(1), vec![Value::Null, Value::Null]);
        // Typed layout survived the nulls.
        assert!(r.column(0).as_int().is_some());
        assert!(r.column(1).as_str_col().is_some());
    }

    #[test]
    fn zero_width_relation_keeps_row_count() {
        // `SELECT 1` evaluates over a one-row, zero-column relation.
        let r = Relation::new(vec![], vec![vec![]]);
        assert_eq!(r.len(), 1);
        assert_eq!(r.width(), 0);
        assert_eq!(r.wire_bytes(), 4);
        assert_eq!(r.rows().collect::<Vec<_>>(), vec![Vec::<Value>::new()]);
    }

    #[test]
    fn same_bag_ignores_order() {
        let r1 = rel(vec![
            vec![Value::Int(1), Value::str("a")],
            vec![Value::Int(2), Value::str("b")],
        ]);
        let r2 = rel(vec![
            vec![Value::Int(2), Value::str("b")],
            vec![Value::Int(1), Value::str("a")],
        ]);
        assert!(r1.same_bag(&r2));
        let r3 = rel(vec![
            vec![Value::Int(1), Value::str("a")],
            vec![Value::Int(1), Value::str("a")],
        ]);
        assert!(!r1.same_bag(&r3));
    }

    #[test]
    fn same_bag_float_tolerance() {
        let f1 = Relation::new(
            vec![("x".to_string(), DataType::Float)],
            vec![vec![Value::Float(1.000000001)]],
        );
        let f2 = Relation::new(
            vec![("x".to_string(), DataType::Float)],
            vec![vec![Value::Float(1.0)]],
        );
        assert!(f1.same_bag(&f2));
    }

    #[test]
    fn table_string_truncates() {
        let r = rel(vec![
            vec![Value::Int(1), Value::str("a")],
            vec![Value::Int(2), Value::str("zzz")],
        ]);
        let s = r.to_table_string(1);
        assert!(s.contains("(2 rows total)"));
        // The second row's cells were never rendered.
        assert!(!s.contains("zzz"));
    }

    #[test]
    fn column_index_case_insensitive() {
        let r = rel(vec![]);
        assert_eq!(r.column_index("B"), Some(1));
        assert_eq!(r.column_index("nope"), None);
    }

    #[test]
    fn append_rows_extends_in_order() {
        let mut r = rel(vec![vec![Value::Int(1), Value::str("a")]]);
        r.append_rows(vec![vec![Value::Int(2), Value::str("b")]]);
        assert_eq!(r.len(), 2);
        assert_eq!(r.value(1, 1), Value::str("b"));
        assert_eq!(r.fields.len(), 2);
    }
}
