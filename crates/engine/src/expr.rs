//! Compilation of AST expressions into index-resolved physical expressions,
//! and their evaluation over rows.
//!
//! Compilation resolves every column reference against the operator's input
//! schema once; evaluation is then a pure tree walk with no name lookups.

use crate::error::{EngineError, Result};
use xdb_sql::algebra::PlanSchema;
use xdb_sql::ast::{is_aggregate_name, BinaryOp, DateField, Expr, IntervalUnit, UnaryOp};
use xdb_sql::value::{date, DataType, Value};

/// An index-resolved, executable expression.
#[derive(Debug, Clone)]
pub enum PhysExpr {
    Column(usize),
    Literal(Value),
    Binary {
        op: BinaryOp,
        left: Box<PhysExpr>,
        right: Box<PhysExpr>,
    },
    /// `date ± INTERVAL 'n' unit`, folded at compile time.
    DateShift {
        expr: Box<PhysExpr>,
        months: i32,
        days: i32,
    },
    Neg(Box<PhysExpr>),
    Not(Box<PhysExpr>),
    Case {
        operand: Option<Box<PhysExpr>>,
        branches: Vec<(PhysExpr, PhysExpr)>,
        else_expr: Option<Box<PhysExpr>>,
    },
    Between {
        expr: Box<PhysExpr>,
        low: Box<PhysExpr>,
        high: Box<PhysExpr>,
        negated: bool,
    },
    Like {
        expr: Box<PhysExpr>,
        pattern: String,
        negated: bool,
    },
    InList {
        expr: Box<PhysExpr>,
        list: Vec<PhysExpr>,
        negated: bool,
    },
    IsNull {
        expr: Box<PhysExpr>,
        negated: bool,
    },
    Extract {
        field: DateField,
        expr: Box<PhysExpr>,
    },
    Cast {
        expr: Box<PhysExpr>,
        data_type: DataType,
    },
    Scalar {
        func: ScalarFunc,
        args: Vec<PhysExpr>,
    },
}

/// Supported scalar functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarFunc {
    Abs,
    Round,
    Floor,
    Ceil,
    Length,
    Upper,
    Lower,
    Substr,
    Concat,
}

impl ScalarFunc {
    fn parse(name: &str) -> Option<ScalarFunc> {
        match name.to_ascii_lowercase().as_str() {
            "abs" => Some(ScalarFunc::Abs),
            "round" => Some(ScalarFunc::Round),
            "floor" => Some(ScalarFunc::Floor),
            "ceil" | "ceiling" => Some(ScalarFunc::Ceil),
            "length" | "char_length" => Some(ScalarFunc::Length),
            "upper" => Some(ScalarFunc::Upper),
            "lower" => Some(ScalarFunc::Lower),
            "substr" | "substring" => Some(ScalarFunc::Substr),
            "concat" => Some(ScalarFunc::Concat),
            _ => None,
        }
    }
}

/// Compile an AST expression against an input schema.
pub fn compile(e: &Expr, schema: &PlanSchema) -> Result<PhysExpr> {
    Ok(match e {
        Expr::Column { qualifier, name } => {
            let idx = schema.resolve(qualifier.as_deref(), name)?;
            PhysExpr::Column(idx)
        }
        Expr::Literal(v) => PhysExpr::Literal(v.clone()),
        Expr::Interval { .. } => {
            return Err(EngineError::Execution(
                "INTERVAL literal outside date arithmetic".into(),
            ))
        }
        Expr::Binary { op, left, right } => {
            // `date ± interval` folds into DateShift.
            if matches!(op, BinaryOp::Plus | BinaryOp::Minus) {
                let sign: i64 = if *op == BinaryOp::Minus { -1 } else { 1 };
                if let Expr::Interval { n, unit } = &**right {
                    return compile_date_shift(left, *n * sign, *unit, schema);
                }
                if let Expr::Interval { n, unit } = &**left {
                    if *op == BinaryOp::Plus {
                        return compile_date_shift(right, *n, *unit, schema);
                    }
                }
            }
            PhysExpr::Binary {
                op: *op,
                left: Box::new(compile(left, schema)?),
                right: Box::new(compile(right, schema)?),
            }
        }
        Expr::Unary { op, expr } => match op {
            UnaryOp::Neg => PhysExpr::Neg(Box::new(compile(expr, schema)?)),
            UnaryOp::Not => PhysExpr::Not(Box::new(compile(expr, schema)?)),
        },
        Expr::Function {
            name,
            args,
            distinct: _,
        } => {
            if is_aggregate_name(name) {
                return Err(EngineError::Execution(format!(
                    "aggregate {name} in scalar context"
                )));
            }
            let func = ScalarFunc::parse(name)
                .ok_or_else(|| EngineError::Unsupported(format!("scalar function {name:?}")))?;
            PhysExpr::Scalar {
                func,
                args: args
                    .iter()
                    .map(|a| compile(a, schema))
                    .collect::<Result<_>>()?,
            }
        }
        Expr::CountStar => return Err(EngineError::Execution("count(*) in scalar context".into())),
        Expr::Case {
            operand,
            branches,
            else_expr,
        } => PhysExpr::Case {
            operand: match operand {
                Some(o) => Some(Box::new(compile(o, schema)?)),
                None => None,
            },
            branches: branches
                .iter()
                .map(|(w, t)| Ok((compile(w, schema)?, compile(t, schema)?)))
                .collect::<Result<_>>()?,
            else_expr: match else_expr {
                Some(x) => Some(Box::new(compile(x, schema)?)),
                None => None,
            },
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => PhysExpr::Between {
            expr: Box::new(compile(expr, schema)?),
            low: Box::new(compile(low, schema)?),
            high: Box::new(compile(high, schema)?),
            negated: *negated,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => PhysExpr::Like {
            expr: Box::new(compile(expr, schema)?),
            pattern: pattern.clone(),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => PhysExpr::InList {
            expr: Box::new(compile(expr, schema)?),
            list: list
                .iter()
                .map(|x| compile(x, schema))
                .collect::<Result<_>>()?,
            negated: *negated,
        },
        Expr::IsNull { expr, negated } => PhysExpr::IsNull {
            expr: Box::new(compile(expr, schema)?),
            negated: *negated,
        },
        Expr::Extract { field, expr } => PhysExpr::Extract {
            field: *field,
            expr: Box::new(compile(expr, schema)?),
        },
        Expr::Cast { expr, data_type } => PhysExpr::Cast {
            expr: Box::new(compile(expr, schema)?),
            data_type: *data_type,
        },
        // The binder turns these into SemiJoin plan nodes; reaching the
        // expression compiler means they appeared somewhere unsupported
        // (e.g. inside a projection or OR).
        Expr::Exists { .. } | Expr::InSubquery { .. } => {
            return Err(EngineError::Unsupported(
                "subquery predicates are only supported as top-level WHERE conjuncts".into(),
            ))
        }
    })
}

fn compile_date_shift(
    base: &Expr,
    n: i64,
    unit: IntervalUnit,
    schema: &PlanSchema,
) -> Result<PhysExpr> {
    let (months, days) = match unit {
        IntervalUnit::Year => (n as i32 * 12, 0),
        IntervalUnit::Month => (n as i32, 0),
        IntervalUnit::Day => (0, n as i32),
    };
    Ok(PhysExpr::DateShift {
        expr: Box::new(compile(base, schema)?),
        months,
        days,
    })
}

impl PhysExpr {
    /// Evaluate against a row. NULLs propagate per SQL semantics.
    pub fn eval(&self, row: &[Value]) -> Result<Value> {
        Ok(match self {
            PhysExpr::Column(i) => row[*i].clone(),
            PhysExpr::Literal(v) => v.clone(),
            PhysExpr::Binary { op, left, right } => {
                let l = left.eval(row)?;
                match op {
                    // Short-circuiting three-valued logic.
                    BinaryOp::And => {
                        if l == Value::Bool(false) {
                            return Ok(Value::Bool(false));
                        }
                        let r = right.eval(row)?;
                        match (l.as_bool(), r.as_bool()) {
                            (_, Some(false)) => Value::Bool(false),
                            (Some(true), Some(true)) => Value::Bool(true),
                            _ => Value::Null,
                        }
                    }
                    BinaryOp::Or => {
                        if l == Value::Bool(true) {
                            return Ok(Value::Bool(true));
                        }
                        let r = right.eval(row)?;
                        match (l.as_bool(), r.as_bool()) {
                            (_, Some(true)) => Value::Bool(true),
                            (Some(false), Some(false)) => Value::Bool(false),
                            _ => Value::Null,
                        }
                    }
                    _ => {
                        let r = right.eval(row)?;
                        eval_binary(*op, &l, &r)?
                    }
                }
            }
            PhysExpr::DateShift { expr, months, days } => match expr.eval(row)? {
                Value::Null => Value::Null,
                Value::Date(d) => {
                    let shifted = if *months != 0 {
                        date::add_months(d, *months)
                    } else {
                        d
                    };
                    Value::Date(shifted + days)
                }
                other => {
                    return Err(EngineError::Execution(format!(
                        "interval arithmetic on non-date {other}"
                    )))
                }
            },
            PhysExpr::Neg(e) => match e.eval(row)? {
                Value::Null => Value::Null,
                Value::Int(i) => Value::Int(-i),
                Value::Float(f) => Value::Float(-f),
                other => return Err(EngineError::Execution(format!("cannot negate {other}"))),
            },
            PhysExpr::Not(e) => match e.eval(row)?.as_bool() {
                Some(b) => Value::Bool(!b),
                None => Value::Null,
            },
            PhysExpr::Case {
                operand,
                branches,
                else_expr,
            } => {
                let op_val = match operand {
                    Some(o) => Some(o.eval(row)?),
                    None => None,
                };
                for (when, then) in branches {
                    let hit = match &op_val {
                        Some(v) => {
                            let w = when.eval(row)?;
                            !v.is_null() && !w.is_null() && *v == w
                        }
                        None => when.eval(row)?.as_bool().unwrap_or(false),
                    };
                    if hit {
                        return then.eval(row);
                    }
                }
                match else_expr {
                    Some(e) => e.eval(row)?,
                    None => Value::Null,
                }
            }
            PhysExpr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let v = expr.eval(row)?;
                let lo = low.eval(row)?;
                let hi = high.eval(row)?;
                match (v.sql_cmp(&lo), v.sql_cmp(&hi)) {
                    (Some(a), Some(b)) => {
                        let inside =
                            a != std::cmp::Ordering::Less && b != std::cmp::Ordering::Greater;
                        Value::Bool(inside != *negated)
                    }
                    _ => Value::Null,
                }
            }
            PhysExpr::Like {
                expr,
                pattern,
                negated,
            } => match expr.eval(row)? {
                Value::Null => Value::Null,
                Value::Str(s) => Value::Bool(like_match(pattern, &s) != *negated),
                other => {
                    return Err(EngineError::Execution(format!(
                        "LIKE on non-string {other}"
                    )))
                }
            },
            PhysExpr::InList {
                expr,
                list,
                negated,
            } => {
                let v = expr.eval(row)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let mut saw_null = false;
                for item in list {
                    let iv = item.eval(row)?;
                    if iv.is_null() {
                        saw_null = true;
                    } else if v == iv {
                        return Ok(Value::Bool(!*negated));
                    }
                }
                if saw_null {
                    Value::Null
                } else {
                    Value::Bool(*negated)
                }
            }
            PhysExpr::IsNull { expr, negated } => {
                Value::Bool(expr.eval(row)?.is_null() != *negated)
            }
            PhysExpr::Extract { field, expr } => match expr.eval(row)? {
                Value::Null => Value::Null,
                Value::Date(d) => Value::Int(match field {
                    DateField::Year => date::year_of(d) as i64,
                    DateField::Month => date::month_of(d) as i64,
                    DateField::Day => date::ymd_from_days(d).2 as i64,
                }),
                other => {
                    return Err(EngineError::Execution(format!(
                        "EXTRACT from non-date {other}"
                    )))
                }
            },
            PhysExpr::Cast { expr, data_type } => cast(expr.eval(row)?, *data_type)?,
            PhysExpr::Scalar { func, args } => {
                let vals: Vec<Value> = args.iter().map(|a| a.eval(row)).collect::<Result<_>>()?;
                eval_scalar(*func, &vals)?
            }
        })
    }

    /// Evaluate as a predicate: true / false-or-unknown.
    pub fn eval_predicate(&self, row: &[Value]) -> Result<bool> {
        Ok(self.eval(row)?.as_bool().unwrap_or(false))
    }
}

fn eval_binary(op: BinaryOp, l: &Value, r: &Value) -> Result<Value> {
    use BinaryOp::*;
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    Ok(match op {
        Eq | NotEq | Lt | LtEq | Gt | GtEq => {
            let Some(ord) = l.sql_cmp(r) else {
                return Err(EngineError::Execution(format!(
                    "cannot compare {l} with {r}"
                )));
            };
            use std::cmp::Ordering::*;
            let b = match op {
                Eq => ord == Equal,
                NotEq => ord != Equal,
                Lt => ord == Less,
                LtEq => ord != Greater,
                Gt => ord == Greater,
                GtEq => ord != Less,
                _ => unreachable!(),
            };
            Value::Bool(b)
        }
        Concat => Value::str(format!("{l}{r}")),
        Plus | Minus | Mul | Div | Mod => arith(op, l, r)?,
        And | Or => unreachable!("handled by eval with short-circuit"),
    })
}

fn arith(op: BinaryOp, l: &Value, r: &Value) -> Result<Value> {
    use BinaryOp::*;
    // Date arithmetic.
    match (l, r, op) {
        (Value::Date(d), Value::Int(n), Plus) => return Ok(Value::Date(d + *n as i32)),
        (Value::Int(n), Value::Date(d), Plus) => return Ok(Value::Date(d + *n as i32)),
        (Value::Date(d), Value::Int(n), Minus) => return Ok(Value::Date(d - *n as i32)),
        (Value::Date(a), Value::Date(b), Minus) => return Ok(Value::Int((a - b) as i64)),
        _ => {}
    }
    let as_pair = |l: &Value, r: &Value| -> Option<(f64, f64)> {
        let lf = match l {
            Value::Int(i) => *i as f64,
            Value::Float(f) => *f,
            _ => return None,
        };
        let rf = match r {
            Value::Int(i) => *i as f64,
            Value::Float(f) => *f,
            _ => return None,
        };
        Some((lf, rf))
    };
    // Integer-preserving paths.
    if let (Value::Int(a), Value::Int(b)) = (l, r) {
        match op {
            Plus => {
                if let Some(v) = a.checked_add(*b) {
                    return Ok(Value::Int(v));
                }
            }
            Minus => {
                if let Some(v) = a.checked_sub(*b) {
                    return Ok(Value::Int(v));
                }
            }
            Mul => {
                if let Some(v) = a.checked_mul(*b) {
                    return Ok(Value::Int(v));
                }
            }
            Mod => {
                if *b == 0 {
                    return Err(EngineError::Execution("division by zero".into()));
                }
                return Ok(Value::Int(a % b));
            }
            Div => {} // SQL double division below
            _ => {}
        }
    }
    let Some((a, b)) = as_pair(l, r) else {
        return Err(EngineError::Execution(format!(
            "invalid arithmetic {l} {op:?} {r}"
        )));
    };
    Ok(match op {
        Plus => Value::Float(a + b),
        Minus => Value::Float(a - b),
        Mul => Value::Float(a * b),
        Div => {
            if b == 0.0 {
                return Err(EngineError::Execution("division by zero".into()));
            }
            Value::Float(a / b)
        }
        Mod => {
            if b == 0.0 {
                return Err(EngineError::Execution("division by zero".into()));
            }
            Value::Float(a % b)
        }
        _ => unreachable!(),
    })
}

fn cast(v: Value, ty: DataType) -> Result<Value> {
    if v.is_null() {
        return Ok(Value::Null);
    }
    let err = |v: &Value| EngineError::Execution(format!("cannot cast {v} to {ty}"));
    Ok(match ty {
        DataType::Int => match &v {
            Value::Int(i) => Value::Int(*i),
            Value::Float(f) => Value::Int(*f as i64),
            Value::Bool(b) => Value::Int(*b as i64),
            Value::Str(s) => Value::Int(s.trim().parse().map_err(|_| err(&v))?),
            Value::Date(_) => return Err(err(&v)),
            Value::Null => unreachable!(),
        },
        DataType::Float => match &v {
            Value::Int(i) => Value::Float(*i as f64),
            Value::Float(f) => Value::Float(*f),
            Value::Str(s) => Value::Float(s.trim().parse().map_err(|_| err(&v))?),
            _ => return Err(err(&v)),
        },
        DataType::Str => Value::str(v.to_string()),
        DataType::Date => match &v {
            Value::Date(d) => Value::Date(*d),
            Value::Str(s) => Value::Date(date::parse(s).ok_or_else(|| err(&v))?),
            _ => return Err(err(&v)),
        },
        DataType::Bool => match &v {
            Value::Bool(b) => Value::Bool(*b),
            Value::Int(i) => Value::Bool(*i != 0),
            _ => return Err(err(&v)),
        },
    })
}

fn eval_scalar(func: ScalarFunc, args: &[Value]) -> Result<Value> {
    let arg_err = || EngineError::Execution(format!("invalid arguments to {func:?}"));
    if args.iter().any(Value::is_null) && func != ScalarFunc::Concat {
        return Ok(Value::Null);
    }
    Ok(match func {
        ScalarFunc::Abs => match args {
            [Value::Int(i)] => Value::Int(i.abs()),
            [Value::Float(f)] => Value::Float(f.abs()),
            _ => return Err(arg_err()),
        },
        ScalarFunc::Round => match args {
            [Value::Float(f)] => Value::Float(f.round()),
            [Value::Int(i)] => Value::Int(*i),
            [Value::Float(f), Value::Int(d)] => {
                let m = 10f64.powi(*d as i32);
                Value::Float((f * m).round() / m)
            }
            _ => return Err(arg_err()),
        },
        ScalarFunc::Floor => match args {
            [Value::Float(f)] => Value::Float(f.floor()),
            [Value::Int(i)] => Value::Int(*i),
            _ => return Err(arg_err()),
        },
        ScalarFunc::Ceil => match args {
            [Value::Float(f)] => Value::Float(f.ceil()),
            [Value::Int(i)] => Value::Int(*i),
            _ => return Err(arg_err()),
        },
        ScalarFunc::Length => match args {
            [Value::Str(s)] => Value::Int(s.chars().count() as i64),
            _ => return Err(arg_err()),
        },
        ScalarFunc::Upper => match args {
            [Value::Str(s)] => Value::str(s.to_uppercase()),
            _ => return Err(arg_err()),
        },
        ScalarFunc::Lower => match args {
            [Value::Str(s)] => Value::str(s.to_lowercase()),
            _ => return Err(arg_err()),
        },
        ScalarFunc::Substr => match args {
            [Value::Str(s), Value::Int(start)] => {
                let skip = (start - 1).max(0) as usize;
                Value::str(s.chars().skip(skip).collect::<String>())
            }
            [Value::Str(s), Value::Int(start), Value::Int(len)] => {
                let skip = (start - 1).max(0) as usize;
                let take = (*len).max(0) as usize;
                Value::str(s.chars().skip(skip).take(take).collect::<String>())
            }
            _ => return Err(arg_err()),
        },
        ScalarFunc::Concat => {
            let mut out = String::new();
            for a in args {
                if !a.is_null() {
                    out.push_str(&a.to_string());
                }
            }
            Value::str(out)
        }
    })
}

/// SQL LIKE pattern matching (`%` = any run, `_` = any single char),
/// iterative backtracking over characters.
pub fn like_match(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    let (mut pi, mut ti) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None;
    while ti < t.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star = Some((pi, ti));
            pi += 1;
        } else if let Some((sp, st)) = star {
            pi = sp + 1;
            ti = st + 1;
            star = Some((sp, st + 1));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdb_sql::algebra::Field;
    use xdb_sql::parser::parse_expr;

    fn schema() -> PlanSchema {
        PlanSchema::new(vec![
            Field::new(Some("t"), "i", DataType::Int),
            Field::new(Some("t"), "f", DataType::Float),
            Field::new(Some("t"), "s", DataType::Str),
            Field::new(Some("t"), "d", DataType::Date),
        ])
    }

    fn row() -> Vec<Value> {
        vec![
            Value::Int(10),
            Value::Float(2.5),
            Value::str("GREEN apple"),
            Value::Date(date::parse("1995-03-15").unwrap()),
        ]
    }

    fn eval(sql: &str) -> Value {
        let e = parse_expr(sql).unwrap();
        let c = compile(&e, &schema()).unwrap();
        c.eval(&row()).unwrap()
    }

    #[test]
    fn arithmetic() {
        assert_eq!(eval("i + 5"), Value::Int(15));
        assert_eq!(eval("i * 2 - 1"), Value::Int(19));
        assert_eq!(eval("i / 4"), Value::Float(2.5));
        assert_eq!(eval("f * (1 - 0.5)"), Value::Float(1.25));
        assert_eq!(eval("i % 3"), Value::Int(1));
        assert_eq!(eval("-i"), Value::Int(-10));
    }

    #[test]
    fn int_overflow_promotes() {
        let e = parse_expr("i * 9223372036854775807").unwrap();
        let c = compile(&e, &schema()).unwrap();
        match c.eval(&row()).unwrap() {
            Value::Float(f) => assert!(f > 1e19),
            other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn division_by_zero_errors() {
        let e = parse_expr("i / 0").unwrap();
        let c = compile(&e, &schema()).unwrap();
        assert!(c.eval(&row()).is_err());
    }

    #[test]
    fn comparisons_and_logic() {
        assert_eq!(eval("i > 5 AND f < 3"), Value::Bool(true));
        assert_eq!(eval("i > 50 OR f < 3"), Value::Bool(true));
        assert_eq!(eval("NOT (i = 10)"), Value::Bool(false));
        assert_eq!(eval("i <> 10"), Value::Bool(false));
    }

    #[test]
    fn null_propagation() {
        assert_eq!(eval("NULL + 1"), Value::Null);
        assert_eq!(eval("i > NULL"), Value::Null);
        assert_eq!(eval("NULL IS NULL"), Value::Bool(true));
        assert_eq!(eval("i IS NOT NULL"), Value::Bool(true));
        // AND/OR three-valued logic.
        assert_eq!(eval("i > 5 AND NULL"), Value::Null);
        assert_eq!(eval("i > 50 AND NULL"), Value::Bool(false));
        assert_eq!(eval("i > 5 OR NULL"), Value::Bool(true));
        assert_eq!(eval("i > 50 OR NULL"), Value::Null);
    }

    #[test]
    fn date_arithmetic() {
        assert_eq!(
            eval("d + interval '1' year"),
            Value::Date(date::parse("1996-03-15").unwrap())
        );
        assert_eq!(
            eval("d - interval '2' month"),
            Value::Date(date::parse("1995-01-15").unwrap())
        );
        assert_eq!(
            eval("d + interval '10' day"),
            Value::Date(date::parse("1995-03-25").unwrap())
        );
        assert_eq!(eval("d - date '1995-03-10'"), Value::Int(5));
        assert_eq!(eval("d < date '1995-04-01'"), Value::Bool(true));
        assert_eq!(eval("extract(year from d)"), Value::Int(1995));
        assert_eq!(eval("extract(month from d)"), Value::Int(3));
        assert_eq!(eval("extract(day from d)"), Value::Int(15));
    }

    #[test]
    fn case_expressions() {
        assert_eq!(
            eval("case when i between 5 and 15 then 'mid' else 'out' end"),
            Value::str("mid")
        );
        assert_eq!(
            eval("case i when 10 then 'ten' when 20 then 'twenty' end"),
            Value::str("ten")
        );
        assert_eq!(eval("case when i > 100 then 'big' end"), Value::Null);
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("%green%", "dark green metal"));
        assert!(!like_match("%green%", "blue"));
        assert!(like_match("gr__n", "green"));
        assert!(like_match("%", ""));
        assert!(like_match("a%b%c", "aXXbYYc"));
        assert!(!like_match("a%b", "a"));
        assert!(like_match("", ""));
        assert!(!like_match("", "x"));
        assert_eq!(eval("s like '%apple%'"), Value::Bool(true));
        assert_eq!(eval("s not like '%pear%'"), Value::Bool(true));
    }

    #[test]
    fn in_list_semantics() {
        assert_eq!(eval("i in (1, 10, 100)"), Value::Bool(true));
        assert_eq!(eval("i in (1, 2)"), Value::Bool(false));
        assert_eq!(eval("i not in (1, 2)"), Value::Bool(true));
        // NULL in list makes a miss unknown.
        assert_eq!(eval("i in (1, NULL)"), Value::Null);
        assert_eq!(eval("i in (10, NULL)"), Value::Bool(true));
    }

    #[test]
    fn casts() {
        assert_eq!(eval("cast(i as double)"), Value::Float(10.0));
        assert_eq!(eval("cast(f as bigint)"), Value::Int(2));
        assert_eq!(eval("cast('42' as bigint)"), Value::Int(42));
        assert_eq!(
            eval("cast('1995-03-15' as date)"),
            Value::Date(date::parse("1995-03-15").unwrap())
        );
        assert_eq!(eval("cast(i as varchar)"), Value::str("10"));
    }

    #[test]
    fn scalar_functions() {
        assert_eq!(eval("abs(-5)"), Value::Int(5));
        assert_eq!(eval("length(s)"), Value::Int(11));
        assert_eq!(eval("upper(s)"), Value::str("GREEN APPLE"));
        assert_eq!(eval("lower(s)"), Value::str("green apple"));
        assert_eq!(eval("substr(s, 1, 5)"), Value::str("GREEN"));
        assert_eq!(eval("substr(s, 7)"), Value::str("apple"));
        assert_eq!(eval("round(2.567, 2)"), Value::Float(2.57));
        assert_eq!(eval("concat(s, '!')"), Value::str("GREEN apple!"));
        assert_eq!(eval("s || '!'"), Value::str("GREEN apple!"));
    }

    #[test]
    fn aggregates_rejected_in_scalar_context() {
        let e = parse_expr("sum(i)").unwrap();
        assert!(compile(&e, &schema()).is_err());
        let e = parse_expr("count(*)").unwrap();
        assert!(compile(&e, &schema()).is_err());
    }

    #[test]
    fn unknown_function_rejected() {
        let e = parse_expr("frobnicate(i)").unwrap();
        assert!(matches!(
            compile(&e, &schema()),
            Err(EngineError::Unsupported(_))
        ));
    }

    #[test]
    fn between_negated() {
        assert_eq!(eval("i not between 20 and 30"), Value::Bool(true));
        assert_eq!(eval("i between 5 and 15"), Value::Bool(true));
    }
}
