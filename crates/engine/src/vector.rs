//! Vectorized (column-at-a-time) expression kernels.
//!
//! `eval_vec` evaluates a [`PhysExpr`] over a whole relation at once and
//! returns `None` ("fall back") whenever the column-at-a-time result could
//! diverge from the row-at-a-time reference semantics in `expr.rs`. The
//! contract is strict bit-identity on success: a kernel either produces
//! exactly the values `PhysExpr::eval` would produce for every row, or it
//! declines and the caller evaluates the *whole* expression row-wise
//! (reproducing short-circuit evaluation and data-dependent errors).
//!
//! What stays out of the safe set, and why:
//! - `Div`/`Mod`: division by zero is a data-dependent runtime error that
//!   AND/OR short-circuiting may legitimately skip row-wise;
//! - `Case`/`Cast`/`Scalar`: branch short-circuiting and cast errors are
//!   data-dependent in the same way;
//! - any operand typed `Mixed`: per-row variants are unknown statically;
//! - float comparisons that hit NaN (`sql_cmp` returns `None` → the
//!   row-wise path errors with "cannot compare"): the kernel bails the
//!   moment it sees one.

use crate::expr::{like_match, PhysExpr};
use crate::relation::Relation;
use std::cmp::Ordering;
use std::sync::Arc;
use xdb_sql::ast::{BinaryOp, DateField};
use xdb_sql::column::{Column, TypedCol};
use xdb_sql::value::{date, Value};

/// Result of a vectorized evaluation: a column, or a single value standing
/// for "this value in every row" (literals and folded constants).
pub enum VecOut {
    Col(Column),
    Const(Value),
}

/// Evaluate `e` over all rows of `rel`. `None` means "not vectorizable
/// here" — never an error; the caller must fall back to row-wise eval.
pub fn eval_vec(e: &PhysExpr, rel: &Relation) -> Option<VecOut> {
    let n = rel.len();
    Some(match e {
        PhysExpr::Column(i) => {
            let c = rel.column(*i);
            if c.is_mixed() {
                return None;
            }
            VecOut::Col(c.clone())
        }
        PhysExpr::Literal(v) => VecOut::Const(v.clone()),
        PhysExpr::Binary { op, left, right } => {
            let l = eval_vec(left, rel)?;
            let r = eval_vec(right, rel)?;
            match op {
                BinaryOp::And | BinaryOp::Or => kleene(*op, &l, &r, n)?,
                BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq => cmp_kernel(*op, &l, &r, n)?,
                BinaryOp::Plus | BinaryOp::Minus | BinaryOp::Mul => arith_kernel(*op, &l, &r, n)?,
                BinaryOp::Div | BinaryOp::Mod | BinaryOp::Concat => return None,
            }
        }
        PhysExpr::Neg(x) => neg_kernel(&eval_vec(x, rel)?, n)?,
        PhysExpr::Not(x) => not_kernel(&eval_vec(x, rel)?, n)?,
        PhysExpr::IsNull { expr, negated } => is_null_kernel(&eval_vec(expr, rel)?, *negated, n),
        PhysExpr::Between {
            expr,
            low,
            high,
            negated,
        } => between_kernel(
            &eval_vec(expr, rel)?,
            &eval_vec(low, rel)?,
            &eval_vec(high, rel)?,
            *negated,
            n,
        )?,
        PhysExpr::Like {
            expr,
            pattern,
            negated,
        } => like_kernel(&eval_vec(expr, rel)?, pattern, *negated, n)?,
        PhysExpr::InList {
            expr,
            list,
            negated,
        } => {
            let items: Vec<Value> = list
                .iter()
                .map(|it| match it {
                    PhysExpr::Literal(v) => Some(v.clone()),
                    _ => None,
                })
                .collect::<Option<_>>()?;
            in_list_kernel(&eval_vec(expr, rel)?, &items, *negated, n)?
        }
        PhysExpr::Extract { field, expr } => extract_kernel(&eval_vec(expr, rel)?, *field, n)?,
        PhysExpr::DateShift { expr, months, days } => {
            date_shift_kernel(&eval_vec(expr, rel)?, *months, *days, n)?
        }
        PhysExpr::Case { .. } | PhysExpr::Cast { .. } | PhysExpr::Scalar { .. } => return None,
    })
}

/// Evaluate to a materialized column (constants are broadcast).
pub fn eval_to_column(e: &PhysExpr, rel: &Relation) -> Option<Column> {
    Some(match eval_vec(e, rel)? {
        VecOut::Col(c) => c,
        VecOut::Const(v) => const_column(&v, rel.len()),
    })
}

/// Broadcast a single value to an `n`-row column.
pub fn const_column(v: &Value, n: usize) -> Column {
    Column::from_values((0..n).map(|_| v.clone()))
}

/// Evaluate `e` as a filter predicate and return the selection vector of
/// surviving row indexes (`eval_predicate` semantics: NULL/non-bool →
/// dropped). `None` = fall back to row-wise.
pub fn filter_sel(e: &PhysExpr, rel: &Relation) -> Option<Vec<u32>> {
    let n = rel.len();
    Some(match eval_vec(e, rel)? {
        VecOut::Const(v) => {
            if v.as_bool() == Some(true) {
                (0..n as u32).collect()
            } else {
                Vec::new()
            }
        }
        VecOut::Col(Column::Bool(c)) => {
            let mut sel = Vec::with_capacity(n);
            if c.nulls.none_set() {
                for (i, &b) in c.data.iter().enumerate() {
                    if b {
                        sel.push(i as u32);
                    }
                }
            } else {
                for i in 0..n {
                    if !c.is_null(i) && c.data[i] {
                        sel.push(i as u32);
                    }
                }
            }
            sel
        }
        // Non-boolean predicate value: `as_bool()` is None for every row.
        VecOut::Col(_) => Vec::new(),
    })
}

/// Collect the column positions referenced by `e` (for sparse row buffers).
pub fn referenced_columns(e: &PhysExpr, out: &mut Vec<usize>) {
    match e {
        PhysExpr::Column(i) => out.push(*i),
        PhysExpr::Literal(_) => {}
        PhysExpr::Binary { left, right, .. } => {
            referenced_columns(left, out);
            referenced_columns(right, out);
        }
        PhysExpr::DateShift { expr, .. }
        | PhysExpr::Neg(expr)
        | PhysExpr::Not(expr)
        | PhysExpr::IsNull { expr, .. }
        | PhysExpr::Extract { expr, .. }
        | PhysExpr::Cast { expr, .. }
        | PhysExpr::Like { expr, .. } => referenced_columns(expr, out),
        PhysExpr::Case {
            operand,
            branches,
            else_expr,
        } => {
            if let Some(o) = operand {
                referenced_columns(o, out);
            }
            for (w, t) in branches {
                referenced_columns(w, out);
                referenced_columns(t, out);
            }
            if let Some(x) = else_expr {
                referenced_columns(x, out);
            }
        }
        PhysExpr::Between {
            expr, low, high, ..
        } => {
            referenced_columns(expr, out);
            referenced_columns(low, out);
            referenced_columns(high, out);
        }
        PhysExpr::InList { expr, list, .. } => {
            referenced_columns(expr, out);
            for it in list {
                referenced_columns(it, out);
            }
        }
        PhysExpr::Scalar { args, .. } => {
            for a in args {
                referenced_columns(a, out);
            }
        }
    }
}

// --------------------------------------------------------- operand views

fn is_null_const(v: &VecOut) -> bool {
    matches!(v, VecOut::Const(Value::Null))
}

enum NumIn<'a> {
    I(&'a TypedCol<i64>),
    F(&'a TypedCol<f64>),
    Ik(i64),
    Fk(f64),
}

impl<'a> NumIn<'a> {
    fn from(v: &'a VecOut) -> Option<NumIn<'a>> {
        match v {
            VecOut::Col(Column::Int(c)) => Some(NumIn::I(c)),
            VecOut::Col(Column::Float(c)) => Some(NumIn::F(c)),
            VecOut::Const(Value::Int(i)) => Some(NumIn::Ik(*i)),
            VecOut::Const(Value::Float(f)) => Some(NumIn::Fk(*f)),
            _ => None,
        }
    }

    fn int_only(&self) -> bool {
        matches!(self, NumIn::I(_) | NumIn::Ik(_))
    }

    #[inline]
    fn f64_at(&self, i: usize) -> Option<f64> {
        match self {
            NumIn::I(c) => c.get(i).map(|v| *v as f64),
            NumIn::F(c) => c.get(i).copied(),
            NumIn::Ik(k) => Some(*k as f64),
            NumIn::Fk(k) => Some(*k),
        }
    }

    #[inline]
    fn i64_at(&self, i: usize) -> Option<i64> {
        match self {
            NumIn::I(c) => c.get(i).copied(),
            NumIn::Ik(k) => Some(*k),
            _ => None,
        }
    }
}

enum DateIn<'a> {
    C(&'a TypedCol<i32>),
    K(i32),
}

impl<'a> DateIn<'a> {
    fn from(v: &'a VecOut) -> Option<DateIn<'a>> {
        match v {
            VecOut::Col(Column::Date(c)) => Some(DateIn::C(c)),
            VecOut::Const(Value::Date(d)) => Some(DateIn::K(*d)),
            _ => None,
        }
    }

    #[inline]
    fn at(&self, i: usize) -> Option<i32> {
        match self {
            DateIn::C(c) => c.get(i).copied(),
            DateIn::K(k) => Some(*k),
        }
    }
}

enum StrIn<'a> {
    C(&'a TypedCol<Arc<str>>),
    K(&'a str),
}

impl<'a> StrIn<'a> {
    fn from(v: &'a VecOut) -> Option<StrIn<'a>> {
        match v {
            VecOut::Col(Column::Str(c)) => Some(StrIn::C(c)),
            VecOut::Const(Value::Str(s)) => Some(StrIn::K(s)),
            _ => None,
        }
    }

    #[inline]
    fn at(&self, i: usize) -> Option<&'a str> {
        match self {
            StrIn::C(c) => c.get(i).map(|s| s.as_ref()),
            StrIn::K(k) => Some(k),
        }
    }
}

enum BoolIn<'a> {
    C(&'a TypedCol<bool>),
    K(bool),
}

impl<'a> BoolIn<'a> {
    fn from(v: &'a VecOut) -> Option<BoolIn<'a>> {
        match v {
            VecOut::Col(Column::Bool(c)) => Some(BoolIn::C(c)),
            VecOut::Const(Value::Bool(b)) => Some(BoolIn::K(*b)),
            _ => None,
        }
    }

    #[inline]
    fn at(&self, i: usize) -> Option<bool> {
        match self {
            BoolIn::C(c) => c.get(i).copied(),
            BoolIn::K(k) => Some(*k),
        }
    }
}

/// Tri-state boolean input (`None` = NULL/unknown) for AND/OR/NOT.
enum TriIn<'a> {
    C(&'a TypedCol<bool>),
    K(Option<bool>),
}

impl<'a> TriIn<'a> {
    fn from(v: &'a VecOut) -> Option<TriIn<'a>> {
        match v {
            VecOut::Col(Column::Bool(c)) => Some(TriIn::C(c)),
            VecOut::Const(Value::Bool(b)) => Some(TriIn::K(Some(*b))),
            VecOut::Const(Value::Null) => Some(TriIn::K(None)),
            _ => None,
        }
    }

    #[inline]
    fn at(&self, i: usize) -> Option<bool> {
        match self {
            TriIn::C(c) => c.get(i).copied(),
            TriIn::K(k) => *k,
        }
    }
}

// ----------------------------------------------------------- loop helpers

fn bool_col_from<F: FnMut(usize) -> Option<bool>>(n: usize, mut f: F) -> Column {
    let mut c = TypedCol::with_capacity(n);
    for i in 0..n {
        match f(i) {
            Some(b) => c.push(b),
            None => c.push_null(),
        }
    }
    Column::Bool(Arc::new(c))
}

#[inline]
fn ord_matches(op: BinaryOp, ord: Ordering) -> bool {
    use Ordering::*;
    match op {
        BinaryOp::Eq => ord == Equal,
        BinaryOp::NotEq => ord != Equal,
        BinaryOp::Lt => ord == Less,
        BinaryOp::LtEq => ord != Greater,
        BinaryOp::Gt => ord == Greater,
        BinaryOp::GtEq => ord != Less,
        _ => unreachable!("not a comparison"),
    }
}

/// Comparison loop; `cmpf` returning `None` (NaN) aborts the whole kernel
/// because the row-wise path errors there.
fn cmp_col<T, A, B, C>(n: usize, a: A, b: B, cmpf: C, op: BinaryOp) -> Option<Column>
where
    A: Fn(usize) -> Option<T>,
    B: Fn(usize) -> Option<T>,
    C: Fn(&T, &T) -> Option<Ordering>,
{
    let mut out = TypedCol::with_capacity(n);
    for i in 0..n {
        match (a(i), b(i)) {
            (Some(x), Some(y)) => match cmpf(&x, &y) {
                Some(ord) => out.push(ord_matches(op, ord)),
                None => return None,
            },
            _ => out.push_null(),
        }
    }
    Some(Column::Bool(Arc::new(out)))
}

// ---------------------------------------------------------------- kernels

fn cmp_kernel(op: BinaryOp, l: &VecOut, r: &VecOut, n: usize) -> Option<VecOut> {
    if is_null_const(l) || is_null_const(r) {
        return Some(VecOut::Const(Value::Null));
    }
    if let (VecOut::Const(a), VecOut::Const(b)) = (l, r) {
        // Both non-null: incomparable or NaN would error row-wise → bail.
        let ord = a.sql_cmp(b)?;
        return Some(VecOut::Const(Value::Bool(ord_matches(op, ord))));
    }
    if let (Some(a), Some(b)) = (NumIn::from(l), NumIn::from(r)) {
        if a.int_only() && b.int_only() {
            return cmp_col(
                n,
                |i| a.i64_at(i),
                |i| b.i64_at(i),
                |x, y| Some(x.cmp(y)),
                op,
            )
            .map(VecOut::Col);
        }
        return cmp_col(
            n,
            |i| a.f64_at(i),
            |i| b.f64_at(i),
            |x: &f64, y| x.partial_cmp(y),
            op,
        )
        .map(VecOut::Col);
    }
    if let (Some(a), Some(b)) = (DateIn::from(l), DateIn::from(r)) {
        return cmp_col(n, |i| a.at(i), |i| b.at(i), |x: &i32, y| Some(x.cmp(y)), op)
            .map(VecOut::Col);
    }
    if let (Some(a), Some(b)) = (StrIn::from(l), StrIn::from(r)) {
        return cmp_col(
            n,
            |i| a.at(i),
            |i| b.at(i),
            |x: &&str, y| Some(x.cmp(y)),
            op,
        )
        .map(VecOut::Col);
    }
    if let (Some(a), Some(b)) = (BoolIn::from(l), BoolIn::from(r)) {
        return cmp_col(
            n,
            |i| a.at(i),
            |i| b.at(i),
            |x: &bool, y| Some(x.cmp(y)),
            op,
        )
        .map(VecOut::Col);
    }
    None // mismatched type categories error row-wise
}

fn kleene(op: BinaryOp, l: &VecOut, r: &VecOut, n: usize) -> Option<VecOut> {
    let a = TriIn::from(l)?;
    let b = TriIn::from(r)?;
    let is_and = op == BinaryOp::And;
    let combine = |x: Option<bool>, y: Option<bool>| -> Option<bool> {
        if is_and {
            match (x, y) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            }
        } else {
            match (x, y) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            }
        }
    };
    if let (TriIn::K(x), TriIn::K(y)) = (&a, &b) {
        return Some(VecOut::Const(match combine(*x, *y) {
            Some(v) => Value::Bool(v),
            None => Value::Null,
        }));
    }
    Some(VecOut::Col(bool_col_from(n, |i| combine(a.at(i), b.at(i)))))
}

#[inline]
fn checked_int(op: BinaryOp, a: i64, b: i64) -> Option<i64> {
    match op {
        BinaryOp::Plus => a.checked_add(b),
        BinaryOp::Minus => a.checked_sub(b),
        BinaryOp::Mul => a.checked_mul(b),
        _ => unreachable!("not int arithmetic"),
    }
}

#[inline]
fn float_op(op: BinaryOp, a: f64, b: f64) -> f64 {
    match op {
        BinaryOp::Plus => a + b,
        BinaryOp::Minus => a - b,
        BinaryOp::Mul => a * b,
        _ => unreachable!("not float arithmetic"),
    }
}

fn arith_kernel(op: BinaryOp, l: &VecOut, r: &VecOut, n: usize) -> Option<VecOut> {
    if is_null_const(l) || is_null_const(r) {
        return Some(VecOut::Const(Value::Null));
    }
    // Date arithmetic (mirrors `arith()` exactly, including the i64→i32
    // interval cast).
    let (ld, rd) = (DateIn::from(l), DateIn::from(r));
    if ld.is_some() || rd.is_some() {
        let out = match (ld, rd, NumIn::from(l), NumIn::from(r), op) {
            (Some(d), None, _, Some(x), BinaryOp::Plus) if x.int_only() => {
                date_num_col(n, |i| Some(d.at(i)? + x.i64_at(i)? as i32))
            }
            (None, Some(d), Some(x), _, BinaryOp::Plus) if x.int_only() => {
                date_num_col(n, |i| Some(d.at(i)? + x.i64_at(i)? as i32))
            }
            (Some(d), None, _, Some(x), BinaryOp::Minus) if x.int_only() => {
                date_num_col(n, |i| Some(d.at(i)? - x.i64_at(i)? as i32))
            }
            (Some(a), Some(b), _, _, BinaryOp::Minus) => {
                return Some(VecOut::Col(int_col_from(n, |i| {
                    Some((a.at(i)? - b.at(i)?) as i64)
                })))
            }
            _ => return None, // any other date combination errors row-wise
        };
        return Some(VecOut::Col(out));
    }
    let (a, b) = (NumIn::from(l)?, NumIn::from(r)?);
    if let (VecOut::Const(_), VecOut::Const(_)) = (l, r) {
        // Constant fold with the exact scalar rules.
        let (x, y) = (a.f64_at(0)?, b.f64_at(0)?);
        if let (Some(xi), Some(yi)) = (a.i64_at(0), b.i64_at(0)) {
            if let Some(v) = checked_int(op, xi, yi) {
                return Some(VecOut::Const(Value::Int(v)));
            }
        }
        return Some(VecOut::Const(Value::Float(float_op(op, x, y))));
    }
    if a.int_only() && b.int_only() {
        // Optimistic i64 kernel; any overflow promotes that row to Float
        // (exactly like `arith()`), which needs the Mixed layout.
        let mut out = TypedCol::with_capacity(n);
        let mut overflowed = false;
        for i in 0..n {
            match (a.i64_at(i), b.i64_at(i)) {
                (Some(x), Some(y)) => match checked_int(op, x, y) {
                    Some(v) => out.push(v),
                    None => {
                        overflowed = true;
                        break;
                    }
                },
                _ => out.push_null(),
            }
        }
        if !overflowed {
            return Some(VecOut::Col(Column::Int(Arc::new(out))));
        }
        let mut bld = xdb_sql::column::ColumnBuilder::with_capacity(n);
        for i in 0..n {
            bld.push(match (a.i64_at(i), b.i64_at(i)) {
                (Some(x), Some(y)) => match checked_int(op, x, y) {
                    Some(v) => Value::Int(v),
                    None => Value::Float(float_op(op, x as f64, y as f64)),
                },
                _ => Value::Null,
            });
        }
        return Some(VecOut::Col(bld.finish()));
    }
    let mut out = TypedCol::with_capacity(n);
    for i in 0..n {
        match (a.f64_at(i), b.f64_at(i)) {
            (Some(x), Some(y)) => out.push(float_op(op, x, y)),
            _ => out.push_null(),
        }
    }
    Some(VecOut::Col(Column::Float(Arc::new(out))))
}

fn date_num_col<F: Fn(usize) -> Option<i32>>(n: usize, f: F) -> Column {
    let mut c = TypedCol::with_capacity(n);
    for i in 0..n {
        match f(i) {
            Some(d) => c.push(d),
            None => c.push_null(),
        }
    }
    Column::Date(Arc::new(c))
}

fn int_col_from<F: Fn(usize) -> Option<i64>>(n: usize, f: F) -> Column {
    let mut c = TypedCol::with_capacity(n);
    for i in 0..n {
        match f(i) {
            Some(v) => c.push(v),
            None => c.push_null(),
        }
    }
    Column::Int(Arc::new(c))
}

fn neg_kernel(v: &VecOut, n: usize) -> Option<VecOut> {
    Some(match v {
        VecOut::Const(Value::Null) => VecOut::Const(Value::Null),
        VecOut::Const(Value::Int(i)) => VecOut::Const(Value::Int(-i)),
        VecOut::Const(Value::Float(f)) => VecOut::Const(Value::Float(-f)),
        VecOut::Col(Column::Int(c)) => VecOut::Col(int_col_from(n, |i| c.get(i).map(|v| -v))),
        VecOut::Col(Column::Float(c)) => {
            let mut out = TypedCol::with_capacity(n);
            for i in 0..n {
                match c.get(i) {
                    Some(f) => out.push(-f),
                    None => out.push_null(),
                }
            }
            VecOut::Col(Column::Float(Arc::new(out)))
        }
        _ => return None, // negating other types errors row-wise
    })
}

fn not_kernel(v: &VecOut, n: usize) -> Option<VecOut> {
    match TriIn::from(v)? {
        TriIn::K(k) => Some(VecOut::Const(match k {
            Some(b) => Value::Bool(!b),
            None => Value::Null,
        })),
        TriIn::C(c) => Some(VecOut::Col(bool_col_from(n, |i| c.get(i).map(|b| !b)))),
    }
}

fn is_null_kernel(v: &VecOut, negated: bool, n: usize) -> VecOut {
    match v {
        VecOut::Const(k) => VecOut::Const(Value::Bool(k.is_null() != negated)),
        VecOut::Col(c) => VecOut::Col(bool_col_from(n, |i| Some(c.is_null(i) != negated))),
    }
}

/// BETWEEN is total: NULL or incomparable (NaN) comparisons yield NULL,
/// never an error — so matching-category inputs always vectorize.
fn between_kernel(v: &VecOut, lo: &VecOut, hi: &VecOut, negated: bool, n: usize) -> Option<VecOut> {
    if is_null_const(v) || is_null_const(lo) || is_null_const(hi) {
        return Some(VecOut::Const(Value::Null));
    }
    fn run<T, FV, FL, FH, C>(n: usize, v: FV, lo: FL, hi: FH, cmpf: C, negated: bool) -> Column
    where
        FV: Fn(usize) -> Option<T>,
        FL: Fn(usize) -> Option<T>,
        FH: Fn(usize) -> Option<T>,
        C: Fn(&T, &T) -> Option<Ordering>,
    {
        bool_col_from(n, |i| match (v(i), lo(i), hi(i)) {
            (Some(x), Some(l), Some(h)) => match (cmpf(&x, &l), cmpf(&x, &h)) {
                (Some(a), Some(b)) => {
                    let inside = a != Ordering::Less && b != Ordering::Greater;
                    Some(inside != negated)
                }
                _ => None,
            },
            _ => None,
        })
    }
    if let (Some(a), Some(l), Some(h)) = (NumIn::from(v), NumIn::from(lo), NumIn::from(hi)) {
        if a.int_only() && l.int_only() && h.int_only() {
            return Some(VecOut::Col(run(
                n,
                |i| a.i64_at(i),
                |i| l.i64_at(i),
                |i| h.i64_at(i),
                |x: &i64, y| Some(x.cmp(y)),
                negated,
            )));
        }
        return Some(VecOut::Col(run(
            n,
            |i| a.f64_at(i),
            |i| l.f64_at(i),
            |i| h.f64_at(i),
            |x: &f64, y| x.partial_cmp(y),
            negated,
        )));
    }
    if let (Some(a), Some(l), Some(h)) = (DateIn::from(v), DateIn::from(lo), DateIn::from(hi)) {
        return Some(VecOut::Col(run(
            n,
            |i| a.at(i),
            |i| l.at(i),
            |i| h.at(i),
            |x: &i32, y| Some(x.cmp(y)),
            negated,
        )));
    }
    if let (Some(a), Some(l), Some(h)) = (StrIn::from(v), StrIn::from(lo), StrIn::from(hi)) {
        return Some(VecOut::Col(run(
            n,
            |i| a.at(i),
            |i| l.at(i),
            |i| h.at(i),
            |x: &&str, y| Some(x.cmp(y)),
            negated,
        )));
    }
    None // mixed categories compare as NULL row-wise; rare enough to fall back
}

fn like_kernel(v: &VecOut, pattern: &str, negated: bool, n: usize) -> Option<VecOut> {
    match v {
        VecOut::Const(Value::Null) => Some(VecOut::Const(Value::Null)),
        VecOut::Const(Value::Str(s)) => Some(VecOut::Const(Value::Bool(
            like_match(pattern, s) != negated,
        ))),
        VecOut::Col(Column::Str(c)) => Some(VecOut::Col(bool_col_from(n, |i| {
            c.get(i).map(|s| like_match(pattern, s) != negated)
        }))),
        _ => None, // LIKE on non-strings errors row-wise
    }
}

fn in_list_kernel(v: &VecOut, items: &[Value], negated: bool, n: usize) -> Option<VecOut> {
    let test = |val: &Value| -> Option<bool> {
        if val.is_null() {
            return None;
        }
        let mut saw_null = false;
        for it in items {
            if it.is_null() {
                saw_null = true;
            } else if val == it {
                return Some(!negated);
            }
        }
        if saw_null {
            None
        } else {
            Some(negated)
        }
    };
    Some(match v {
        VecOut::Const(k) => VecOut::Const(match test(k) {
            Some(b) => Value::Bool(b),
            None => Value::Null,
        }),
        VecOut::Col(c) => VecOut::Col(bool_col_from(n, |i| test(&c.value(i)))),
    })
}

fn extract_kernel(v: &VecOut, field: DateField, n: usize) -> Option<VecOut> {
    let part = |d: i32| -> i64 {
        match field {
            DateField::Year => date::year_of(d) as i64,
            DateField::Month => date::month_of(d) as i64,
            DateField::Day => date::ymd_from_days(d).2 as i64,
        }
    };
    match v {
        VecOut::Const(Value::Null) => Some(VecOut::Const(Value::Null)),
        VecOut::Const(Value::Date(d)) => Some(VecOut::Const(Value::Int(part(*d)))),
        VecOut::Col(Column::Date(c)) => {
            Some(VecOut::Col(int_col_from(n, |i| c.get(i).map(|d| part(*d)))))
        }
        _ => None, // EXTRACT from non-dates errors row-wise
    }
}

fn date_shift_kernel(v: &VecOut, months: i32, days: i32, n: usize) -> Option<VecOut> {
    let shift = |d: i32| -> i32 {
        let shifted = if months != 0 {
            date::add_months(d, months)
        } else {
            d
        };
        shifted + days
    };
    match v {
        VecOut::Const(Value::Null) => Some(VecOut::Const(Value::Null)),
        VecOut::Const(Value::Date(d)) => Some(VecOut::Const(Value::Date(shift(*d)))),
        VecOut::Col(Column::Date(c)) => Some(VecOut::Col(date_num_col(n, |i| {
            c.get(i).map(|d| shift(*d))
        }))),
        _ => None, // interval arithmetic on non-dates errors row-wise
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::compile;
    use xdb_sql::algebra::{Field, PlanSchema};
    use xdb_sql::parser::parse_expr;
    use xdb_sql::value::DataType;

    fn rel() -> Relation {
        Relation::new(
            vec![
                ("i".to_string(), DataType::Int),
                ("f".to_string(), DataType::Float),
                ("s".to_string(), DataType::Str),
                ("d".to_string(), DataType::Date),
            ],
            vec![
                vec![
                    Value::Int(10),
                    Value::Float(2.5),
                    Value::str("apple pie"),
                    Value::Date(date::parse("1995-03-15").unwrap()),
                ],
                vec![Value::Null, Value::Null, Value::Null, Value::Null],
                vec![
                    Value::Int(-3),
                    Value::Float(0.0),
                    Value::str("pear"),
                    Value::Date(date::parse("1998-11-02").unwrap()),
                ],
            ],
        )
    }

    fn schema() -> PlanSchema {
        PlanSchema::new(vec![
            Field::new(None::<&str>, "i", DataType::Int),
            Field::new(None::<&str>, "f", DataType::Float),
            Field::new(None::<&str>, "s", DataType::Str),
            Field::new(None::<&str>, "d", DataType::Date),
        ])
    }

    /// Every vectorizable expression must agree with row-wise eval exactly.
    fn check(sql: &str) {
        let e = parse_expr(sql).unwrap();
        let c = compile(&e, &schema()).unwrap();
        let r = rel();
        let col = eval_to_column(&c, &r).unwrap_or_else(|| panic!("{sql} did not vectorize"));
        for i in 0..r.len() {
            let row = r.row(i);
            let expect = c.eval(&row).unwrap();
            assert_eq!(col.value(i), expect, "{sql} row {i}");
        }
    }

    #[test]
    fn kernels_match_rowwise_eval() {
        for sql in [
            "i + 5",
            "i * 2 - 1",
            "f * (1 - 0.5)",
            "-i",
            "i > 5",
            "i > 5 AND f < 3",
            "i > 50 OR f < 3",
            "NOT (i = 10)",
            "i IS NULL",
            "s IS NOT NULL",
            "i between 5 and 15",
            "i not between 20 and 30",
            "f between 0.1 and 3.0",
            "s like '%pie%'",
            "s not like 'z%'",
            "i in (1, 10, 100)",
            "i in (1, NULL)",
            "i not in (1, 2)",
            "extract(year from d)",
            "extract(month from d)",
            "d + interval '1' month",
            "d - interval '20' day",
            "d > date '1996-01-01'",
            "d - date '1995-01-01'",
            "d + 10",
            "i > NULL",
            "NULL + 1",
            "i > 5 AND NULL",
            "s = 'pear'",
            "s < 'b'",
        ] {
            check(sql);
        }
    }

    #[test]
    fn unsafe_nodes_fall_back() {
        for sql in [
            "i / 2", // div-by-zero is data-dependent
            "i % 3",
            "case when i > 5 then 1 else 2 end", // branch short-circuit
            "cast(i as varchar)",
            "abs(i)",
            "s || '!'",
        ] {
            let e = parse_expr(sql).unwrap();
            let c = compile(&e, &schema()).unwrap();
            assert!(eval_vec(&c, &rel()).is_none(), "{sql} should fall back");
        }
    }

    #[test]
    fn int_overflow_promotes_per_row() {
        let r = Relation::new(
            vec![("i".to_string(), DataType::Int)],
            vec![vec![Value::Int(2)], vec![Value::Int(i64::MAX)]],
        );
        let e = parse_expr("i + 1").unwrap();
        let schema = PlanSchema::new(vec![Field::new(None::<&str>, "i", DataType::Int)]);
        let c = compile(&e, &schema).unwrap();
        let col = eval_to_column(&c, &r).unwrap();
        assert_eq!(col.value(0), Value::Int(3));
        assert_eq!(col.value(1), Value::Float(i64::MAX as f64 + 1.0));
    }

    #[test]
    fn filter_sel_matches_predicate() {
        let r = rel();
        let e = parse_expr("i > 0 AND f < 3").unwrap();
        let c = compile(&e, &schema()).unwrap();
        let sel = filter_sel(&c, &r).unwrap();
        let expect: Vec<u32> = (0..r.len())
            .filter(|&i| c.eval_predicate(&r.row(i)).unwrap())
            .map(|i| i as u32)
            .collect();
        assert_eq!(sel, expect);
    }

    #[test]
    fn nan_comparison_falls_back() {
        let r = Relation::new(
            vec![("f".to_string(), DataType::Float)],
            vec![vec![Value::Float(f64::NAN)]],
        );
        let e = parse_expr("f > 1.0").unwrap();
        let schema = PlanSchema::new(vec![Field::new(None::<&str>, "f", DataType::Float)]);
        let c = compile(&e, &schema).unwrap();
        assert!(eval_vec(&c, &r).is_none());
    }
}
