//! Materializing executor for logical plans, with work accounting.
//!
//! Every operator really runs over real tuples — cardinalities and byte
//! counts in the experiments are measured, not estimated. The executor also
//! accumulates *work units* (rows × per-operator weight) which the engine
//! profile converts into simulated milliseconds, and collects timing edges
//! for every remote (foreign-table) scan it triggered.
//!
//! The data plane is columnar: operators evaluate expressions one column at
//! a time ([`crate::vector`]), carry row subsets as selection vectors, and
//! materialize outputs by gathering typed column vectors. Hash joins and
//! grouped aggregation optionally hash-partition their work across scoped
//! threads ([`Execution::partitions`]); partitioning is routing-only, so
//! output row order, float accumulation order, work units and traces are
//! bit-identical to the sequential plan.

use crate::engine::MorselSink;
use crate::error::{EngineError, Result};
use crate::expr::{compile, PhysExpr};
use crate::relation::Relation;
use crate::vector;
use std::collections::hash_map::{Entry, RandomState};
use std::collections::HashMap;
use std::hash::{BuildHasher, Hash};
use std::sync::Arc;
use xdb_net::EdgeTiming;
use xdb_obs::{ExecProfile, OpStat};
use xdb_sql::algebra::{aggregate_schema, AggCall, AggFunc, LogicalPlan, PlanSchema};
use xdb_sql::column::{Column, ColumnBuilder, TypedCol};
use xdb_sql::value::{DataType, Value};

/// Per-operator work-unit weights (rows processed × weight). Values are
/// relative; the engine profile's `cpu_tuple_cost_ms` sets the scale.
pub mod weights {
    pub const SCAN: f64 = 0.2;
    pub const FILTER: f64 = 0.4;
    pub const PROJECT: f64 = 0.3;
    pub const JOIN: f64 = 1.0;
    pub const AGGREGATE: f64 = 1.2;
    pub const SORT: f64 = 0.4;
    pub const DISTINCT: f64 = 0.8;
}

/// Chain terminator in the chained hash tables below.
const NO_NEXT: u32 = u32::MAX;

/// Below this many probe/build rows a join (or aggregate input) is not
/// worth fanning out to partition workers.
const PAR_MIN_ROWS: usize = 4096;

/// A relation flowing between operators: either uniquely owned (rows can be
/// moved or mutated in place) or shared with the catalog / other readers.
/// Pass-through paths (identity projections, full-table scans, aliases)
/// hand out the `Arc` instead of deep-copying every row.
#[derive(Debug, Clone)]
pub enum ExecRel {
    Owned(Relation),
    Shared(Arc<Relation>),
}

impl AsRef<Relation> for ExecRel {
    fn as_ref(&self) -> &Relation {
        match self {
            ExecRel::Owned(r) => r,
            ExecRel::Shared(r) => r,
        }
    }
}

impl ExecRel {
    /// Extract an owned relation, copying only if the data is still shared.
    pub fn into_owned(self) -> Relation {
        match self {
            ExecRel::Owned(r) => r,
            ExecRel::Shared(r) => Arc::try_unwrap(r).unwrap_or_else(|a| (*a).clone()),
        }
    }

    pub fn len(&self) -> usize {
        self.as_ref().len()
    }

    pub fn is_empty(&self) -> bool {
        self.as_ref().is_empty()
    }
}

/// Output of resolving a leaf scan.
pub struct ScanOutput {
    pub relation: ExecRel,
    /// Present when the scan pulled data from another engine (foreign
    /// table): the timing edge to compose into this engine's finish time.
    pub edge: Option<EdgeTiming>,
    /// Execution profile of the remote producer behind a foreign-table
    /// scan, when operator tracing is on.
    pub remote: Option<Box<ExecProfile>>,
}

/// Metadata for a scan whose rows were delivered morsel-by-morsel through
/// a [`MorselSink`] instead of as one materialized relation.
pub struct StreamedScan {
    /// Total rows delivered across all morsels.
    pub nrows: usize,
    /// Timing edge of the remote producer (see [`ScanOutput::edge`]).
    pub edge: Option<EdgeTiming>,
    /// Remote producer profile (see [`ScanOutput::remote`]).
    pub remote: Option<Box<ExecProfile>>,
}

/// Resolves leaf relations (base tables, foreign tables, placeholders).
pub trait ScanResolver {
    /// Fetch `relation` projected to `wanted` columns (order significant).
    fn scan(&self, relation: &str, wanted: &[(String, DataType)]) -> Result<ScanOutput>;

    /// Whether [`ScanResolver::scan_stream`] would stream this relation.
    /// Must be side-effect free: the executor consults it *before*
    /// committing to a streamed operator pipeline, so that plans without a
    /// streamable leaf keep their exact materialized execution order.
    fn streams(&self, _relation: &str) -> bool {
        false
    }

    /// Stream `relation` (projected to `wanted`) into `on_morsel` one
    /// decoded chunk at a time, never materializing the full relation in
    /// the resolver. Resolvers without a streaming path (local tables,
    /// placeholders) return `Ok(None)` without touching the sink and the
    /// executor falls back to [`ScanResolver::scan`].
    fn scan_stream(
        &self,
        _relation: &str,
        _wanted: &[(String, DataType)],
        _on_morsel: &mut MorselSink<'_>,
    ) -> Result<Option<StreamedScan>> {
        Ok(None)
    }
}

/// Reusable per-query allocations: join hash tables and chain buffers keep
/// their capacity between executions, so workloads that submit many queries
/// through one engine stop re-growing the same tables from scratch.
#[derive(Default)]
pub struct Scratch {
    int_heads: HashMap<i64, u32>,
    date_heads: HashMap<i32, u32>,
    str_heads: HashMap<Arc<str>, u32>,
    gen_heads: HashMap<Vec<Value>, u32>,
    next: Vec<u32>,
}

/// One plan execution: collects work units and remote edges.
pub struct Execution<'a> {
    resolver: &'a dyn ScanResolver,
    /// Cheap streaming work (scans, filters, projections).
    pub scan_units: f64,
    /// Join/aggregate/sort work (scaled by the profile's OLAP factor).
    pub olap_units: f64,
    /// Timing edges contributed by remote scans.
    pub edges: Vec<EdgeTiming>,
    /// Per-operator statistics in post-order, when operator tracing is on
    /// (see [`Execution::collect_ops`]); `None` costs nothing per row.
    pub ops: Option<Vec<OpStat>>,
    /// Profiles of remote producers behind foreign-table scans, paired
    /// with the edge's wire time (operator tracing only).
    pub remotes: Vec<(ExecProfile, f64)>,
    /// Worker threads for partition-parallel hash join / aggregation.
    /// 1 (the default) keeps execution fully sequential; any value produces
    /// bit-identical results.
    pub partitions: usize,
    /// Reactor worker threads decoding streamed edges (0 = no reactor).
    /// Only gates paths whose observables are identical either way — e.g.
    /// the streamed join-build concat, which costs an extra copy unless
    /// decode genuinely runs on another thread.
    pub reactor_threads: usize,
    /// Reusable hash tables and buffers (see [`Scratch`]).
    pub scratch: Scratch,
}

impl<'a> Execution<'a> {
    pub fn new(resolver: &'a dyn ScanResolver) -> Execution<'a> {
        Execution {
            resolver,
            scan_units: 0.0,
            olap_units: 0.0,
            edges: Vec::new(),
            ops: None,
            remotes: Vec::new(),
            partitions: 1,
            reactor_threads: 0,
            scratch: Scratch::default(),
        }
    }

    /// Turn on per-operator statistics collection for this execution.
    pub fn collect_ops(&mut self) {
        self.ops = Some(Vec::new());
    }

    fn op(&mut self, stat: OpStat) {
        if let Some(ops) = &mut self.ops {
            ops.push(stat);
        }
    }

    /// Execute a plan to a materialized, owned relation.
    pub fn run(&mut self, plan: &LogicalPlan) -> Result<Relation> {
        Ok(self.run_rel(plan)?.into_owned())
    }

    /// Execute a plan. Pass-through operators (scans, identity projections,
    /// aliases) return shared data without copying rows; simulated work
    /// accounting is unchanged either way.
    pub fn run_rel(&mut self, plan: &LogicalPlan) -> Result<ExecRel> {
        match plan {
            LogicalPlan::Scan {
                relation, fields, ..
            }
            | LogicalPlan::Placeholder {
                name: relation,
                fields,
                ..
            } => {
                let out = self.resolver.scan(relation, fields)?;
                if let Some(remote) = out.remote {
                    let wire_ms = out.edge.map_or(0.0, |e| e.transfer_ms);
                    self.remotes.push((*remote, wire_ms));
                }
                if let Some(edge) = out.edge {
                    self.edges.push(edge);
                }
                self.scan_units += out.relation.len() as f64 * weights::SCAN;
                self.op(OpStat {
                    op: "scan",
                    rows_out: out.relation.len() as u64,
                    ..OpStat::default()
                });
                Ok(out.relation)
            }
            LogicalPlan::OneRow => Ok(ExecRel::Owned(Relation::new(vec![], vec![vec![]]))),
            LogicalPlan::Filter { input, predicate } => {
                if let Some(out) = self.filter_streamed(input, predicate)? {
                    return Ok(out);
                }
                let rel = self.run_rel(input)?;
                let pred = compile(predicate, &input.schema())?;
                self.scan_units += rel.len() as f64 * weights::FILTER;
                let rows_in = rel.len() as u64;
                let sel = filter_selection(&pred, rel.as_ref())?;
                let rows_out = sel.len() as u64;
                let out = if sel.len() == rel.len() {
                    rel // nothing dropped — pass the input through
                } else {
                    ExecRel::Owned(gather_relation(rel.as_ref(), &sel))
                };
                self.op(OpStat {
                    op: "filter",
                    rows_in,
                    rows_out,
                    ..OpStat::default()
                });
                Ok(out)
            }
            LogicalPlan::Project { input, exprs } => {
                let rel = self.run_rel(input)?;
                let schema = input.schema();
                let compiled: Vec<(PhysExpr, String, DataType)> = exprs
                    .iter()
                    .map(|(e, n)| {
                        let c = compile(e, &schema)?;
                        let ty =
                            xdb_sql::algebra::infer_type(e, &schema).unwrap_or(DataType::Float);
                        Ok((c, n.clone(), ty))
                    })
                    .collect::<Result<_>>()?;
                self.scan_units += rel.len() as f64 * weights::PROJECT;
                self.op(OpStat {
                    op: "project",
                    rows_in: rel.len() as u64,
                    rows_out: rel.len() as u64,
                    ..OpStat::default()
                });
                // Identity fast-path: every output is the column in the
                // same position under the same name — hand the input
                // through (the work units above are still charged; the
                // simulated engine would have run the projection).
                let identity = compiled.len() == rel.as_ref().width()
                    && compiled.iter().enumerate().all(|(i, (c, n, _))| {
                        matches!(c, PhysExpr::Column(j) if *j == i)
                            && rel.as_ref().fields[i].0 == *n
                    });
                if identity {
                    return Ok(rel);
                }
                // Column references are Arc pointer copies; computed
                // expressions go through the vectorized kernels.
                let r = rel.as_ref();
                let nrows = r.len();
                let mut cols = Vec::with_capacity(compiled.len());
                for (c, _, _) in &compiled {
                    cols.push(expr_column(c, r)?);
                }
                Ok(ExecRel::Owned(Relation::from_columns(
                    compiled.into_iter().map(|(_, n, t)| (n, t)).collect(),
                    cols,
                    nrows,
                )))
            }
            LogicalPlan::Join {
                left,
                right,
                on,
                residual,
            } => self.join(left, right, on, residual.as_ref()),
            LogicalPlan::SemiJoin {
                left,
                right,
                on,
                residual,
                negated,
            } => self.semi_join(left, right, on, residual.as_ref(), *negated),
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggregates,
            } => self.aggregate(input, group_by, aggregates),
            LogicalPlan::Sort { input, keys } => {
                let schema = input.schema();
                let rel = self.run_rel(input)?;
                let compiled: Vec<(PhysExpr, bool)> = keys
                    .iter()
                    .map(|(e, desc)| Ok((compile(e, &schema)?, *desc)))
                    .collect::<Result<_>>()?;
                let n = rel.len() as f64;
                self.olap_units += n * (n.max(2.0)).log2() * weights::SORT;
                self.op(OpStat {
                    op: "sort",
                    rows_in: rel.len() as u64,
                    rows_out: rel.len() as u64,
                    ..OpStat::default()
                });
                let r = rel.as_ref();
                let key_cols: Vec<(Column, bool)> = compiled
                    .iter()
                    .map(|(c, desc)| Ok((expr_column(c, r)?, *desc)))
                    .collect::<Result<_>>()?;
                // Stable index sort over typed key columns reproduces the
                // row-major stable sort exactly (total_cmp per column).
                let mut idx: Vec<u32> = (0..r.len() as u32).collect();
                idx.sort_by(|&a, &b| {
                    for (col, desc) in &key_cols {
                        let ord = col.cmp_rows(a as usize, b as usize);
                        let ord = if *desc { ord.reverse() } else { ord };
                        if ord != std::cmp::Ordering::Equal {
                            return ord;
                        }
                    }
                    std::cmp::Ordering::Equal
                });
                Ok(ExecRel::Owned(gather_relation(r, &idx)))
            }
            LogicalPlan::Limit { input, fetch } => {
                let rel = self.run_rel(input)?;
                let fetch = *fetch as usize;
                self.op(OpStat {
                    op: "limit",
                    rows_in: rel.len() as u64,
                    rows_out: rel.len().min(fetch) as u64,
                    ..OpStat::default()
                });
                if rel.len() <= fetch {
                    return Ok(rel); // no-op limit: shared stays shared
                }
                let r = rel.as_ref();
                Ok(ExecRel::Owned(Relation::from_columns(
                    r.fields.clone(),
                    r.columns().iter().map(|c| c.head(fetch)).collect(),
                    fetch,
                )))
            }
            LogicalPlan::Distinct { input } => {
                let rel = self.run_rel(input)?;
                self.olap_units += rel.len() as f64 * weights::DISTINCT;
                let rows_in = rel.len() as u64;
                let r = rel.as_ref();
                // First-seen order is preserved (LIMIT without ORDER BY
                // above a DISTINCT observes it).
                let mut seen: std::collections::HashSet<Vec<Value>> =
                    std::collections::HashSet::with_capacity(r.len());
                let mut sel: Vec<u32> = Vec::new();
                for i in 0..r.len() {
                    if seen.insert(r.row(i)) {
                        sel.push(i as u32);
                    }
                }
                let out = gather_relation(r, &sel);
                self.op(OpStat {
                    op: "distinct",
                    rows_in,
                    rows_out: out.len() as u64,
                    ..OpStat::default()
                });
                Ok(ExecRel::Owned(out))
            }
            LogicalPlan::SubqueryAlias { input, .. } => self.run_rel(input),
        }
    }

    /// Try to stream a leaf scan through `sink` one morsel at a time.
    /// After the stream drains, records exactly the accounting the
    /// materialized scan arm of [`Execution::run_rel`] records (remote
    /// profile, timing edge, scan units, op entry) — streaming changes
    /// wall clock only, never observables. `Ok(None)` means the leaf has
    /// no streaming path (local table, non-leaf plan) and the caller must
    /// materialize instead; the sink was not called.
    fn stream_leaf(
        &mut self,
        plan: &LogicalPlan,
        sink: &mut MorselSink<'_>,
    ) -> Result<Option<usize>> {
        let Some((relation, fields)) = leaf_parts(plan) else {
            return Ok(None);
        };
        let Some(out) = self.resolver.scan_stream(relation, fields, sink)? else {
            return Ok(None);
        };
        if let Some(remote) = out.remote {
            let wire_ms = out.edge.map_or(0.0, |e| e.transfer_ms);
            self.remotes.push((*remote, wire_ms));
        }
        if let Some(edge) = out.edge {
            self.edges.push(edge);
        }
        self.scan_units += out.nrows as f64 * weights::SCAN;
        self.op(OpStat {
            op: "scan",
            rows_out: out.nrows as u64,
            ..OpStat::default()
        });
        Ok(Some(out.nrows))
    }

    /// Fused streamed filter over a foreign-table scan: each morsel is
    /// filtered as it decodes and only surviving rows are kept, so
    /// predicate evaluation overlaps the edge instead of waiting for the
    /// full relation. Work units, op stats and output bits are identical
    /// to the materialized path.
    fn filter_streamed(
        &mut self,
        input: &LogicalPlan,
        predicate: &xdb_sql::Expr,
    ) -> Result<Option<ExecRel>> {
        let Some((_, fields)) = leaf_parts(input) else {
            return Ok(None);
        };
        let fallback = fields.to_vec();
        let pred = compile(predicate, &input.schema())?;
        let mut acc = MorselConcat::new();
        let mut rows_out = 0u64;
        let nrows = {
            let mut sink = |m: &Relation| -> Result<()> {
                let sel = filter_selection(&pred, m)?;
                rows_out += sel.len() as u64;
                if sel.len() == m.len() {
                    acc.append(m, None);
                } else {
                    acc.append(m, Some(&sel));
                }
                Ok(())
            };
            match self.stream_leaf(input, &mut sink)? {
                Some(n) => n,
                None => return Ok(None),
            }
        };
        self.scan_units += nrows as f64 * weights::FILTER;
        self.op(OpStat {
            op: "filter",
            rows_in: nrows as u64,
            rows_out,
            ..OpStat::default()
        });
        Ok(Some(ExecRel::Owned(acc.finish(&fallback))))
    }

    /// Streamed aggregation over a (possibly filtered) foreign-table scan:
    /// accumulators fold each morsel as it decodes, so grouping overlaps
    /// the edge and the scan output is never materialized at all. Rows
    /// feed each group's accumulators in arrival order — exactly the row
    /// sequence the materialized kernels scan — so every output bit,
    /// work unit and op stat matches the materialized path. Multi-column
    /// group keys keep the packed materialized kernel (the streamed
    /// filter above still fuses underneath them).
    fn aggregate_streamed(
        &mut self,
        input: &LogicalPlan,
        group_by: &[(xdb_sql::Expr, String)],
        aggregates: &[(AggCall, String)],
    ) -> Result<Option<ExecRel>> {
        let (leaf, filter_pred) = match input {
            LogicalPlan::Filter {
                input: inner,
                predicate,
            } if leaf_parts(inner).is_some() => (&**inner, Some(predicate)),
            _ if leaf_parts(input).is_some() => (input, None),
            _ => return Ok(None),
        };
        if group_by.len() > 1 {
            return Ok(None);
        }
        let schema = input.schema();
        let pred = match filter_pred {
            Some(p) => Some(compile(p, &leaf.schema())?),
            None => None,
        };
        let group_c: Vec<PhysExpr> = group_by
            .iter()
            .map(|(e, _)| compile(e, &schema))
            .collect::<Result<_>>()?;
        let agg_c: Vec<(AggFunc, Option<PhysExpr>, bool)> = aggregates
            .iter()
            .map(|(a, _)| {
                let arg = match &a.arg {
                    Some(e) => Some(compile(e, &schema)?),
                    None => None,
                };
                Ok((a.func, arg, a.distinct))
            })
            .collect::<Result<_>>()?;
        let new_accs = || -> Vec<Accumulator> {
            agg_c
                .iter()
                .map(|(f, _, distinct)| Accumulator::new(*f, *distinct))
                .collect()
        };
        let mut grouper = StreamGrouper::new(group_c.is_empty());
        let mut rows_filt = 0u64;
        let nrows = {
            let mut sink = |m: &Relation| -> Result<()> {
                let filtered;
                let rel = match &pred {
                    Some(p) => {
                        let sel = filter_selection(p, m)?;
                        rows_filt += sel.len() as u64;
                        if sel.len() == m.len() {
                            m
                        } else {
                            filtered = gather_relation(m, &sel);
                            &filtered
                        }
                    }
                    None => m,
                };
                if rel.is_empty() {
                    return Ok(());
                }
                let key_col = match group_c.first() {
                    Some(g) => Some(expr_column(g, rel)?),
                    None => None,
                };
                let arg_cols: Vec<Option<Column>> = agg_c
                    .iter()
                    .map(|(_, arg, _)| match arg {
                        Some(a) => Ok(Some(expr_column(a, rel)?)),
                        None => Ok(None),
                    })
                    .collect::<Result<_>>()?;
                grouper.fold(rel.len(), key_col.as_ref(), &arg_cols, &new_accs);
                Ok(())
            };
            match self.stream_leaf(leaf, &mut sink)? {
                Some(n) => n,
                None => return Ok(None),
            }
        };
        let agg_rows = if pred.is_some() {
            self.scan_units += nrows as f64 * weights::FILTER;
            self.op(OpStat {
                op: "filter",
                rows_in: nrows as u64,
                rows_out: rows_filt,
                ..OpStat::default()
            });
            rows_filt
        } else {
            nrows as u64
        };
        self.olap_units += agg_rows as f64 * weights::AGGREGATE;
        let mut groups = grouper.into_groups();
        // Global aggregate over empty input still yields one row.
        if group_c.is_empty() && groups.is_empty() {
            groups.push(GroupOut {
                first_row: 0,
                key: vec![],
                accs: new_accs(),
            });
        }
        Ok(Some(self.finish_aggregate(
            &schema, group_by, aggregates, agg_rows, groups,
        )))
    }

    /// Streamed materialization of a leaf scan: morsels concatenate as
    /// they decode. The consumer (hash-join build) still needs the whole
    /// relation, but the copy overlaps the edge — which only pays off
    /// when reactor workers actually decode on another thread, so the
    /// path is gated on `reactor_threads` (output bits are identical
    /// either way).
    fn stream_concat(&mut self, plan: &LogicalPlan) -> Result<Option<ExecRel>> {
        if self.reactor_threads == 0 {
            return Ok(None);
        }
        let Some((_, fields)) = leaf_parts(plan) else {
            return Ok(None);
        };
        let fallback = fields.to_vec();
        let mut acc = MorselConcat::new();
        let streamed = {
            let mut sink = |m: &Relation| {
                acc.append(m, None);
                Ok(())
            };
            self.stream_leaf(plan, &mut sink)?.is_some()
        };
        if !streamed {
            return Ok(None);
        }
        Ok(Some(ExecRel::Owned(acc.finish(&fallback))))
    }

    /// Probe-side shapes the streamed hash join can drive morsel-wise: a
    /// streamable leaf, optionally under a filter. Side-effect free — used
    /// to decide engagement before anything executes.
    fn probe_stream_parts<'p>(
        &self,
        plan: &'p LogicalPlan,
    ) -> Option<(&'p LogicalPlan, Option<&'p xdb_sql::Expr>)> {
        let (leaf, pred) = match plan {
            LogicalPlan::Filter { input, predicate } => (&**input, Some(predicate)),
            _ => (plan, None),
        };
        let (relation, _) = leaf_parts(leaf)?;
        if !self.resolver.streams(relation) {
            return None;
        }
        Some((leaf, pred))
    }

    /// Hash join with a streamed probe side: the build (right) child
    /// materializes and hashes first, then the probe leaf streams morsel by
    /// morsel and each morsel's matches are emitted to `consume` while the
    /// decoded chunk is still cache-hot — the probe relation itself is
    /// never materialized. Pairs are emitted probe-major with build rows
    /// ascending within a probe row (morsel-local probe indices, absolute
    /// build indices), i.e. exactly [`join_pairs`]' order, and the
    /// accounting recorded after the drain matches the materialized join
    /// value for value — so the path engages regardless of morsel size,
    /// reactor threads or partition count and every observable stays
    /// config-invariant. Returns `Ok(None)` before any side effects unless
    /// the probe side is a streamable (optionally filtered) leaf and every
    /// probe key is a bare column: computed keys would be re-evaluated per
    /// morsel, and only bare columns are guaranteed the chunk-invariant
    /// layouts the typed chain dispatch relies on. On success returns the
    /// join's output row count and the build relation.
    fn join_probe_streamed(
        &mut self,
        left: &LogicalPlan,
        right: &LogicalPlan,
        on: &[(xdb_sql::Expr, xdb_sql::Expr)],
        residual: Option<&xdb_sql::Expr>,
        consume: &mut dyn FnMut(ProbeOut<'_>) -> Result<()>,
    ) -> Result<Option<(u64, ExecRel)>> {
        if on.is_empty() {
            return Ok(None); // nested-loop joins keep the materialized path
        }
        let Some((leaf, filter_pred)) = self.probe_stream_parts(left) else {
            return Ok(None);
        };
        let lschema = left.schema();
        let mut key_idx: Vec<usize> = Vec::with_capacity(on.len());
        for (l, _) in on {
            match compile(l, &lschema)? {
                PhysExpr::Column(i) => key_idx.push(i),
                _ => return Ok(None),
            }
        }
        // Committed. Build side first (as in the materialized path), then
        // stream the probe against the finished chain table.
        let rrel_e = match self.stream_concat(right)? {
            Some(r) => r,
            None => self.run_rel(right)?,
        };
        let rrel = rrel_e.as_ref();
        let rschema = right.schema();
        let residual_c = match residual {
            Some(r) => Some(compile(r, &lschema.join(&rschema))?),
            None => None,
        };
        let pred_c = match filter_pred {
            Some(p) => Some(compile(p, &leaf.schema())?),
            None => None,
        };
        let rkeys: Vec<PhysExpr> = on
            .iter()
            .map(|(_, r)| compile(r, &rschema))
            .collect::<Result<_>>()?;
        let bcols: Vec<Column> = rkeys
            .iter()
            .map(|k| expr_column(k, rrel))
            .collect::<Result<_>>()?;
        let mut scratch = std::mem::take(&mut self.scratch);
        let mut chain = ProbeChainKind::Unset;
        let mut rows_filt = 0u64;
        let mut out_rows = 0u64;
        let (mut lsel, mut rsel) = (Vec::new(), Vec::new());
        let streamed = {
            let mut sink = |m: &Relation| -> Result<()> {
                let filtered;
                let rel = match &pred_c {
                    Some(p) => {
                        let sel = filter_selection(p, m)?;
                        rows_filt += sel.len() as u64;
                        if sel.len() == m.len() {
                            m
                        } else {
                            filtered = gather_relation(m, &sel);
                            &filtered
                        }
                    }
                    None => m,
                };
                let pcols: Vec<Column> = key_idx.iter().map(|&i| rel.column(i).clone()).collect();
                if let ProbeChainKind::Unset = chain {
                    // Dispatch on the first morsel's layouts exactly as the
                    // materialized join dispatches on the full columns, and
                    // build the chain table once.
                    chain = match single_key(&bcols, &pcols) {
                        Some((Column::Int(b), Column::Int(_))) => {
                            build_chain(&typed_keys(b), &mut scratch.int_heads, &mut scratch.next);
                            ProbeChainKind::Int
                        }
                        Some((Column::Date(b), Column::Date(_))) => {
                            build_chain(&typed_keys(b), &mut scratch.date_heads, &mut scratch.next);
                            ProbeChainKind::Date
                        }
                        Some((Column::Str(b), Column::Str(_))) => {
                            build_chain(&typed_keys(b), &mut scratch.str_heads, &mut scratch.next);
                            ProbeChainKind::Str
                        }
                        _ => {
                            build_chain(
                                &generic_keys(&bcols, rrel.len()),
                                &mut scratch.gen_heads,
                                &mut scratch.next,
                            );
                            ProbeChainKind::Gen
                        }
                    };
                }
                lsel.clear();
                rsel.clear();
                let n = rel.len();
                match (&chain, pcols.as_slice()) {
                    (ProbeChainKind::Int, [Column::Int(p)]) => probe_chain(
                        (0..n).map(|i| p.get(i).copied()),
                        &scratch.int_heads,
                        &scratch.next,
                        &mut lsel,
                        &mut rsel,
                    ),
                    (ProbeChainKind::Date, [Column::Date(p)]) => probe_chain(
                        (0..n).map(|i| p.get(i).copied()),
                        &scratch.date_heads,
                        &scratch.next,
                        &mut lsel,
                        &mut rsel,
                    ),
                    (ProbeChainKind::Str, [Column::Str(p)]) => probe_chain(
                        (0..n).map(|i| p.get(i).cloned()),
                        &scratch.str_heads,
                        &scratch.next,
                        &mut lsel,
                        &mut rsel,
                    ),
                    (ProbeChainKind::Gen, _) => probe_chain(
                        generic_keys(&pcols, n).into_iter(),
                        &scratch.gen_heads,
                        &scratch.next,
                        &mut lsel,
                        &mut rsel,
                    ),
                    // Bare columns off a stream decoder keep one layout for
                    // the whole edge, so the typed arms cannot drift.
                    _ => {
                        return Err(EngineError::Execution(
                            "streamed probe key layout drifted between morsels".into(),
                        ))
                    }
                }
                match &residual_c {
                    None => {
                        out_rows += lsel.len() as u64;
                        consume(ProbeOut::Sels {
                            morsel: rel,
                            build: rrel,
                            lsel: &lsel,
                            rsel: &rsel,
                        })
                    }
                    Some(res) => {
                        let mut jf = Vec::with_capacity(rel.width() + rrel.width());
                        jf.extend(rel.fields.iter().cloned());
                        jf.extend(rrel.fields.iter().cloned());
                        let jm = gather_pair(rel, rrel, &lsel, &rsel, jf);
                        let sel = filter_selection(res, &jm)?;
                        let out = if sel.len() == jm.len() {
                            jm
                        } else {
                            gather_relation(&jm, &sel)
                        };
                        out_rows += out.len() as u64;
                        consume(ProbeOut::Rows(&out))
                    }
                }
            };
            self.stream_leaf(leaf, &mut sink)
        };
        self.scratch = scratch;
        let nrows = match streamed? {
            Some(n) => n,
            None => {
                return Err(EngineError::Execution(
                    "resolver advertised a streamable probe leaf but did not stream it".into(),
                ))
            }
        };
        let build_rows = rrel_e.len() as u64;
        let probe_rows = if pred_c.is_some() {
            self.scan_units += nrows as f64 * weights::FILTER;
            self.op(OpStat {
                op: "filter",
                rows_in: nrows as u64,
                rows_out: rows_filt,
                ..OpStat::default()
            });
            rows_filt
        } else {
            nrows as u64
        };
        self.olap_units += (probe_rows as f64 + build_rows as f64) * weights::JOIN;
        self.olap_units += out_rows as f64 * weights::JOIN * 0.5;
        self.op(OpStat {
            op: "hash join",
            rows_in: probe_rows + build_rows,
            rows_out: out_rows,
            build_rows,
            probe_rows,
        });
        Ok(Some((out_rows, rrel_e)))
    }

    /// Streamed-probe materializing join: matches append straight from
    /// each cache-hot probe morsel (and the build relation) into the
    /// output builders, so the join output is written exactly once and the
    /// probe side never materializes. Output bits match the materialized
    /// join: same pair order, same gather order, layouts from the first
    /// morsel (which the decoder keeps chunk-invariant).
    fn join_streamed(
        &mut self,
        left: &LogicalPlan,
        right: &LogicalPlan,
        on: &[(xdb_sql::Expr, xdb_sql::Expr)],
        residual: Option<&xdb_sql::Expr>,
    ) -> Result<Option<ExecRel>> {
        let mut fields: Option<Vec<(String, DataType)>> = None;
        let mut cols: Vec<Column> = Vec::new();
        let mut rows = 0usize;
        let mut consume = |out: ProbeOut<'_>| -> Result<()> {
            match out {
                ProbeOut::Sels {
                    morsel,
                    build,
                    lsel,
                    rsel,
                } => {
                    if fields.is_none() {
                        let mut f = Vec::with_capacity(morsel.width() + build.width());
                        f.extend(morsel.fields.iter().cloned());
                        f.extend(build.fields.iter().cloned());
                        fields = Some(f);
                        cols = morsel
                            .columns()
                            .iter()
                            .chain(build.columns())
                            .map(Column::empty_like)
                            .collect();
                    }
                    let lw = morsel.width();
                    for (j, c) in morsel.columns().iter().enumerate() {
                        cols[j].append_gather(c, lsel);
                    }
                    for (j, c) in build.columns().iter().enumerate() {
                        cols[lw + j].append_gather(c, rsel);
                    }
                    rows += lsel.len();
                }
                ProbeOut::Rows(r) => {
                    if fields.is_none() {
                        fields = Some(r.fields.clone());
                        cols = r.columns().iter().map(Column::empty_like).collect();
                    }
                    for (dst, src) in cols.iter_mut().zip(r.columns()) {
                        dst.append_range(src, 0, r.len());
                    }
                    rows += r.len();
                }
            }
            Ok(())
        };
        let Some((_, rrel_e)) =
            self.join_probe_streamed(left, right, on, residual, &mut consume)?
        else {
            return Ok(None);
        };
        let out = match fields {
            Some(f) => Relation::from_columns(f, cols, rows),
            None => {
                // Zero probe morsels: schema from the declared leaf fields
                // plus the build relation (the `MorselConcat` fallback rule).
                let leaf = match left {
                    LogicalPlan::Filter { input, .. } => &**input,
                    other => other,
                };
                let (_, lfields) = leaf_parts(leaf).expect("streamed probe engaged on a non-leaf");
                let rrel = rrel_e.as_ref();
                let mut f: Vec<(String, DataType)> = lfields.to_vec();
                f.extend(rrel.fields.iter().cloned());
                let mut c: Vec<Column> =
                    lfields.iter().map(|(_, t)| Column::empty_of(*t)).collect();
                c.extend(rrel.columns().iter().map(Column::empty_like));
                Relation::from_columns(f, c, 0)
            }
        };
        Ok(Some(ExecRel::Owned(out)))
    }

    /// Fused streamed aggregation over a streamed-probe join: each probe
    /// morsel's matches gather into a small cache-hot joined morsel that
    /// folds straight into the streaming grouper, so neither the probe
    /// relation nor the join output is ever materialized. Single (or no)
    /// group key only — the shapes [`StreamGrouper`] reproduces
    /// bit-identically to the materialized kernels.
    fn aggregate_join_streamed(
        &mut self,
        input: &LogicalPlan,
        group_by: &[(xdb_sql::Expr, String)],
        aggregates: &[(AggCall, String)],
    ) -> Result<Option<ExecRel>> {
        let LogicalPlan::Join {
            left,
            right,
            on,
            residual,
        } = input
        else {
            return Ok(None);
        };
        if group_by.len() > 1 {
            return Ok(None);
        }
        let schema = input.schema();
        let group_c: Vec<PhysExpr> = group_by
            .iter()
            .map(|(e, _)| compile(e, &schema))
            .collect::<Result<_>>()?;
        let agg_c: Vec<(AggFunc, Option<PhysExpr>, bool)> = aggregates
            .iter()
            .map(|(a, _)| {
                let arg = match &a.arg {
                    Some(e) => Some(compile(e, &schema)?),
                    None => None,
                };
                Ok((a.func, arg, a.distinct))
            })
            .collect::<Result<_>>()?;
        let new_accs = || -> Vec<Accumulator> {
            agg_c
                .iter()
                .map(|(f, _, distinct)| Accumulator::new(*f, *distinct))
                .collect()
        };
        let mut grouper = StreamGrouper::new(group_c.is_empty());
        let mut consume = |out: ProbeOut<'_>| -> Result<()> {
            let joined;
            let rel: &Relation = match out {
                ProbeOut::Sels {
                    morsel,
                    build,
                    lsel,
                    rsel,
                } => {
                    let mut jf = Vec::with_capacity(morsel.width() + build.width());
                    jf.extend(morsel.fields.iter().cloned());
                    jf.extend(build.fields.iter().cloned());
                    joined = gather_pair(morsel, build, lsel, rsel, jf);
                    &joined
                }
                ProbeOut::Rows(r) => r,
            };
            if rel.is_empty() {
                return Ok(());
            }
            let key_col = match group_c.first() {
                Some(g) => Some(expr_column(g, rel)?),
                None => None,
            };
            let arg_cols: Vec<Option<Column>> = agg_c
                .iter()
                .map(|(_, arg, _)| match arg {
                    Some(a) => Ok(Some(expr_column(a, rel)?)),
                    None => Ok(None),
                })
                .collect::<Result<_>>()?;
            grouper.fold(rel.len(), key_col.as_ref(), &arg_cols, &new_accs);
            Ok(())
        };
        let Some((out_rows, _)) =
            self.join_probe_streamed(left, right, on, residual.as_ref(), &mut consume)?
        else {
            return Ok(None);
        };
        self.olap_units += out_rows as f64 * weights::AGGREGATE;
        let mut groups = grouper.into_groups();
        // Global aggregate over an empty join still yields one row.
        if group_c.is_empty() && groups.is_empty() {
            groups.push(GroupOut {
                first_row: 0,
                key: vec![],
                accs: new_accs(),
            });
        }
        Ok(Some(self.finish_aggregate(
            &schema, group_by, aggregates, out_rows, groups,
        )))
    }

    fn join(
        &mut self,
        left: &LogicalPlan,
        right: &LogicalPlan,
        on: &[(xdb_sql::Expr, xdb_sql::Expr)],
        residual: Option<&xdb_sql::Expr>,
    ) -> Result<ExecRel> {
        if let Some(out) = self.join_streamed(left, right, on, residual)? {
            return Ok(out);
        }
        let lrel_e = self.run_rel(left)?;
        // The build side must be fully materialized before probing, but
        // when reactor workers decode the edge its morsels can concatenate
        // while later chunks are still in flight.
        let rrel_e = match self.stream_concat(right)? {
            Some(r) => r,
            None => self.run_rel(right)?,
        };
        let (lrel, rrel) = (lrel_e.as_ref(), rrel_e.as_ref());
        let lschema = left.schema();
        let rschema = right.schema();
        let joined_schema = lschema.join(&rschema);
        let residual_c = match residual {
            Some(r) => Some(compile(r, &joined_schema)?),
            None => None,
        };
        let mut fields = Vec::with_capacity(lrel.width() + rrel.width());
        fields.extend(lrel.fields.iter().cloned());
        fields.extend(rrel.fields.iter().cloned());
        let (lsel, rsel);
        let hash = !on.is_empty();
        if hash {
            // Hash join: build on the right child, probe with the left.
            let lkeys: Vec<PhysExpr> = on
                .iter()
                .map(|(l, _)| compile(l, &lschema))
                .collect::<Result<_>>()?;
            let rkeys: Vec<PhysExpr> = on
                .iter()
                .map(|(_, r)| compile(r, &rschema))
                .collect::<Result<_>>()?;
            let bcols: Vec<Column> = rkeys
                .iter()
                .map(|k| expr_column(k, rrel))
                .collect::<Result<_>>()?;
            let pcols: Vec<Column> = lkeys
                .iter()
                .map(|k| expr_column(k, lrel))
                .collect::<Result<_>>()?;
            self.olap_units += (lrel.len() as f64 + rrel.len() as f64) * weights::JOIN;
            let Scratch {
                int_heads,
                date_heads,
                str_heads,
                gen_heads,
                next,
            } = &mut self.scratch;
            let parts = self.partitions;
            // Typed single-key fast path when both sides share the layout;
            // otherwise generic Value keys (which also give Int↔Float keys
            // the cross-type equality the row-major executor had).
            (rsel, lsel) = match single_key(&bcols, &pcols) {
                Some((Column::Int(b), Column::Int(p))) => {
                    join_pairs(&typed_keys(b), &typed_keys(p), parts, int_heads, next)
                }
                Some((Column::Date(b), Column::Date(p))) => {
                    join_pairs(&typed_keys(b), &typed_keys(p), parts, date_heads, next)
                }
                Some((Column::Str(b), Column::Str(p))) => {
                    join_pairs(&typed_keys(b), &typed_keys(p), parts, str_heads, next)
                }
                _ => join_pairs(
                    &generic_keys(&bcols, rrel.len()),
                    &generic_keys(&pcols, lrel.len()),
                    parts,
                    gen_heads,
                    next,
                ),
            };
        } else {
            // Nested-loop (cross) join with optional residual.
            self.olap_units += (lrel.len() as f64 * rrel.len() as f64) * weights::JOIN;
            let total = lrel.len() * rrel.len();
            let mut ls = Vec::with_capacity(total);
            let mut rs = Vec::with_capacity(total);
            for li in 0..lrel.len() as u32 {
                for ri in 0..rrel.len() as u32 {
                    ls.push(li);
                    rs.push(ri);
                }
            }
            (lsel, rsel) = (ls, rs);
        }
        let mut out = gather_pair(lrel, rrel, &lsel, &rsel, fields);
        if let Some(res) = &residual_c {
            let sel = filter_selection(res, &out)?;
            if sel.len() < out.len() {
                out = gather_relation(&out, &sel);
            }
        }
        if hash {
            self.olap_units += out.len() as f64 * weights::JOIN * 0.5;
        }
        self.op(OpStat {
            op: if hash {
                "hash join"
            } else {
                "nested loop join"
            },
            rows_in: (lrel.len() + rrel.len()) as u64,
            rows_out: out.len() as u64,
            build_rows: rrel.len() as u64,
            probe_rows: lrel.len() as u64,
        });
        Ok(ExecRel::Owned(out))
    }

    /// Semi/anti join: emit left rows with at least one (semi) or zero
    /// (anti) matching right rows. Stays sequential: output size is bounded
    /// by the left input and the probe is a single hash lookup per row.
    fn semi_join(
        &mut self,
        left: &LogicalPlan,
        right: &LogicalPlan,
        on: &[(xdb_sql::Expr, xdb_sql::Expr)],
        residual: Option<&xdb_sql::Expr>,
        negated: bool,
    ) -> Result<ExecRel> {
        let lrel_e = self.run_rel(left)?;
        let rrel_e = self.run_rel(right)?;
        let (lrel, rrel) = (lrel_e.as_ref(), rrel_e.as_ref());
        let lschema = left.schema();
        let rschema = right.schema();
        let residual_c = match residual {
            Some(r) => Some(compile(r, &lschema.join(&rschema))?),
            None => None,
        };
        let lkeys: Vec<PhysExpr> = on
            .iter()
            .map(|(l, _)| compile(l, &lschema))
            .collect::<Result<_>>()?;
        let rkeys: Vec<PhysExpr> = on
            .iter()
            .map(|(_, r)| compile(r, &rschema))
            .collect::<Result<_>>()?;
        let bcols: Vec<Column> = rkeys
            .iter()
            .map(|k| expr_column(k, rrel))
            .collect::<Result<_>>()?;
        let pcols: Vec<Column> = lkeys
            .iter()
            .map(|k| expr_column(k, lrel))
            .collect::<Result<_>>()?;
        self.olap_units += (lrel.len() as f64 + rrel.len() as f64) * weights::JOIN;
        // Candidate right rows are visited in ascending row order and the
        // residual short-circuits on the first match, exactly like the
        // row-major executor.
        let mut residual_fn = |li: usize, ri: usize| -> Result<bool> {
            let res = residual_c.as_ref().expect("residual present");
            let mut combined = lrel.row(li);
            combined.extend(rrel.row(ri));
            res.eval_predicate(&combined)
        };
        let residual_dyn: Option<&mut dyn FnMut(usize, usize) -> Result<bool>> =
            if residual_c.is_some() {
                Some(&mut residual_fn)
            } else {
                None
            };
        let Scratch {
            int_heads,
            date_heads,
            str_heads,
            gen_heads,
            next,
        } = &mut self.scratch;
        let matched = match single_key(&bcols, &pcols) {
            Some((Column::Int(b), Column::Int(p))) => semi_matches(
                &typed_keys(b),
                &typed_keys(p),
                int_heads,
                next,
                residual_dyn,
            )?,
            Some((Column::Date(b), Column::Date(p))) => semi_matches(
                &typed_keys(b),
                &typed_keys(p),
                date_heads,
                next,
                residual_dyn,
            )?,
            Some((Column::Str(b), Column::Str(p))) => semi_matches(
                &typed_keys(b),
                &typed_keys(p),
                str_heads,
                next,
                residual_dyn,
            )?,
            _ => semi_matches(
                &generic_keys(&bcols, rrel.len()),
                &generic_keys(&pcols, lrel.len()),
                gen_heads,
                next,
                residual_dyn,
            )?,
        };
        let sel: Vec<u32> = matched
            .iter()
            .enumerate()
            .filter(|(_, m)| **m != negated)
            .map(|(i, _)| i as u32)
            .collect();
        let (rows_in, build_rows, probe_rows) = (
            (lrel.len() + rrel.len()) as u64,
            rrel.len() as u64,
            lrel.len() as u64,
        );
        let out = gather_relation(lrel, &sel);
        self.op(OpStat {
            op: if negated { "anti join" } else { "semi join" },
            rows_in,
            rows_out: out.len() as u64,
            build_rows,
            probe_rows,
        });
        Ok(ExecRel::Owned(out))
    }

    fn aggregate(
        &mut self,
        input: &LogicalPlan,
        group_by: &[(xdb_sql::Expr, String)],
        aggregates: &[(AggCall, String)],
    ) -> Result<ExecRel> {
        if let Some(out) = self.aggregate_streamed(input, group_by, aggregates)? {
            return Ok(out);
        }
        if let Some(out) = self.aggregate_join_streamed(input, group_by, aggregates)? {
            return Ok(out);
        }
        let rel_e = self.run_rel(input)?;
        let rel = rel_e.as_ref();
        let schema = input.schema();
        let group_c: Vec<PhysExpr> = group_by
            .iter()
            .map(|(e, _)| compile(e, &schema))
            .collect::<Result<_>>()?;
        let agg_c: Vec<(AggFunc, Option<PhysExpr>, bool)> = aggregates
            .iter()
            .map(|(a, _)| {
                let arg = match &a.arg {
                    Some(e) => Some(compile(e, &schema)?),
                    None => None,
                };
                Ok((a.func, arg, a.distinct))
            })
            .collect::<Result<_>>()?;
        self.olap_units += rel.len() as f64 * weights::AGGREGATE;

        let n = rel.len();
        let key_cols: Vec<Column> = group_c
            .iter()
            .map(|g| expr_column(g, rel))
            .collect::<Result<_>>()?;
        let arg_cols: Vec<Option<Column>> = agg_c
            .iter()
            .map(|(_, arg, _)| match arg {
                Some(a) => Ok(Some(expr_column(a, rel)?)),
                None => Ok(None),
            })
            .collect::<Result<_>>()?;
        let new_accs = || -> Vec<Accumulator> {
            agg_c
                .iter()
                .map(|(f, _, distinct)| Accumulator::new(*f, *distinct))
                .collect()
        };
        let parallel = self.partitions > 1 && n >= PAR_MIN_ROWS && !group_c.is_empty();
        let nparts = if parallel { self.partitions } else { 1 };
        // Single-column Int/Str group keys take a typed fast path: the hash
        // table is keyed on the native values, skipping the per-row
        // `Vec<Value>` key materialization of the generic path below.
        let typed = if group_c.len() == 1 {
            match &key_cols[0] {
                Column::Int(c) => Some(group_single_typed(
                    n,
                    nparts,
                    &arg_cols,
                    &new_accs,
                    &|i| c.get(i).copied(),
                    &|k: &Option<i64>| k.map_or(Value::Null, Value::Int),
                )),
                Column::Str(c) => Some(group_single_typed(
                    n,
                    nparts,
                    &arg_cols,
                    &new_accs,
                    &|i| c.get(i).map(|s| s.as_ref()),
                    &|k: &Option<&str>| k.map_or(Value::Null, |s| Value::Str(s.into())),
                )),
                _ => None,
            }
        } else if group_c.len() >= 2 {
            // Multi-column keys pack into one u128 where the column kinds
            // allow, keying the hash table on a single integer instead of
            // a per-row `Vec<Value>`.
            pack_group_keys(&key_cols, n).map(|packed| {
                group_multi_packed(n, nparts, &key_cols, &arg_cols, &new_accs, &packed)
            })
        } else {
            None
        };
        let mut groups: Vec<GroupOut> = if let Some(groups) = typed {
            groups
        } else {
            let keys: Vec<Vec<Value>> = (0..n)
                .map(|i| key_cols.iter().map(|c| c.value(i)).collect())
                .collect();
            // One partition accumulates the groups whose key hashes to it,
            // scanning rows in ascending order — each group sees exactly
            // the row sequence the sequential pass would feed it, so float
            // accumulation order (and therefore every bit of the output) is
            // independent of the partition count.
            let run_partition = |p: usize, nparts: usize, rs: &RandomState| -> Vec<GroupOut> {
                let mut index: HashMap<&[Value], usize> = HashMap::new();
                let mut out: Vec<GroupOut> = Vec::new();
                for (i, key) in keys.iter().enumerate() {
                    if nparts > 1 && rs.hash_one(&key[..]) as usize % nparts != p {
                        continue;
                    }
                    let gi = match index.entry(&key[..]) {
                        Entry::Occupied(e) => *e.get(),
                        Entry::Vacant(e) => {
                            let gi = out.len();
                            e.insert(gi);
                            out.push(GroupOut {
                                first_row: i as u32,
                                key: key.clone(),
                                accs: new_accs(),
                            });
                            gi
                        }
                    };
                    for (acc, col) in out[gi].accs.iter_mut().zip(arg_cols.iter()) {
                        acc.update(col.as_ref().map(|c| c.value(i)));
                    }
                }
                out
            };
            if parallel {
                let rs = RandomState::new();
                let parts: Vec<Vec<GroupOut>> = std::thread::scope(|s| {
                    let rs = &rs;
                    let run_partition = &run_partition;
                    let handles: Vec<_> = (0..nparts)
                        .map(|p| s.spawn(move || run_partition(p, nparts, rs)))
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("aggregate worker panicked"))
                        .collect()
                });
                let mut all: Vec<GroupOut> = parts.into_iter().flatten().collect();
                // First-seen group order, exactly as a sequential pass
                // emits.
                all.sort_unstable_by_key(|g| g.first_row);
                all
            } else {
                run_partition(0, 1, &RandomState::new())
            }
        };
        // Global aggregate over empty input still yields one row.
        if group_c.is_empty() && groups.is_empty() {
            groups.push(GroupOut {
                first_row: 0,
                key: vec![],
                accs: new_accs(),
            });
        }
        Ok(self.finish_aggregate(&schema, group_by, aggregates, rel.len() as u64, groups))
    }

    /// Shared tail of the materialized and streamed aggregation paths:
    /// materialize groups (key values, then finished accumulators) into
    /// the output relation and record the operator stat.
    fn finish_aggregate(
        &mut self,
        schema: &PlanSchema,
        group_by: &[(xdb_sql::Expr, String)],
        aggregates: &[(AggCall, String)],
        rows_in: u64,
        groups: Vec<GroupOut>,
    ) -> ExecRel {
        // Output schema derived from the input schema — no need to
        // reconstruct (and deep-clone) the plan node.
        let fields: Vec<(String, DataType)> = aggregate_schema(schema, group_by, aggregates)
            .fields
            .into_iter()
            .map(|f| (f.name, f.data_type))
            .collect();
        let ngroups = groups.len();
        let mut builders: Vec<ColumnBuilder> = (0..fields.len())
            .map(|_| ColumnBuilder::with_capacity(ngroups))
            .collect();
        for g in groups {
            let mut ci = 0;
            for v in g.key {
                builders[ci].push(v);
                ci += 1;
            }
            for acc in g.accs {
                builders[ci].push(acc.finish());
                ci += 1;
            }
        }
        self.op(OpStat {
            op: "aggregate",
            rows_in,
            rows_out: ngroups as u64,
            ..OpStat::default()
        });
        ExecRel::Owned(Relation::from_columns(
            fields,
            builders.into_iter().map(ColumnBuilder::finish).collect(),
            ngroups,
        ))
    }
}

/// One output group: first input row that opened it (for deterministic
/// ordering), its key values, and its accumulators.
struct GroupOut {
    first_row: u32,
    key: Vec<Value>,
    accs: Vec<Accumulator>,
}

/// Leaf shapes a streamed edge can replace: a scan or placeholder node.
fn leaf_parts(plan: &LogicalPlan) -> Option<(&str, &[(String, DataType)])> {
    match plan {
        LogicalPlan::Scan {
            relation, fields, ..
        } => Some((relation, fields)),
        LogicalPlan::Placeholder { name, fields, .. } => Some((name, fields)),
        _ => None,
    }
}

/// Incremental row-wise concatenation of morsels sharing one schema.
/// Schema and column layouts come from the first morsel (the decoder
/// keeps layouts chunk-invariant), so the result is bit-identical to
/// decoding the whole edge at once.
struct MorselConcat {
    fields: Option<Vec<(String, DataType)>>,
    cols: Vec<Column>,
    rows: usize,
}

impl MorselConcat {
    fn new() -> MorselConcat {
        MorselConcat {
            fields: None,
            cols: Vec::new(),
            rows: 0,
        }
    }

    /// Append `m`'s rows — all of them, or the subset selected by `sel`
    /// (ascending), gathered and concatenated in one pass.
    fn append(&mut self, m: &Relation, sel: Option<&[u32]>) {
        if self.fields.is_none() {
            self.fields = Some(m.fields.clone());
            self.cols = m.columns().iter().map(Column::empty_like).collect();
        }
        match sel {
            None => {
                for (dst, src) in self.cols.iter_mut().zip(m.columns()) {
                    dst.append_range(src, 0, m.len());
                }
                self.rows += m.len();
            }
            Some(sel) => {
                for (dst, src) in self.cols.iter_mut().zip(m.columns()) {
                    dst.append_gather(src, sel);
                }
                self.rows += sel.len();
            }
        }
    }

    /// Finish into a relation; `fallback` supplies the schema when the
    /// stream delivered no morsels at all.
    fn finish(self, fallback: &[(String, DataType)]) -> Relation {
        match self.fields {
            Some(f) => Relation::from_columns(f, self.cols, self.rows),
            None => Relation::from_columns(
                fallback.to_vec(),
                fallback.iter().map(|(_, t)| Column::empty_of(*t)).collect(),
                0,
            ),
        }
    }
}

/// Hash index over streamed group keys. Single-column Int/Str keys use
/// native-value tables (the streaming analogue of `group_single_typed`);
/// every other key shape falls back to owned `Value` keys. The layout
/// only changes hashing — the emitted key `Value`s and the accumulator
/// feed order match the materialized kernels exactly.
enum GroupIndex {
    /// No group keys: one global group.
    Global,
    /// Key column layout not yet seen.
    Unset,
    Int(HashMap<Option<i64>, usize>),
    Str(HashMap<Option<Arc<str>>, usize>),
    Gen(HashMap<Vec<Value>, usize>),
}

/// Streaming group-by state: groups stay in first-seen order across
/// morsels, each seeing exactly the row sequence a sequential pass over
/// the materialized input would feed it.
struct StreamGrouper {
    index: GroupIndex,
    groups: Vec<GroupOut>,
    rows: u32,
}

impl StreamGrouper {
    fn new(global: bool) -> StreamGrouper {
        StreamGrouper {
            index: if global {
                GroupIndex::Global
            } else {
                GroupIndex::Unset
            },
            groups: Vec::new(),
            rows: 0,
        }
    }

    /// Rebuild the index with `Value` keys: taken when the key column's
    /// layout drifts between morsels (a computed key expression may
    /// materialize different layouts per chunk). Group identity is
    /// value-based, so existing groups carry over unchanged.
    fn degrade_to_gen(&mut self) {
        let mut map = HashMap::new();
        for (gi, g) in self.groups.iter().enumerate() {
            map.insert(g.key.clone(), gi);
        }
        self.index = GroupIndex::Gen(map);
    }

    /// Fold one morsel (already filtered): `n` rows, the single key
    /// column (`None` for global aggregates), one materialized column per
    /// accumulator argument.
    fn fold(
        &mut self,
        n: usize,
        key_col: Option<&Column>,
        arg_cols: &[Option<Column>],
        new_accs: &dyn Fn() -> Vec<Accumulator>,
    ) {
        if let GroupIndex::Unset = self.index {
            self.index = match key_col {
                Some(Column::Int(_)) => GroupIndex::Int(HashMap::new()),
                Some(Column::Str(_)) => GroupIndex::Str(HashMap::new()),
                _ => GroupIndex::Gen(HashMap::new()),
            };
        }
        let drift = !matches!(
            (&self.index, key_col),
            (GroupIndex::Global, _)
                | (GroupIndex::Gen(_), _)
                | (GroupIndex::Int(_), Some(Column::Int(_)))
                | (GroupIndex::Str(_), Some(Column::Str(_)))
        );
        if drift {
            self.degrade_to_gen();
        }
        for i in 0..n {
            let gi = match (&mut self.index, key_col) {
                (GroupIndex::Global, _) => {
                    if self.groups.is_empty() {
                        self.groups.push(GroupOut {
                            first_row: 0,
                            key: vec![],
                            accs: new_accs(),
                        });
                    }
                    0
                }
                (GroupIndex::Int(map), Some(Column::Int(c))) => {
                    match map.entry(c.get(i).copied()) {
                        Entry::Occupied(e) => *e.get(),
                        Entry::Vacant(e) => {
                            let gi = self.groups.len();
                            let key = vec![e.key().map_or(Value::Null, Value::Int)];
                            e.insert(gi);
                            self.groups.push(GroupOut {
                                first_row: self.rows,
                                key,
                                accs: new_accs(),
                            });
                            gi
                        }
                    }
                }
                (GroupIndex::Str(map), Some(Column::Str(c))) => {
                    match map.entry(c.get(i).cloned()) {
                        Entry::Occupied(e) => *e.get(),
                        Entry::Vacant(e) => {
                            let gi = self.groups.len();
                            let key = vec![e
                                .key()
                                .as_ref()
                                .map_or(Value::Null, |s| Value::Str(s.clone()))];
                            e.insert(gi);
                            self.groups.push(GroupOut {
                                first_row: self.rows,
                                key,
                                accs: new_accs(),
                            });
                            gi
                        }
                    }
                }
                (GroupIndex::Gen(map), Some(col)) => match map.entry(vec![col.value(i)]) {
                    Entry::Occupied(e) => *e.get(),
                    Entry::Vacant(e) => {
                        let gi = self.groups.len();
                        let key = e.key().clone();
                        e.insert(gi);
                        self.groups.push(GroupOut {
                            first_row: self.rows,
                            key,
                            accs: new_accs(),
                        });
                        gi
                    }
                },
                // `drift` above routed every other combination to `Gen`,
                // and `Unset` only exists before the first morsel.
                _ => unreachable!("stream grouper index out of sync with key layout"),
            };
            for (acc, col) in self.groups[gi].accs.iter_mut().zip(arg_cols.iter()) {
                acc.update(col.as_ref().map(|c| c.value(i)));
            }
            self.rows += 1;
        }
    }

    fn into_groups(self) -> Vec<GroupOut> {
        self.groups
    }
}

/// Single-column typed group-by kernel: the hash table is keyed on native
/// column values, with `Value` keys materialized once per *group* instead
/// of once per row. Partition protocol matches the generic path — each
/// partition scans rows in ascending order and owns the keys that hash to
/// it, then groups merge in first-seen order — so the output is
/// bit-identical for any partition count (the partition hash itself may
/// differ from the generic path; only routing depends on it).
fn group_single_typed<K: Hash + Eq>(
    n: usize,
    nparts: usize,
    arg_cols: &[Option<Column>],
    new_accs: &(impl Fn() -> Vec<Accumulator> + Sync),
    key_at: &(impl Fn(usize) -> K + Sync),
    key_value: &(impl Fn(&K) -> Value + Sync),
) -> Vec<GroupOut> {
    let rs = RandomState::new();
    let run = |p: usize| -> Vec<GroupOut> {
        let mut index: HashMap<K, usize> = HashMap::new();
        let mut out: Vec<GroupOut> = Vec::new();
        for i in 0..n {
            let key = key_at(i);
            if nparts > 1 && rs.hash_one(&key) as usize % nparts != p {
                continue;
            }
            let gi = match index.entry(key) {
                Entry::Occupied(e) => *e.get(),
                Entry::Vacant(e) => {
                    let gi = out.len();
                    let kv = key_value(e.key());
                    e.insert(gi);
                    out.push(GroupOut {
                        first_row: i as u32,
                        key: vec![kv],
                        accs: new_accs(),
                    });
                    gi
                }
            };
            for (acc, col) in out[gi].accs.iter_mut().zip(arg_cols.iter()) {
                acc.update(col.as_ref().map(|c| c.value(i)));
            }
        }
        out
    };
    if nparts > 1 {
        let parts: Vec<Vec<GroupOut>> = std::thread::scope(|s| {
            let run = &run;
            let handles: Vec<_> = (0..nparts).map(|p| s.spawn(move || run(p))).collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("aggregate worker panicked"))
                .collect()
        });
        let mut all: Vec<GroupOut> = parts.into_iter().flatten().collect();
        all.sort_unstable_by_key(|g| g.first_row);
        all
    } else {
        run(0)
    }
}

/// Bits needed to represent codes `0..=max_code` (at least one, so every
/// field advances the shift cursor).
fn bits_for(max_code: u128) -> u32 {
    (128 - max_code.leading_zeros()).max(1)
}

/// Pack multi-column group keys into one `u128` per row. Int and Date
/// columns are frame-of-reference compressed against their column minimum,
/// Bool takes two bits, and Str columns are interned through a
/// first-appearance dictionary — each with code 0 reserved for NULL.
/// Returns `None` when a column kind is unsupported (Float, Mixed) or the
/// packed field widths exceed 128 bits; callers then fall back to the
/// generic `Vec<Value>` keys.
fn pack_group_keys(key_cols: &[Column], n: usize) -> Option<Vec<u128>> {
    // Per-column packed field: bit width + the row-index → code function.
    type PackedField<'a> = (u32, Box<dyn Fn(usize) -> u128 + 'a>);
    // First pass per column: field width + a code function, writing
    // nothing until the total width is known to fit.
    let mut fields: Vec<PackedField<'_>> = Vec::new();
    for col in key_cols {
        match col {
            Column::Int(c) => {
                let (mut min, mut max) = (i64::MAX, i64::MIN);
                for i in 0..n {
                    if let Some(&v) = c.get(i) {
                        min = min.min(v);
                        max = max.max(v);
                    }
                }
                let range: u128 = if min > max {
                    0
                } else {
                    (max as i128 - min as i128) as u128 + 1
                };
                fields.push((
                    bits_for(range),
                    Box::new(move |i| {
                        c.get(i)
                            .map_or(0, |&v| 1 + (v as i128 - min as i128) as u128)
                    }),
                ));
            }
            Column::Date(c) => {
                let (mut min, mut max) = (i32::MAX, i32::MIN);
                for i in 0..n {
                    if let Some(&v) = c.get(i) {
                        min = min.min(v);
                        max = max.max(v);
                    }
                }
                let range: u128 = if min > max {
                    0
                } else {
                    (max as i64 - min as i64) as u128 + 1
                };
                fields.push((
                    bits_for(range),
                    Box::new(move |i| c.get(i).map_or(0, |&v| 1 + (v as i64 - min as i64) as u128)),
                ));
            }
            Column::Bool(c) => {
                fields.push((
                    2,
                    Box::new(|i| match c.get(i) {
                        None => 0,
                        Some(false) => 1,
                        Some(true) => 2,
                    }),
                ));
            }
            Column::Str(c) => {
                let mut dict: HashMap<&str, u128> = HashMap::new();
                for i in 0..n {
                    if let Some(s) = c.get(i) {
                        let next = dict.len() as u128 + 1;
                        dict.entry(s.as_ref()).or_insert(next);
                    }
                }
                let width = bits_for(dict.len() as u128);
                fields.push((
                    width,
                    Box::new(move |i| c.get(i).map_or(0, |s| dict[s.as_ref()])),
                ));
            }
            Column::Float(_) | Column::Mixed(_) => return None,
        }
    }
    if fields.iter().map(|(w, _)| *w).sum::<u32>() > 128 {
        return None;
    }
    let mut out = vec![0u128; n];
    let mut shift = 0u32;
    for (w, code) in &fields {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot |= code(i) << shift;
        }
        shift += w;
    }
    Some(out)
}

/// Multi-column packed group-by kernel: the hash table is keyed on the
/// pre-packed `u128` keys, with `Value` keys materialized once per *group*
/// straight from the key columns (no unpacking). Partition protocol and
/// first-seen merge order match the generic path, so the output is
/// bit-identical for any partition count.
fn group_multi_packed(
    n: usize,
    nparts: usize,
    key_cols: &[Column],
    arg_cols: &[Option<Column>],
    new_accs: &(impl Fn() -> Vec<Accumulator> + Sync),
    packed: &[u128],
) -> Vec<GroupOut> {
    let rs = RandomState::new();
    let run = |p: usize| -> Vec<GroupOut> {
        let mut index: HashMap<u128, usize> = HashMap::new();
        let mut out: Vec<GroupOut> = Vec::new();
        for (i, &key) in packed.iter().enumerate().take(n) {
            if nparts > 1 && rs.hash_one(key) as usize % nparts != p {
                continue;
            }
            let gi = match index.entry(key) {
                Entry::Occupied(e) => *e.get(),
                Entry::Vacant(e) => {
                    let gi = out.len();
                    e.insert(gi);
                    out.push(GroupOut {
                        first_row: i as u32,
                        key: key_cols.iter().map(|c| c.value(i)).collect(),
                        accs: new_accs(),
                    });
                    gi
                }
            };
            for (acc, col) in out[gi].accs.iter_mut().zip(arg_cols.iter()) {
                acc.update(col.as_ref().map(|c| c.value(i)));
            }
        }
        out
    };
    if nparts > 1 {
        let parts: Vec<Vec<GroupOut>> = std::thread::scope(|s| {
            let run = &run;
            let handles: Vec<_> = (0..nparts).map(|p| s.spawn(move || run(p))).collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("aggregate worker panicked"))
                .collect()
        });
        let mut all: Vec<GroupOut> = parts.into_iter().flatten().collect();
        all.sort_unstable_by_key(|g| g.first_row);
        all
    } else {
        run(0)
    }
}

/// Evaluate a filter predicate to a selection vector, vectorized when the
/// kernels allow and row-by-row (sparse row buffer) otherwise.
fn filter_selection(pred: &PhysExpr, rel: &Relation) -> Result<Vec<u32>> {
    if let Some(sel) = vector::filter_sel(pred, rel) {
        return Ok(sel);
    }
    let mut refs = Vec::new();
    vector::referenced_columns(pred, &mut refs);
    refs.sort_unstable();
    refs.dedup();
    let mut buf = vec![Value::Null; rel.width()];
    let mut sel = Vec::with_capacity(rel.len());
    for i in 0..rel.len() {
        for &c in &refs {
            buf[c] = rel.value(i, c);
        }
        if pred.eval_predicate(&buf)? {
            sel.push(i as u32);
        }
    }
    Ok(sel)
}

/// Evaluate an expression to a materialized column. Plain column references
/// are `Arc` pointer copies; vectorizable expressions run the kernels; the
/// rest fall back to row-at-a-time evaluation with reference semantics.
fn expr_column(e: &PhysExpr, rel: &Relation) -> Result<Column> {
    if let PhysExpr::Column(i) = e {
        return Ok(rel.column(*i).clone());
    }
    if let Some(c) = vector::eval_to_column(e, rel) {
        return Ok(c);
    }
    let mut refs = Vec::new();
    vector::referenced_columns(e, &mut refs);
    refs.sort_unstable();
    refs.dedup();
    let mut buf = vec![Value::Null; rel.width()];
    let mut bld = ColumnBuilder::with_capacity(rel.len());
    for i in 0..rel.len() {
        for &c in &refs {
            buf[c] = rel.value(i, c);
        }
        bld.push(e.eval(&buf)?);
    }
    Ok(bld.finish())
}

/// Gather a row subset of `rel` (columnar `filter`/`sort` materialization).
fn gather_relation(rel: &Relation, sel: &[u32]) -> Relation {
    Relation::from_columns(
        rel.fields.clone(),
        rel.columns().iter().map(|c| c.gather(sel)).collect(),
        sel.len(),
    )
}

/// Materialize join output: left columns gathered by `lsel`, right columns
/// by `rsel`, side by side.
fn gather_pair(
    l: &Relation,
    r: &Relation,
    lsel: &[u32],
    rsel: &[u32],
    fields: Vec<(String, DataType)>,
) -> Relation {
    let mut cols = Vec::with_capacity(l.width() + r.width());
    for c in l.columns() {
        cols.push(c.gather(lsel));
    }
    for c in r.columns() {
        cols.push(c.gather(rsel));
    }
    Relation::from_columns(fields, cols, lsel.len())
}

/// The typed single-key fast path applies only when both sides store the
/// key in the same typed layout (cross-type numeric equality needs the
/// generic `Value` path).
fn single_key<'c>(b: &'c [Column], p: &'c [Column]) -> Option<(&'c Column, &'c Column)> {
    if b.len() != 1 || p.len() != 1 {
        return None;
    }
    match (&b[0], &p[0]) {
        (Column::Int(_), Column::Int(_))
        | (Column::Date(_), Column::Date(_))
        | (Column::Str(_), Column::Str(_)) => Some((&b[0], &p[0])),
        _ => None,
    }
}

/// Per-row typed key values; `None` marks a NULL key (never matches).
fn typed_keys<T: Clone + Default>(c: &TypedCol<T>) -> Vec<Option<T>> {
    (0..c.len()).map(|i| c.get(i).cloned()).collect()
}

/// Per-row composite keys as `Value` tuples; any NULL component kills the
/// whole key.
fn generic_keys(cols: &[Column], n: usize) -> Vec<Option<Vec<Value>>> {
    (0..n)
        .map(|i| {
            let mut k = Vec::with_capacity(cols.len());
            for c in cols {
                let v = c.value(i);
                if v.is_null() {
                    return None;
                }
                k.push(v);
            }
            Some(k)
        })
        .collect()
}

/// One streamed probe morsel's join matches, before materialization.
enum ProbeOut<'a> {
    /// Match selections: morsel-local probe rows (`lsel`) against absolute
    /// build rows (`rsel`) — the consumer gathers them itself, so the
    /// plain join pays no intermediate copy.
    Sels {
        morsel: &'a Relation,
        build: &'a Relation,
        lsel: &'a [u32],
        rsel: &'a [u32],
    },
    /// Residual-filtered joined rows, already gathered.
    Rows(&'a Relation),
}

/// Which scratch chain table a streamed probe committed to (decided on the
/// first morsel's key layouts, like the materialized join's dispatch).
enum ProbeChainKind {
    Unset,
    Int,
    Date,
    Str,
    Gen,
}

/// Probe one morsel's keys against a chained build table, appending
/// (probe, build) pairs in [`join_pairs`]' emission order: probe-major,
/// build rows ascending within a probe row.
fn probe_chain<K: Hash + Eq>(
    keys: impl Iterator<Item = Option<K>>,
    heads: &HashMap<K, u32>,
    next: &[u32],
    lsel: &mut Vec<u32>,
    rsel: &mut Vec<u32>,
) {
    for (i, k) in keys.enumerate() {
        let Some(k) = k else { continue };
        let Some(&h) = heads.get(&k) else { continue };
        let mut j = h;
        loop {
            lsel.push(i as u32);
            rsel.push(j);
            j = next[j as usize];
            if j == NO_NEXT {
                break;
            }
        }
    }
}

/// Build a chained hash table over the build keys: `heads[k]` is the first
/// build row with key `k`, `next[i]` the following one. Rows are inserted
/// in reverse so every chain iterates in ascending build-row order — the
/// match order of the row-major executor.
fn build_chain<K: Hash + Eq + Clone>(
    build_keys: &[Option<K>],
    heads: &mut HashMap<K, u32>,
    next: &mut Vec<u32>,
) {
    heads.clear();
    next.clear();
    next.resize(build_keys.len(), NO_NEXT);
    for i in (0..build_keys.len()).rev() {
        let Some(k) = &build_keys[i] else { continue };
        match heads.entry(k.clone()) {
            Entry::Occupied(mut e) => {
                next[i] = *e.get();
                *e.get_mut() = i as u32;
            }
            Entry::Vacant(e) => {
                e.insert(i as u32);
            }
        }
    }
}

/// All matching (build, probe) row pairs, in probe-major order with build
/// rows ascending within a probe row — the exact emission order of the
/// row-major hash join. Large inputs hash-partition across threads.
fn join_pairs<K: Hash + Eq + Clone + Sync>(
    build_keys: &[Option<K>],
    probe_keys: &[Option<K>],
    partitions: usize,
    heads: &mut HashMap<K, u32>,
    next: &mut Vec<u32>,
) -> (Vec<u32>, Vec<u32>) {
    if partitions > 1 && (probe_keys.len() >= PAR_MIN_ROWS || build_keys.len() >= PAR_MIN_ROWS) {
        return join_pairs_parallel(build_keys, probe_keys, partitions);
    }
    build_chain(build_keys, heads, next);
    let mut bsel = Vec::new();
    let mut psel = Vec::new();
    for (i, k) in probe_keys.iter().enumerate() {
        let Some(k) = k else { continue };
        let Some(&h) = heads.get(k) else { continue };
        let mut j = h;
        loop {
            bsel.push(j);
            psel.push(i as u32);
            j = next[j as usize];
            if j == NO_NEXT {
                break;
            }
        }
    }
    (bsel, psel)
}

/// Partition-parallel hash join. The build side is hash-partitioned across
/// workers (each owns the keys routing to it; per-key row lists stay in
/// ascending order). Probe workers take contiguous probe chunks; their
/// outputs concatenated in chunk order reproduce the sequential emission
/// order bit-for-bit.
fn join_pairs_parallel<K: Hash + Eq + Sync>(
    build_keys: &[Option<K>],
    probe_keys: &[Option<K>],
    partitions: usize,
) -> (Vec<u32>, Vec<u32>) {
    let rs = RandomState::new();
    let nparts = partitions;
    let parts: Vec<HashMap<&K, Vec<u32>>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..nparts)
            .map(|p| {
                let rs = &rs;
                s.spawn(move || {
                    let mut m: HashMap<&K, Vec<u32>> = HashMap::new();
                    for (i, k) in build_keys.iter().enumerate() {
                        let Some(k) = k else { continue };
                        if rs.hash_one(k) as usize % nparts == p {
                            m.entry(k).or_default().push(i as u32);
                        }
                    }
                    m
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("join build worker panicked"))
            .collect()
    });
    let n = probe_keys.len();
    let chunk = n.div_ceil(nparts).max(1);
    let outs: Vec<(Vec<u32>, Vec<u32>)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..nparts)
            .map(|c| {
                let rs = &rs;
                let parts = &parts;
                s.spawn(move || {
                    let lo = (c * chunk).min(n);
                    let hi = ((c + 1) * chunk).min(n);
                    let mut bsel = Vec::new();
                    let mut psel = Vec::new();
                    for (i, k) in probe_keys[lo..hi].iter().enumerate() {
                        let Some(k) = k else { continue };
                        let part = &parts[rs.hash_one(k) as usize % nparts];
                        if let Some(js) = part.get(k) {
                            for &j in js {
                                bsel.push(j);
                                psel.push((lo + i) as u32);
                            }
                        }
                    }
                    (bsel, psel)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("join probe worker panicked"))
            .collect()
    });
    let total: usize = outs.iter().map(|(b, _)| b.len()).sum();
    let mut bsel = Vec::with_capacity(total);
    let mut psel = Vec::with_capacity(total);
    for (b, p) in outs {
        bsel.extend(b);
        psel.extend(p);
    }
    (bsel, psel)
}

/// Per-probe-row match flags for semi/anti joins. Without a residual a
/// single hash lookup decides; with one, candidates are visited in
/// ascending build-row order and evaluation short-circuits on the first
/// match (reference semantics — later candidates are never evaluated).
fn semi_matches<K: Hash + Eq + Clone>(
    build_keys: &[Option<K>],
    probe_keys: &[Option<K>],
    heads: &mut HashMap<K, u32>,
    next: &mut Vec<u32>,
    mut residual: Option<&mut dyn FnMut(usize, usize) -> Result<bool>>,
) -> Result<Vec<bool>> {
    build_chain(build_keys, heads, next);
    let mut out = Vec::with_capacity(probe_keys.len());
    for (i, k) in probe_keys.iter().enumerate() {
        let mut matched = false;
        if let Some(k) = k {
            if let Some(&h) = heads.get(k) {
                match residual.as_mut() {
                    None => matched = true,
                    Some(f) => {
                        let mut j = h;
                        loop {
                            if f(i, j as usize)? {
                                matched = true;
                                break;
                            }
                            j = next[j as usize];
                            if j == NO_NEXT {
                                break;
                            }
                        }
                    }
                }
            }
        }
        out.push(matched);
    }
    Ok(out)
}

/// Streaming aggregate accumulator.
enum Accumulator {
    Sum {
        int: i128,
        float: f64,
        any_float: bool,
        seen: bool,
        distinct: Option<std::collections::HashSet<Value>>,
    },
    Count {
        n: i64,
        /// `None` arg = count(*).
        distinct: Option<std::collections::HashSet<Value>>,
    },
    Avg {
        sum: f64,
        n: i64,
        distinct: Option<std::collections::HashSet<Value>>,
    },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl Accumulator {
    fn new(func: AggFunc, distinct: bool) -> Accumulator {
        let set = || distinct.then(std::collections::HashSet::new);
        match func {
            AggFunc::Sum => Accumulator::Sum {
                int: 0,
                float: 0.0,
                any_float: false,
                seen: false,
                distinct: set(),
            },
            AggFunc::Count => Accumulator::Count {
                n: 0,
                distinct: set(),
            },
            AggFunc::Avg => Accumulator::Avg {
                sum: 0.0,
                n: 0,
                distinct: set(),
            },
            AggFunc::Min => Accumulator::Min(None),
            AggFunc::Max => Accumulator::Max(None),
        }
    }

    fn update(&mut self, v: Option<Value>) {
        // `None` means count(*) — counts every row.
        match self {
            Accumulator::Count { n, distinct } => match v {
                None => *n += 1,
                Some(v) if !v.is_null() => {
                    if let Some(set) = distinct {
                        if !set.insert(v) {
                            return;
                        }
                    }
                    *n += 1;
                }
                _ => {}
            },
            Accumulator::Sum {
                int,
                float,
                any_float,
                seen,
                distinct,
            } => {
                let Some(v) = v else { return };
                if v.is_null() {
                    return;
                }
                if let Some(set) = distinct {
                    if !set.insert(v.clone()) {
                        return;
                    }
                }
                *seen = true;
                match v {
                    Value::Int(i) => *int += i as i128,
                    Value::Float(f) => {
                        *float += f;
                        *any_float = true;
                    }
                    _ => {}
                }
            }
            Accumulator::Avg { sum, n, distinct } => {
                let Some(v) = v else { return };
                let f = match v {
                    Value::Int(i) => i as f64,
                    Value::Float(f) => f,
                    _ => return,
                };
                if let Some(set) = distinct {
                    if !set.insert(v) {
                        return;
                    }
                }
                *sum += f;
                *n += 1;
            }
            Accumulator::Min(cur) => {
                let Some(v) = v else { return };
                if v.is_null() {
                    return;
                }
                let replace = match cur {
                    Some(c) => v.total_cmp(c) == std::cmp::Ordering::Less,
                    None => true,
                };
                if replace {
                    *cur = Some(v);
                }
            }
            Accumulator::Max(cur) => {
                let Some(v) = v else { return };
                if v.is_null() {
                    return;
                }
                let replace = match cur {
                    Some(c) => v.total_cmp(c) == std::cmp::Ordering::Greater,
                    None => true,
                };
                if replace {
                    *cur = Some(v);
                }
            }
        }
    }

    fn finish(self) -> Value {
        match self {
            Accumulator::Sum {
                int,
                float,
                any_float,
                seen,
                ..
            } => {
                if !seen {
                    Value::Null
                } else if any_float {
                    Value::Float(float + int as f64)
                } else if let Ok(i) = i64::try_from(int) {
                    Value::Int(i)
                } else {
                    Value::Float(int as f64)
                }
            }
            Accumulator::Count { n, .. } => Value::Int(n),
            Accumulator::Avg { sum, n, .. } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / n as f64)
                }
            }
            Accumulator::Min(v) | Accumulator::Max(v) => v.unwrap_or(Value::Null),
        }
    }
}

/// Convenience resolver backed by a map of named relations (tests, and the
/// mediator baselines' "localized tables" mode). Relations are `Arc`-shared
/// so repeated scans never copy the stored rows.
pub struct MapResolver {
    pub relations: HashMap<String, Arc<Relation>>,
}

impl MapResolver {
    pub fn new() -> MapResolver {
        MapResolver {
            relations: HashMap::new(),
        }
    }

    pub fn insert(&mut self, name: impl Into<String>, rel: Relation) {
        self.relations
            .insert(name.into().to_ascii_lowercase(), Arc::new(rel));
    }
}

impl Default for MapResolver {
    fn default() -> Self {
        Self::new()
    }
}

impl ScanResolver for MapResolver {
    fn scan(&self, relation: &str, wanted: &[(String, DataType)]) -> Result<ScanOutput> {
        let rel = self
            .relations
            .get(&relation.to_ascii_lowercase())
            .ok_or_else(|| EngineError::Catalog(format!("unknown relation {relation:?}")))?;
        Ok(ScanOutput {
            relation: project_columns_shared(rel, wanted)?,
            edge: None,
            remote: None,
        })
    }
}

/// Resolve `wanted` column names to positions in `rel`.
fn column_indexes(rel: &Relation, wanted: &[(String, DataType)]) -> Result<Vec<usize>> {
    wanted
        .iter()
        .map(|(n, _)| {
            rel.column_index(n)
                .ok_or_else(|| EngineError::Catalog(format!("unknown column {n:?}")))
        })
        .collect()
}

fn is_identity(idx: &[usize], rel: &Relation) -> bool {
    idx.len() == rel.width() && idx.iter().enumerate().all(|(i, &j)| i == j)
}

/// Column subsets are `Arc` pointer copies — no row data moves.
fn subset(rel: &Relation, idx: &[usize], wanted: &[(String, DataType)]) -> Relation {
    Relation::from_columns(
        wanted.to_vec(),
        idx.iter().map(|&j| rel.column(j).clone()).collect(),
        rel.len(),
    )
}

/// Project a stored relation to the requested columns, by name.
pub fn project_columns(rel: &Relation, wanted: &[(String, DataType)]) -> Result<Relation> {
    let idx = column_indexes(rel, wanted)?;
    // Identity projection avoids rebuilding the schema.
    if is_identity(&idx, rel) {
        return Ok(rel.clone());
    }
    Ok(subset(rel, &idx, wanted))
}

/// Project an `Arc`-shared relation: identity projections hand the `Arc`
/// through without touching a single row; subsets share the column `Arc`s.
pub fn project_columns_shared(
    rel: &Arc<Relation>,
    wanted: &[(String, DataType)],
) -> Result<ExecRel> {
    let idx = column_indexes(rel, wanted)?;
    if is_identity(&idx, rel) {
        return Ok(ExecRel::Shared(Arc::clone(rel)));
    }
    Ok(ExecRel::Owned(subset(rel, &idx, wanted)))
}

/// Project an owned relation, consuming it: identity projections return
/// the input unchanged (no copy at all).
pub fn project_columns_owned(rel: Relation, wanted: &[(String, DataType)]) -> Result<Relation> {
    let idx = column_indexes(&rel, wanted)?;
    if is_identity(&idx, &rel) {
        return Ok(rel);
    }
    Ok(subset(&rel, &idx, wanted))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdb_sql::bind::{bind_select, ResolvedRelation, SchemaProvider};
    use xdb_sql::parser::parse_select;

    struct Fixture {
        resolver: MapResolver,
        schemas: HashMap<String, Vec<(String, DataType)>>,
    }

    impl SchemaProvider for Fixture {
        fn resolve_relation(&self, name: &str) -> Option<ResolvedRelation> {
            self.schemas
                .get(&name.to_ascii_lowercase())
                .map(|fields| ResolvedRelation::Base {
                    fields: fields.clone(),
                })
        }
    }

    fn fixture() -> Fixture {
        let mut resolver = MapResolver::new();
        let mut schemas = HashMap::new();
        let emp_fields = vec![
            ("id".to_string(), DataType::Int),
            ("name".to_string(), DataType::Str),
            ("dept".to_string(), DataType::Str),
            ("salary".to_string(), DataType::Float),
        ];
        resolver.insert(
            "emp",
            Relation::new(
                emp_fields.clone(),
                vec![
                    vec![
                        Value::Int(1),
                        Value::str("ann"),
                        Value::str("eng"),
                        Value::Float(100.0),
                    ],
                    vec![
                        Value::Int(2),
                        Value::str("bob"),
                        Value::str("eng"),
                        Value::Float(80.0),
                    ],
                    vec![
                        Value::Int(3),
                        Value::str("cat"),
                        Value::str("ops"),
                        Value::Float(90.0),
                    ],
                    vec![
                        Value::Int(4),
                        Value::str("dan"),
                        Value::str("ops"),
                        Value::Null,
                    ],
                ],
            ),
        );
        schemas.insert("emp".to_string(), emp_fields);
        let dept_fields = vec![
            ("dname".to_string(), DataType::Str),
            ("budget".to_string(), DataType::Int),
        ];
        resolver.insert(
            "dept",
            Relation::new(
                dept_fields.clone(),
                vec![
                    vec![Value::str("eng"), Value::Int(1000)],
                    vec![Value::str("ops"), Value::Int(500)],
                    vec![Value::str("hr"), Value::Int(100)],
                ],
            ),
        );
        schemas.insert("dept".to_string(), dept_fields);
        Fixture { resolver, schemas }
    }

    fn run(sql: &str) -> Relation {
        let f = fixture();
        let plan = bind_select(&parse_select(sql).unwrap(), &f).unwrap();
        let mut exec = Execution::new(&f.resolver);
        exec.run(&plan).unwrap()
    }

    #[test]
    fn filter_project() {
        let r = run("SELECT name FROM emp WHERE salary > 85");
        assert_eq!(r.len(), 2);
        assert_eq!(r.value(0, 0), Value::str("ann"));
        assert_eq!(r.value(1, 0), Value::str("cat"));
    }

    #[test]
    fn hash_join() {
        let r = run(
            "SELECT e.name, d.budget FROM emp e, dept d WHERE e.dept = d.dname AND d.budget > 600",
        );
        assert_eq!(r.len(), 2); // only eng members
    }

    #[test]
    fn cross_join_count() {
        let r = run("SELECT count(*) AS n FROM emp, dept");
        assert_eq!(r.value(0, 0), Value::Int(12));
    }

    #[test]
    fn group_by_aggregates() {
        let r = run(
            "SELECT dept, count(*) AS n, sum(salary) AS total, avg(salary) AS mean, \
                    min(salary) AS lo, max(salary) AS hi \
             FROM emp GROUP BY dept ORDER BY dept",
        );
        assert_eq!(r.len(), 2);
        // eng: 2 rows, sum 180, avg 90.
        assert_eq!(r.value(0, 0), Value::str("eng"));
        assert_eq!(r.value(0, 1), Value::Int(2));
        assert_eq!(r.value(0, 2), Value::Float(180.0));
        assert_eq!(r.value(0, 3), Value::Float(90.0));
        // ops: salary NULL ignored by sum/avg/min/max but counted by *.
        assert_eq!(r.value(1, 1), Value::Int(2));
        assert_eq!(r.value(1, 2), Value::Float(90.0));
        assert_eq!(r.value(1, 4), Value::Float(90.0));
    }

    #[test]
    fn global_aggregate_empty_input() {
        let r = run("SELECT count(*) AS n, sum(salary) AS s FROM emp WHERE salary > 1e9");
        assert_eq!(r.len(), 1);
        assert_eq!(r.value(0, 0), Value::Int(0));
        assert_eq!(r.value(0, 1), Value::Null);
    }

    #[test]
    fn count_distinct() {
        let r = run("SELECT count(DISTINCT dept) AS n FROM emp");
        assert_eq!(r.value(0, 0), Value::Int(2));
    }

    /// The u128-packed multi-key kernel must produce bit-identical output
    /// to a first-seen-order reference grouping over `Vec<Value>` keys —
    /// NULLs in every key column included — at any partition count.
    #[test]
    fn multikey_packed_groups_match_generic_reference() {
        let n = 6000; // above PAR_MIN_ROWS so partitions > 1 really fan out
        let mut rows = Vec::with_capacity(n);
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        for _ in 0..n {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let v = state;
            let k1 = if v.is_multiple_of(11) {
                Value::Null
            } else {
                Value::Int((v % 17) as i64 - 8)
            };
            let k2 = if v.is_multiple_of(13) {
                Value::Null
            } else {
                Value::str(format!("s{}", v % 7))
            };
            let k3 = if v.is_multiple_of(19) {
                Value::Null
            } else {
                Value::Bool(v.is_multiple_of(2))
            };
            let k4 = if v.is_multiple_of(23) {
                Value::Null
            } else {
                Value::Date((v % 29) as i32 - 14)
            };
            let x = Value::Float((v % 1000) as f64 / 7.0);
            rows.push(vec![k1, k2, k3, k4, x]);
        }
        let fields: Vec<(String, DataType)> = vec![
            ("k1".into(), DataType::Int),
            ("k2".into(), DataType::Str),
            ("k3".into(), DataType::Bool),
            ("k4".into(), DataType::Date),
            ("x".into(), DataType::Float),
        ];
        let mut resolver = MapResolver::new();
        resolver.insert("t", Relation::new(fields.clone(), rows.clone()));
        struct Provider(Vec<(String, DataType)>);
        impl SchemaProvider for Provider {
            fn resolve_relation(&self, name: &str) -> Option<ResolvedRelation> {
                (name == "t").then(|| ResolvedRelation::Base {
                    fields: self.0.clone(),
                })
            }
        }
        let provider = Provider(fields);
        let sql = "SELECT k1, k2, k3, k4, count(*) AS n, sum(x) AS s \
                   FROM t GROUP BY k1, k2, k3, k4";
        let plan = bind_select(&parse_select(sql).unwrap(), &provider).unwrap();
        let run_with = |parts: usize| -> Relation {
            let mut exec = Execution::new(&resolver);
            exec.partitions = parts;
            exec.run(&plan).unwrap()
        };
        let r1 = run_with(1);
        for parts in [2usize, 8] {
            let rp = run_with(parts);
            assert_eq!(rp.len(), r1.len(), "{parts} partitions");
            for i in 0..r1.len() {
                for c in 0..r1.width() {
                    assert_eq!(rp.value(i, c), r1.value(i, c), "row {i} col {c}");
                }
            }
        }
        // First-seen-order reference over Vec<Value> keys.
        let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
        let mut keys: Vec<Vec<Value>> = Vec::new();
        let mut counts: Vec<i64> = Vec::new();
        let mut sums: Vec<Option<f64>> = Vec::new();
        for row in &rows {
            let key = row[..4].to_vec();
            let gi = *index.entry(key.clone()).or_insert_with(|| {
                keys.push(key);
                counts.push(0);
                sums.push(None);
                keys.len() - 1
            });
            counts[gi] += 1;
            if let Value::Float(f) = row[4] {
                sums[gi] = Some(sums[gi].unwrap_or(0.0) + f);
            }
        }
        assert_eq!(r1.len(), keys.len());
        for (i, key) in keys.iter().enumerate() {
            for (c, kv) in key.iter().enumerate() {
                assert_eq!(r1.value(i, c), kv.clone(), "key row {i} col {c}");
            }
            assert_eq!(r1.value(i, 4), Value::Int(counts[i]));
            assert_eq!(
                r1.value(i, 5),
                sums[i].map_or(Value::Null, Value::Float),
                "sum row {i}"
            );
        }
    }

    #[test]
    fn order_and_limit() {
        let r = run("SELECT name, salary FROM emp ORDER BY salary DESC LIMIT 2");
        // NULLs sort last in our total order; DESC reverses → NULL first.
        // SQL engines differ here; ours places NULL first on DESC.
        assert_eq!(r.len(), 2);
        assert_eq!(r.value(1, 0), Value::str("ann"));
    }

    #[test]
    fn distinct_rows() {
        let r = run("SELECT DISTINCT dept FROM emp");
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn having_filter() {
        let r = run("SELECT dept, count(*) AS n FROM emp GROUP BY dept HAVING count(*) > 1");
        assert_eq!(r.len(), 2);
        let r =
            run("SELECT dept, sum(salary) AS s FROM emp GROUP BY dept HAVING sum(salary) > 100");
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn null_join_keys_never_match() {
        let mut f = fixture();
        f.resolver.insert(
            "nullkeys",
            Relation::new(
                vec![("k".to_string(), DataType::Str)],
                vec![vec![Value::Null], vec![Value::str("eng")]],
            ),
        );
        f.schemas.insert(
            "nullkeys".to_string(),
            vec![("k".to_string(), DataType::Str)],
        );
        let plan = bind_select(
            &parse_select("SELECT count(*) AS n FROM nullkeys, dept WHERE k = dname").unwrap(),
            &f,
        )
        .unwrap();
        let mut exec = Execution::new(&f.resolver);
        let r = exec.run(&plan).unwrap();
        assert_eq!(r.value(0, 0), Value::Int(1));
    }

    #[test]
    fn work_units_accumulate() {
        let f = fixture();
        let plan = bind_select(
            &parse_select("SELECT e.name FROM emp e, dept d WHERE e.dept = d.dname").unwrap(),
            &f,
        )
        .unwrap();
        let mut exec = Execution::new(&f.resolver);
        exec.run(&plan).unwrap();
        assert!(exec.scan_units > 0.0);
        assert!(exec.olap_units > 0.0);
    }

    #[test]
    fn case_in_projection() {
        let r = run(
            "SELECT name, case when salary >= 90 then 'high' when salary is null then 'unknown' else 'low' end AS band \
             FROM emp ORDER BY name",
        );
        assert_eq!(r.value(0, 1), Value::str("high"));
        assert_eq!(r.value(1, 1), Value::str("low"));
        assert_eq!(r.value(3, 1), Value::str("unknown"));
    }

    #[test]
    fn expression_over_aggregates_executes() {
        let r = run("SELECT sum(salary) / count(salary) AS mean FROM emp");
        assert_eq!(r.value(0, 0), Value::Float(90.0));
    }

    #[test]
    fn project_columns_identity_and_subset() {
        let f = fixture();
        let rel = f.resolver.relations.get("dept").unwrap();
        let sub = project_columns(rel, &[("budget".to_string(), DataType::Int)]).unwrap();
        assert_eq!(sub.width(), 1);
        assert_eq!(sub.value(0, 0), Value::Int(1000));
        let idt = project_columns(rel, &rel.fields.clone()).unwrap();
        assert_eq!(&idt, rel.as_ref());
    }

    #[test]
    fn identity_scans_share_storage() {
        // A full-width scan (and the identity projection above it) must
        // hand out the stored Arc, not a row-by-row copy.
        let f = fixture();
        let stored = Arc::clone(f.resolver.relations.get("dept").unwrap());
        let plan =
            bind_select(&parse_select("SELECT dname, budget FROM dept").unwrap(), &f).unwrap();
        let mut exec = Execution::new(&f.resolver);
        let out = exec.run_rel(&plan).unwrap();
        match &out {
            ExecRel::Shared(arc) => assert!(Arc::ptr_eq(arc, &stored)),
            ExecRel::Owned(_) => panic!("identity scan should stay shared"),
        }
        // into_owned on still-shared data copies; results are equal.
        assert_eq!(out.into_owned(), *stored);
    }

    /// Every partition count must produce the identical relation — not just
    /// the same bag of rows: same order, same value variants.
    #[test]
    fn partition_parallel_is_bit_identical() {
        let queries = [
            "SELECT e.name, d.budget FROM emp e, dept d WHERE e.dept = d.dname ORDER BY e.name",
            "SELECT dept, count(*) AS n, sum(salary) AS s FROM emp GROUP BY dept",
            "SELECT d.dname FROM dept d WHERE EXISTS (SELECT 1 FROM emp e WHERE e.dept = d.dname)",
        ];
        let f = fixture();
        for sql in queries {
            let plan = bind_select(&parse_select(sql).unwrap(), &f).unwrap();
            let mut base: Option<Relation> = None;
            for partitions in [1usize, 2, 8] {
                let mut exec = Execution::new(&f.resolver);
                exec.partitions = partitions;
                let r = exec.run(&plan).unwrap();
                match &base {
                    None => base = Some(r),
                    Some(b) => assert_eq!(&r, b, "{sql} with {partitions} partitions"),
                }
            }
        }
    }

    /// The scratch allocations survive across executions (capacity reuse);
    /// results stay untouched.
    #[test]
    fn scratch_reuse_across_queries() {
        let f = fixture();
        let plan = bind_select(
            &parse_select("SELECT e.name FROM emp e, dept d WHERE e.dept = d.dname").unwrap(),
            &f,
        )
        .unwrap();
        let mut exec = Execution::new(&f.resolver);
        let first = exec.run(&plan).unwrap();
        let second = exec.run(&plan).unwrap();
        assert_eq!(first, second);
    }
}
