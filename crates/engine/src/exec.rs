//! Materializing executor for logical plans, with work accounting.
//!
//! Every operator really runs over real tuples — cardinalities and byte
//! counts in the experiments are measured, not estimated. The executor also
//! accumulates *work units* (rows × per-operator weight) which the engine
//! profile converts into simulated milliseconds, and collects timing edges
//! for every remote (foreign-table) scan it triggered.

use crate::error::{EngineError, Result};
use crate::expr::{compile, PhysExpr};
use crate::relation::Relation;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::Arc;
use xdb_net::EdgeTiming;
use xdb_obs::{ExecProfile, OpStat};
use xdb_sql::algebra::{aggregate_schema, AggCall, AggFunc, LogicalPlan};
use xdb_sql::value::{DataType, Value};

/// Per-operator work-unit weights (rows processed × weight). Values are
/// relative; the engine profile's `cpu_tuple_cost_ms` sets the scale.
pub mod weights {
    pub const SCAN: f64 = 0.2;
    pub const FILTER: f64 = 0.4;
    pub const PROJECT: f64 = 0.3;
    pub const JOIN: f64 = 1.0;
    pub const AGGREGATE: f64 = 1.2;
    pub const SORT: f64 = 0.4;
    pub const DISTINCT: f64 = 0.8;
}

/// A relation flowing between operators: either uniquely owned (rows can be
/// moved or mutated in place) or shared with the catalog / other readers.
/// Pass-through paths (identity projections, full-table scans, aliases)
/// hand out the `Arc` instead of deep-copying every row.
#[derive(Debug, Clone)]
pub enum ExecRel {
    Owned(Relation),
    Shared(Arc<Relation>),
}

impl AsRef<Relation> for ExecRel {
    fn as_ref(&self) -> &Relation {
        match self {
            ExecRel::Owned(r) => r,
            ExecRel::Shared(r) => r,
        }
    }
}

impl ExecRel {
    /// Extract an owned relation, copying only if the data is still shared.
    pub fn into_owned(self) -> Relation {
        match self {
            ExecRel::Owned(r) => r,
            ExecRel::Shared(r) => Arc::try_unwrap(r).unwrap_or_else(|a| (*a).clone()),
        }
    }

    pub fn len(&self) -> usize {
        self.as_ref().len()
    }

    pub fn is_empty(&self) -> bool {
        self.as_ref().is_empty()
    }
}

/// Output of resolving a leaf scan.
pub struct ScanOutput {
    pub relation: ExecRel,
    /// Present when the scan pulled data from another engine (foreign
    /// table): the timing edge to compose into this engine's finish time.
    pub edge: Option<EdgeTiming>,
    /// Execution profile of the remote producer behind a foreign-table
    /// scan, when operator tracing is on.
    pub remote: Option<Box<ExecProfile>>,
}

/// Resolves leaf relations (base tables, foreign tables, placeholders).
pub trait ScanResolver {
    /// Fetch `relation` projected to `wanted` columns (order significant).
    fn scan(&self, relation: &str, wanted: &[(String, DataType)]) -> Result<ScanOutput>;
}

/// One plan execution: collects work units and remote edges.
pub struct Execution<'a> {
    resolver: &'a dyn ScanResolver,
    /// Cheap streaming work (scans, filters, projections).
    pub scan_units: f64,
    /// Join/aggregate/sort work (scaled by the profile's OLAP factor).
    pub olap_units: f64,
    /// Timing edges contributed by remote scans.
    pub edges: Vec<EdgeTiming>,
    /// Per-operator statistics in post-order, when operator tracing is on
    /// (see [`Execution::collect_ops`]); `None` costs nothing per row.
    pub ops: Option<Vec<OpStat>>,
    /// Profiles of remote producers behind foreign-table scans, paired
    /// with the edge's wire time (operator tracing only).
    pub remotes: Vec<(ExecProfile, f64)>,
}

impl<'a> Execution<'a> {
    pub fn new(resolver: &'a dyn ScanResolver) -> Execution<'a> {
        Execution {
            resolver,
            scan_units: 0.0,
            olap_units: 0.0,
            edges: Vec::new(),
            ops: None,
            remotes: Vec::new(),
        }
    }

    /// Turn on per-operator statistics collection for this execution.
    pub fn collect_ops(&mut self) {
        self.ops = Some(Vec::new());
    }

    fn op(&mut self, stat: OpStat) {
        if let Some(ops) = &mut self.ops {
            ops.push(stat);
        }
    }

    /// Execute a plan to a materialized, owned relation.
    pub fn run(&mut self, plan: &LogicalPlan) -> Result<Relation> {
        Ok(self.run_rel(plan)?.into_owned())
    }

    /// Execute a plan. Pass-through operators (scans, identity projections,
    /// aliases) return shared data without copying rows; simulated work
    /// accounting is unchanged either way.
    pub fn run_rel(&mut self, plan: &LogicalPlan) -> Result<ExecRel> {
        match plan {
            LogicalPlan::Scan {
                relation, fields, ..
            }
            | LogicalPlan::Placeholder {
                name: relation,
                fields,
                ..
            } => {
                let out = self.resolver.scan(relation, fields)?;
                if let Some(remote) = out.remote {
                    let wire_ms = out.edge.map_or(0.0, |e| e.transfer_ms);
                    self.remotes.push((*remote, wire_ms));
                }
                if let Some(edge) = out.edge {
                    self.edges.push(edge);
                }
                self.scan_units += out.relation.len() as f64 * weights::SCAN;
                self.op(OpStat {
                    op: "scan",
                    rows_out: out.relation.len() as u64,
                    ..OpStat::default()
                });
                Ok(out.relation)
            }
            LogicalPlan::OneRow => Ok(ExecRel::Owned(Relation::new(vec![], vec![vec![]]))),
            LogicalPlan::Filter { input, predicate } => {
                let rel = self.run_rel(input)?;
                let pred = compile(predicate, &input.schema())?;
                self.scan_units += rel.len() as f64 * weights::FILTER;
                let mut keep = Vec::with_capacity(rel.len());
                for row in &rel.as_ref().rows {
                    keep.push(pred.eval_predicate(row)?);
                }
                let rows_in = rel.len() as u64;
                let out = retain_rows(rel, &keep);
                self.op(OpStat {
                    op: "filter",
                    rows_in,
                    rows_out: out.len() as u64,
                    ..OpStat::default()
                });
                Ok(ExecRel::Owned(out))
            }
            LogicalPlan::Project { input, exprs } => {
                let rel = self.run_rel(input)?;
                let schema = input.schema();
                let compiled: Vec<(PhysExpr, String, DataType)> = exprs
                    .iter()
                    .map(|(e, n)| {
                        let c = compile(e, &schema)?;
                        let ty =
                            xdb_sql::algebra::infer_type(e, &schema).unwrap_or(DataType::Float);
                        Ok((c, n.clone(), ty))
                    })
                    .collect::<Result<_>>()?;
                self.scan_units += rel.len() as f64 * weights::PROJECT;
                self.op(OpStat {
                    op: "project",
                    rows_in: rel.len() as u64,
                    rows_out: rel.len() as u64,
                    ..OpStat::default()
                });
                // Identity fast-path: every output is the column in the
                // same position under the same name — hand the input
                // through (the work units above are still charged; the
                // simulated engine would have run the projection).
                let identity = compiled.len() == rel.as_ref().width()
                    && compiled.iter().enumerate().all(|(i, (c, n, _))| {
                        matches!(c, PhysExpr::Column(j) if *j == i)
                            && rel.as_ref().fields[i].0 == *n
                    });
                if identity {
                    return Ok(rel);
                }
                let mut rows = Vec::with_capacity(rel.len());
                for row in &rel.as_ref().rows {
                    let mut out = Vec::with_capacity(compiled.len());
                    for (c, _, _) in &compiled {
                        out.push(c.eval(row)?);
                    }
                    rows.push(out);
                }
                Ok(ExecRel::Owned(Relation::new(
                    compiled.into_iter().map(|(_, n, t)| (n, t)).collect(),
                    rows,
                )))
            }
            LogicalPlan::Join {
                left,
                right,
                on,
                residual,
            } => self.join(left, right, on, residual.as_ref()),
            LogicalPlan::SemiJoin {
                left,
                right,
                on,
                residual,
                negated,
            } => self.semi_join(left, right, on, residual.as_ref(), *negated),
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggregates,
            } => self.aggregate(input, group_by, aggregates),
            LogicalPlan::Sort { input, keys } => {
                let schema = input.schema();
                let rel = self.run_rel(input)?.into_owned();
                let compiled: Vec<(PhysExpr, bool)> = keys
                    .iter()
                    .map(|(e, desc)| Ok((compile(e, &schema)?, *desc)))
                    .collect::<Result<_>>()?;
                let n = rel.len() as f64;
                self.olap_units += n * (n.max(2.0)).log2() * weights::SORT;
                self.op(OpStat {
                    op: "sort",
                    rows_in: rel.len() as u64,
                    rows_out: rel.len() as u64,
                    ..OpStat::default()
                });
                // Precompute key tuples, then sort stably.
                let mut keyed: Vec<(Vec<Value>, Vec<Value>)> = Vec::with_capacity(rel.len());
                for row in rel.rows {
                    let mut k = Vec::with_capacity(compiled.len());
                    for (c, _) in &compiled {
                        k.push(c.eval(&row)?);
                    }
                    keyed.push((k, row));
                }
                keyed.sort_by(|(ka, _), (kb, _)| {
                    for ((a, b), (_, desc)) in ka.iter().zip(kb.iter()).zip(compiled.iter()) {
                        let ord = a.total_cmp(b);
                        let ord = if *desc { ord.reverse() } else { ord };
                        if ord != std::cmp::Ordering::Equal {
                            return ord;
                        }
                    }
                    std::cmp::Ordering::Equal
                });
                Ok(ExecRel::Owned(Relation::new(
                    rel.fields,
                    keyed.into_iter().map(|(_, r)| r).collect(),
                )))
            }
            LogicalPlan::Limit { input, fetch } => {
                let rel = self.run_rel(input)?;
                let fetch = *fetch as usize;
                self.op(OpStat {
                    op: "limit",
                    rows_in: rel.len() as u64,
                    rows_out: rel.len().min(fetch) as u64,
                    ..OpStat::default()
                });
                match rel {
                    ExecRel::Owned(mut rel) => {
                        rel.rows.truncate(fetch);
                        Ok(ExecRel::Owned(rel))
                    }
                    // Shared input stays shared when the limit is a no-op;
                    // otherwise copy only the first `fetch` rows.
                    ExecRel::Shared(rel) if rel.len() <= fetch => Ok(ExecRel::Shared(rel)),
                    ExecRel::Shared(rel) => Ok(ExecRel::Owned(Relation::new(
                        rel.fields.clone(),
                        rel.rows[..fetch].to_vec(),
                    ))),
                }
            }
            LogicalPlan::Distinct { input } => {
                let rel = self.run_rel(input)?;
                self.olap_units += rel.len() as f64 * weights::DISTINCT;
                let rows_in = rel.len() as u64;
                // First-seen order is preserved (LIMIT without ORDER BY
                // above a DISTINCT observes it); only unique rows are
                // cloned.
                let out = match rel {
                    ExecRel::Owned(rel) => {
                        let mut seen: std::collections::HashSet<Vec<Value>> =
                            std::collections::HashSet::with_capacity(rel.rows.len());
                        let mut rows = Vec::new();
                        for row in rel.rows {
                            if !seen.contains(&row) {
                                seen.insert(row.clone());
                                rows.push(row);
                            }
                        }
                        Relation::new(rel.fields, rows)
                    }
                    ExecRel::Shared(rel) => {
                        let mut seen: std::collections::HashSet<&Vec<Value>> =
                            std::collections::HashSet::with_capacity(rel.rows.len());
                        let mut rows = Vec::new();
                        for row in &rel.rows {
                            if seen.insert(row) {
                                rows.push(row.clone());
                            }
                        }
                        Relation::new(rel.fields.clone(), rows)
                    }
                };
                self.op(OpStat {
                    op: "distinct",
                    rows_in,
                    rows_out: out.len() as u64,
                    ..OpStat::default()
                });
                Ok(ExecRel::Owned(out))
            }
            LogicalPlan::SubqueryAlias { input, .. } => self.run_rel(input),
        }
    }

    fn join(
        &mut self,
        left: &LogicalPlan,
        right: &LogicalPlan,
        on: &[(xdb_sql::Expr, xdb_sql::Expr)],
        residual: Option<&xdb_sql::Expr>,
    ) -> Result<ExecRel> {
        let lrel = self.run_rel(left)?;
        let rrel = self.run_rel(right)?;
        let (lrel, rrel) = (lrel.as_ref(), rrel.as_ref());
        let lschema = left.schema();
        let rschema = right.schema();
        let joined_schema = lschema.join(&rschema);
        let residual_c = match residual {
            Some(r) => Some(compile(r, &joined_schema)?),
            None => None,
        };
        let mut fields = Vec::with_capacity(lrel.width() + rrel.width());
        fields.extend(lrel.fields.iter().cloned());
        fields.extend(rrel.fields.iter().cloned());
        let width = fields.len();
        let mut rows = Vec::new();
        if on.is_empty() {
            // Nested-loop (cross) join with optional residual.
            self.olap_units += (lrel.len() as f64 * rrel.len() as f64) * weights::JOIN;
            rows.reserve(lrel.len() * rrel.len());
            for lr in &lrel.rows {
                for rr in &rrel.rows {
                    let mut row = Vec::with_capacity(width);
                    row.extend(lr.iter().cloned());
                    row.extend(rr.iter().cloned());
                    if let Some(res) = &residual_c {
                        if !res.eval_predicate(&row)? {
                            continue;
                        }
                    }
                    rows.push(row);
                }
            }
        } else {
            // Hash join: build on the right child.
            let lkeys: Vec<PhysExpr> = on
                .iter()
                .map(|(l, _)| compile(l, &lschema))
                .collect::<Result<_>>()?;
            let rkeys: Vec<PhysExpr> = on
                .iter()
                .map(|(_, r)| compile(r, &rschema))
                .collect::<Result<_>>()?;
            let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::with_capacity(rrel.len());
            'build: for (i, row) in rrel.rows.iter().enumerate() {
                let mut key = Vec::with_capacity(rkeys.len());
                for k in &rkeys {
                    let v = k.eval(row)?;
                    if v.is_null() {
                        continue 'build; // NULL keys never match
                    }
                    key.push(v);
                }
                table.entry(key).or_default().push(i);
            }
            self.olap_units += (lrel.len() as f64 + rrel.len() as f64) * weights::JOIN;
            rows.reserve(lrel.len());
            'probe: for lr in &lrel.rows {
                let mut key = Vec::with_capacity(lkeys.len());
                for k in &lkeys {
                    let v = k.eval(lr)?;
                    if v.is_null() {
                        continue 'probe;
                    }
                    key.push(v);
                }
                if let Some(matches) = table.get(&key) {
                    for &ri in matches {
                        let mut row = Vec::with_capacity(width);
                        row.extend(lr.iter().cloned());
                        row.extend(rrel.rows[ri].iter().cloned());
                        if let Some(res) = &residual_c {
                            if !res.eval_predicate(&row)? {
                                continue;
                            }
                        }
                        rows.push(row);
                    }
                }
            }
            self.olap_units += rows.len() as f64 * weights::JOIN * 0.5;
        }
        self.op(OpStat {
            op: if on.is_empty() {
                "nested loop join"
            } else {
                "hash join"
            },
            rows_in: (lrel.len() + rrel.len()) as u64,
            rows_out: rows.len() as u64,
            build_rows: rrel.len() as u64,
            probe_rows: lrel.len() as u64,
        });
        Ok(ExecRel::Owned(Relation::new(fields, rows)))
    }

    /// Semi/anti join: emit left rows with at least one (semi) or zero
    /// (anti) matching right rows.
    fn semi_join(
        &mut self,
        left: &LogicalPlan,
        right: &LogicalPlan,
        on: &[(xdb_sql::Expr, xdb_sql::Expr)],
        residual: Option<&xdb_sql::Expr>,
        negated: bool,
    ) -> Result<ExecRel> {
        let lrel = self.run_rel(left)?;
        let rrel = self.run_rel(right)?;
        let rrel = rrel.as_ref();
        let lschema = left.schema();
        let rschema = right.schema();
        let residual_c = match residual {
            Some(r) => Some(compile(r, &lschema.join(&rschema))?),
            None => None,
        };
        let lkeys: Vec<PhysExpr> = on
            .iter()
            .map(|(l, _)| compile(l, &lschema))
            .collect::<Result<_>>()?;
        let rkeys: Vec<PhysExpr> = on
            .iter()
            .map(|(_, r)| compile(r, &rschema))
            .collect::<Result<_>>()?;
        // Build side: group right-row indexes by key (all rows under the
        // unit key when there are no equality conditions).
        let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::with_capacity(rrel.len());
        'build: for (i, row) in rrel.rows.iter().enumerate() {
            let mut key = Vec::with_capacity(rkeys.len());
            for k in &rkeys {
                let v = k.eval(row)?;
                if v.is_null() {
                    continue 'build; // NULL keys never match
                }
                key.push(v);
            }
            table.entry(key).or_default().push(i);
        }
        self.olap_units += (lrel.len() as f64 + rrel.len() as f64) * weights::JOIN;
        // Decide per left row, then materialize: owned inputs move the
        // emitted rows, shared inputs clone only the survivors.
        let mut keep = Vec::with_capacity(lrel.len());
        for lr in &lrel.as_ref().rows {
            let mut key = Vec::with_capacity(lkeys.len());
            let mut null_key = false;
            for k in &lkeys {
                let v = k.eval(lr)?;
                if v.is_null() {
                    null_key = true;
                    break;
                }
                key.push(v);
            }
            let mut matched = false;
            if !null_key {
                if let Some(candidates) = table.get(&key) {
                    match &residual_c {
                        None => matched = !candidates.is_empty(),
                        Some(res) => {
                            for &ri in candidates {
                                let mut combined = Vec::with_capacity(lr.len() + rrel.width());
                                combined.extend(lr.iter().cloned());
                                combined.extend(rrel.rows[ri].iter().cloned());
                                if res.eval_predicate(&combined)? {
                                    matched = true;
                                    break;
                                }
                            }
                        }
                    }
                }
            }
            keep.push(matched != negated);
        }
        let (rows_in, build_rows, probe_rows) = (
            (lrel.len() + rrel.len()) as u64,
            rrel.len() as u64,
            lrel.len() as u64,
        );
        let out = retain_rows(lrel, &keep);
        self.op(OpStat {
            op: if negated { "anti join" } else { "semi join" },
            rows_in,
            rows_out: out.len() as u64,
            build_rows,
            probe_rows,
        });
        Ok(ExecRel::Owned(out))
    }

    fn aggregate(
        &mut self,
        input: &LogicalPlan,
        group_by: &[(xdb_sql::Expr, String)],
        aggregates: &[(AggCall, String)],
    ) -> Result<ExecRel> {
        let rel = self.run_rel(input)?;
        let schema = input.schema();
        let group_c: Vec<PhysExpr> = group_by
            .iter()
            .map(|(e, _)| compile(e, &schema))
            .collect::<Result<_>>()?;
        let agg_c: Vec<(AggFunc, Option<PhysExpr>, bool)> = aggregates
            .iter()
            .map(|(a, _)| {
                let arg = match &a.arg {
                    Some(e) => Some(compile(e, &schema)?),
                    None => None,
                };
                Ok((a.func, arg, a.distinct))
            })
            .collect::<Result<_>>()?;
        self.olap_units += rel.len() as f64 * weights::AGGREGATE;

        let mut groups: HashMap<Vec<Value>, Vec<Accumulator>> = HashMap::new();
        let mut order: Vec<Vec<Value>> = Vec::new(); // first-seen group order
        for row in &rel.as_ref().rows {
            let mut key = Vec::with_capacity(group_c.len());
            for g in &group_c {
                key.push(g.eval(row)?);
            }
            let accs = match groups.entry(key) {
                Entry::Occupied(e) => e.into_mut(),
                Entry::Vacant(e) => {
                    order.push(e.key().clone());
                    e.insert(
                        agg_c
                            .iter()
                            .map(|(f, _, distinct)| Accumulator::new(*f, *distinct))
                            .collect(),
                    )
                }
            };
            for (acc, (_, arg, _)) in accs.iter_mut().zip(agg_c.iter()) {
                let v = match arg {
                    Some(a) => Some(a.eval(row)?),
                    None => None,
                };
                acc.update(v);
            }
        }
        // Global aggregate over empty input still yields one row.
        if group_c.is_empty() && groups.is_empty() {
            let accs: Vec<Accumulator> = agg_c
                .iter()
                .map(|(f, _, distinct)| Accumulator::new(*f, *distinct))
                .collect();
            order.push(vec![]);
            groups.insert(vec![], accs);
        }

        // Output schema derived from the input schema — no need to
        // reconstruct (and deep-clone) the plan node.
        let fields: Vec<(String, DataType)> = aggregate_schema(&schema, group_by, aggregates)
            .fields
            .into_iter()
            .map(|f| (f.name, f.data_type))
            .collect();
        let mut rows = Vec::with_capacity(order.len());
        for key in order {
            let accs = groups.remove(&key).expect("group key present");
            let mut row = key;
            for acc in accs {
                row.push(acc.finish());
            }
            rows.push(row);
        }
        self.op(OpStat {
            op: "aggregate",
            rows_in: rel.len() as u64,
            rows_out: rows.len() as u64,
            ..OpStat::default()
        });
        Ok(ExecRel::Owned(Relation::new(fields, rows)))
    }
}

/// Materialize the rows of `rel` selected by `keep`: owned inputs move the
/// surviving rows, shared inputs clone only the survivors.
fn retain_rows(rel: ExecRel, keep: &[bool]) -> Relation {
    match rel {
        ExecRel::Owned(rel) => {
            let rows = rel
                .rows
                .into_iter()
                .zip(keep)
                .filter_map(|(row, k)| k.then_some(row))
                .collect();
            Relation::new(rel.fields, rows)
        }
        ExecRel::Shared(rel) => {
            let survivors = keep.iter().filter(|k| **k).count();
            let mut rows = Vec::with_capacity(survivors);
            for (row, k) in rel.rows.iter().zip(keep) {
                if *k {
                    rows.push(row.clone());
                }
            }
            Relation::new(rel.fields.clone(), rows)
        }
    }
}

/// Streaming aggregate accumulator.
enum Accumulator {
    Sum {
        int: i128,
        float: f64,
        any_float: bool,
        seen: bool,
        distinct: Option<std::collections::HashSet<Value>>,
    },
    Count {
        n: i64,
        /// `None` arg = count(*).
        distinct: Option<std::collections::HashSet<Value>>,
    },
    Avg {
        sum: f64,
        n: i64,
        distinct: Option<std::collections::HashSet<Value>>,
    },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl Accumulator {
    fn new(func: AggFunc, distinct: bool) -> Accumulator {
        let set = || distinct.then(std::collections::HashSet::new);
        match func {
            AggFunc::Sum => Accumulator::Sum {
                int: 0,
                float: 0.0,
                any_float: false,
                seen: false,
                distinct: set(),
            },
            AggFunc::Count => Accumulator::Count {
                n: 0,
                distinct: set(),
            },
            AggFunc::Avg => Accumulator::Avg {
                sum: 0.0,
                n: 0,
                distinct: set(),
            },
            AggFunc::Min => Accumulator::Min(None),
            AggFunc::Max => Accumulator::Max(None),
        }
    }

    fn update(&mut self, v: Option<Value>) {
        // `None` means count(*) — counts every row.
        match self {
            Accumulator::Count { n, distinct } => match v {
                None => *n += 1,
                Some(v) if !v.is_null() => {
                    if let Some(set) = distinct {
                        if !set.insert(v) {
                            return;
                        }
                    }
                    *n += 1;
                }
                _ => {}
            },
            Accumulator::Sum {
                int,
                float,
                any_float,
                seen,
                distinct,
            } => {
                let Some(v) = v else { return };
                if v.is_null() {
                    return;
                }
                if let Some(set) = distinct {
                    if !set.insert(v.clone()) {
                        return;
                    }
                }
                *seen = true;
                match v {
                    Value::Int(i) => *int += i as i128,
                    Value::Float(f) => {
                        *float += f;
                        *any_float = true;
                    }
                    _ => {}
                }
            }
            Accumulator::Avg { sum, n, distinct } => {
                let Some(v) = v else { return };
                let f = match v {
                    Value::Int(i) => i as f64,
                    Value::Float(f) => f,
                    _ => return,
                };
                if let Some(set) = distinct {
                    if !set.insert(v) {
                        return;
                    }
                }
                *sum += f;
                *n += 1;
            }
            Accumulator::Min(cur) => {
                let Some(v) = v else { return };
                if v.is_null() {
                    return;
                }
                let replace = match cur {
                    Some(c) => v.total_cmp(c) == std::cmp::Ordering::Less,
                    None => true,
                };
                if replace {
                    *cur = Some(v);
                }
            }
            Accumulator::Max(cur) => {
                let Some(v) = v else { return };
                if v.is_null() {
                    return;
                }
                let replace = match cur {
                    Some(c) => v.total_cmp(c) == std::cmp::Ordering::Greater,
                    None => true,
                };
                if replace {
                    *cur = Some(v);
                }
            }
        }
    }

    fn finish(self) -> Value {
        match self {
            Accumulator::Sum {
                int,
                float,
                any_float,
                seen,
                ..
            } => {
                if !seen {
                    Value::Null
                } else if any_float {
                    Value::Float(float + int as f64)
                } else if let Ok(i) = i64::try_from(int) {
                    Value::Int(i)
                } else {
                    Value::Float(int as f64)
                }
            }
            Accumulator::Count { n, .. } => Value::Int(n),
            Accumulator::Avg { sum, n, .. } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / n as f64)
                }
            }
            Accumulator::Min(v) | Accumulator::Max(v) => v.unwrap_or(Value::Null),
        }
    }
}

/// Convenience resolver backed by a map of named relations (tests, and the
/// mediator baselines' "localized tables" mode). Relations are `Arc`-shared
/// so repeated scans never copy the stored rows.
pub struct MapResolver {
    pub relations: HashMap<String, Arc<Relation>>,
}

impl MapResolver {
    pub fn new() -> MapResolver {
        MapResolver {
            relations: HashMap::new(),
        }
    }

    pub fn insert(&mut self, name: impl Into<String>, rel: Relation) {
        self.relations
            .insert(name.into().to_ascii_lowercase(), Arc::new(rel));
    }
}

impl Default for MapResolver {
    fn default() -> Self {
        Self::new()
    }
}

impl ScanResolver for MapResolver {
    fn scan(&self, relation: &str, wanted: &[(String, DataType)]) -> Result<ScanOutput> {
        let rel = self
            .relations
            .get(&relation.to_ascii_lowercase())
            .ok_or_else(|| EngineError::Catalog(format!("unknown relation {relation:?}")))?;
        Ok(ScanOutput {
            relation: project_columns_shared(rel, wanted)?,
            edge: None,
            remote: None,
        })
    }
}

/// Resolve `wanted` column names to positions in `rel`.
fn column_indexes(rel: &Relation, wanted: &[(String, DataType)]) -> Result<Vec<usize>> {
    wanted
        .iter()
        .map(|(n, _)| {
            rel.column_index(n)
                .ok_or_else(|| EngineError::Catalog(format!("unknown column {n:?}")))
        })
        .collect()
}

fn is_identity(idx: &[usize], rel: &Relation) -> bool {
    idx.len() == rel.width() && idx.iter().enumerate().all(|(i, &j)| i == j)
}

fn subset(rel: &Relation, idx: &[usize], wanted: &[(String, DataType)]) -> Relation {
    let rows = rel
        .rows
        .iter()
        .map(|r| idx.iter().map(|&j| r[j].clone()).collect())
        .collect();
    Relation::new(wanted.to_vec(), rows)
}

/// Project a stored relation to the requested columns, by name.
pub fn project_columns(rel: &Relation, wanted: &[(String, DataType)]) -> Result<Relation> {
    let idx = column_indexes(rel, wanted)?;
    // Identity projection avoids a copy of the row structure rebuild.
    if is_identity(&idx, rel) {
        return Ok(rel.clone());
    }
    Ok(subset(rel, &idx, wanted))
}

/// Project an `Arc`-shared relation: identity projections hand the `Arc`
/// through without touching a single row; subsets copy once.
pub fn project_columns_shared(
    rel: &Arc<Relation>,
    wanted: &[(String, DataType)],
) -> Result<ExecRel> {
    let idx = column_indexes(rel, wanted)?;
    if is_identity(&idx, rel) {
        return Ok(ExecRel::Shared(Arc::clone(rel)));
    }
    Ok(ExecRel::Owned(subset(rel, &idx, wanted)))
}

/// Project an owned relation, consuming it: identity projections return
/// the input unchanged (no copy at all).
pub fn project_columns_owned(rel: Relation, wanted: &[(String, DataType)]) -> Result<Relation> {
    let idx = column_indexes(&rel, wanted)?;
    if is_identity(&idx, &rel) {
        return Ok(rel);
    }
    Ok(subset(&rel, &idx, wanted))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdb_sql::bind::{bind_select, ResolvedRelation, SchemaProvider};
    use xdb_sql::parser::parse_select;

    struct Fixture {
        resolver: MapResolver,
        schemas: HashMap<String, Vec<(String, DataType)>>,
    }

    impl SchemaProvider for Fixture {
        fn resolve_relation(&self, name: &str) -> Option<ResolvedRelation> {
            self.schemas
                .get(&name.to_ascii_lowercase())
                .map(|fields| ResolvedRelation::Base {
                    fields: fields.clone(),
                })
        }
    }

    fn fixture() -> Fixture {
        let mut resolver = MapResolver::new();
        let mut schemas = HashMap::new();
        let emp_fields = vec![
            ("id".to_string(), DataType::Int),
            ("name".to_string(), DataType::Str),
            ("dept".to_string(), DataType::Str),
            ("salary".to_string(), DataType::Float),
        ];
        resolver.insert(
            "emp",
            Relation::new(
                emp_fields.clone(),
                vec![
                    vec![
                        Value::Int(1),
                        Value::str("ann"),
                        Value::str("eng"),
                        Value::Float(100.0),
                    ],
                    vec![
                        Value::Int(2),
                        Value::str("bob"),
                        Value::str("eng"),
                        Value::Float(80.0),
                    ],
                    vec![
                        Value::Int(3),
                        Value::str("cat"),
                        Value::str("ops"),
                        Value::Float(90.0),
                    ],
                    vec![
                        Value::Int(4),
                        Value::str("dan"),
                        Value::str("ops"),
                        Value::Null,
                    ],
                ],
            ),
        );
        schemas.insert("emp".to_string(), emp_fields);
        let dept_fields = vec![
            ("dname".to_string(), DataType::Str),
            ("budget".to_string(), DataType::Int),
        ];
        resolver.insert(
            "dept",
            Relation::new(
                dept_fields.clone(),
                vec![
                    vec![Value::str("eng"), Value::Int(1000)],
                    vec![Value::str("ops"), Value::Int(500)],
                    vec![Value::str("hr"), Value::Int(100)],
                ],
            ),
        );
        schemas.insert("dept".to_string(), dept_fields);
        Fixture { resolver, schemas }
    }

    fn run(sql: &str) -> Relation {
        let f = fixture();
        let plan = bind_select(&parse_select(sql).unwrap(), &f).unwrap();
        let mut exec = Execution::new(&f.resolver);
        exec.run(&plan).unwrap()
    }

    #[test]
    fn filter_project() {
        let r = run("SELECT name FROM emp WHERE salary > 85");
        assert_eq!(r.len(), 2);
        assert_eq!(r.rows[0][0], Value::str("ann"));
        assert_eq!(r.rows[1][0], Value::str("cat"));
    }

    #[test]
    fn hash_join() {
        let r = run(
            "SELECT e.name, d.budget FROM emp e, dept d WHERE e.dept = d.dname AND d.budget > 600",
        );
        assert_eq!(r.len(), 2); // only eng members
    }

    #[test]
    fn cross_join_count() {
        let r = run("SELECT count(*) AS n FROM emp, dept");
        assert_eq!(r.rows[0][0], Value::Int(12));
    }

    #[test]
    fn group_by_aggregates() {
        let r = run(
            "SELECT dept, count(*) AS n, sum(salary) AS total, avg(salary) AS mean, \
                    min(salary) AS lo, max(salary) AS hi \
             FROM emp GROUP BY dept ORDER BY dept",
        );
        assert_eq!(r.len(), 2);
        // eng: 2 rows, sum 180, avg 90.
        assert_eq!(r.rows[0][0], Value::str("eng"));
        assert_eq!(r.rows[0][1], Value::Int(2));
        assert_eq!(r.rows[0][2], Value::Float(180.0));
        assert_eq!(r.rows[0][3], Value::Float(90.0));
        // ops: salary NULL ignored by sum/avg/min/max but counted by *.
        assert_eq!(r.rows[1][1], Value::Int(2));
        assert_eq!(r.rows[1][2], Value::Float(90.0));
        assert_eq!(r.rows[1][4], Value::Float(90.0));
    }

    #[test]
    fn global_aggregate_empty_input() {
        let r = run("SELECT count(*) AS n, sum(salary) AS s FROM emp WHERE salary > 1e9");
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows[0][0], Value::Int(0));
        assert_eq!(r.rows[0][1], Value::Null);
    }

    #[test]
    fn count_distinct() {
        let r = run("SELECT count(DISTINCT dept) AS n FROM emp");
        assert_eq!(r.rows[0][0], Value::Int(2));
    }

    #[test]
    fn order_and_limit() {
        let r = run("SELECT name, salary FROM emp ORDER BY salary DESC LIMIT 2");
        // NULLs sort last in our total order; DESC reverses → NULL first.
        // SQL engines differ here; ours places NULL first on DESC.
        assert_eq!(r.len(), 2);
        assert_eq!(r.rows[1][0], Value::str("ann"));
    }

    #[test]
    fn distinct_rows() {
        let r = run("SELECT DISTINCT dept FROM emp");
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn having_filter() {
        let r = run("SELECT dept, count(*) AS n FROM emp GROUP BY dept HAVING count(*) > 1");
        assert_eq!(r.len(), 2);
        let r =
            run("SELECT dept, sum(salary) AS s FROM emp GROUP BY dept HAVING sum(salary) > 100");
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn null_join_keys_never_match() {
        let mut f = fixture();
        f.resolver.insert(
            "nullkeys",
            Relation::new(
                vec![("k".to_string(), DataType::Str)],
                vec![vec![Value::Null], vec![Value::str("eng")]],
            ),
        );
        f.schemas.insert(
            "nullkeys".to_string(),
            vec![("k".to_string(), DataType::Str)],
        );
        let plan = bind_select(
            &parse_select("SELECT count(*) AS n FROM nullkeys, dept WHERE k = dname").unwrap(),
            &f,
        )
        .unwrap();
        let mut exec = Execution::new(&f.resolver);
        let r = exec.run(&plan).unwrap();
        assert_eq!(r.rows[0][0], Value::Int(1));
    }

    #[test]
    fn work_units_accumulate() {
        let f = fixture();
        let plan = bind_select(
            &parse_select("SELECT e.name FROM emp e, dept d WHERE e.dept = d.dname").unwrap(),
            &f,
        )
        .unwrap();
        let mut exec = Execution::new(&f.resolver);
        exec.run(&plan).unwrap();
        assert!(exec.scan_units > 0.0);
        assert!(exec.olap_units > 0.0);
    }

    #[test]
    fn case_in_projection() {
        let r = run(
            "SELECT name, case when salary >= 90 then 'high' when salary is null then 'unknown' else 'low' end AS band \
             FROM emp ORDER BY name",
        );
        assert_eq!(r.rows[0][1], Value::str("high"));
        assert_eq!(r.rows[1][1], Value::str("low"));
        assert_eq!(r.rows[3][1], Value::str("unknown"));
    }

    #[test]
    fn expression_over_aggregates_executes() {
        let r = run("SELECT sum(salary) / count(salary) AS mean FROM emp");
        assert_eq!(r.rows[0][0], Value::Float(90.0));
    }

    #[test]
    fn project_columns_identity_and_subset() {
        let f = fixture();
        let rel = f.resolver.relations.get("dept").unwrap();
        let sub = project_columns(rel, &[("budget".to_string(), DataType::Int)]).unwrap();
        assert_eq!(sub.width(), 1);
        assert_eq!(sub.rows[0][0], Value::Int(1000));
        let idt = project_columns(rel, &rel.fields.clone()).unwrap();
        assert_eq!(&idt, rel.as_ref());
    }

    #[test]
    fn identity_scans_share_storage() {
        // A full-width scan (and the identity projection above it) must
        // hand out the stored Arc, not a row-by-row copy.
        let f = fixture();
        let stored = Arc::clone(f.resolver.relations.get("dept").unwrap());
        let plan =
            bind_select(&parse_select("SELECT dname, budget FROM dept").unwrap(), &f).unwrap();
        let mut exec = Execution::new(&f.resolver);
        let out = exec.run_rel(&plan).unwrap();
        match &out {
            ExecRel::Shared(arc) => assert!(Arc::ptr_eq(arc, &stored)),
            ExecRel::Owned(_) => panic!("identity scan should stay shared"),
        }
        // into_owned on still-shared data copies; results are equal.
        assert_eq!(out.into_owned(), *stored);
    }
}
