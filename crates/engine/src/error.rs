//! Engine error type.

use std::fmt;
use xdb_sql::algebra::SchemaError;
use xdb_sql::bind::BindError;
use xdb_sql::parser::ParseError;

/// Anything that can go wrong inside an engine or across the cluster.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    Parse(String),
    Bind(String),
    Catalog(String),
    Execution(String),
    /// A remote fetch failed (connector loss, unknown server, ...).
    Remote(String),
    Unsupported(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse(m) => write!(f, "parse error: {m}"),
            EngineError::Bind(m) => write!(f, "bind error: {m}"),
            EngineError::Catalog(m) => write!(f, "catalog error: {m}"),
            EngineError::Execution(m) => write!(f, "execution error: {m}"),
            EngineError::Remote(m) => write!(f, "remote error: {m}"),
            EngineError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<ParseError> for EngineError {
    fn from(e: ParseError) -> Self {
        EngineError::Parse(e.to_string())
    }
}

impl From<BindError> for EngineError {
    fn from(e: BindError) -> Self {
        EngineError::Bind(e.message)
    }
}

impl From<SchemaError> for EngineError {
    fn from(e: SchemaError) -> Self {
        EngineError::Execution(e.to_string())
    }
}

pub type Result<T> = std::result::Result<T, EngineError>;
