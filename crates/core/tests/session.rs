//! Plan-folding semantics: folding N concurrent copies of a query must be
//! observationally equivalent — per tenant — to executing one copy and
//! fanning the result out. Each tenant's result relation, as-if-alone
//! phase breakdown, and attributed ledger view must be bit-identical to
//! running the same query unfolded; shared fragments must be deployed
//! exactly once and drained from every engine by window close; and
//! concurrent admission must be indistinguishable from sequential
//! admission of the same list.

use parking_lot::Mutex;
use proptest::prelude::*;
use std::sync::Arc;
use xdb_core::scenario::{self, ScenarioConfig};
use xdb_core::{GlobalCatalog, QueryServer, SessionOptions, Submission, TenantOutcome, XdbOptions};
use xdb_engine::cluster::Cluster;
use xdb_obs::Telemetry;

/// Query ids come from a process-global counter and their decimal width
/// leaks into control-message byte counts; arms under comparison are
/// serialized and retried until every id has the same width (same pattern
/// as the streaming and telemetry suites).
static SUBMIT_LOCK: Mutex<()> = Mutex::new(());

fn setup() -> (Cluster, GlobalCatalog, Arc<Telemetry>) {
    let (mut cluster, mut catalog) = scenario::build(ScenarioConfig::default()).unwrap();
    let telemetry = Telemetry::new_handle();
    cluster.set_telemetry(Arc::clone(&telemetry));
    catalog.set_telemetry(Arc::clone(&telemetry));
    (cluster, catalog, telemetry)
}

fn same_width(ids: &[u64]) -> bool {
    let w = ids[0].to_string().len();
    ids.iter().all(|i| i.to_string().len() == w)
}

/// The per-tenant observable: result rows (bit-rendered, in order), the
/// as-if-alone breakdown, and the attributed ledger view.
fn fingerprint(o: &TenantOutcome) -> String {
    let mut fp = String::new();
    for i in 0..o.relation.len() {
        for c in 0..o.relation.width() {
            fp.push_str(&format!("{:?}|", o.relation.value(i, c)));
        }
        fp.push('\n');
    }
    fp.push_str(&format!("{:?}\n", o.breakdown));
    for t in &o.attributed {
        fp.push_str(&format!("{t:?}\n"));
    }
    fp
}

fn copies(sql: &str, n: usize) -> Vec<Submission> {
    (0..n)
        .map(|i| Submission::new(format!("tenant-{i}"), sql))
        .collect()
}

struct Arm {
    report: xdb_core::SessionReport,
    telemetry: Arc<Telemetry>,
    baseline_live: Vec<(String, f64)>,
    final_live: Vec<(String, f64)>,
    /// Physical bytes on the wire for the whole run.
    total_bytes: u64,
}

fn run_arm(subs: &[Submission], fold: bool, xdb: XdbOptions) -> Arm {
    let (cluster, catalog, telemetry) = setup();
    let nodes = cluster.node_names();
    let live = |t: &Arc<Telemetry>| -> Vec<(String, f64)> {
        nodes
            .iter()
            .map(|n| {
                (
                    n.clone(),
                    t.metrics.value("ddl.objects_live", &[("engine", n)]),
                )
            })
            .collect()
    };
    let baseline_live = live(&telemetry);
    let server = QueryServer::new(
        &cluster,
        &catalog,
        SessionOptions {
            xdb,
            fold,
            window: 0,
        },
    );
    let report = server.run(subs).unwrap();
    let final_live = live(&telemetry);
    let total_bytes = cluster.ledger.total_bytes();
    Arm {
        report,
        telemetry,
        baseline_live,
        final_live,
        total_bytes,
    }
}

/// Run both arms until every query id across them has the same decimal
/// width, then hand them to the assertion body.
fn with_width_matched_arms(subs: &[Submission], xdb: XdbOptions, check: impl Fn(&Arm, &Arm)) {
    let _guard = SUBMIT_LOCK.lock();
    for _ in 0..12 {
        let folded = run_arm(subs, true, xdb.clone());
        let unfolded = run_arm(subs, false, xdb.clone());
        let mut ids: Vec<u64> = folded.report.outcomes.iter().map(|o| o.query_id).collect();
        ids.extend(unfolded.report.outcomes.iter().map(|o| o.query_id));
        if !same_width(&ids) {
            continue;
        }
        check(&folded, &unfolded);
        return;
    }
    panic!("query-id widths never aligned");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Folding N concurrent copies ≡ one query fanned out: every tenant
    /// observes the exact result, breakdown, and attributed transfers it
    /// would have observed running the same query alone, unfolded — at
    /// any transport chunk size.
    #[test]
    fn folding_n_copies_matches_unfolded_fanout(n in 2usize..6, pick in 0usize..3) {
        let chunk = [0usize, 256, 4096][pick];
        let subs = copies(scenario::EXAMPLE_QUERY, n);
        let xdb = XdbOptions { stream_chunk_rows: chunk, ..Default::default() };
        with_width_matched_arms(&subs, xdb, |folded, unfolded| {
            assert_eq!(folded.report.outcomes.len(), n);
            for (f, u) in folded.report.outcomes.iter().zip(&unfolded.report.outcomes) {
                assert_eq!(f.tenant, u.tenant);
                assert_eq!(fingerprint(f), fingerprint(u), "tenant {}", f.tenant);
            }
            // One deployment, N-1 fan-outs: the folded run ships exactly
            // one query's worth of DDLs, the unfolded run N times as many.
            assert_eq!(folded.report.full_folds, n as u64 - 1);
            assert!(folded.report.fragments_deployed > 0);
            assert_eq!(
                folded.report.ddl_statements * n as u64,
                unfolded.report.ddl_statements
            );
            assert!(folded.total_bytes < unfolded.total_bytes);
        });
    }
}

#[test]
fn fold_deploys_fragments_once_and_consult_and_ddl_traffic_drop() {
    let subs = copies(scenario::EXAMPLE_QUERY, 5);
    with_width_matched_arms(&subs, XdbOptions::default(), |folded, unfolded| {
        let fr = &folded.report;
        let ur = &unfolded.report;
        // Every copy after the first folds completely.
        assert_eq!(fr.full_folds, 4);
        assert_eq!(fr.plan_cache_hits, 4);
        // Each shared fragment was deployed exactly once (EXAMPLE_QUERY's
        // plan has 3 tasks): the folded run shipped exactly the DDLs of
        // one deployment, the unfolded run five times as many.
        assert_eq!(fr.fragments_deployed, 3);
        assert_eq!(fr.ddl_statements * 5, ur.ddl_statements);
        // Consultation probes collapse to the cold plan's.
        assert!(fr.consult_probes < ur.consult_probes);
        assert_eq!(fr.consult_probes * 5, ur.consult_probes);
        // Per-tenant equivalence still holds.
        for (f, u) in fr.outcomes.iter().zip(&ur.outcomes) {
            assert_eq!(fingerprint(f), fingerprint(u), "tenant {}", f.tenant);
        }
        // Folding strictly reduces physical bytes moved.
        assert!(folded.total_bytes < unfolded.total_bytes);
        // Shared fragments drained: every engine's live-object gauge is
        // back at its pre-run baseline (and something was deployed).
        assert_eq!(folded.baseline_live, folded.final_live);
        let peak = folded
            .final_live
            .iter()
            .map(|(n, _)| {
                folded
                    .telemetry
                    .metrics
                    .high_water("ddl.objects_live", &[("engine", n)])
            })
            .fold(0.0f64, f64::max);
        let base = folded
            .baseline_live
            .iter()
            .map(|(_, v)| *v)
            .fold(0.0f64, f64::max);
        assert!(peak > base, "no delegation objects were ever deployed");
    });
}

#[test]
fn concurrent_admission_matches_sequential() {
    let _guard = SUBMIT_LOCK.lock();
    let subs = copies(scenario::EXAMPLE_QUERY, 6);
    for _ in 0..12 {
        let seq = {
            let (cluster, catalog, telemetry) = setup();
            let server = QueryServer::new(&cluster, &catalog, SessionOptions::default());
            let report = server.run(&subs).unwrap();
            let snap = telemetry.metrics.deterministic_snapshot().render();
            let fps: Vec<String> = report.outcomes.iter().map(fingerprint).collect();
            let ids: Vec<u64> = report.outcomes.iter().map(|o| o.query_id).collect();
            (ids, fps, snap, report.makespan_ms)
        };
        let conc = {
            let (cluster, catalog, telemetry) = setup();
            let server = QueryServer::new(&cluster, &catalog, SessionOptions::default());
            let report = server.run_concurrent(&subs, 4).unwrap();
            let snap = telemetry.metrics.deterministic_snapshot().render();
            let fps: Vec<String> = report.outcomes.iter().map(fingerprint).collect();
            let ids: Vec<u64> = report.outcomes.iter().map(|o| o.query_id).collect();
            (ids, fps, snap, report.makespan_ms)
        };
        let mut ids = seq.0.clone();
        ids.extend(&conc.0);
        if !same_width(&ids) {
            continue;
        }
        assert_eq!(seq.1, conc.1, "per-tenant observables diverged");
        assert_eq!(
            normalize_ids(&seq.2),
            normalize_ids(&conc.2),
            "deterministic snapshots diverged"
        );
        assert_eq!(seq.3, conc.3, "makespans diverged");
        return;
    }
    panic!("query-id widths never aligned");
}

/// Replace every decimal run after `xdb_q` / `"query":` with `N` so runs
/// with different global query ids compare equal byte-for-byte.
fn normalize_ids(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let bytes = s.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        out.push(bytes[i] as char);
        let here = &s[..=i];
        if here.ends_with("xdb_q") || here.ends_with("\"query\":") {
            let mut j = i + 1;
            while j < bytes.len() && bytes[j].is_ascii_digit() {
                j += 1;
            }
            if j > i + 1 {
                out.push('N');
                i = j;
                continue;
            }
        }
        i += 1;
    }
    out
}

#[test]
fn partial_fold_reuses_shared_prefix() {
    // Same joins, same pruned columns, different root aggregate: the
    // non-root fragments are shared, the root is not.
    let variant = scenario::EXAMPLE_QUERY.replacen("avg(m.u_ml)", "min(m.u_ml)", 1);
    let subs = vec![
        Submission::new("tenant-a", scenario::EXAMPLE_QUERY),
        Submission::new("tenant-b", variant),
    ];
    with_width_matched_arms(&subs, XdbOptions::default(), |folded, unfolded| {
        let fr = &folded.report;
        assert_eq!(fr.full_folds, 0, "distinct roots must not fully fold");
        assert!(
            fr.fold_hits > 0,
            "shared non-root fragments were not folded"
        );
        assert!(fr.ddl_statements < unfolded.report.ddl_statements);
        for (f, u) in fr.outcomes.iter().zip(&unfolded.report.outcomes) {
            assert_eq!(fingerprint(f), fingerprint(u), "tenant {}", f.tenant);
        }
    });
}

#[test]
fn windows_scope_folding_state() {
    let _guard = SUBMIT_LOCK.lock();
    let subs = copies(scenario::EXAMPLE_QUERY, 4);
    let (cluster, catalog, _telemetry) = setup();
    let server = QueryServer::new(
        &cluster,
        &catalog,
        SessionOptions {
            window: 2,
            ..Default::default()
        },
    );
    let report = server.run(&subs).unwrap();
    assert_eq!(report.windows, 2);
    // One deployment and one full fold per window; nothing folds across
    // the window boundary (EXAMPLE_QUERY's plan has 3 tasks).
    assert_eq!(report.full_folds, 2);
    assert_eq!(report.fragments_deployed, 6);
    assert_eq!(report.plan_cache_hits, 2);
}
