//! Cost-model observatory determinism properties: the predicted-vs-
//! observed cost record of a query is part of the deterministic observable
//! surface. For any TD1 query, turning the edge reactor on or off,
//! switching executors, changing the partition count, or changing the
//! transport morsel size must leave the serialized [`CostObservation`]
//! bit-identical — the observatory reads only simulated-clock state
//! (decisions, ledger, trace counters), never the wall clock or the
//! scheduler.
//!
//! Plus the exact-accounting invariants every single run must uphold:
//! the chosen candidate's predicted total is its component sum bit-exactly
//! (same additions, same order as Eq. 1), and the per-decision consult
//! charges sum to the annotation phase of the `PhaseBreakdown` exactly.

use proptest::prelude::*;
use std::sync::Arc;
use xdb_core::{GlobalCatalog, Xdb, XdbOptions};
use xdb_engine::profile::EngineProfile;
use xdb_net::{NodeId, Scenario};
use xdb_obs::Telemetry;
use xdb_tpch::{build_cluster, ProfileAssignment, TableDist, TpchQuery};

/// Name of the managed-cloud client node (mirrors the bench harness).
const CLOUD: &str = "cloud";

/// Query ids come from a process-global counter and their decimal width
/// leaks into control-message byte counts; pairs under comparison are
/// serialized and retried until both ids have the same width (same
/// pattern as the reactor and telemetry tests).
static SUBMIT_LOCK: parking_lot::Mutex<()> = parking_lot::Mutex::new(());

/// One full TD1 submission under the given executor knobs; returns the
/// query id and the serialized cost observation, after checking the
/// run's exact-accounting invariants.
fn run(
    q: TpchQuery,
    reactor_threads: usize,
    partitions: usize,
    chunk: usize,
    parallel: bool,
) -> (u64, String) {
    let mut cluster = build_cluster(
        TableDist::Td1,
        0.002,
        Scenario::OnPremise,
        &ProfileAssignment::uniform(EngineProfile::postgres()),
    )
    .unwrap();
    cluster.topology.add_cloud_node(NodeId::new(CLOUD));
    let telemetry = Telemetry::new_handle();
    cluster.set_telemetry(Arc::clone(&telemetry));
    cluster.set_exec_partitions(partitions);
    let mut catalog = GlobalCatalog::discover(&cluster).unwrap();
    catalog.set_telemetry(Arc::clone(&telemetry));
    let xdb = Xdb::new(&cluster, &catalog)
        .with_client_node(CLOUD)
        .with_options(XdbOptions {
            parallel_execution: parallel,
            stream_chunk_rows: chunk,
            reactor_threads,
            ..Default::default()
        });
    let outcome = xdb.submit(q.sql()).unwrap();

    // Exact accounting, every run: the chosen candidate's Eq. 1 total is
    // its component sum with no extra rounding...
    for d in &outcome.cost.decisions {
        let chosen: Vec<_> = d.candidates.iter().filter(|c| c.chosen).collect();
        assert_eq!(chosen.len(), 1, "{}: decision {}", q.name(), d.index);
        let c = chosen[0];
        assert_eq!(
            c.predicted_ms,
            c.exec_ms + c.move_left_ms + c.move_right_ms + c.startup_ms,
            "{}: component sum drifts from Eq. 1 total",
            q.name()
        );
        assert_eq!(d.predicted_ms, c.predicted_ms);
    }
    // ...and the per-decision consult charges reproduce the annotator's
    // PhaseBreakdown cost bit-exactly.
    let consult_total: f64 = outcome.cost.decisions.iter().map(|d| d.consult_ms).sum();
    assert_eq!(consult_total, outcome.cost.consult_ms, "{}", q.name());
    assert_eq!(consult_total, outcome.breakdown.ann_ms, "{}", q.name());

    (outcome.query_id, outcome.cost.to_json())
}

/// Run the reference configuration and the sampled one back-to-back,
/// retrying until both query ids render at the same decimal width.
fn comparable_pair(
    q: TpchQuery,
    a: (usize, usize, usize, bool),
    b: (usize, usize, usize, bool),
) -> (String, String) {
    let _guard = SUBMIT_LOCK.lock();
    loop {
        let (ida, fa) = run(q, a.0, a.1, a.2, a.3);
        let (idb, fb) = run(q, b.0, b.1, b.2, b.3);
        if ida.to_string().len() == idb.to_string().len() {
            return (fa, fb);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn cost_records_are_bit_identical_across_executor_knobs(
        qi in 0usize..TpchQuery::ALL.len(),
        rpick in 0usize..2,
        ppick in 0usize..3,
        cpick in 0usize..3,
        parallel in any::<bool>(),
    ) {
        let q = TpchQuery::ALL[qi];
        let reactor_threads = [0usize, 2][rpick];
        let partitions = [1usize, 2, 8][ppick];
        let chunk = [1usize, 4096, 0][cpick];
        // Reference: reactor off, single partition, unbounded edges, the
        // sequential executor — the plainest possible run.
        let (reference, sampled) = comparable_pair(
            q,
            (0, 1, 0, false),
            (reactor_threads, partitions, chunk, parallel),
        );
        prop_assert_eq!(
            reference,
            sampled,
            "{} cost record diverges at reactor={} partitions={} chunk={} parallel={}",
            q.name(),
            reactor_threads,
            partitions,
            chunk,
            parallel
        );
    }
}
