//! Streamed-edge determinism: chunking the inter-engine dataflow into
//! transport morsels is an implementation detail of the wire, so results,
//! ledgers, simulated timings, traces, and the deterministic telemetry
//! snapshot must be bit-identical across chunk sizes (1 row, the default
//! 4096, unbounded) and across the sequential and parallel executors.

use parking_lot::Mutex;
use std::sync::Arc;
use xdb_core::scenario::{self, ScenarioConfig};
use xdb_core::{GlobalCatalog, Xdb, XdbOptions};
use xdb_engine::cluster::Cluster;
use xdb_obs::Telemetry;

/// Query ids come from a process-global counter and their decimal width
/// leaks into control-message byte counts; pairs under comparison are
/// serialized and retried until both ids have the same width (see the
/// telemetry tests for the same pattern).
static SUBMIT_LOCK: Mutex<()> = Mutex::new(());

fn setup() -> (Cluster, GlobalCatalog, Arc<Telemetry>) {
    let (mut cluster, mut catalog) = scenario::build(ScenarioConfig::default()).unwrap();
    let telemetry = Telemetry::new_handle();
    cluster.set_telemetry(Arc::clone(&telemetry));
    catalog.set_telemetry(Arc::clone(&telemetry));
    (cluster, catalog, telemetry)
}

/// Replace every decimal run after `xdb_q` / `"query":` with `N` so two
/// runs with different global query ids compare equal byte-for-byte.
fn normalize_ids(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let bytes = s.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        out.push(bytes[i] as char);
        let here = &s[..=i];
        if here.ends_with("xdb_q") || here.ends_with("\"query\":") {
            let mut j = i + 1;
            while j < bytes.len() && bytes[j].is_ascii_digit() {
                j += 1;
            }
            if j > i + 1 {
                out.push('N');
                i = j;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// One full submission at the given transport chunk size; returns the
/// query id and the complete observable fingerprint of the run.
fn run(chunk: usize, parallel: bool) -> (u64, String) {
    let (cluster, catalog, telemetry) = setup();
    let xdb = Xdb::new(&cluster, &catalog).with_options(XdbOptions {
        parallel_execution: parallel,
        stream_chunk_rows: chunk,
        ..Default::default()
    });
    let outcome = xdb.submit(scenario::EXAMPLE_QUERY).unwrap();
    let mut fp = String::new();
    // Result rows, in order, every value bit-rendered.
    for i in 0..outcome.relation.len() {
        for c in 0..outcome.relation.width() {
            fp.push_str(&format!("{:?}|", outcome.relation.value(i, c)));
        }
        fp.push('\n');
    }
    // Simulated timings.
    fp.push_str(&format!("{:?}\n", outcome.breakdown));
    // Ledger: every transfer, raw and encoded bytes included.
    for t in cluster.ledger.snapshot() {
        fp.push_str(&format!("{t:?}\n"));
    }
    // Trace and deterministic telemetry.
    fp.push_str(&outcome.trace.canonical());
    fp.push_str(&telemetry.metrics.deterministic_snapshot().render());
    (outcome.query_id, normalize_ids(&fp))
}

fn run_comparable_pair(a: (usize, bool), b: (usize, bool)) -> (String, String) {
    let _guard = SUBMIT_LOCK.lock();
    loop {
        let (ida, fa) = run(a.0, a.1);
        let (idb, fb) = run(b.0, b.1);
        if ida.to_string().len() == idb.to_string().len() {
            return (fa, fb);
        }
    }
}

#[test]
fn chunk_size_is_unobservable() {
    // Unbounded (0) is the reference; 1-row morsels and the 4096 default
    // must match it on every observable surface.
    for chunk in [1usize, 4096] {
        for parallel in [false, true] {
            let (reference, chunked) = run_comparable_pair((0, parallel), (chunk, parallel));
            assert_eq!(
                reference, chunked,
                "chunk {chunk} (parallel={parallel}) observable"
            );
        }
    }
}

#[test]
fn streaming_identical_sequential_vs_parallel() {
    for chunk in [1usize, 4096, 0] {
        let (seq, par) = run_comparable_pair((chunk, false), (chunk, true));
        assert_eq!(seq, par, "chunk {chunk} diverges across executors");
    }
}

#[test]
fn encoded_bytes_never_exceed_raw() {
    let _guard = SUBMIT_LOCK.lock();
    let (cluster, catalog, _telemetry) = setup();
    let xdb = Xdb::new(&cluster, &catalog);
    xdb.submit(scenario::EXAMPLE_QUERY).unwrap();
    let transfers = cluster.ledger.snapshot();
    assert!(!transfers.is_empty());
    for t in &transfers {
        assert!(
            t.encoded_bytes <= t.bytes,
            "codec inflated {} -> {} on {:?}",
            t.bytes,
            t.encoded_bytes,
            t.purpose
        );
    }
    assert!(cluster.ledger.total_encoded_bytes() < cluster.ledger.total_bytes());
}
