//! Fleet-telemetry integration tests: deterministic metrics/events across
//! the sequential and partition-parallel executors, delegation-artifact
//! cleanup restoring the live-object gauges, consultation-cache soundness
//! under transient DDL, and the per-run metrics-snapshot delta.

use parking_lot::Mutex;
use std::sync::Arc;
use xdb_core::annotate::AnnotateOptions;
use xdb_core::scenario::{self, ScenarioConfig};
use xdb_core::{GlobalCatalog, Xdb, XdbOptions};
use xdb_engine::cluster::Cluster;
use xdb_net::Movement;
use xdb_obs::{json, Telemetry};

/// Query ids come from a process-global counter and their decimal width
/// leaks into control-message byte counts (the literal `xdb_q<id>_*`
/// names travel in DDL statements). Tests that compare two submissions
/// serialize on this lock so the pair gets adjacent ids.
static SUBMIT_LOCK: Mutex<()> = Mutex::new(());

fn setup() -> (Cluster, GlobalCatalog, Arc<Telemetry>) {
    let (mut cluster, mut catalog) = scenario::build(ScenarioConfig::default()).unwrap();
    let telemetry = Telemetry::new_handle();
    cluster.set_telemetry(Arc::clone(&telemetry));
    catalog.set_telemetry(Arc::clone(&telemetry));
    (cluster, catalog, telemetry)
}

/// Query ids come from a process-global counter, so runs are normalized
/// by rewriting `"query":<digits>` before comparison.
fn normalize_query_ids(jsonl: &str) -> String {
    let mut out = String::new();
    for line in jsonl.lines() {
        let mut l = line.to_string();
        if let Some(i) = l.find("\"query\":") {
            let start = i + "\"query\":".len();
            let end = l[start..]
                .find(|c: char| !c.is_ascii_digit())
                .map(|e| start + e)
                .unwrap_or(l.len());
            if end > start {
                l.replace_range(start..end, "N");
            }
        }
        out.push_str(&l);
        out.push('\n');
    }
    out
}

/// One full submission with an isolated telemetry handle; returns the
/// query id, the deterministic metrics rendering, and the normalized
/// event JSONL.
fn run_workload(parallel: bool, partitions: usize) -> (u64, String, String) {
    let (cluster, catalog, telemetry) = setup();
    cluster.set_exec_partitions(partitions);
    let xdb = Xdb::new(&cluster, &catalog).with_options(XdbOptions {
        parallel_execution: parallel,
        ..Default::default()
    });
    let outcome = xdb.submit(scenario::EXAMPLE_QUERY).unwrap();
    (
        outcome.query_id,
        telemetry.metrics.deterministic_snapshot().render(),
        normalize_query_ids(&telemetry.events.to_jsonl()),
    )
}

/// Run two workloads back to back with same-width query ids (a decimal
/// boundary like 9→10 can split a pair at most once, so one retry
/// suffices) so every byte of telemetry is comparable.
fn run_comparable_pair(a: (bool, usize), b: (bool, usize)) -> ((String, String), (String, String)) {
    let _guard = SUBMIT_LOCK.lock();
    loop {
        let (ida, ma, ea) = run_workload(a.0, a.1);
        let (idb, mb, eb) = run_workload(b.0, b.1);
        if ida.to_string().len() == idb.to_string().len() {
            return ((ma, ea), (mb, eb));
        }
    }
}

#[test]
fn telemetry_identical_sequential_vs_parallel() {
    for partitions in [1usize, 2, 8] {
        let ((seq_metrics, seq_events), (par_metrics, par_events)) =
            run_comparable_pair((false, partitions), (true, partitions));
        assert_eq!(
            seq_metrics, par_metrics,
            "metrics diverge at {partitions} partitions"
        );
        assert_eq!(
            seq_events, par_events,
            "event log diverges at {partitions} partitions"
        );
        assert!(
            seq_metrics.contains("xdb.queries{status=\"ok\"}"),
            "{seq_metrics}"
        );
        assert!(!seq_metrics.contains("sched."), "{seq_metrics}");
    }
}

#[test]
fn quarantine_audit_covers_every_metric_family() {
    // The metric quarantine is the determinism contract's enforcement
    // point: `deterministic_snapshot()` must drop *every* family under the
    // quarantined prefixes (`sched.*`, `net.chunks*`, `net.codec.*`) and
    // nothing else — and everything it keeps must be bit-identical between
    // the sequential and parallel executors.
    use xdb_obs::metrics::{CHUNKS_PREFIX, CODEC_PREFIX, SCHED_PREFIX};
    let _guard = SUBMIT_LOCK.lock();
    let quarantined = |k: &&String| {
        k.starts_with(SCHED_PREFIX) || k.starts_with(CHUNKS_PREFIX) || k.starts_with(CODEC_PREFIX)
    };
    let run = |parallel: bool| {
        let (cluster, catalog, telemetry) = setup();
        let xdb = Xdb::new(&cluster, &catalog).with_options(XdbOptions {
            parallel_execution: parallel,
            ..Default::default()
        });
        let out = xdb.submit(scenario::EXAMPLE_QUERY).unwrap();
        (
            out.query_id,
            telemetry.metrics.snapshot(),
            telemetry.metrics.deterministic_snapshot(),
        )
    };
    loop {
        let (ida, full_seq, det_seq) = run(false);
        let (idb, full_par, det_par) = run(true);
        // Same-width query ids, like run_comparable_pair.
        if ida.to_string().len() != idb.to_string().len() {
            continue;
        }
        // The workload really exercises quarantined families — otherwise
        // this audit would pass vacuously.
        assert!(
            full_par
                .counters
                .keys()
                .any(|k| k.starts_with(SCHED_PREFIX)),
            "workload emitted no sched.* series"
        );
        // No quarantined family leaks into the deterministic snapshot.
        for snap in [&det_seq, &det_par] {
            let leaked: Vec<&String> = snap.counters.keys().filter(quarantined).collect();
            assert!(leaked.is_empty(), "quarantined series leaked: {leaked:?}");
        }
        // The deterministic snapshot is exactly the full snapshot minus
        // the quarantined prefixes — no family is silently dropped.
        for (full, det) in [(&full_seq, &det_seq), (&full_par, &det_par)] {
            let expected: Vec<&String> = full.counters.keys().filter(|k| !quarantined(k)).collect();
            let got: Vec<&String> = det.counters.keys().collect();
            assert_eq!(expected, got);
        }
        // Every deterministic family survives the sequential-vs-parallel
        // diff, value for value.
        assert_eq!(det_seq.counters, det_par.counters);
        break;
    }
}

#[test]
fn telemetry_independent_of_partition_count() {
    // Simulated values must not depend on how many partitions the columnar
    // executor fans out over; only the `exec.partitions` gauge itself (and
    // the quarantined `sched.*` series) may differ.
    let strip_partitions = |metrics: &str| -> String {
        metrics
            .lines()
            .filter(|l| !l.starts_with("exec.partitions"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let ((m1, e1), (m8, e8)) = run_comparable_pair((true, 1), (true, 8));
    assert_eq!(strip_partitions(&m1), strip_partitions(&m8));
    assert_eq!(e1, e8);
}

#[test]
fn events_are_valid_query_correlated_json_lines() {
    let _guard = SUBMIT_LOCK.lock();
    let (cluster, catalog, telemetry) = setup();
    let xdb = Xdb::new(&cluster, &catalog);
    let outcome = xdb.submit(scenario::EXAMPLE_QUERY).unwrap();
    let jsonl = telemetry.events.to_jsonl();
    assert!(!jsonl.is_empty());
    let mut planned = false;
    let mut completed = false;
    for line in jsonl.lines() {
        let v = json::parse(line).expect("event line parses as JSON");
        let msg = v.get("message").and_then(json::Value::as_str).unwrap();
        let query = v.get("query").and_then(json::Value::as_f64);
        if msg == "query planned" || msg == "query completed" {
            assert_eq!(query, Some(outcome.query_id as f64), "{line}");
        }
        planned |= msg == "query planned";
        completed |= msg == "query completed";
    }
    assert!(planned && completed, "{jsonl}");
}

#[test]
fn cleanup_returns_objects_live_gauge_to_baseline() {
    let _guard = SUBMIT_LOCK.lock();
    let (cluster, catalog, telemetry) = setup();
    let nodes = cluster.node_names();
    let baseline: Vec<f64> = nodes
        .iter()
        .map(|n| {
            telemetry
                .metrics
                .value("ddl.objects_live", &[("engine", n)])
        })
        .collect();
    let xdb = Xdb::new(&cluster, &catalog).with_options(XdbOptions {
        keep_objects: true,
        ..Default::default()
    });
    let outcome = xdb.submit(scenario::EXAMPLE_QUERY).unwrap();
    // keep_objects left the delegation chain deployed: some engine holds
    // more live objects than before.
    let live: Vec<f64> = nodes
        .iter()
        .map(|n| {
            telemetry
                .metrics
                .value("ddl.objects_live", &[("engine", n)])
        })
        .collect();
    assert!(
        live.iter().zip(&baseline).any(|(l, b)| l > b),
        "no engine gained live objects: {live:?} vs {baseline:?}"
    );
    let dropped = xdb.cleanup(&outcome);
    assert!(dropped > 0);
    for (i, n) in nodes.iter().enumerate() {
        let after = telemetry
            .metrics
            .value("ddl.objects_live", &[("engine", n)]);
        assert_eq!(after, baseline[i], "{n} still holds delegation artifacts");
        // The high-water mark keeps the peak.
        assert!(
            telemetry
                .metrics
                .high_water("ddl.objects_live", &[("engine", n)])
                >= after
        );
    }
    // Cleanup is idempotent (DROP IF EXISTS) and logged.
    assert_eq!(xdb.cleanup(&outcome), dropped);
    assert!(telemetry
        .events
        .snapshot()
        .iter()
        .any(|e| e.message.contains("cleanup dropped")));
}

#[test]
fn transient_ddl_keeps_consultation_cache_valid() {
    let _guard = SUBMIT_LOCK.lock();
    let (cluster, catalog, _telemetry) = setup();
    for t in catalog.table_names() {
        catalog.consult(&cluster, &t).unwrap();
    }
    // Warm: every probe now hits.
    for t in catalog.table_names() {
        assert!(catalog.consult(&cluster, &t).unwrap(), "{t} not cached");
    }
    let fetches = catalog.metadata_fetches();
    // A full query with forced explicit movements deploys views, foreign
    // tables, AND materialized temp copies on the engines — all transient
    // (`xdb_q*`), so no base-table probe may be invalidated.
    let xdb = Xdb::new(&cluster, &catalog).with_options(XdbOptions {
        annotate: AnnotateOptions {
            force_movement: Some(Movement::Explicit),
            ..Default::default()
        },
        ..Default::default()
    });
    let outcome = xdb.submit(scenario::EXAMPLE_QUERY).unwrap();
    assert!(outcome.ddl_count > 0);
    for t in catalog.table_names() {
        assert!(
            catalog.consult(&cluster, &t).unwrap(),
            "transient DDL spuriously invalidated the probe for {t}"
        );
    }
    assert_eq!(catalog.metadata_fetches(), fetches);
    // Real DDL still invalidates: create a user table on some node and its
    // tables re-fetch.
    let node = catalog.location("citizen").unwrap().as_str().to_string();
    cluster
        .execute(&node, "CREATE TABLE perm_marker (x BIGINT)")
        .unwrap();
    assert!(!catalog.consult(&cluster, "citizen").unwrap());
}

#[test]
fn metrics_snapshot_diff_isolates_one_run() {
    let _guard = SUBMIT_LOCK.lock();
    let (cluster, catalog, _telemetry) = setup();
    // First run pays the consultation misses.
    let xdb = Xdb::new(&cluster, &catalog);
    xdb.submit(scenario::EXAMPLE_QUERY).unwrap();
    // Bracket the second run: everything it consults is cached, and the
    // delta sees only this run's probes.
    let before = catalog.metrics_snapshot();
    xdb.submit(scenario::EXAMPLE_QUERY).unwrap();
    let delta = catalog.metrics_snapshot().diff(&before);
    assert!(delta.get("consult.cache_hits") > 0.0, "{}", delta.render());
    assert_eq!(delta.get("consult.cache_misses"), 0.0, "{}", delta.render());
    assert_eq!(delta.get("catalog.metadata_fetches"), 0.0);
    assert_eq!(delta.get("catalog.tables"), 0.0);
}
