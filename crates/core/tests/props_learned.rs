//! Learned-cost determinism property: with a FIXED profile store, the
//! learned pricing path must be exactly as deterministic as the static
//! one — for any TD1 query, turning the edge reactor on or off, changing
//! the executor partition count, or changing the transport morsel size
//! must leave every deterministic observable bit-identical (result rows,
//! simulated breakdown, transfer ledger, canonical trace, deterministic
//! telemetry snapshot). Learned pricing may *flip plans* relative to
//! static pricing, but never relative to itself.

use proptest::prelude::*;
use std::sync::Arc;
use xdb_core::{CostProfiles, GlobalCatalog, Xdb, XdbOptions};
use xdb_engine::profile::EngineProfile;
use xdb_net::{Movement, NodeId, Scenario};
use xdb_obs::Telemetry;
use xdb_tpch::{build_cluster, ProfileAssignment, TableDist, TpchQuery};

/// Name of the managed-cloud client node (mirrors the bench harness).
const CLOUD: &str = "cloud";

/// Serialize submissions so the process-global query-id width matches
/// within each compared pair (same pattern as the reactor tests).
static SUBMIT_LOCK: parking_lot::Mutex<()> = parking_lot::Mutex::new(());

/// A fixed, hand-built profile store with strong per-direction asymmetry
/// so the learned path actually reprices movement (and flips plans for
/// some queries — the point is that the flip itself is deterministic).
fn fixed_profiles() -> CostProfiles {
    let mut p = CostProfiles::default();
    for _ in 0..8 {
        for m in [Movement::Implicit, Movement::Explicit] {
            p.observe_wire("db1", "db2", m, 0.12);
            p.observe_wire("db2", "db1", m, 1.6);
            p.observe_wire("db2", "db3", m, 0.3);
            p.observe_wire("db3", "db2", m, 0.9);
        }
        p.observe_compute("db1", 1.4);
        p.observe_compute("db2", 0.7);
    }
    p
}

/// Replace every decimal run after `xdb_q` / `"query":` with `N` so two
/// runs with different global query ids compare equal byte-for-byte.
fn normalize_ids(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let bytes = s.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        out.push(bytes[i] as char);
        let here = &s[..=i];
        if here.ends_with("xdb_q") || here.ends_with("\"query\":") {
            let mut j = i + 1;
            while j < bytes.len() && bytes[j].is_ascii_digit() {
                j += 1;
            }
            if j > i + 1 {
                out.push('N');
                i = j;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// One full TD1 submission priced through the fixed profile store under
/// the given executor knobs; returns the query id and the complete
/// observable fingerprint of the run.
fn run(
    q: TpchQuery,
    reactor_threads: usize,
    partitions: usize,
    chunk: usize,
    parallel: bool,
) -> (u64, String) {
    let mut cluster = build_cluster(
        TableDist::Td1,
        0.002,
        Scenario::OnPremise,
        &ProfileAssignment::uniform(EngineProfile::postgres()),
    )
    .unwrap();
    cluster.topology.add_cloud_node(NodeId::new(CLOUD));
    let telemetry = Telemetry::new_handle();
    cluster.set_telemetry(Arc::clone(&telemetry));
    cluster.set_exec_partitions(partitions);
    let mut catalog = GlobalCatalog::discover(&cluster).unwrap();
    catalog.set_telemetry(Arc::clone(&telemetry));
    catalog.set_profiles(fixed_profiles());
    let xdb = Xdb::new(&cluster, &catalog)
        .with_client_node(CLOUD)
        .with_options(XdbOptions {
            parallel_execution: parallel,
            stream_chunk_rows: chunk,
            reactor_threads,
            learned_costs: true,
            // Frozen: the store is the fixed input under test, not a
            // moving target.
            freeze_profiles: true,
            ..Default::default()
        });
    let outcome = xdb.submit(q.sql()).unwrap();
    let mut fp = String::new();
    for i in 0..outcome.relation.len() {
        for c in 0..outcome.relation.width() {
            fp.push_str(&format!("{:?}|", outcome.relation.value(i, c)));
        }
        fp.push('\n');
    }
    fp.push_str(&format!("{:?}\n", outcome.breakdown));
    for t in cluster.ledger.snapshot() {
        fp.push_str(&format!("{t:?}\n"));
    }
    fp.push_str(&outcome.trace.canonical());
    for line in telemetry.metrics.deterministic_snapshot().render().lines() {
        if !line.starts_with("exec.partitions") {
            fp.push_str(line);
            fp.push('\n');
        }
    }
    (outcome.query_id, normalize_ids(&fp))
}

/// Run the reference configuration and the sampled one back-to-back,
/// retrying until both query ids render at the same decimal width.
fn comparable_pair(
    q: TpchQuery,
    a: (usize, usize, usize, bool),
    b: (usize, usize, usize, bool),
) -> (String, String) {
    let _guard = SUBMIT_LOCK.lock();
    loop {
        let (ida, fa) = run(q, a.0, a.1, a.2, a.3);
        let (idb, fb) = run(q, b.0, b.1, b.2, b.3);
        if ida.to_string().len() == idb.to_string().len() {
            return (fa, fb);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn learned_pricing_is_unobservable_to_executor_knobs(
        qi in 0usize..TpchQuery::ALL.len(),
        rpick in 0usize..2,
        ppick in 0usize..3,
        cpick in 0usize..3,
        parallel in any::<bool>(),
    ) {
        let q = TpchQuery::ALL[qi];
        let reactor_threads = [0usize, 2][rpick];
        let partitions = [1usize, 2, 8][ppick];
        let chunk = [1usize, 4096, 0][cpick];
        let (reference, sampled) = comparable_pair(
            q,
            (0, 1, 0, false),
            (reactor_threads, partitions, chunk, parallel),
        );
        prop_assert_eq!(
            reference,
            sampled,
            "{} (learned costs) diverges at reactor={} partitions={} chunk={} parallel={}",
            q.name(),
            reactor_threads,
            partitions,
            chunk,
            parallel
        );
    }
}
