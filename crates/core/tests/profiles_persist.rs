//! Learned-cost-profile persistence: the on-disk schema contract.
//!
//! The profile store follows the same forward-compat discipline as the
//! query-history store: v1 files written by earlier builds must load in
//! this build, corrupt files must be a loud error naming the file (never
//! a silently-empty store), and merging history shards must be
//! order-independent so fleet-wide aggregation can proceed in any order.

use xdb_core::CostProfiles;
use xdb_net::Movement;
use xdb_obs::costmodel::{CandidateObs, CostObservation, DecisionObs, EdgeJoin};
use xdb_obs::history::HistoryRecord;

/// A scratch directory unique to this test, cleaned up on drop.
struct Scratch(std::path::PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("xdb_profiles_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    fn path(&self, name: &str) -> std::path::PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A store with every factor table populated.
fn sample_store() -> CostProfiles {
    let mut p = CostProfiles::default();
    p.observe_wire("db1", "db2", Movement::Implicit, 0.25);
    p.observe_wire("db1", "db2", Movement::Explicit, 0.5);
    p.observe_wire("db2", "db1", Movement::Implicit, 1.25);
    p.observe_compute("db1", 1.5);
    p.observe_compute("db2", 0.75);
    p
}

#[test]
fn saved_store_roundtrips_through_disk() {
    let scratch = Scratch::new("roundtrip");
    let path = scratch.path(xdb_core::profiles::PROFILES_FILE);
    let store = sample_store();
    store.save(&path).unwrap();
    let back = CostProfiles::load(&path).unwrap();
    assert_eq!(store.to_json(), back.to_json());
    assert_eq!(
        store.wire_ratio("db1", "db2", Movement::Implicit),
        back.wire_ratio("db1", "db2", Movement::Implicit)
    );
    assert_eq!(store.compute_factor("db1"), back.compute_factor("db1"));
}

#[test]
fn v1_file_on_disk_is_read_by_v2_code() {
    let scratch = Scratch::new("v1");
    let path = scratch.path("profiles.json");
    // A v1 file has only the per-shape wire table and the per-engine
    // compute table — no consult factor, no coarser fallback tables.
    std::fs::write(
        &path,
        "{\"schema_version\":1,\
          \"wire_shape\":{\"db1->db2/implicit\":[0.25,0.5]},\
          \"compute_engine\":{\"db1\":[1.5]}}\n",
    )
    .unwrap();
    let p = CostProfiles::load(&path).unwrap();
    // (0.25 + 0.5 + prior 2.0) / (2 + 2.0)
    assert_eq!(p.wire_ratio("db1", "db2", Movement::Implicit), Some(0.6875));
    assert_eq!(p.compute_factor("db1"), Some(3.5 / 3.0));
    // v1 has no coarser tables: an unseen edge has nothing to fall
    // back to.
    assert_eq!(p.wire_ratio("db9", "db8", Movement::Explicit), None);
    assert_eq!(p.consult_factor(), None);
    // Re-saving upgrades the file to the current schema.
    p.save(&path).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.contains(&format!(
        "\"schema_version\":{}",
        xdb_core::profiles::PROFILES_SCHEMA_VERSION
    )));
}

#[test]
fn corrupt_files_are_rejected_with_the_path() {
    let scratch = Scratch::new("corrupt");
    for (name, text) in [
        ("garbage.json", "not json at all"),
        ("truncated.json", "{\"schema_version\":2,\"wire_shape\":{"),
        (
            "noversion.json",
            "{\"wire_shape\":{},\"compute_engine\":{}}",
        ),
        (
            "future.json",
            "{\"schema_version\":99,\"wire_shape\":{},\"compute_engine\":{}}",
        ),
        (
            "badsample.json",
            "{\"schema_version\":2,\"wire_shape\":{\"a->b/implicit\":[\"x\"]},\
              \"compute_engine\":{}}",
        ),
    ] {
        let path = scratch.path(name);
        std::fs::write(&path, text).unwrap();
        let err = CostProfiles::load(&path).expect_err(name);
        assert!(
            err.contains(name),
            "error for {name} should name the file: {err}"
        );
    }
    // A missing file is equally loud.
    let err = CostProfiles::load(scratch.path("absent.json")).unwrap_err();
    assert!(err.contains("absent.json"), "{err}");
}

/// One history record carrying a single matched edge and one engine's
/// statement work, enough for `absorb` to learn from.
fn record(from: &str, to: &str, pred_bytes: u64, obs_encoded: u64, obs_ms: f64) -> HistoryRecord {
    HistoryRecord {
        schema_version: 3,
        label: "Qx".into(),
        deployment: "xdb".into(),
        sql_fnv: format!("{pred_bytes:x}"),
        fingerprint: "f".into(),
        statements: vec![(to.to_string(), obs_ms)],
        cost: CostObservation {
            decisions: vec![DecisionObs {
                dbms: to.to_string(),
                consult_ms: 1.0,
                candidates: vec![CandidateObs {
                    dbms: to.to_string(),
                    exec_ms: 2.0,
                    startup_ms: 1.0,
                    chosen: true,
                    ..Default::default()
                }],
                edges: vec![EdgeJoin {
                    from: from.to_string(),
                    to: to.to_string(),
                    movement: "implicit".into(),
                    pred_bytes,
                    obs_encoded_bytes: obs_encoded,
                    matched: true,
                    ..Default::default()
                }],
                ..Default::default()
            }],
            consult_ms: 1.0,
            ..Default::default()
        },
        learned_costs: false,
        ..Default::default()
    }
}

#[test]
fn history_shards_merge_order_independently() {
    // Two shards with overlapping edge shapes, loaded in both orders.
    let shard_a = [
        record("db1", "db2", 1000, 250, 3.0),
        record("db2", "db1", 2000, 1000, 4.5),
    ];
    let shard_b = [
        record("db1", "db2", 4000, 3000, 2.4),
        record("db3", "db2", 500, 400, 6.0),
    ];
    let write = |scratch: &Scratch, order: &[&[HistoryRecord]]| {
        let mut text = String::new();
        for shard in order {
            for r in *shard {
                text.push_str(&r.to_json());
                text.push('\n');
            }
        }
        std::fs::write(scratch.path("history.jsonl"), text).unwrap();
    };

    let ab = Scratch::new("order_ab");
    write(&ab, &[&shard_a, &shard_b]);
    let ba = Scratch::new("order_ba");
    write(&ba, &[&shard_b, &shard_a]);

    let p_ab = CostProfiles::from_history_dir(&ab.0).unwrap();
    let p_ba = CostProfiles::from_history_dir(&ba.0).unwrap();
    assert!(!p_ab.is_empty());
    // Bit-identical factors AND bit-identical serialized form, whichever
    // order the shards arrived in.
    assert_eq!(p_ab.to_json(), p_ba.to_json());
    assert_eq!(
        p_ab.wire_ratio("db1", "db2", Movement::Implicit),
        p_ba.wire_ratio("db1", "db2", Movement::Implicit)
    );

    // And explicit merge of separately-built stores agrees with the
    // concatenated load.
    let a = CostProfiles::from_history(&shard_a);
    let b = CostProfiles::from_history(&shard_b);
    let mut merged = a.clone();
    merged.merge(&b);
    let mut merged_rev = b;
    merged_rev.merge(&a);
    assert_eq!(merged.to_json(), p_ab.to_json());
    assert_eq!(merged_rev.to_json(), p_ab.to_json());
}
