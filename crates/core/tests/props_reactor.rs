//! Morsel-reactor determinism properties: for any TD1 query, turning the
//! edge reactor on or off, changing the executor partition count, or
//! changing the transport morsel size must leave every deterministic
//! observable bit-identical — result rows, simulated breakdown, transfer
//! ledger (raw and encoded bytes), canonical trace, and the deterministic
//! telemetry snapshot. Only the wall clock and the quarantined
//! `net.chunks` / `sched.reactor_*` series may move.
//!
//! Plus the crash property the bounded channels must uphold: a panicking
//! worker poisons its edge window cleanly, waking both sides, instead of
//! deadlocking waiters.

use proptest::prelude::*;
use std::sync::Arc;
use xdb_core::{GlobalCatalog, Xdb, XdbOptions};
use xdb_engine::profile::EngineProfile;
use xdb_net::reactor::{EdgeChannel, PoisonGuard, Poisoned};
use xdb_net::{reactor, NodeId, Scenario};
use xdb_obs::Telemetry;
use xdb_tpch::{build_cluster, ProfileAssignment, TableDist, TpchQuery};

/// Name of the managed-cloud client node (mirrors the bench harness).
const CLOUD: &str = "cloud";

/// Query ids come from a process-global counter and their decimal width
/// leaks into control-message byte counts; pairs under comparison are
/// serialized and retried until both ids have the same width (same
/// pattern as the streaming and telemetry tests).
static SUBMIT_LOCK: parking_lot::Mutex<()> = parking_lot::Mutex::new(());

/// Replace every decimal run after `xdb_q` / `"query":` with `N` so two
/// runs with different global query ids compare equal byte-for-byte.
fn normalize_ids(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let bytes = s.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        out.push(bytes[i] as char);
        let here = &s[..=i];
        if here.ends_with("xdb_q") || here.ends_with("\"query\":") {
            let mut j = i + 1;
            while j < bytes.len() && bytes[j].is_ascii_digit() {
                j += 1;
            }
            if j > i + 1 {
                out.push('N');
                i = j;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// One full TD1 submission under the given executor knobs; returns the
/// query id and the complete observable fingerprint of the run.
fn run(
    q: TpchQuery,
    reactor_threads: usize,
    partitions: usize,
    chunk: usize,
    parallel: bool,
) -> (u64, String) {
    let mut cluster = build_cluster(
        TableDist::Td1,
        0.002,
        Scenario::OnPremise,
        &ProfileAssignment::uniform(EngineProfile::postgres()),
    )
    .unwrap();
    cluster.topology.add_cloud_node(NodeId::new(CLOUD));
    let telemetry = Telemetry::new_handle();
    cluster.set_telemetry(Arc::clone(&telemetry));
    cluster.set_exec_partitions(partitions);
    let mut catalog = GlobalCatalog::discover(&cluster).unwrap();
    catalog.set_telemetry(Arc::clone(&telemetry));
    let xdb = Xdb::new(&cluster, &catalog)
        .with_client_node(CLOUD)
        .with_options(XdbOptions {
            parallel_execution: parallel,
            stream_chunk_rows: chunk,
            reactor_threads,
            ..Default::default()
        });
    let outcome = xdb.submit(q.sql()).unwrap();
    let mut fp = String::new();
    // Result rows, in order, every value bit-rendered.
    for i in 0..outcome.relation.len() {
        for c in 0..outcome.relation.width() {
            fp.push_str(&format!("{:?}|", outcome.relation.value(i, c)));
        }
        fp.push('\n');
    }
    // Simulated timings.
    fp.push_str(&format!("{:?}\n", outcome.breakdown));
    // Ledger: every transfer, raw and encoded bytes included.
    for t in cluster.ledger.snapshot() {
        fp.push_str(&format!("{t:?}\n"));
    }
    // Trace and deterministic telemetry. The `exec.partitions` gauge is
    // the config knob echoed back, so it is the one series allowed to
    // differ across partition counts (same carve-out as the telemetry
    // integration tests).
    fp.push_str(&outcome.trace.canonical());
    for line in telemetry.metrics.deterministic_snapshot().render().lines() {
        if !line.starts_with("exec.partitions") {
            fp.push_str(line);
            fp.push('\n');
        }
    }
    (outcome.query_id, normalize_ids(&fp))
}

/// Run the reference configuration and the sampled one back-to-back,
/// retrying until both query ids render at the same decimal width.
fn comparable_pair(
    q: TpchQuery,
    a: (usize, usize, usize, bool),
    b: (usize, usize, usize, bool),
) -> (String, String) {
    let _guard = SUBMIT_LOCK.lock();
    loop {
        let (ida, fa) = run(q, a.0, a.1, a.2, a.3);
        let (idb, fb) = run(q, b.0, b.1, b.2, b.3);
        if ida.to_string().len() == idb.to_string().len() {
            return (fa, fb);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn reactor_partitions_and_chunking_are_unobservable(
        qi in 0usize..TpchQuery::ALL.len(),
        rpick in 0usize..2,
        ppick in 0usize..3,
        cpick in 0usize..3,
        parallel in any::<bool>(),
    ) {
        let q = TpchQuery::ALL[qi];
        let reactor_threads = [0usize, 2][rpick];
        let partitions = [1usize, 2, 8][ppick];
        let chunk = [1usize, 4096, 0][cpick];
        // Reference: reactor off, single partition, unbounded edges, the
        // sequential executor — the plainest possible run.
        let (reference, sampled) = comparable_pair(
            q,
            (0, 1, 0, false),
            (reactor_threads, partitions, chunk, parallel),
        );
        prop_assert_eq!(
            reference,
            sampled,
            "{} diverges at reactor={} partitions={} chunk={} parallel={}",
            q.name(),
            reactor_threads,
            partitions,
            chunk,
            parallel
        );
    }
}

/// A worker that panics mid-edge must poison the window: the consumer
/// blocked on the bounded channel wakes up with [`Poisoned`] instead of
/// waiting forever for a close that will never come, and the pool thread
/// survives to run later jobs.
#[test]
fn panicking_worker_poisons_window_cleanly() {
    let chan = Arc::new(EdgeChannel::<u32>::new(2));
    let prod = Arc::clone(&chan);
    reactor::spawn(2, move || {
        let _guard = PoisonGuard::new(Arc::clone(&prod));
        prod.send(1).unwrap();
        panic!("injected worker crash");
        // guard dropped while armed -> poisons the edge
    });
    // Drain until the crash surfaces. Poisoning discards queued morsels
    // by design (the edge is dead either way), so the consumer may see
    // the first morsel or only the poison — but never a clean close and
    // never a deadlock.
    let mut drained = 0usize;
    let outcome = loop {
        match chan.recv() {
            Ok(Some(_)) => drained += 1,
            other => break other,
        }
    };
    assert_eq!(outcome, Err(Poisoned), "drained {drained} morsels");
    assert!(chan.is_poisoned());

    // The pool thread survived the panic: a follow-up job still runs.
    let after = Arc::new(EdgeChannel::<u32>::new(1));
    let prod = Arc::clone(&after);
    reactor::spawn(2, move || {
        let guard = PoisonGuard::new(Arc::clone(&prod));
        prod.send(7).unwrap();
        prod.close();
        guard.defuse();
    });
    assert_eq!(after.recv(), Ok(Some(7)));
    assert_eq!(after.recv(), Ok(None));
}

/// The other side of the crash contract: a producer blocked on a full
/// bounded channel is woken by poison instead of deadlocking against a
/// consumer that died.
#[test]
fn poison_wakes_blocked_sender() {
    let chan = Arc::new(EdgeChannel::<u32>::new(1));
    chan.send(0).unwrap(); // ring is now full
    let sender = {
        let chan = Arc::clone(&chan);
        std::thread::spawn(move || chan.send(1))
    };
    // Give the sender time to block on the full ring, then crash the
    // consumer side the way a panicking drain loop would.
    std::thread::sleep(std::time::Duration::from_millis(50));
    PoisonGuard::new(Arc::clone(&chan)); // dropped armed immediately
    assert_eq!(sender.join().unwrap(), Err(Poisoned));
}
