//! Query-history and critical-path determinism: the history records a
//! submission appends and the critical path computed over its trace are
//! simulated-clock state, so both must be bit-identical between the
//! sequential and parallel executors, across executor kernel partition
//! counts (1/2/8), and across transport chunk sizes (1/4096/unbounded).
//! The process-global query id is the one field comparisons normalize,
//! exactly as the trace/telemetry tests do.

use parking_lot::Mutex;
use std::sync::Arc;
use xdb_core::scenario::{self, ScenarioConfig};
use xdb_core::{GlobalCatalog, Xdb, XdbOptions};
use xdb_engine::cluster::Cluster;
use xdb_obs::{critical_path, Telemetry};

/// Query-id decimal width leaks into control-message byte counts; pairs
/// under comparison are serialized and retried until both ids have the
/// same width (see the streaming/telemetry tests for the same pattern).
static SUBMIT_LOCK: Mutex<()> = Mutex::new(());

fn setup() -> (Cluster, GlobalCatalog, Arc<Telemetry>) {
    let (mut cluster, mut catalog) = scenario::build(ScenarioConfig::default()).unwrap();
    let telemetry = Telemetry::new_handle();
    cluster.set_telemetry(Arc::clone(&telemetry));
    catalog.set_telemetry(Arc::clone(&telemetry));
    (cluster, catalog, telemetry)
}

/// Replace every decimal run after `xdb_q` / `"query":` / `"query_id":`
/// with `N` so runs with different global query ids compare equal.
fn normalize_ids(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let bytes = s.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        out.push(bytes[i] as char);
        let here = &s[..=i];
        if here.ends_with("xdb_q")
            || here.ends_with("\"query\":")
            || here.ends_with("\"query_id\":")
        {
            let mut j = i + 1;
            while j < bytes.len() && bytes[j].is_ascii_digit() {
                j += 1;
            }
            if j > i + 1 {
                out.push('N');
                i = j;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// One submission with the history sink on; returns the query id plus
/// the full observable fingerprint: history records (JSON lines), the
/// critical path (steps + rendered attribution), and the deterministic
/// telemetry snapshot.
fn run(chunk: usize, parallel: bool, partitions: usize) -> (u64, String) {
    let (cluster, catalog, telemetry) = setup();
    cluster.set_exec_partitions(partitions);
    telemetry.history.enable_memory();
    let xdb = Xdb::new(&cluster, &catalog).with_options(XdbOptions {
        parallel_execution: parallel,
        stream_chunk_rows: chunk,
        ..Default::default()
    });
    let outcome = xdb.submit(scenario::EXAMPLE_QUERY).unwrap();
    let crit = critical_path(&outcome.trace).expect("critical path");
    // The attribution tiles the end-to-end window exactly (integer-ns
    // telescoping), at every setting.
    assert_eq!(crit.attributed_ns(), crit.total_ns);
    let mut fp = telemetry.history.to_jsonl();
    for step in &crit.steps {
        fp.push_str(&format!("{step:?}\n"));
    }
    fp.push_str(&crit.render());
    fp.push_str(&telemetry.metrics.deterministic_snapshot().render());
    (outcome.query_id, normalize_ids(&fp))
}

fn run_comparable_pair(a: (usize, bool, usize), b: (usize, bool, usize)) -> (String, String) {
    let _guard = SUBMIT_LOCK.lock();
    loop {
        let (ida, fa) = run(a.0, a.1, a.2);
        let (idb, fb) = run(b.0, b.1, b.2);
        if ida.to_string().len() == idb.to_string().len() {
            return (fa, fb);
        }
    }
}

#[test]
fn history_identical_sequential_vs_parallel() {
    for chunk in [1usize, 4096, 0] {
        let (seq, par) = run_comparable_pair((chunk, false, 1), (chunk, true, 1));
        assert_eq!(seq, par, "chunk {chunk} diverges across executors");
    }
}

#[test]
fn history_identical_across_partitions_and_chunks() {
    // The `exec.partitions` gauge reports the *configured* partition
    // count, so it legitimately differs across settings — everything
    // else (history records, critical path, deterministic metrics) must
    // not.
    let strip_config = |s: &str| {
        s.lines()
            .filter(|l| !l.starts_with("exec.partitions"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let (reference, other) = run_comparable_pair((0, true, 1), (1, true, 2));
    assert_eq!(strip_config(&reference), strip_config(&other));
    let (reference, other) = run_comparable_pair((4096, true, 1), (4096, true, 8));
    assert_eq!(strip_config(&reference), strip_config(&other));
}

#[test]
fn history_record_carries_fingerprint_and_edges() {
    let _guard = SUBMIT_LOCK.lock();
    let (cluster, catalog, telemetry) = setup();
    telemetry.history.enable_memory();
    telemetry.history.set_label("example");
    let xdb = Xdb::new(&cluster, &catalog);
    let outcome = xdb.submit(scenario::EXAMPLE_QUERY).unwrap();
    let records = telemetry.history.records();
    assert_eq!(records.len(), 1);
    let r = &records[0];
    assert_eq!(r.schema_version, xdb_obs::HISTORY_SCHEMA_VERSION);
    assert_eq!(r.label, "example");
    assert_eq!(r.query_id, outcome.query_id);
    assert_eq!(r.fingerprint.len(), 16);
    assert_eq!(r.sql_fnv.len(), 16);
    assert!((r.total_ms - outcome.breakdown.total_ms()).abs() < 1e-9);
    assert_eq!(r.phases.len(), 4);
    assert!(r.crit_spans >= 2);
    assert!(!r.critical.is_empty());
    // Wire observations cover the run's ledger records, including the
    // per-codec split on encoded edges.
    assert!(!r.edges.is_empty());
    assert!(r.edges.iter().any(|e| !e.codecs.is_empty()));
    assert!(r.edges.iter().all(|e| e.encoded_bytes <= e.bytes));
    // Per-engine statement work was projected out of the trace counters.
    assert!(!r.statements.is_empty());
    assert!(r.statements.iter().all(|(_, ms)| *ms >= 0.0));
    // Resubmitting the same SQL yields the same fingerprint (stable plan).
    telemetry.history.set_label("");
    xdb.submit(scenario::EXAMPLE_QUERY).unwrap();
    let records = telemetry.history.records();
    assert_eq!(records.len(), 2);
    assert_eq!(records[1].fingerprint, r.fingerprint);
    assert_eq!(records[1].sql_fnv, r.sql_fnv);
    assert_eq!(records[1].label, "");
}

#[test]
fn report_appends_critical_path() {
    let _guard = SUBMIT_LOCK.lock();
    let (cluster, catalog, _telemetry) = setup();
    let xdb = Xdb::new(&cluster, &catalog);
    let outcome = xdb.submit(scenario::EXAMPLE_QUERY).unwrap();
    let report = outcome.report();
    assert!(report.contains("critical path:"), "{report}");
    assert!(report.contains("% "), "{report}");
}

#[test]
fn slow_query_log_carries_attribution() {
    let _guard = SUBMIT_LOCK.lock();
    let (cluster, catalog, telemetry) = setup();
    // Threshold 0: everything is slow.
    let xdb = Xdb::new(&cluster, &catalog).with_options(XdbOptions {
        slow_query_ms: Some(0.0),
        ..Default::default()
    });
    xdb.submit(scenario::EXAMPLE_QUERY).unwrap();
    let events = telemetry.events.snapshot();
    let slow = events
        .iter()
        .find(|e| e.message == "slow query")
        .expect("slow-query event");
    assert_eq!(slow.level, xdb_obs::Level::Warn);
    assert!(slow.fields.iter().any(|(k, _)| k == "crit_spans"));
    let dominant = slow
        .fields
        .iter()
        .find(|(k, _)| k == "dominant")
        .expect("dominant attribution");
    assert!(dominant.1.contains('%'), "{dominant:?}");
    // Above-threshold queries stay quiet.
    let (cluster, catalog, telemetry) = setup();
    let xdb = Xdb::new(&cluster, &catalog).with_options(XdbOptions {
        slow_query_ms: Some(1e12),
        ..Default::default()
    });
    xdb.submit(scenario::EXAMPLE_QUERY).unwrap();
    assert!(telemetry
        .events
        .snapshot()
        .iter()
        .all(|e| e.message != "slow query"));
}

#[test]
fn log_level_filter_does_not_perturb_deterministic_snapshot() {
    let _guard = SUBMIT_LOCK.lock();
    loop {
        let run_at = |level: xdb_obs::Level| {
            let (cluster, catalog, telemetry) = setup();
            telemetry.events.set_min_level(level);
            let xdb = Xdb::new(&cluster, &catalog);
            let outcome = xdb.submit(scenario::EXAMPLE_QUERY).unwrap();
            (
                outcome.query_id,
                normalize_ids(&telemetry.metrics.deterministic_snapshot().render()),
                telemetry.events.len(),
            )
        };
        let (id_info, snap_info, events_info) = run_at(xdb_obs::Level::Info);
        let (id_err, snap_err, events_err) = run_at(xdb_obs::Level::Error);
        if id_info.to_string().len() != id_err.to_string().len() {
            continue;
        }
        // Filtering drops events at record time…
        assert!(events_info > 0);
        assert_eq!(events_err, 0);
        // …without moving any deterministic metric.
        assert_eq!(snap_info, snap_err);
        break;
    }
}
