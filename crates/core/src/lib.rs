//! # xdb-core
//!
//! The paper's primary contribution: **XDB**, a middleware for *in-situ
//! cross-database query processing* over existing DBMSes (ICDE 2023).
//!
//! Unlike mediator-wrapper systems, XDB has no execution engine of its
//! own. [`client::Xdb::submit`] turns a declarative cross-database query
//! into a [`plan::DelegationPlan`] — tasks (algebraic expressions assigned
//! to DBMSes) connected by implicit/explicit dataflow edges — through a
//! three-phase optimizer:
//!
//! 1. logical optimization (shared with the engines, `xdb_sql::optimize`);
//! 2. [`annotate`]: operator placement + movement choice (Rules 1–4,
//!    Equation 1, with consulting via EXPLAIN probes and [`calibration`]);
//! 3. finalization into maximal same-DBMS tasks.
//!
//! [`delegation`] then rewrites the plan into `CREATE VIEW` / `CREATE
//! FOREIGN TABLE` / `CREATE TABLE AS` DDL chains (Algorithm 1) and a
//! single *XDB query* whose evaluation trickles down across all DBMSes in
//! a fully decentralized pipeline.

pub mod annotate;
pub mod calibration;
pub mod characteristics;
pub mod client;
pub mod consult_cache;
pub mod cost;
pub mod delegation;
pub mod global;
pub mod observatory;
pub mod plan;
pub mod profiles;
pub mod scenario;
pub mod session;

pub use annotate::{AnnotateOptions, Annotation, Annotator};
pub use client::{PhaseBreakdown, QueryOutcome, Xdb, XdbOptions};
pub use consult_cache::{ConsultCache, ConsultReply};
pub use delegation::{
    build_script, run_cleanup, run_script, run_script_parallel, DelegationScript,
};
pub use global::GlobalCatalog;
pub use plan::{DelegationPlan, Edge, Task};
pub use profiles::{set_seed_profiles, CostProfiles};
pub use session::{QueryServer, SessionOptions, SessionReport, Submission, TenantOutcome};
