//! Plan annotation and finalization (Sections IV-B2 and IV-B3), fused into
//! one bottom-up pass.
//!
//! Rules 1–3 are structural: leaves carry the annotation of the DBMS their
//! table lives on, unary operators inherit their input's annotation, and
//! binary operators with same-annotated inputs stay put — successive
//! operators with the same annotation therefore *fuse into one task*
//! (exactly the finalization grouping of Section IV-B3). Rule 4 fires at a
//! cross-database join: Equation 1 picks the operator's annotation and the
//! movement type per moved input, and each moved input is *cut* into its
//! own task, leaving a `?` placeholder (dummy operator) behind.

use crate::consult_cache::ConsultReply;
use crate::cost::{decide_placement_with_profiles, CandidateCost, InputSide, Placement};
use crate::global::GlobalCatalog;
use crate::plan::{placeholder_alias, placeholder_name, DelegationPlan, Edge, Task};
use std::collections::HashMap;
use std::fmt::Write as _;
use xdb_engine::cluster::Cluster;
use xdb_engine::error::{EngineError, Result};
use xdb_net::{Movement, NodeId};
use xdb_sql::algebra::{plan_to_select, LogicalPlan, PlanSchema};
use xdb_sql::ast::Expr;
use xdb_sql::display::render_select_string;
use xdb_sql::stats::Estimator;
use xdb_sql::value::DataType;
use xdb_sql::Dialect;

/// Where cross-database operators are placed.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum PlacementPolicy {
    /// XDB's Rule 4 / Equation 1 (cost-based).
    #[default]
    CostBased,
    /// Always the left input's DBMS — the ScleraDB-style heuristic the
    /// paper contrasts against ("employs heuristics to define the join
    /// operator placement").
    LeftInput,
    /// Always a fixed node that hosts no base data — the mediator of MW
    /// systems. Used by the baselines to *decompose* a query into local
    /// sub-queries plus a global (mediator) fragment.
    Mediator(NodeId),
}

/// Knobs for the annotator (flipped by ablation benches and reused by the
/// mediator baselines).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AnnotateOptions {
    /// Disable the paper's candidate pruning: consider *every* DBMS as a
    /// placement candidate for every cross-database operation.
    pub no_pruning: bool,
    /// Force every inter-task movement to the given type.
    pub force_movement: Option<Movement>,
    /// Placement rule for cross-database operators.
    pub placement: PlacementPolicy,
    /// Fuse co-located joins into one task. MW connectors that cannot push
    /// joins down (Presto-style) set this to false.
    pub no_colocated_fusion: bool,
    /// Restrict the annotation set `A` to these nodes (the paper's
    /// "other network topologies can be supported by constraining the
    /// possible values of set A", Section IV-B2). Cross-database
    /// operators are only placed on listed nodes; leaf tasks still run
    /// where their tables live.
    pub allowed_placements: Option<Vec<NodeId>>,
    /// Bypass the consultation cache: every candidate evaluation of every
    /// cross-database operator is charged as a fresh consulting
    /// round-trip, as if the middleware never memoized probe answers.
    pub no_consult_cache: bool,
    /// Price candidates with the static Eq. 1–3 model only, ignoring any
    /// learned cost profiles in the catalog (the `XDB_STATIC_COSTS=1`
    /// kill switch; also the mode of `repro replay`'s baseline arm).
    pub static_costs: bool,
}

/// One cross-database placement decision, recorded for observability: the
/// option the optimizer chose plus every option it weighed.
#[derive(Debug, Clone)]
pub struct PlacementDecision {
    pub chosen: Placement,
    /// Every costed `(a, x_l, x_r)` option, in evaluation order. Empty for
    /// heuristic policies (LeftInput / Mediator), which cost nothing.
    pub candidates: Vec<CandidateCost>,
    /// Consulting round-trips actually *paid* for this decision (cache
    /// hits are free).
    pub paid_consults: u64,
    /// Estimator summary of the left input as the optimizer saw it — the
    /// predicted side of the cost-model observatory's per-edge ledger.
    pub left: InputSide,
    /// Estimator summary of the right input.
    pub right: InputSide,
    /// Estimated output rows of the probe join (zero for heuristic
    /// policies, which never build the probe).
    pub out_rows: f64,
}

/// Annotation outcome: the delegation plan plus consulting accounting.
#[derive(Debug, Clone)]
pub struct Annotation {
    pub plan: DelegationPlan,
    /// EXPLAIN-probe round-trips performed (drives the `ann` phase of
    /// Fig 15).
    pub consults: u64,
    /// Consultation-cache hits observed by *this* annotation run (counted
    /// locally, not from the shared cache's global counters, so concurrent
    /// queries cannot pollute each other's accounting).
    pub cache_hits: u64,
    /// Consultation-cache misses observed by this annotation run.
    pub cache_misses: u64,
    /// One entry per cross-database operator, in annotation (bottom-up)
    /// order.
    pub decisions: Vec<PlacementDecision>,
    /// Canonical sub-tree key of every task (see [`fragment_keys`]),
    /// computed at annotation time so the session layer can fold in-flight
    /// queries sharing sub-DAGs without re-deriving plan structure.
    pub fragment_keys: HashMap<usize, String>,
}

/// FNV-1a over a canonical rendering — the repo-local stable hash (no
/// dependency on `DefaultHasher`'s unstable seed/algorithm).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The repo-local stable hash as a 16-hex-digit string (query history
/// keys SQL texts and plan fingerprints by it).
pub fn stable_hash_hex(bytes: &[u8]) -> String {
    format!("{:016x}", fnv1a64(bytes))
}

/// Canonical fingerprint of an annotated delegation plan: a stable hash
/// over every task's placement + fragment key and every edge's movement
/// choice. Two runs of the same SQL share the fingerprint iff the
/// annotator produced the same placed, movement-annotated task DAG — a
/// changed fingerprint for the same query is a *plan flip*, the primary
/// signal the drift detector watches.
pub fn plan_fingerprint(plan: &DelegationPlan) -> String {
    let keys = fragment_keys(plan);
    let mut canon = String::new();
    for id in plan.topo_order() {
        let task = plan.task(id);
        let _ = writeln!(canon, "t{id}@{}:{}", task.dbms, keys[&id]);
    }
    let mut edges: Vec<String> = plan
        .edges
        .iter()
        .map(|e| format!("t{}-{}->t{}", e.from, e.movement, e.to))
        .collect();
    edges.sort();
    for e in edges {
        let _ = writeln!(canon, "{e}");
    }
    stable_hash_hex(canon.as_bytes())
}

/// Canonical fragment key of every task in a delegation plan.
///
/// A task's key covers its *entire upstream sub-DAG*: the task body is
/// rendered with the same dialect-neutral canonical text the consultation
/// cache keys its EXPLAIN probes by (`plan_to_select` →
/// `render_select_string(Generic)`, falling back to `tree_string`), with
/// each placeholder rebound to a name derived from the producing
/// fragment's own key, combined with the assigned DBMS and the sorted
/// `(movement, child-key)` list of its in-edges. Two tasks with equal keys
/// therefore denote the same computation on the same engine fed by the
/// same upstream fragments — safe to deploy once and share.
///
/// Keys are compared for equality only; a hash collision in the rebound
/// placeholder names could at worst merge two *different* renderings, so
/// the full child key (not just its hash) is folded into the in-edge list
/// to keep keys injective over the sub-DAG structure.
pub fn fragment_keys(plan: &DelegationPlan) -> HashMap<usize, String> {
    let mut keys: HashMap<usize, String> = HashMap::new();
    for id in plan.topo_order() {
        let task = plan.task(id);
        let mut bindings: HashMap<String, String> = HashMap::new();
        let mut in_list: Vec<String> = Vec::new();
        for edge in plan.in_edges(id) {
            let child = &keys[&edge.from];
            bindings.insert(
                placeholder_name(edge.from),
                format!("__frag_{:016x}", fnv1a64(child.as_bytes())),
            );
            in_list.push(format!("{}<{child}>", edge.movement));
        }
        in_list.sort();
        let body = crate::delegation::bind_placeholders(task.plan.clone(), &bindings)
            .unwrap_or_else(|_| task.plan.clone());
        let rendered = match plan_to_select(&body) {
            Ok(stmt) => render_select_string(&stmt, Dialect::Generic),
            Err(_) => body.tree_string(),
        };
        keys.insert(
            id,
            format!("{}@{rendered}|{}", task.dbms, in_list.join(",")),
        );
    }
    keys
}

/// Rewrite rule produced by cutting a subtree into a task: references into
/// the cut subtree's schema become references to the placeholder relation.
#[derive(Debug, Clone)]
pub struct Rename {
    pub cut_schema: PlanSchema,
    pub ph_alias: String,
    pub new_names: Vec<String>,
}

/// A partially-annotated subtree: its (single) annotation, the fused plan
/// fragment, and pending renames from cuts below it.
struct Partial {
    dbms: NodeId,
    fragment: LogicalPlan,
    renames: Vec<Rename>,
}

pub struct Annotator<'a> {
    catalog: &'a GlobalCatalog,
    cluster: &'a Cluster,
    options: AnnotateOptions,
    tasks: Vec<Task>,
    /// Movement of each cut task's out-edge.
    movements: HashMap<usize, Movement>,
    consults: u64,
    cache_hits: u64,
    cache_misses: u64,
    decisions: Vec<PlacementDecision>,
    /// Snapshot of the catalog's learned cost profiles, taken once per
    /// annotation run so every decision in one plan prices against the
    /// same feedback state. `None` in static mode or when nothing has
    /// been learned — candidate costing is then bit-exactly the static
    /// model.
    learned: Option<crate::profiles::CostProfiles>,
}

impl<'a> Annotator<'a> {
    pub fn new(
        catalog: &'a GlobalCatalog,
        cluster: &'a Cluster,
        options: AnnotateOptions,
    ) -> Annotator<'a> {
        let learned = if options.static_costs {
            None
        } else {
            catalog.learned_profiles()
        };
        Annotator {
            catalog,
            cluster,
            options,
            tasks: Vec::new(),
            movements: HashMap::new(),
            consults: 0,
            cache_hits: 0,
            cache_misses: 0,
            decisions: Vec::new(),
            learned,
        }
    }

    /// Annotate and finalize an optimized logical plan into a delegation
    /// plan.
    pub fn run(mut self, plan: &LogicalPlan) -> Result<Annotation> {
        let root_partial = self.annotate(plan)?;
        let root = self.finalize_root(root_partial)?;
        let edges = self.collect_edges();
        let plan = DelegationPlan {
            tasks: self.tasks,
            edges,
            root,
        };
        let keys = fragment_keys(&plan);
        Ok(Annotation {
            plan,
            consults: self.consults,
            cache_hits: self.cache_hits,
            cache_misses: self.cache_misses,
            decisions: self.decisions,
            fragment_keys: keys,
        })
    }

    fn est(&self) -> Estimator<'_> {
        Estimator::new(self.catalog)
    }

    fn annotate(&mut self, plan: &LogicalPlan) -> Result<Partial> {
        match plan {
            // Rule 1: leaves are annotated with their home DBMS.
            LogicalPlan::Scan { relation, .. } => {
                let dbms = self
                    .catalog
                    .location(relation)
                    .ok_or_else(|| {
                        EngineError::Catalog(format!("no location for table {relation:?}"))
                    })?
                    .clone();
                Ok(Partial {
                    dbms,
                    fragment: plan.clone(),
                    renames: Vec::new(),
                })
            }
            LogicalPlan::Placeholder { .. } => {
                Err(EngineError::Execution("placeholder in user plan".into()))
            }
            LogicalPlan::OneRow => Err(EngineError::Unsupported(
                "cross-database delegation of a FROM-less query".into(),
            )),
            // Rule 2: unary operators inherit their input's annotation.
            LogicalPlan::Filter { input, predicate } => {
                let child = self.annotate(input)?;
                let predicate = apply_renames(predicate.clone(), &child.renames);
                Ok(Partial {
                    dbms: child.dbms,
                    fragment: LogicalPlan::Filter {
                        input: Box::new(child.fragment),
                        predicate,
                    },
                    renames: child.renames,
                })
            }
            LogicalPlan::Project { input, exprs } => {
                let child = self.annotate(input)?;
                let exprs = exprs
                    .iter()
                    .map(|(e, n)| (apply_renames(e.clone(), &child.renames), n.clone()))
                    .collect();
                Ok(Partial {
                    dbms: child.dbms,
                    fragment: LogicalPlan::Project {
                        input: Box::new(child.fragment),
                        exprs,
                    },
                    // A projection re-bases the name scope: ancestor
                    // references address its bare outputs, never the
                    // underlying scans, so pending renames end here.
                    renames: Vec::new(),
                })
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggregates,
            } => {
                let child = self.annotate(input)?;
                let group_by = group_by
                    .iter()
                    .map(|(e, n)| (apply_renames(e.clone(), &child.renames), n.clone()))
                    .collect();
                let aggregates = aggregates
                    .iter()
                    .map(|(a, n)| {
                        let mut a = a.clone();
                        a.arg = a.arg.map(|e| apply_renames(e, &child.renames));
                        (a, n.clone())
                    })
                    .collect();
                Ok(Partial {
                    dbms: child.dbms,
                    fragment: LogicalPlan::Aggregate {
                        input: Box::new(child.fragment),
                        group_by,
                        aggregates,
                    },
                    // Aggregates re-base the name scope (see Project).
                    renames: Vec::new(),
                })
            }
            LogicalPlan::Sort { input, keys } => {
                let child = self.annotate(input)?;
                let keys = keys
                    .iter()
                    .map(|(e, d)| (apply_renames(e.clone(), &child.renames), *d))
                    .collect();
                Ok(Partial {
                    dbms: child.dbms,
                    fragment: LogicalPlan::Sort {
                        input: Box::new(child.fragment),
                        keys,
                    },
                    renames: child.renames,
                })
            }
            LogicalPlan::Limit { input, fetch } => {
                let child = self.annotate(input)?;
                Ok(Partial {
                    dbms: child.dbms,
                    fragment: LogicalPlan::Limit {
                        input: Box::new(child.fragment),
                        fetch: *fetch,
                    },
                    renames: child.renames,
                })
            }
            LogicalPlan::Distinct { input } => {
                let child = self.annotate(input)?;
                Ok(Partial {
                    dbms: child.dbms,
                    fragment: LogicalPlan::Distinct {
                        input: Box::new(child.fragment),
                    },
                    renames: child.renames,
                })
            }
            LogicalPlan::SubqueryAlias { input, alias } => {
                let child = self.annotate(input)?;
                Ok(Partial {
                    dbms: child.dbms,
                    fragment: LogicalPlan::SubqueryAlias {
                        input: Box::new(child.fragment),
                        alias: alias.clone(),
                    },
                    // Alias scopes re-base the name space as well.
                    renames: Vec::new(),
                })
            }
            LogicalPlan::SemiJoin {
                left,
                right,
                on,
                residual,
                negated,
            } => {
                // Semi joins are binary cross-database operators like any
                // join: Rule 3 fuses same-annotated inputs, Rule 4 decides
                // placement + movement otherwise.
                let join_like = LogicalPlan::Join {
                    left: left.clone(),
                    right: right.clone(),
                    on: on.clone(),
                    residual: residual.clone(),
                };
                let partial = self.annotate(&join_like)?;
                // Re-shape the top Join node back into a SemiJoin,
                // preserving the annotated/cut children and rewritten
                // conditions.
                match partial.fragment {
                    LogicalPlan::Join {
                        left: al,
                        right: ar,
                        on: aon,
                        residual: ares,
                    } => Ok(Partial {
                        dbms: partial.dbms,
                        fragment: LogicalPlan::SemiJoin {
                            left: al,
                            right: ar,
                            on: aon,
                            residual: ares,
                            negated: *negated,
                        },
                        renames: partial.renames,
                    }),
                    other => unreachable!(
                        "join annotation returned a non-join fragment: {}",
                        other.tree_string()
                    ),
                }
            }
            LogicalPlan::Join {
                left,
                right,
                on,
                residual,
            } => {
                let l = self.annotate(left)?;
                let r = self.annotate(right)?;
                // Rewrite the join condition through the cuts below.
                let on: Vec<(Expr, Expr)> = on
                    .iter()
                    .map(|(le, re)| {
                        (
                            apply_renames(le.clone(), &l.renames),
                            apply_renames(re.clone(), &r.renames),
                        )
                    })
                    .collect();
                let residual = residual.as_ref().map(|res| {
                    let res = apply_renames(res.clone(), &l.renames);
                    apply_renames(res, &r.renames)
                });

                // Rule 3: same annotation on both inputs → stay fused.
                // Under `no_colocated_fusion` (Presto-style connectors)
                // only the mediator fragment itself keeps fusing.
                let mediator = match &self.options.placement {
                    PlacementPolicy::Mediator(n) => Some(n.clone()),
                    _ => None,
                };
                let may_fuse =
                    !self.options.no_colocated_fusion || Some(&l.dbms) == mediator.as_ref();
                if l.dbms == r.dbms && may_fuse {
                    let mut renames = l.renames;
                    renames.extend(r.renames);
                    return Ok(Partial {
                        dbms: l.dbms,
                        fragment: LogicalPlan::Join {
                            left: Box::new(l.fragment),
                            right: Box::new(r.fragment),
                            on,
                            residual,
                        },
                        renames,
                    });
                }

                // Cross-database operator: pick its annotation + movement
                // according to the configured policy.
                let placement = match &self.options.placement {
                    // Rule 4: cost-based placement + movement decision.
                    PlacementPolicy::CostBased => {
                        let est = Estimator::new(self.catalog);
                        let l_side = InputSide {
                            dbms: l.dbms.clone(),
                            rows: est.rows(&l.fragment),
                            bytes: est.bytes(&l.fragment),
                        };
                        let r_side = InputSide {
                            dbms: r.dbms.clone(),
                            rows: est.rows(&r.fragment),
                            bytes: est.bytes(&r.fragment),
                        };
                        let probe = LogicalPlan::Join {
                            left: Box::new(l.fragment.clone()),
                            right: Box::new(r.fragment.clone()),
                            on: on.clone(),
                            residual: residual.clone(),
                        };
                        let out_rows = est.rows(&probe);
                        let mut candidates: Vec<NodeId> = if self.options.no_pruning {
                            self.cluster
                                .node_names()
                                .into_iter()
                                .map(NodeId::new)
                                .collect()
                        } else {
                            vec![l.dbms.clone(), r.dbms.clone()]
                        };
                        if let Some(allowed) = &self.options.allowed_placements {
                            let filtered: Vec<NodeId> = candidates
                                .iter()
                                .filter(|c| allowed.contains(c))
                                .cloned()
                                .collect();
                            // If neither input's home is admissible, fall
                            // back to the full allowed set: both inputs
                            // move to a permitted third party.
                            candidates = if filtered.is_empty() {
                                allowed.clone()
                            } else {
                                filtered
                            };
                        }
                        let cluster = self.cluster;
                        let catalog = self.catalog;
                        // Canonical probe text: the sub-query this
                        // EXPLAIN-style probe ships to each candidate,
                        // rendered dialect-neutrally so equal sub-plans
                        // share one cache entry.
                        let probe_sql = match plan_to_select(&probe) {
                            Ok(stmt) => render_select_string(&stmt, Dialect::Generic),
                            Err(_) => probe.tree_string(),
                        };
                        let use_cache = !self.options.no_consult_cache;
                        let paid_before = self.consults;
                        let mut profile_map: HashMap<NodeId, xdb_engine::EngineProfile> =
                            HashMap::new();
                        for cand in &candidates {
                            let Ok(engine) = cluster.engine(cand.as_str()) else {
                                continue;
                            };
                            let profile = if use_cache {
                                let generation = engine.ddl_generation();
                                let cache = catalog.consult_cache();
                                match cache.lookup(cand, &probe_sql, generation) {
                                    Some(ConsultReply::Explain(p)) => {
                                        self.cache_hits += 1;
                                        p
                                    }
                                    _ => {
                                        // One real round-trip per candidate;
                                        // the memoized answer serves every
                                        // later evaluation of this probe.
                                        self.consults += 1;
                                        self.cache_misses += 1;
                                        let p = engine.profile.clone();
                                        cache.store(
                                            cand,
                                            &probe_sql,
                                            generation,
                                            ConsultReply::Explain(p.clone()),
                                        );
                                        p
                                    }
                                }
                            } else {
                                engine.profile.clone()
                            };
                            profile_map.insert(cand.clone(), profile);
                        }
                        let profiles = |n: &NodeId| -> xdb_engine::EngineProfile {
                            profile_map.get(n).cloned().unwrap_or_else(|| {
                                cluster
                                    .engine(n.as_str())
                                    .map(|e| e.profile.clone())
                                    .unwrap_or_else(|_| xdb_engine::EngineProfile::postgres())
                            })
                        };
                        let (placement, costed) = decide_placement_with_profiles(
                            &self.cluster.topology,
                            &profiles,
                            &l_side,
                            &r_side,
                            out_rows,
                            &candidates,
                            self.options.force_movement,
                            self.learned.as_ref(),
                        );
                        if !use_cache {
                            self.consults += placement.consults;
                        }
                        self.decisions.push(PlacementDecision {
                            chosen: placement.clone(),
                            candidates: costed,
                            paid_consults: self.consults - paid_before,
                            left: l_side.clone(),
                            right: r_side.clone(),
                            out_rows,
                        });
                        placement
                    }
                    // ScleraDB-style heuristic: the left input's home
                    // wins; the moved side is materialized.
                    PlacementPolicy::LeftInput => {
                        let est = Estimator::new(self.catalog);
                        let p = Placement {
                            dbms: l.dbms.clone(),
                            left_move: Movement::Implicit,
                            right_move: self.options.force_movement.unwrap_or(Movement::Explicit),
                            cost: 0.0,
                            consults: 0,
                        };
                        self.decisions.push(PlacementDecision {
                            chosen: p.clone(),
                            candidates: Vec::new(),
                            paid_consults: 0,
                            left: InputSide {
                                dbms: l.dbms.clone(),
                                rows: est.rows(&l.fragment),
                                bytes: est.bytes(&l.fragment),
                            },
                            right: InputSide {
                                dbms: r.dbms.clone(),
                                rows: est.rows(&r.fragment),
                                bytes: est.bytes(&r.fragment),
                            },
                            out_rows: 0.0,
                        });
                        p
                    }
                    // Mediator decomposition: every cross-database
                    // operator runs at the mediator; inputs are fetched.
                    PlacementPolicy::Mediator(node) => {
                        let est = Estimator::new(self.catalog);
                        let p = Placement {
                            dbms: node.clone(),
                            left_move: Movement::Implicit,
                            right_move: Movement::Implicit,
                            cost: 0.0,
                            consults: 0,
                        };
                        self.decisions.push(PlacementDecision {
                            chosen: p.clone(),
                            candidates: Vec::new(),
                            paid_consults: 0,
                            left: InputSide {
                                dbms: l.dbms.clone(),
                                rows: est.rows(&l.fragment),
                                bytes: est.bytes(&l.fragment),
                            },
                            right: InputSide {
                                dbms: r.dbms.clone(),
                                rows: est.rows(&r.fragment),
                                bytes: est.bytes(&r.fragment),
                            },
                            out_rows: 0.0,
                        });
                        p
                    }
                };

                let mut renames: Vec<Rename> = Vec::new();
                renames.extend(l.renames.iter().cloned());
                renames.extend(r.renames.iter().cloned());

                // Cut every input not local to the chosen annotation.
                let (l_final, l_rename) = if l.dbms != placement.dbms {
                    let (ph, rename) = self.cut(
                        Partial {
                            dbms: l.dbms,
                            fragment: l.fragment,
                            renames: l.renames,
                        },
                        placement.left_move,
                    )?;
                    (ph, Some(rename))
                } else {
                    (l.fragment, None)
                };
                let (r_final, r_rename) = if r.dbms != placement.dbms {
                    let (ph, rename) = self.cut(
                        Partial {
                            dbms: r.dbms,
                            fragment: r.fragment,
                            renames: r.renames,
                        },
                        placement.right_move,
                    )?;
                    (ph, Some(rename))
                } else {
                    (r.fragment, None)
                };
                // The join condition must itself address the placeholders.
                // Each side's expressions are rewritten only through that
                // side's cut (semi-join scopes may share bare column
                // names, so cross-application would capture wrongly).
                let l_cut: Vec<Rename> = l_rename.into_iter().collect();
                let r_cut: Vec<Rename> = r_rename.into_iter().collect();
                let on = on
                    .into_iter()
                    .map(|(le, re)| (apply_renames(le, &l_cut), apply_renames(re, &r_cut)))
                    .collect();
                let residual = residual.map(|res| {
                    let res = apply_renames(res, &l_cut);
                    apply_renames(res, &r_cut)
                });
                renames.extend(l_cut);
                renames.extend(r_cut);
                Ok(Partial {
                    dbms: placement.dbms,
                    fragment: LogicalPlan::Join {
                        left: Box::new(l_final),
                        right: Box::new(r_final),
                        on,
                        residual,
                    },
                    renames,
                })
            }
        }
    }

    /// Cut a subtree into its own task; returns the placeholder leaf that
    /// replaces it and the rename rule for ancestor expressions.
    fn cut(&mut self, partial: Partial, movement: Movement) -> Result<(LogicalPlan, Rename)> {
        let id = self.tasks.len();
        let schema = partial.fragment.schema();
        let new_names = unique_names(&schema)?;
        // Fix the task's output columns with an explicit rename projection.
        let exprs: Vec<(Expr, String)> = schema
            .fields
            .iter()
            .zip(new_names.iter())
            .map(|(f, n)| {
                let e = match &f.qualifier {
                    Some(q) => Expr::qcol(q.clone(), f.name.clone()),
                    None => Expr::col(f.name.clone()),
                };
                (e, n.clone())
            })
            .collect();
        let task_plan = LogicalPlan::Project {
            input: Box::new(partial.fragment),
            exprs,
        };
        let out_schema = task_plan.schema();
        let output_fields: Vec<(String, DataType)> = out_schema
            .fields
            .iter()
            .map(|f| (f.name.clone(), f.data_type))
            .collect();
        let est_rows = self.est().rows(&task_plan);
        self.catalog
            .register_placeholder(&placeholder_name(id), est_rows);
        self.tasks.push(Task {
            id,
            dbms: partial.dbms,
            plan: task_plan,
            output_fields: output_fields.clone(),
            est_rows,
        });
        self.movements.insert(id, movement);
        let placeholder = LogicalPlan::Placeholder {
            name: placeholder_name(id),
            alias: placeholder_alias(id),
            fields: output_fields,
        };
        Ok((
            placeholder,
            Rename {
                cut_schema: schema,
                ph_alias: placeholder_alias(id),
                new_names,
            },
        ))
    }

    /// Finalize the root task.
    fn finalize_root(&mut self, partial: Partial) -> Result<usize> {
        let id = self.tasks.len();
        let schema = partial.fragment.schema();
        // The root view's columns must be unique too; wrap only if needed
        // (the binder's top projection usually guarantees uniqueness).
        let needs_wrap = {
            let mut seen = std::collections::HashSet::new();
            schema
                .fields
                .iter()
                .any(|f| !seen.insert(f.name.to_ascii_lowercase()))
        };
        let (plan, out_schema) = if needs_wrap {
            let new_names = unique_names(&schema)?;
            let exprs: Vec<(Expr, String)> = schema
                .fields
                .iter()
                .zip(new_names.iter())
                .map(|(f, n)| {
                    let e = match &f.qualifier {
                        Some(q) => Expr::qcol(q.clone(), f.name.clone()),
                        None => Expr::col(f.name.clone()),
                    };
                    (e, n.clone())
                })
                .collect();
            let p = LogicalPlan::Project {
                input: Box::new(partial.fragment),
                exprs,
            };
            let s = p.schema();
            (p, s)
        } else {
            (partial.fragment, schema)
        };
        let est_rows = self.est().rows(&plan);
        self.tasks.push(Task {
            id,
            dbms: partial.dbms,
            plan,
            output_fields: out_schema
                .fields
                .iter()
                .map(|f| (f.name.clone(), f.data_type))
                .collect(),
            est_rows,
        });
        Ok(id)
    }

    /// Derive the edge set from placeholder references inside task bodies.
    fn collect_edges(&self) -> Vec<Edge> {
        let mut edges = Vec::new();
        for task in &self.tasks {
            let mut stack = vec![&task.plan];
            while let Some(p) = stack.pop() {
                if let LogicalPlan::Placeholder { name, .. } = p {
                    if let Some(from) = parse_placeholder(name) {
                        edges.push(Edge {
                            from,
                            to: task.id,
                            movement: *self.movements.get(&from).unwrap_or(&Movement::Implicit),
                        });
                    }
                }
                stack.extend(p.children());
            }
        }
        edges.sort_by_key(|e| (e.to, e.from));
        edges
    }
}

/// Extract the task id from a placeholder name.
fn parse_placeholder(name: &str) -> Option<usize> {
    name.strip_prefix("__task_")?.parse().ok()
}

/// Unique bare output names for a schema: field name, disambiguated with
/// its qualifier when duplicated.
pub fn unique_names(schema: &PlanSchema) -> Result<Vec<String>> {
    let mut used: std::collections::HashSet<String> = std::collections::HashSet::new();
    let mut out = Vec::with_capacity(schema.fields.len());
    for f in &schema.fields {
        let mut name = f.name.clone();
        if !used.insert(name.to_ascii_lowercase()) {
            name = match &f.qualifier {
                Some(q) => format!("{q}_{}", f.name),
                None => {
                    return Err(EngineError::Unsupported(format!(
                        "duplicate unqualified column {name:?} at a task boundary"
                    )))
                }
            };
            let mut i = 0;
            while !used.insert(name.to_ascii_lowercase()) {
                i += 1;
                name = format!("{}_{}_{i}", f.qualifier.as_deref().unwrap_or(""), f.name);
            }
        }
        out.push(name);
    }
    Ok(out)
}

/// Apply cut renames (oldest first) to an expression.
pub fn apply_renames(e: Expr, renames: &[Rename]) -> Expr {
    let mut out = e;
    for r in renames {
        out = out.transform(&mut |x| match &x {
            Expr::Column { qualifier, name } => {
                match r.cut_schema.resolve(qualifier.as_deref(), name) {
                    Ok(idx) => Expr::qcol(r.ph_alias.clone(), r.new_names[idx].clone()),
                    Err(_) => x,
                }
            }
            _ => x,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdb_sql::bind::bind_select;
    use xdb_sql::optimize::{optimize, OptimizeOptions};
    use xdb_sql::parse_select;

    /// The motivating scenario of Table I, generated at a size where the
    /// optimizer's plan matches the paper's Figure 5a shape.
    fn vaccination_cluster() -> (Cluster, GlobalCatalog) {
        crate::scenario::build(crate::scenario::ScenarioConfig::default()).unwrap()
    }

    /// The example cross-database query of Fig 3 (age-group CASE kept
    /// short).
    const EXAMPLE_QUERY: &str = crate::scenario::EXAMPLE_QUERY;

    fn annotate_query(sql: &str) -> (Annotation, Cluster) {
        let (c, g) = vaccination_cluster();
        let plan = bind_select(&parse_select(sql).unwrap(), &g).unwrap();
        let plan = optimize(plan, &g, OptimizeOptions::default());
        let ann = Annotator::new(&g, &c, AnnotateOptions::default())
            .run(&plan)
            .unwrap();
        (ann, c)
    }

    #[test]
    fn single_dbms_query_is_one_task() {
        let (ann, _) = annotate_query("SELECT name FROM citizen WHERE age > 30");
        assert_eq!(ann.plan.tasks.len(), 1);
        assert!(ann.plan.edges.is_empty());
        assert_eq!(ann.plan.task(ann.plan.root).dbms.as_str(), "cdb");
        assert_eq!(ann.consults, 0);
    }

    #[test]
    fn colocated_join_stays_fused() {
        let (ann, _) =
            annotate_query("SELECT v.vtype FROM vaccines v, vaccination vn WHERE v.id = vn.v_id");
        assert_eq!(ann.plan.tasks.len(), 1, "{}", ann.plan.describe());
        assert_eq!(ann.plan.task(ann.plan.root).dbms.as_str(), "vdb");
    }

    #[test]
    fn example_query_produces_three_tasks() {
        let (ann, _) = annotate_query(EXAMPLE_QUERY);
        // Three DBMSes → three tasks (Fig 5a shape) with two inter-DBMS
        // movements.
        assert_eq!(ann.plan.tasks.len(), 3, "{}", ann.plan.describe());
        assert_eq!(ann.plan.edges.len(), 2);
        // Each DBMS hosts exactly one task.
        let mut hosts: Vec<&str> = ann.plan.tasks.iter().map(|t| t.dbms.as_str()).collect();
        hosts.sort();
        assert_eq!(hosts, vec!["cdb", "hdb", "vdb"]);
        // Rule-4 consulting happened: one memoized probe per candidate of
        // each of the 2 cross-db joins (2 × 2 candidates).
        assert_eq!(ann.consults, 4);
    }

    #[test]
    fn consult_cache_halves_probe_roundtrips() {
        let (c, g) = vaccination_cluster();
        let plan = bind_select(&parse_select(EXAMPLE_QUERY).unwrap(), &g).unwrap();
        let plan = optimize(plan, &g, OptimizeOptions::default());
        // Without memoization every (candidate, movement) option of the 2
        // cross-db joins is a fresh round-trip: 2 joins × 4 options.
        let uncached = Annotator::new(
            &g,
            &c,
            AnnotateOptions {
                no_consult_cache: true,
                ..Default::default()
            },
        )
        .run(&plan)
        .unwrap();
        assert_eq!(uncached.consults, 8);
        let cached = Annotator::new(&g, &c, AnnotateOptions::default())
            .run(&plan)
            .unwrap();
        assert_eq!(cached.consults, 4);
        // Same placements either way: the cache changes accounting, never
        // the plan.
        assert_eq!(uncached.plan.describe(), cached.plan.describe());
        // Re-annotating the same query is free: every probe hits.
        let hits_before = g.consult_cache().hits();
        let again = Annotator::new(&g, &c, AnnotateOptions::default())
            .run(&plan)
            .unwrap();
        assert_eq!(again.consults, 0);
        assert!(g.consult_cache().hits() > hits_before);
    }

    #[test]
    fn annotation_never_places_on_third_party_when_pruned() {
        let (ann, _) = annotate_query(EXAMPLE_QUERY);
        // Every edge's consumer is one of the edge's input DBMSes by
        // construction; tasks live only where their base tables live.
        for t in &ann.plan.tasks {
            assert!(["cdb", "vdb", "hdb"].contains(&t.dbms.as_str()));
        }
    }

    #[test]
    fn cut_rewrites_ancestor_references() {
        // The aggregate at the root references v.vtype, which is cut away
        // into the VDB task: the reference must have been rewritten to the
        // placeholder alias.
        let (ann, _) = annotate_query(EXAMPLE_QUERY);
        let root = ann.plan.task(ann.plan.root);
        // Root plan must bind & lower to SQL without unresolved columns.
        let stmt = xdb_sql::algebra::plan_to_select(&root.plan).unwrap();
        let sql = xdb_sql::display::render_select_string(&stmt, xdb_sql::Dialect::Generic);
        assert!(!sql.is_empty());
    }

    #[test]
    fn force_movement_applies_to_all_edges() {
        let (c, g) = vaccination_cluster();
        let plan = bind_select(&parse_select(EXAMPLE_QUERY).unwrap(), &g).unwrap();
        let plan = optimize(plan, &g, OptimizeOptions::default());
        for forced in [Movement::Implicit, Movement::Explicit] {
            let ann = Annotator::new(
                &g,
                &c,
                AnnotateOptions {
                    force_movement: Some(forced),
                    ..Default::default()
                },
            )
            .run(&plan)
            .unwrap();
            assert!(ann.plan.edges.iter().all(|e| e.movement == forced));
        }
    }

    #[test]
    fn task_outputs_have_unique_names() {
        let (ann, _) = annotate_query(EXAMPLE_QUERY);
        for t in &ann.plan.tasks {
            let mut seen = std::collections::HashSet::new();
            for (n, _) in &t.output_fields {
                assert!(seen.insert(n.to_ascii_lowercase()), "dup {n} in t{}", t.id);
            }
        }
    }

    #[test]
    fn placeholder_estimates_registered() {
        let (c, g) = vaccination_cluster();
        let plan = bind_select(&parse_select(EXAMPLE_QUERY).unwrap(), &g).unwrap();
        let plan = optimize(plan, &g, OptimizeOptions::default());
        let ann = Annotator::new(&g, &c, AnnotateOptions::default())
            .run(&plan)
            .unwrap();
        for e in &ann.plan.edges {
            let name = placeholder_name(e.from);
            use xdb_sql::stats::StatsProvider;
            assert!(g.table_rows(&name).is_some(), "{name} unregistered");
        }
    }

    #[test]
    fn constrained_placements_respected() {
        let (c, g) = vaccination_cluster();
        let plan = bind_select(&parse_select(EXAMPLE_QUERY).unwrap(), &g).unwrap();
        let plan = optimize(plan, &g, OptimizeOptions::default());
        // Forbid placing cross-database operators on hdb (e.g. the health
        // department's network segment cannot host foreign traffic).
        let ann = Annotator::new(
            &g,
            &c,
            AnnotateOptions {
                allowed_placements: Some(vec![NodeId::new("cdb"), NodeId::new("vdb")]),
                ..Default::default()
            },
        )
        .run(&plan)
        .unwrap();
        // Only hdb's own leaf task (scanning measurements) may sit on
        // hdb; every task with a placeholder input (a cross-database
        // operator) must be on cdb or vdb.
        for t in &ann.plan.tasks {
            if ann.plan.in_edges(t.id).count() > 0 {
                assert_ne!(t.dbms.as_str(), "hdb", "{}", ann.plan.describe());
            }
        }
    }

    #[test]
    fn no_pruning_widens_search() {
        // Separate federations per run: the consultation cache would
        // otherwise let the second annotation ride on the first's probes.
        let (c, g) = vaccination_cluster();
        let plan = bind_select(&parse_select(EXAMPLE_QUERY).unwrap(), &g).unwrap();
        let plan = optimize(plan, &g, OptimizeOptions::default());
        let pruned = Annotator::new(&g, &c, AnnotateOptions::default())
            .run(&plan)
            .unwrap();
        let (c2, g2) = vaccination_cluster();
        let plan2 = bind_select(&parse_select(EXAMPLE_QUERY).unwrap(), &g2).unwrap();
        let plan2 = optimize(plan2, &g2, OptimizeOptions::default());
        let full = Annotator::new(
            &g2,
            &c2,
            AnnotateOptions {
                no_pruning: true,
                ..Default::default()
            },
        )
        .run(&plan2)
        .unwrap();
        assert!(full.consults > pruned.consults);
    }
}
