//! Learned cost profiles: the feedback half of the cost model.
//!
//! The observatory (`crate::observatory`, `xdb_obs::costmodel`) measures
//! what every cross-database decision actually cost — true encoded bytes
//! per wire edge, per-engine statement work, consult charges. This module
//! aggregates those [`CostObservation`]s into **smoothed multiplicative
//! factors** that re-price future decisions:
//!
//! - **wire ratio** per edge shape (`from->to/movement`, with
//!   `from->to` / consuming-engine / global fallbacks): observed encoded
//!   bytes per estimated raw byte. Applied to the byte term of
//!   `cost::movement_cost_split`, it turns the model's raw-byte wire price
//!   into a learned encoded-byte estimate.
//! - **compute factor** per engine: observed statement work per predicted
//!   cross-database compute unit (`exec + startup` of chosen candidates).
//!   Applied to Eq. 1's exec/startup terms.
//! - **consult factor**: observed consult latency per modeled
//!   `CONSULT_ROUNDTRIP_MS`. In the simulated federation the two coincide
//!   (factor 1); the store keeps the slot so a real deployment's probe
//!   latencies calibrate the same way. It is reported, not applied.
//!
//! **Smoothing and confidence.** Every factor is the sample mean blended
//! toward the static model's implicit 1.0 with a pseudo-count prior:
//! `(Σ samples + K) / (n + K)` with `K =` [`CONFIDENCE_PRIOR`] — one or
//! two outlier observations barely move a price, a consistent workload
//! history converges to the observed mean — then clamped to a per-factor
//! range ([`WIRE_RATIO_CLAMP`], [`COMPUTE_FACTOR_CLAMP`]) so a corrupted
//! or adversarial history cannot invert the cost order outright.
//!
//! **Determinism.** A store's state is a function of the *multiset* of
//! absorbed samples, not their order: samples are kept sorted
//! (`f64::total_cmp`) and every sum runs in sorted order, so merging
//! history files in any order — or absorbing the same observations from
//! concurrent sessions in any interleaving — yields bit-identical factors.
//! Observations themselves are bit-identical across executors, reactor
//! on/off, partition counts, and stream-chunk sizes (the observatory's
//! contract), so feedback preserves the repo's cross-axis determinism.
//!
//! Persistence is schema-versioned JSON (`profiles.json`); history
//! directories (`history.jsonl`) are also accepted as a profile source via
//! [`CostProfiles::from_history_dir`] / `XDB_PROFILE_DIR` /
//! `repro --profiles dir/`.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::OnceLock;
use xdb_net::{edge_pair, edge_shape, Movement};
use xdb_obs::costmodel::CostObservation;
use xdb_obs::history::{load_history_dir, HistoryRecord};
use xdb_obs::json;
use xdb_obs::trace::{json_number, json_string};

/// Version of the on-disk profile layout. v1 → v2: added the `consult`
/// factor samples.
pub const PROFILES_SCHEMA_VERSION: u64 = 2;

/// Oldest profile layout the parser still accepts (v1 files simply lack
/// the `consult` key).
pub const PROFILES_MIN_SCHEMA_VERSION: u64 = 1;

/// File name of a persisted profile store inside a directory.
pub const PROFILES_FILE: &str = "profiles.json";

/// Pseudo-count prior pulling every learned factor toward the static
/// model's 1.0 (see module docs).
pub const CONFIDENCE_PRIOR: f64 = 2.0;

/// Clamp range for learned wire (encoded/raw byte) ratios. The lower
/// bound keeps a pathological history from pricing any transfer at ~zero;
/// the upper bound caps codec-overhead blowups.
pub const WIRE_RATIO_CLAMP: (f64, f64) = (0.05, 2.0);

/// Clamp range for learned per-engine compute-unit factors. Observed
/// statement work includes leaf/local stages the Eq. 1 terms never
/// modeled, so the raw ratio runs high; the clamp bounds how far learned
/// compute units may drift from the static profile.
pub const COMPUTE_FACTOR_CLAMP: (f64, f64) = (0.5, 2.0);

/// Clamp range for the consult-latency factor.
pub const CONSULT_FACTOR_CLAMP: (f64, f64) = (0.5, 2.0);

/// One factor's observed samples, kept sorted (`total_cmp`) so sums —
/// and therefore smoothed factors — are independent of absorb/merge
/// order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FactorStat {
    samples: Vec<f64>,
}

impl FactorStat {
    /// Fold one observed ratio in. Non-finite or non-positive samples are
    /// dropped: a degenerate edge (zero estimated bytes, poisoned
    /// arithmetic) must not poison the factor.
    pub fn observe(&mut self, ratio: f64) {
        if !ratio.is_finite() || ratio <= 0.0 {
            return;
        }
        let at = self
            .samples
            .partition_point(|s| s.total_cmp(&ratio).is_lt());
        self.samples.insert(at, ratio);
    }

    pub fn count(&self) -> u64 {
        self.samples.len() as u64
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Sum in ascending sample order — the order-independent sum the
    /// smoothing is built on.
    fn sum(&self) -> f64 {
        self.samples.iter().sum()
    }

    /// Unsmoothed sample mean (diagnostics); 1.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            1.0
        } else {
            self.sum() / self.samples.len() as f64
        }
    }

    /// Confidence-smoothed factor: `(Σ + K) / (n + K)` clamped to
    /// `clamp`, `None` when no samples were absorbed (the caller then
    /// falls through to the next granularity, ultimately to the static
    /// model).
    pub fn factor(&self, clamp: (f64, f64)) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let n = self.samples.len() as f64;
        let smoothed = (self.sum() + CONFIDENCE_PRIOR) / (n + CONFIDENCE_PRIOR);
        Some(smoothed.clamp(clamp.0, clamp.1))
    }

    /// Union of both sample multisets (order-independent by
    /// construction).
    pub fn merge(&mut self, other: &FactorStat) {
        for &s in &other.samples {
            self.observe(s);
        }
    }

    fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, s) in self.samples.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_number(*s));
        }
        out.push(']');
        out
    }

    fn from_json(v: &json::Value) -> Result<FactorStat, String> {
        let Some(items) = v.as_array() else {
            return Err("factor samples are not an array".to_string());
        };
        let mut stat = FactorStat::default();
        for item in items {
            let Some(s) = item.as_f64() else {
                return Err("factor sample is not a number".to_string());
            };
            stat.observe(s);
        }
        Ok(stat)
    }
}

/// The learned-profile store (see module docs).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CostProfiles {
    /// Wire ratio per `from->to/movement` edge shape.
    wire_by_shape: BTreeMap<String, FactorStat>,
    /// Wire ratio per `from->to` link, any movement.
    wire_by_pair: BTreeMap<String, FactorStat>,
    /// Wire ratio per consuming engine node.
    wire_by_engine: BTreeMap<String, FactorStat>,
    /// Wire ratio across every observed edge.
    wire_global: FactorStat,
    /// Observed-vs-predicted compute units per engine node.
    compute_by_engine: BTreeMap<String, FactorStat>,
    /// Observed-vs-modeled consult latency.
    consult: FactorStat,
}

impl CostProfiles {
    pub fn is_empty(&self) -> bool {
        self.wire_by_shape.is_empty()
            && self.wire_by_pair.is_empty()
            && self.wire_by_engine.is_empty()
            && self.wire_global.is_empty()
            && self.compute_by_engine.is_empty()
            && self.consult.is_empty()
    }

    /// Total absorbed samples across every factor (wire samples counted
    /// once, via the global accumulator).
    pub fn samples(&self) -> u64 {
        self.wire_global.count()
            + self
                .compute_by_engine
                .values()
                .map(FactorStat::count)
                .sum::<u64>()
            + self.consult.count()
    }

    /// Learned encoded-per-raw byte ratio for moving data `from → to` via
    /// `movement`: most specific granularity with samples wins
    /// (shape → link → consuming engine → global); `None` when nothing
    /// relevant was ever observed (callers keep the static raw-byte
    /// price).
    pub fn wire_ratio(&self, from: &str, to: &str, movement: Movement) -> Option<f64> {
        self.wire_by_shape
            .get(&edge_shape(from, to, movement))
            .and_then(|s| s.factor(WIRE_RATIO_CLAMP))
            .or_else(|| {
                self.wire_by_pair
                    .get(&edge_pair(from, to))
                    .and_then(|s| s.factor(WIRE_RATIO_CLAMP))
            })
            .or_else(|| {
                self.wire_by_engine
                    .get(to)
                    .and_then(|s| s.factor(WIRE_RATIO_CLAMP))
            })
            .or_else(|| self.wire_global.factor(WIRE_RATIO_CLAMP))
    }

    /// Learned compute-unit factor for `engine`; `None` keeps the static
    /// profile's units.
    pub fn compute_factor(&self, engine: &str) -> Option<f64> {
        self.compute_by_engine
            .get(engine)
            .and_then(|s| s.factor(COMPUTE_FACTOR_CLAMP))
    }

    /// Learned consult-latency factor (reported, not applied — see module
    /// docs).
    pub fn consult_factor(&self) -> Option<f64> {
        self.consult.factor(CONSULT_FACTOR_CLAMP)
    }

    /// Record one wire encoded-per-raw ratio for an edge, at every
    /// granularity (shape, link, consuming engine, global).
    pub fn observe_wire(&mut self, from: &str, to: &str, movement: Movement, ratio: f64) {
        self.wire_by_shape
            .entry(edge_shape(from, to, movement))
            .or_default()
            .observe(ratio);
        self.wire_by_pair
            .entry(edge_pair(from, to))
            .or_default()
            .observe(ratio);
        self.wire_by_engine
            .entry(to.to_string())
            .or_default()
            .observe(ratio);
        self.wire_global.observe(ratio);
    }

    /// Record one observed-per-predicted compute-unit ratio for an engine.
    pub fn observe_compute(&mut self, engine: &str, ratio: f64) {
        self.compute_by_engine
            .entry(engine.to_string())
            .or_default()
            .observe(ratio);
    }

    /// Fold one query's cost observation (plus its per-engine statement
    /// work) into the store.
    pub fn absorb(&mut self, cost: &CostObservation, statements: &[(String, f64)]) {
        let mut pred_compute: BTreeMap<&str, f64> = BTreeMap::new();
        let mut modeled_consult = 0.0;
        for d in &cost.decisions {
            if let Some(c) = d.candidates.iter().find(|c| c.chosen) {
                *pred_compute.entry(d.dbms.as_str()).or_default() += c.exec_ms + c.startup_ms;
            }
            modeled_consult += d.consult_ms;
            for e in d.edges.iter().filter(|e| e.matched) {
                if e.pred_bytes == 0 {
                    continue;
                }
                let ratio = e.obs_encoded_bytes as f64 / e.pred_bytes as f64;
                let movement = if e.movement == Movement::Explicit.label() {
                    Movement::Explicit
                } else {
                    Movement::Implicit
                };
                self.observe_wire(&e.from, &e.to, movement, ratio);
            }
        }
        for (engine, obs_ms) in statements {
            if let Some(pred) = pred_compute.get(engine.as_str()) {
                if *pred > 0.0 && *obs_ms > 0.0 {
                    self.compute_by_engine
                        .entry(engine.clone())
                        .or_default()
                        .observe(obs_ms / pred);
                }
            }
        }
        // In the simulated federation the observed consult charge equals
        // the modeled one exactly; a real deployment's probe latencies
        // would land here as a ≠1 factor.
        if modeled_consult > 0.0 {
            self.consult.observe(cost.consult_ms / modeled_consult);
        }
    }

    /// Fold one history record in (its cost bundle + statement work).
    pub fn absorb_record(&mut self, record: &HistoryRecord) {
        self.absorb(&record.cost, &record.statements);
    }

    /// Build a store from a set of history records.
    pub fn from_history(records: &[HistoryRecord]) -> CostProfiles {
        let mut p = CostProfiles::default();
        for r in records {
            p.absorb_record(r);
        }
        p
    }

    /// Build a store from `<dir>/history.jsonl` (the `repro --history` /
    /// `XDB_HISTORY_DIR` output format).
    pub fn from_history_dir(dir: impl AsRef<Path>) -> Result<CostProfiles, String> {
        Ok(Self::from_history(&load_history_dir(dir)?))
    }

    /// Union with another store. Order-independent: merging A into B and
    /// B into A produce bit-identical factors, regardless of how the
    /// sample sets overlap.
    pub fn merge(&mut self, other: &CostProfiles) {
        for (k, s) in &other.wire_by_shape {
            self.wire_by_shape.entry(k.clone()).or_default().merge(s);
        }
        for (k, s) in &other.wire_by_pair {
            self.wire_by_pair.entry(k.clone()).or_default().merge(s);
        }
        for (k, s) in &other.wire_by_engine {
            self.wire_by_engine.entry(k.clone()).or_default().merge(s);
        }
        self.wire_global.merge(&other.wire_global);
        for (k, s) in &other.compute_by_engine {
            self.compute_by_engine
                .entry(k.clone())
                .or_default()
                .merge(s);
        }
        self.consult.merge(&other.consult);
    }

    /// One-line description for reports.
    pub fn describe(&self) -> String {
        format!(
            "{} wire sample(s) across {} edge shape(s), {} engine compute factor(s), \
             {} consult sample(s)",
            self.wire_global.count(),
            self.wire_by_shape.len(),
            self.compute_by_engine.len(),
            self.consult.count()
        )
    }

    fn map_to_json(out: &mut String, key: &str, map: &BTreeMap<String, FactorStat>) {
        let _ = write!(out, "\"{key}\":{{");
        for (i, (k, s)) in map.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", json_string(k), s.to_json());
        }
        out.push('}');
    }

    /// One JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        let _ = write!(out, "{{\"schema_version\":{PROFILES_SCHEMA_VERSION},");
        Self::map_to_json(&mut out, "wire_shape", &self.wire_by_shape);
        out.push(',');
        Self::map_to_json(&mut out, "wire_pair", &self.wire_by_pair);
        out.push(',');
        Self::map_to_json(&mut out, "wire_engine", &self.wire_by_engine);
        let _ = write!(out, ",\"wire_global\":{}", self.wire_global.to_json());
        out.push(',');
        Self::map_to_json(&mut out, "compute_engine", &self.compute_by_engine);
        let _ = write!(out, ",\"consult\":{}", self.consult.to_json());
        out.push('}');
        out
    }

    fn map_from_json(
        v: &json::Value,
        key: &str,
        required: bool,
    ) -> Result<BTreeMap<String, FactorStat>, String> {
        match v.get(key) {
            Some(json::Value::Object(items)) => {
                let mut map = BTreeMap::new();
                for (k, samples) in items {
                    let stat = FactorStat::from_json(samples)
                        .map_err(|e| format!("profiles {key:?} entry {k:?}: {e}"))?;
                    map.insert(k.clone(), stat);
                }
                Ok(map)
            }
            None if !required => Ok(BTreeMap::new()),
            _ => Err(format!("profiles missing object {key:?}")),
        }
    }

    /// Parse a store back out of its JSON form. Rejects unsupported
    /// schema versions and malformed factor tables with a clear error.
    pub fn from_json(v: &json::Value) -> Result<CostProfiles, String> {
        let version = v
            .get("schema_version")
            .and_then(json::Value::as_f64)
            .ok_or_else(|| "profiles missing numeric \"schema_version\"".to_string())?
            as u64;
        if !(PROFILES_MIN_SCHEMA_VERSION..=PROFILES_SCHEMA_VERSION).contains(&version) {
            return Err(format!(
                "profiles schema_version {version} (this build supports {}..={})",
                PROFILES_MIN_SCHEMA_VERSION, PROFILES_SCHEMA_VERSION
            ));
        }
        let consult = match v.get("consult") {
            // Absent in v1 files — parse to the empty factor.
            None => FactorStat::default(),
            Some(samples) => {
                FactorStat::from_json(samples).map_err(|e| format!("profiles \"consult\": {e}"))?
            }
        };
        let wire_global = match v.get("wire_global") {
            None => FactorStat::default(),
            Some(samples) => FactorStat::from_json(samples)
                .map_err(|e| format!("profiles \"wire_global\": {e}"))?,
        };
        Ok(CostProfiles {
            wire_by_shape: Self::map_from_json(v, "wire_shape", true)?,
            wire_by_pair: Self::map_from_json(v, "wire_pair", false)?,
            wire_by_engine: Self::map_from_json(v, "wire_engine", false)?,
            wire_global,
            compute_by_engine: Self::map_from_json(v, "compute_engine", true)?,
            consult,
        })
    }

    /// Write the store to `path` as schema-versioned JSON.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), String> {
        let path = path.as_ref();
        std::fs::write(path, format!("{}\n", self.to_json()))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))
    }

    /// Read a store back from `path`; corrupt or unsupported files are a
    /// clear error, never a silently-empty store.
    pub fn load(path: impl AsRef<Path>) -> Result<CostProfiles, String> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let v = json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::from_json(&v).map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// Process-wide seed override (takes precedence over `XDB_PROFILE_DIR`),
/// set by `repro --profiles dir/` before any catalog is built.
static SEED_OVERRIDE: parking_lot::Mutex<Option<CostProfiles>> = parking_lot::Mutex::new(None);

/// Lazily-loaded `XDB_PROFILE_DIR` seed (read once per process).
static ENV_SEED: OnceLock<Option<CostProfiles>> = OnceLock::new();

/// Install a process-wide profile seed: every [`crate::GlobalCatalog`]
/// built afterwards starts from a clone of `profiles` (pass `None` to
/// clear). This is how `repro --profiles dir/` threads a history-derived
/// store into experiment harnesses that build their own catalogs.
pub fn set_seed_profiles(profiles: Option<CostProfiles>) {
    *SEED_OVERRIDE.lock() = profiles;
}

/// The seed a fresh catalog starts from: the explicit override if set,
/// else `XDB_PROFILE_DIR` (loaded once; a load failure warns and seeds
/// empty), else the empty store.
pub(crate) fn seed_profiles() -> CostProfiles {
    if let Some(p) = SEED_OVERRIDE.lock().clone() {
        return p;
    }
    ENV_SEED
        .get_or_init(|| {
            let dir = std::env::var_os("XDB_PROFILE_DIR")?;
            match CostProfiles::from_history_dir(&dir) {
                Ok(p) => Some(p),
                Err(e) => {
                    eprintln!("profiles: cannot load XDB_PROFILE_DIR: {e}");
                    None
                }
            }
        })
        .clone()
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdb_obs::costmodel::{CandidateObs, DecisionObs, EdgeJoin};

    fn observation(encoded: u64, raw: u64) -> CostObservation {
        CostObservation {
            decisions: vec![DecisionObs {
                dbms: "hdb".to_string(),
                consult_ms: 24.0,
                candidates: vec![CandidateObs {
                    dbms: "hdb".to_string(),
                    exec_ms: 50.0,
                    startup_ms: 10.0,
                    chosen: true,
                    ..Default::default()
                }],
                edges: vec![EdgeJoin {
                    from: "cdb".to_string(),
                    to: "hdb".to_string(),
                    movement: "implicit".to_string(),
                    engine: "hdb".to_string(),
                    codec: "dict".to_string(),
                    pred_bytes: raw,
                    obs_encoded_bytes: encoded,
                    matched: true,
                    ..Default::default()
                }],
                ..Default::default()
            }],
            consult_ms: 24.0,
            ..Default::default()
        }
    }

    #[test]
    fn absorb_learns_wire_compute_and_consult_factors() {
        let mut p = CostProfiles::default();
        assert!(p.is_empty());
        assert_eq!(p.wire_ratio("cdb", "hdb", Movement::Implicit), None);
        p.absorb(&observation(400, 1000), &[("hdb".to_string(), 90.0)]);
        // One 0.4 sample, prior K=2 toward 1.0: (0.4 + 2) / 3 = 0.8.
        let r = p.wire_ratio("cdb", "hdb", Movement::Implicit).unwrap();
        assert!((r - 0.8).abs() < 1e-12, "{r}");
        // Unknown shape falls back through pair/engine/global to the same
        // single sample.
        assert_eq!(p.wire_ratio("cdb", "hdb", Movement::Explicit), Some(r));
        assert_eq!(p.wire_ratio("vdb", "hdb", Movement::Implicit), Some(r));
        assert_eq!(p.wire_ratio("vdb", "cdb", Movement::Implicit), Some(r));
        // Compute: 90 observed over 60 predicted = 1.5; (1.5+2)/3 ≈ 1.1667.
        let f = p.compute_factor("hdb").unwrap();
        assert!((f - (1.5 + 2.0) / 3.0).abs() < 1e-12, "{f}");
        assert_eq!(p.compute_factor("cdb"), None);
        // Consult: observed equals modeled → factor 1.
        assert_eq!(p.consult_factor(), Some(1.0));
        assert!(!p.is_empty());
        assert_eq!(p.samples(), 3);
    }

    #[test]
    fn factors_converge_to_sample_mean_and_clamp() {
        let mut s = FactorStat::default();
        for _ in 0..1000 {
            s.observe(0.4);
        }
        let f = s.factor(WIRE_RATIO_CLAMP).unwrap();
        assert!((f - 0.4).abs() < 2e-3, "{f}");
        // Clamps hold against extreme histories.
        let mut tiny = FactorStat::default();
        for _ in 0..100_000 {
            tiny.observe(1e-9);
        }
        assert_eq!(tiny.factor(WIRE_RATIO_CLAMP), Some(WIRE_RATIO_CLAMP.0));
        let mut huge = FactorStat::default();
        for _ in 0..100_000 {
            huge.observe(1e9);
        }
        assert_eq!(huge.factor(WIRE_RATIO_CLAMP), Some(WIRE_RATIO_CLAMP.1));
        // Degenerate samples are dropped outright.
        let mut bad = FactorStat::default();
        bad.observe(f64::NAN);
        bad.observe(f64::INFINITY);
        bad.observe(0.0);
        bad.observe(-3.0);
        assert!(bad.is_empty());
        assert_eq!(bad.factor(WIRE_RATIO_CLAMP), None);
    }

    #[test]
    fn zero_byte_edges_are_ignored() {
        let mut p = CostProfiles::default();
        p.absorb(&observation(0, 0), &[]);
        assert_eq!(p.wire_ratio("cdb", "hdb", Movement::Implicit), None);
        // A zero-encoded observation over real predicted bytes *is* a
        // sample (total collapse), dropped by the positivity guard.
        p.absorb(&observation(0, 1000), &[]);
        assert_eq!(p.wire_ratio("cdb", "hdb", Movement::Implicit), None);
    }

    #[test]
    fn merge_is_order_independent() {
        let mut a = CostProfiles::default();
        a.absorb(&observation(400, 1000), &[("hdb".to_string(), 90.0)]);
        a.absorb(&observation(300, 1000), &[("hdb".to_string(), 70.0)]);
        let mut b = CostProfiles::default();
        b.absorb(&observation(900, 1000), &[("hdb".to_string(), 120.0)]);
        // Overlapping sample sets: c shares b's observations.
        let mut c = CostProfiles::default();
        c.absorb(&observation(900, 1000), &[("hdb".to_string(), 120.0)]);
        c.absorb(&observation(500, 1000), &[]);

        let mut abc = a.clone();
        abc.merge(&b);
        abc.merge(&c);
        let mut cba = c.clone();
        cba.merge(&b);
        cba.merge(&a);
        assert_eq!(abc, cba);
        assert_eq!(abc.to_json(), cba.to_json());
        assert_eq!(
            abc.wire_ratio("cdb", "hdb", Movement::Implicit),
            cba.wire_ratio("cdb", "hdb", Movement::Implicit)
        );
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let mut p = CostProfiles::default();
        p.absorb(&observation(400, 1000), &[("hdb".to_string(), 90.0)]);
        p.absorb(&observation(123, 777), &[("hdb".to_string(), 55.5)]);
        let v = json::parse(&p.to_json()).unwrap();
        let back = CostProfiles::from_json(&v).unwrap();
        assert_eq!(back, p);
        let empty = CostProfiles::default();
        let v = json::parse(&empty.to_json()).unwrap();
        assert_eq!(CostProfiles::from_json(&v).unwrap(), empty);
    }

    #[test]
    fn from_json_rejects_bad_versions_and_shapes() {
        let newer = format!(
            "{{\"schema_version\":{},\"wire_shape\":{{}},\"compute_engine\":{{}}}}",
            PROFILES_SCHEMA_VERSION + 1
        );
        let err = CostProfiles::from_json(&json::parse(&newer).unwrap()).unwrap_err();
        assert!(err.contains("schema_version"), "{err}");
        let missing = "{\"wire_shape\":{}}";
        let err = CostProfiles::from_json(&json::parse(missing).unwrap()).unwrap_err();
        assert!(err.contains("schema_version"), "{err}");
        let bad = "{\"schema_version\":2,\"wire_shape\":{\"a->b/implicit\":\"zap\"},\
                   \"compute_engine\":{}}";
        let err = CostProfiles::from_json(&json::parse(bad).unwrap()).unwrap_err();
        assert!(err.contains("a->b/implicit"), "{err}");
    }

    #[test]
    fn v1_files_read_by_v2_code() {
        // A v1 file: no "consult", no "wire_pair"/"wire_engine"/
        // "wire_global" fallbacks — just the shape and compute tables.
        let v1 = "{\"schema_version\":1,\
                  \"wire_shape\":{\"cdb->hdb/implicit\":[0.25,0.5]},\
                  \"compute_engine\":{\"hdb\":[1.25]}}";
        let p = CostProfiles::from_json(&json::parse(v1).unwrap()).unwrap();
        let r = p.wire_ratio("cdb", "hdb", Movement::Implicit).unwrap();
        // (0.25 + 0.5 + 2) / 4
        assert!((r - 0.6875).abs() < 1e-12, "{r}");
        // No fallback tables in v1: unknown shapes stay static.
        assert_eq!(p.wire_ratio("vdb", "hdb", Movement::Implicit), None);
        assert!(p.compute_factor("hdb").is_some());
        assert_eq!(p.consult_factor(), None);
    }
}
