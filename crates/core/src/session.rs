//! Multi-tenant session/admission layer with concurrent-plan folding.
//!
//! [`Xdb::submit`] serves one client at a time; the north star is hundreds
//! of concurrent analytical sessions over the same federation. Following
//! GraftDB's observation that concurrent queries share large sub-plans,
//! the [`QueryServer`] admits submissions from simulated tenants in
//! *scheduling windows* and **folds** in-flight queries that share
//! sub-DAGs into a single delegation deployment:
//!
//! 1. every task sub-tree is canonicalized at annotation time
//!    ([`crate::annotate::fragment_keys`] — the same dialect-neutral
//!    rendering the consultation cache keys its probes by);
//! 2. queries admitted in the same window whose root fragment matches an
//!    already-executed one are answered straight from the window's result
//!    cache and only pay their own final-result transfer (*full fold*);
//! 3. queries sharing a strict sub-DAG prefix skip the DDLs of the shared
//!    fragments — their foreign tables point at the live shared views
//!    (*partial fold*) — and only deploy + execute what is new;
//! 4. shared fragments are deployed exactly once, reference-counted while
//!    waiters drain, and dropped at window close in reverse creation
//!    order, so every engine's `ddl.objects_live` gauge returns to its
//!    pre-window baseline.
//!
//! **Determinism contract.** Admission processes the queue strictly in
//! submission order, so a concurrent front door ([`QueryServer::run_concurrent`])
//! produces results, ledgers, traces and deterministic metric snapshots
//! bit-identical to sequential admission of the same list — at any
//! executor partition count and stream chunk size. Folding itself changes
//! the *physical* ledger by design (a shared edge is charged once); each
//! tenant's observable outcome — its result relation, its as-if-alone
//! [`PhaseBreakdown`], and its *attributed* ledger view (shared records
//! attributed to every waiter) — is bit-identical to running the same
//! query unfolded, modulo the width of process-global query ids that leak
//! into control-message byte counts.
//!
//! **Tenant awareness.** Every outcome carries the tenant and a fresh
//! query id; traces get a `tenant` attribute on the query span (and a
//! fold span on fan-outs); telemetry counters (`session.submissions`,
//! `session.fold_hits`) are labeled per tenant, and events carry the query
//! id as correlation id.

use crate::client::{next_query_id, PhaseBreakdown, Xdb, XdbOptions, PREP_PARSE_MS};
use crate::delegation::{build_script, build_script_with_reuse, finish_script, view_name};
use crate::global::GlobalCatalog;
use crate::plan::DelegationPlan;
use parking_lot::Mutex;
use std::collections::HashMap;
use xdb_engine::cluster::Cluster;
use xdb_engine::engine::ExecReport;
use xdb_engine::error::Result;
use xdb_engine::relation::Relation;
use xdb_net::{wire, NodeId, Purpose, Transfer};
use xdb_obs::{QueryTrace, SpanId, SpanKind, TraceCollector, TraceCtx};

/// One tenant query handed to the admission queue.
#[derive(Debug, Clone)]
pub struct Submission {
    pub tenant: String,
    pub sql: String,
}

impl Submission {
    pub fn new(tenant: impl Into<String>, sql: impl Into<String>) -> Submission {
        Submission {
            tenant: tenant.into(),
            sql: sql.into(),
        }
    }
}

/// Admission/folding configuration.
#[derive(Debug, Clone)]
pub struct SessionOptions {
    /// Per-query middleware options (executor, chunking, tracing).
    pub xdb: XdbOptions,
    /// Fold queries sharing sub-DAGs within a scheduling window. Off
    /// reproduces strictly serial `Xdb::submit` admission.
    pub fold: bool,
    /// Submissions per scheduling window; 0 admits everything into one
    /// window. Fragments and cached results never outlive their window.
    pub window: usize,
}

impl Default for SessionOptions {
    fn default() -> SessionOptions {
        SessionOptions {
            xdb: XdbOptions::default(),
            fold: true,
            window: 0,
        }
    }
}

/// Per-tenant outcome of one admitted query.
#[derive(Debug, Clone)]
pub struct TenantOutcome {
    pub tenant: String,
    /// Position in the admission queue (client-assigned submission index).
    pub index: usize,
    /// Correlation id (fresh even for fan-out waiters).
    pub query_id: u64,
    pub relation: Relation,
    /// As-if-alone phase breakdown: what this tenant would observe running
    /// the same query by itself against warm caches.
    pub breakdown: PhaseBreakdown,
    pub trace: QueryTrace,
    /// Whole plan answered from the window result cache.
    pub full_fold: bool,
    /// Number of this plan's tasks served by shared fragments.
    pub fold_hits: u64,
    /// Simulated admission instant (window open).
    pub admitted_ms: f64,
    /// Simulated completion instant on the session clock.
    pub completed_ms: f64,
    /// Queueing-inclusive latency (`completed - admitted`) — the number
    /// the p50/p95/p99 gates are computed over.
    pub latency_ms: f64,
    /// This tenant's attributed ledger view: every transfer its query
    /// depends on, shared fragment records included (charged once
    /// physically, attributed to each waiter).
    pub attributed: Vec<Transfer>,
}

/// Aggregate outcome of one [`QueryServer::run`].
#[derive(Debug, Clone, Default)]
pub struct SessionReport {
    pub outcomes: Vec<TenantOutcome>,
    /// Simulated makespan of the whole run.
    pub makespan_ms: f64,
    pub windows: u64,
    /// Tasks served by shared fragments, summed over all queries.
    pub fold_hits: u64,
    /// Queries answered entirely from the window result cache.
    pub full_folds: u64,
    /// Fragments deployed (deduplicated — each shared fragment once).
    pub fragments_deployed: u64,
    pub plan_cache_hits: u64,
    /// Consultation probes actually issued (metadata + EXPLAIN) during
    /// planning across the run.
    pub consult_probes: u64,
    /// DDL statements actually shipped to engines across the run.
    pub ddl_statements: u64,
}

impl SessionReport {
    /// Aggregate throughput over the simulated makespan.
    pub fn throughput_qps(&self) -> f64 {
        if self.makespan_ms <= 0.0 {
            return 0.0;
        }
        self.outcomes.len() as f64 / self.makespan_ms * 1000.0
    }

    /// Queueing-inclusive latency quantile (nearest-rank on the sorted
    /// per-tenant latencies).
    pub fn latency_quantile(&self, q: f64) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        let mut v: Vec<f64> = self.outcomes.iter().map(|o| o.latency_ms).collect();
        v.sort_by(f64::total_cmp);
        let idx = ((v.len() as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as usize;
        v[idx]
    }

    /// Mean fold hits per admitted query.
    pub fn mean_fold_hits(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.fold_hits as f64 / self.outcomes.len() as f64
    }
}

/// One live shared fragment of the current scheduling window.
struct Fragment {
    /// Name of the deployed view on the owning engine.
    view: String,
    /// Control-message records of this fragment's DDLs (attributed to
    /// every waiter, charged once physically).
    control: Vec<Transfer>,
    /// Data transfers recorded while deploying this fragment (explicit
    /// materializations pulling upstream pipelines).
    data: Vec<Transfer>,
    /// Execution reports of this fragment's DDL steps, in script order.
    /// Waiters splice them into their own solo timeline replay so a
    /// partially folded query still reports its exact as-if-alone
    /// breakdown and trace.
    reports: Vec<ExecReport>,
    /// Waiters currently claiming this fragment; must drain to zero before
    /// window close drops the backing objects.
    refs: u64,
}

/// Window result cache entry, keyed by the root fragment key.
struct CachedResult {
    relation: Relation,
    /// As-if-alone execution time of the shared plan.
    exec_ms: f64,
    root_node: NodeId,
    /// The owner's fully-assembled attributed ledger view (control, then
    /// data including the final pipelined query) — every fan-out waiter
    /// inherits it and appends only its own final-result transfer.
    attributed_control: Vec<Transfer>,
    attributed_data: Vec<Transfer>,
}

/// Window plan cache entry, keyed by the submitted SQL text.
struct CachedPlan {
    delegation: DelegationPlan,
    fragment_keys: HashMap<usize, String>,
    lopt_ms: f64,
    /// Probe counts of the cold plan; a warm replan answers all of them
    /// from the consultation cache (transient `xdb_q*` objects never bump
    /// a node's DDL generation), which is what the synthesized breakdown
    /// of a plan-cache hit reproduces bit-exactly.
    prep_probes: u64,
    ann_probes: u64,
}

/// Per-window folding state.
#[derive(Default)]
struct WindowState {
    fragments: HashMap<String, Fragment>,
    results: HashMap<String, CachedResult>,
    plan_cache: HashMap<String, CachedPlan>,
    /// Per-query cleanup scripts, executed in reverse query order at
    /// window close (consumers drop before the shared views they read).
    cleanup: Vec<Vec<(NodeId, String)>>,
}

/// The multi-tenant query server: an admission queue over one [`Xdb`]
/// middleware instance.
pub struct QueryServer<'a> {
    xdb: Xdb<'a>,
    options: SessionOptions,
}

impl<'a> QueryServer<'a> {
    pub fn new(
        cluster: &'a Cluster,
        catalog: &'a GlobalCatalog,
        options: SessionOptions,
    ) -> QueryServer<'a> {
        let mut xdb_options = options.xdb.clone();
        // Concurrent admission would absorb cost observations in
        // scheduling order; freeze the profiles so tenant plans — and the
        // gated latency series derived from them — stay deterministic.
        xdb_options.freeze_profiles = true;
        let xdb = Xdb::new(cluster, catalog).with_options(xdb_options);
        QueryServer { xdb, options }
    }

    /// Account the server (and its tenants) as sitting on `node`.
    pub fn with_client_node(mut self, node: impl Into<String>) -> Self {
        self.xdb = self.xdb.with_client_node(node);
        self
    }

    /// Admit and run a list of submissions, strictly in list order.
    pub fn run(&self, submissions: &[Submission]) -> Result<SessionReport> {
        let mut report = SessionReport::default();
        let mut clock = 0.0f64;
        let window = if self.options.window == 0 {
            submissions.len().max(1)
        } else {
            self.options.window
        };
        let mut base = 0usize;
        for chunk in submissions.chunks(window) {
            self.run_window(chunk, base, &mut clock, &mut report)?;
            base += chunk.len();
            report.windows += 1;
        }
        report.makespan_ms = clock;
        let telemetry = self.xdb.cluster().telemetry();
        telemetry
            .metrics
            .counter_add("session.windows", &[], report.windows as f64);
        Ok(report)
    }

    /// The concurrent front door: `threads` tenant clients push their
    /// submissions into a shared admission queue in whatever real-time
    /// interleaving the scheduler produces; admission then orders the
    /// queue by the client-assigned submission index before processing.
    /// The downstream schedule — and with it every result, ledger, trace
    /// and deterministic snapshot — is therefore bit-identical to
    /// [`QueryServer::run`] on the same list.
    pub fn run_concurrent(
        &self,
        submissions: &[Submission],
        threads: usize,
    ) -> Result<SessionReport> {
        let threads = threads.max(1);
        let queue: Mutex<Vec<(usize, Submission)>> = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for t in 0..threads {
                let queue = &queue;
                s.spawn(move || {
                    for (i, sub) in submissions.iter().enumerate() {
                        if i % threads == t {
                            queue.lock().push((i, sub.clone()));
                        }
                    }
                });
            }
        });
        let mut admitted = queue.into_inner();
        admitted.sort_by_key(|(i, _)| *i);
        let ordered: Vec<Submission> = admitted.into_iter().map(|(_, sub)| sub).collect();
        self.run(&ordered)
    }

    /// Process one scheduling window. On error the window's shared
    /// fragments are torn down before the error propagates.
    fn run_window(
        &self,
        subs: &[Submission],
        base_index: usize,
        clock: &mut f64,
        report: &mut SessionReport,
    ) -> Result<()> {
        let cluster = self.xdb.cluster();
        let telemetry = cluster.telemetry().clone();
        let window_open = *clock;
        let mut w = WindowState::default();
        let mut failure = None;
        for (k, sub) in subs.iter().enumerate() {
            let index = base_index + k;
            telemetry
                .metrics
                .counter_add("session.submissions", &[("tenant", &sub.tenant)], 1.0);
            let outcome = if self.options.fold {
                self.admit_folded(sub, index, window_open, clock, &mut w, report)
            } else {
                self.admit_unfolded(sub, index, window_open, clock, report)
            };
            match outcome {
                Ok(o) => report.outcomes.push(o),
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
        // Window close: all waiters have drained, so every fragment's
        // refcount is back to zero; drop shared objects in reverse
        // creation order (mirroring run_cleanup's reverse-dependency
        // discipline across queries).
        debug_assert!(
            w.fragments.values().all(|f| f.refs == 0),
            "window closed with live fragment references"
        );
        let mut dropped = 0usize;
        for cleanup in w.cleanup.iter().rev() {
            for (node, sql) in cleanup {
                if cluster.execute(node.as_str(), sql).is_ok() {
                    dropped += 1;
                }
            }
        }
        if dropped > 0 {
            telemetry
                .metrics
                .counter_add("ddl.objects_dropped", &[], dropped as f64);
        }
        let dropped_s = dropped.to_string();
        let fragments_s = w.fragments.len().to_string();
        telemetry.events.log(
            xdb_obs::Level::Info,
            "core.session",
            None,
            *clock,
            "scheduling window closed",
            &[("dropped", &dropped_s), ("fragments", &fragments_s)],
        );
        match failure {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Unfolded admission: strictly serial [`Xdb::submit`] per tenant.
    fn admit_unfolded(
        &self,
        sub: &Submission,
        index: usize,
        window_open: f64,
        clock: &mut f64,
        report: &mut SessionReport,
    ) -> Result<TenantOutcome> {
        let cluster = self.xdb.cluster();
        let mark = cluster.ledger.len();
        let outcome = self.xdb.submit(&sub.sql)?;
        let attributed = cluster.ledger.snapshot()[mark..].to_vec();
        report.consult_probes +=
            outcome.breakdown.consult_cache_hits + outcome.breakdown.consult_cache_misses;
        report.ddl_statements += outcome.ddl_count as u64;
        *clock += outcome.breakdown.total_ms();
        let latency = *clock - window_open;
        self.note_completion(&sub.tenant, outcome.query_id, latency, "none");
        Ok(TenantOutcome {
            tenant: sub.tenant.clone(),
            index,
            query_id: outcome.query_id,
            relation: outcome.relation,
            breakdown: outcome.breakdown,
            trace: outcome.trace,
            full_fold: false,
            fold_hits: 0,
            admitted_ms: window_open,
            completed_ms: *clock,
            latency_ms: latency,
            attributed,
        })
    }

    /// Folded admission of one query against the window state.
    fn admit_folded(
        &self,
        sub: &Submission,
        index: usize,
        window_open: f64,
        clock: &mut f64,
        w: &mut WindowState,
        report: &mut SessionReport,
    ) -> Result<TenantOutcome> {
        let cluster = self.xdb.cluster();
        let telemetry = cluster.telemetry().clone();

        // ---- Plan, through the window plan cache. A repeated SQL text
        // skips the whole optimization pipeline (its consultation probes
        // would all hit anyway — transient objects never bump a node's
        // DDL generation); the synthesized planning trace reproduces the
        // warm-replan breakdown bit-exactly.
        let (delegation, fkeys, collector, query_span, overhead_ms, query_id);
        if let Some(cp) = w.plan_cache.get(&sub.sql) {
            delegation = cp.delegation.clone();
            fkeys = cp.fragment_keys.clone();
            query_id = next_query_id();
            let (c, qs, oh) =
                synthetic_planning_trace(&sub.sql, cp.prep_probes, cp.ann_probes, cp.lopt_ms);
            collector = c;
            query_span = qs;
            overhead_ms = oh;
            report.plan_cache_hits += 1;
            telemetry
                .metrics
                .counter_add("session.plan_cache_hits", &[], 1.0);
        } else {
            let planned = self.xdb.plan_internal(&sub.sql)?;
            report.consult_probes += planned.prep_probes + planned.ann_probes;
            w.plan_cache.insert(
                sub.sql.clone(),
                CachedPlan {
                    delegation: planned.delegation.clone(),
                    fragment_keys: planned.fragment_keys.clone(),
                    lopt_ms: planned.lopt_ms,
                    prep_probes: planned.prep_probes,
                    ann_probes: planned.ann_probes,
                },
            );
            delegation = planned.delegation;
            fkeys = planned.fragment_keys;
            collector = planned.collector;
            query_span = planned.query_span;
            overhead_ms = planned.overhead_ms;
            query_id = planned.query_id;
        }
        *clock += overhead_ms;
        collector.attr(query_span, "tenant", &sub.tenant);
        let root_key = fkeys[&delegation.root].clone();

        // ---- Full fold: the whole plan is already materialized; fan the
        // cached result out. The only fresh physical traffic is this
        // waiter's own final-result transfer.
        if let Some(cached) = w.results.get(&root_key) {
            for key in fkeys.values() {
                if let Some(f) = w.fragments.get_mut(key) {
                    f.refs += 1;
                }
            }
            let fold_hits = delegation.tasks.len() as u64;
            report.fold_hits += fold_hits;
            report.full_folds += 1;
            telemetry.metrics.counter_add(
                "session.fold_hits",
                &[("tenant", &sub.tenant)],
                fold_hits as f64,
            );
            telemetry
                .metrics
                .counter_add("session.full_folds", &[], 1.0);
            let ledger_mark = cluster.ledger.len();
            let enc = wire::measure(cached.relation.columns(), cached.relation.len());
            cluster.ledger.record_wire(
                &cached.root_node,
                self.xdb.client_node(),
                cached.relation.wire_bytes(),
                cached.relation.len() as u64,
                Purpose::FinalResult,
                &enc.stats(self.options.xdb.stream_chunk_rows),
            );
            let exec_span = collector.span(
                SpanKind::Phase,
                "exec",
                "client",
                Some(query_span),
                overhead_ms,
                cached.exec_ms,
            );
            let fold = collector.span(
                SpanKind::Exec,
                "fold fan-out",
                cached.root_node.as_str(),
                Some(exec_span),
                overhead_ms,
                0.0,
            );
            collector.attr(fold, "fragments", fold_hits.to_string());
            collector.attr(query_span, "fold", "full");
            self.xdb.emit_transfer_spans(
                &collector,
                exec_span,
                ledger_mark,
                overhead_ms,
                cached.exec_ms,
            );
            collector.set_dur(query_span, overhead_ms + cached.exec_ms);
            let mut attributed = cached.attributed_control.clone();
            attributed.extend(cached.attributed_data.iter().cloned());
            attributed.extend(cluster.ledger.snapshot()[ledger_mark..].iter().cloned());
            for key in fkeys.values() {
                if let Some(f) = w.fragments.get_mut(key) {
                    f.refs -= 1;
                }
            }
            let relation = cached.relation.clone();
            let trace = collector.finish();
            let breakdown = PhaseBreakdown::from_trace(&trace);
            let latency = *clock - window_open;
            self.note_completion(&sub.tenant, query_id, latency, "full");
            return Ok(TenantOutcome {
                tenant: sub.tenant.clone(),
                index,
                query_id,
                relation,
                breakdown,
                trace,
                full_fold: true,
                fold_hits,
                admitted_ms: window_open,
                completed_ms: *clock,
                latency_ms: latency,
                attributed,
            });
        }

        // ---- Partial (or no) fold: claim live shared fragments, deploy
        // and execute only the rest.
        let mut reuse: HashMap<usize, String> = HashMap::new();
        for id in delegation.topo_order() {
            let key = &fkeys[&id];
            if let Some(f) = w.fragments.get_mut(key) {
                f.refs += 1;
                reuse.insert(id, f.view.clone());
            }
        }
        let fold_hits = reuse.len() as u64;
        if fold_hits > 0 {
            report.fold_hits += fold_hits;
            telemetry.metrics.counter_add(
                "session.fold_hits",
                &[("tenant", &sub.tenant)],
                fold_hits as f64,
            );
        }
        let release = |w: &mut WindowState| {
            for id in reuse.keys() {
                if let Some(f) = w.fragments.get_mut(&fkeys[id]) {
                    f.refs -= 1;
                }
            }
        };
        let script = match build_script_with_reuse(&delegation, query_id, cluster, &reuse) {
            Ok(s) => s,
            Err(e) => {
                release(w);
                return Err(e);
            }
        };
        // The full (unpruned) script of the same plan: the skeleton of the
        // as-if-alone timeline replay below. Only needed when something
        // was actually folded away.
        let solo_script = if reuse.is_empty() {
            None
        } else {
            match build_script(&delegation, query_id, cluster) {
                Ok(s) => Some(s),
                Err(e) => {
                    release(w);
                    return Err(e);
                }
            }
        };
        report.ddl_statements += script.steps.len() as u64;
        let ledger_mark = cluster.ledger.len();
        // Control traffic first, exactly like Xdb::submit, sliced per task
        // so each fragment's control cost can be attributed to its waiters.
        let mut control_ranges: HashMap<usize, (usize, usize)> = HashMap::new();
        for step in &script.steps {
            let at = cluster.ledger.len();
            cluster.ledger.record(
                self.xdb.client_node(),
                &step.node,
                step.sql.len() as u64,
                0,
                Purpose::ControlMessage,
            );
            control_ranges
                .entry(step.task)
                .and_modify(|r| r.1 = at + 1)
                .or_insert((at, at + 1));
        }
        let exec_span = collector.span(
            SpanKind::Phase,
            "exec",
            "client",
            Some(query_span),
            overhead_ms,
            0.0,
        );
        let trace_ctx = TraceCtx::new(&collector, overhead_ms, Some(exec_span));
        cluster.set_stream_chunk_rows(self.options.xdb.stream_chunk_rows);
        cluster.clear_codec_cache();
        if self.options.xdb.trace_operators {
            cluster.set_op_tracing(true);
        }
        // Deploy sequentially, slicing the ledger per task group (groups
        // are contiguous in script order). Fragment deployment order and
        // the simulated timeline replay are identical to the sequential
        // executor — which is itself bit-identical to the parallel one.
        let mut step_reports: Vec<ExecReport> = Vec::with_capacity(script.steps.len());
        let mut data_ranges: HashMap<usize, (usize, usize)> = HashMap::new();
        let mut exec_err = None;
        for step in &script.steps {
            let at = cluster.ledger.len();
            match cluster.execute(step.node.as_str(), &step.sql) {
                Ok(out) => step_reports.push(out.report),
                Err(e) => {
                    exec_err = Some(e);
                    break;
                }
            }
            let end = cluster.ledger.len();
            if end > at {
                data_ranges
                    .entry(step.task)
                    .and_modify(|r| r.1 = end)
                    .or_insert((at, end));
            }
        }
        let final_mark = cluster.ledger.len();
        // As-if-alone timeline: replay the finish over the full solo
        // script, splicing the owners' step reports in for reused
        // fragments, so a partially folded query reports the exact
        // breakdown and trace it would have had running alone. The
        // physical work above stays pruned — only the simulated-clock
        // replay is reconstructed (and the final XDB query it runs is the
        // waiter's own: its root view exists under its own name).
        let merged: Vec<ExecReport>;
        let (timeline_script, timeline_reports) = match &solo_script {
            None => (&script, &step_reports),
            Some(solo) => {
                let mut own = step_reports.iter();
                let mut cursors: HashMap<usize, usize> = HashMap::new();
                merged = solo
                    .steps
                    .iter()
                    .map(|step| {
                        if reuse.contains_key(&step.task) {
                            let cur = cursors.entry(step.task).or_insert(0);
                            let f = &w.fragments[&fkeys[&step.task]];
                            let r = f.reports.get(*cur).cloned().unwrap_or_default();
                            *cur += 1;
                            r
                        } else {
                            own.next().cloned().unwrap_or_default()
                        }
                    })
                    .collect();
                (solo, &merged)
            }
        };
        let exec = match exec_err {
            Some(e) => Err(e),
            None => finish_script(
                cluster,
                &delegation,
                timeline_script,
                timeline_reports,
                &trace_ctx,
            ),
        };
        if self.options.xdb.trace_operators {
            cluster.set_op_tracing(false);
        }
        let exec = match exec {
            Ok(o) => o,
            Err(e) => {
                // Tear down this query's own objects; shared fragments
                // stay for their other waiters.
                for (node, sql) in &script.cleanup {
                    let _ = cluster.execute(node.as_str(), sql);
                }
                release(w);
                telemetry
                    .metrics
                    .counter_add("xdb.queries", &[("status", "error")], 1.0);
                return Err(e);
            }
        };
        let final_data = cluster.ledger.snapshot()[final_mark..].to_vec();
        let fr_mark = cluster.ledger.len();
        let enc = wire::measure(exec.relation.columns(), exec.relation.len());
        cluster.ledger.record_wire(
            &script.root_node,
            self.xdb.client_node(),
            exec.relation.wire_bytes(),
            exec.relation.len() as u64,
            Purpose::FinalResult,
            &enc.stats(self.options.xdb.stream_chunk_rows),
        );
        // Register the freshly deployed fragments for later waiters.
        let snapshot = cluster.ledger.snapshot();
        let slice = |r: Option<&(usize, usize)>| -> Vec<Transfer> {
            match r {
                Some(&(a, b)) => snapshot[a..b].to_vec(),
                None => Vec::new(),
            }
        };
        // Per-task slices of the pruned execution's reports (steps of one
        // task group are contiguous in script order).
        let mut rep_ranges: HashMap<usize, (usize, usize)> = HashMap::new();
        for (i, step) in script.steps.iter().enumerate() {
            rep_ranges
                .entry(step.task)
                .and_modify(|r| r.1 = i + 1)
                .or_insert((i, i + 1));
        }
        let mut fresh = 0u64;
        for id in delegation.topo_order() {
            if reuse.contains_key(&id) {
                continue;
            }
            let reports = match rep_ranges.get(&id) {
                Some(&(a, b)) => step_reports[a..b].to_vec(),
                None => Vec::new(),
            };
            w.fragments.insert(
                fkeys[&id].clone(),
                Fragment {
                    view: view_name(query_id, id),
                    control: slice(control_ranges.get(&id)),
                    data: slice(data_ranges.get(&id)),
                    reports,
                    refs: 0,
                },
            );
            fresh += 1;
        }
        report.fragments_deployed += fresh;
        telemetry
            .metrics
            .counter_add("session.fragments_deployed", &[], fresh as f64);
        // Assemble this tenant's attributed ledger view in its own script
        // order: all control messages (shared fragments' included), then
        // all deployment data, then the final pipelined query's pulls and
        // the final-result transfer.
        let mut attributed_control: Vec<Transfer> = Vec::new();
        let mut attributed_data: Vec<Transfer> = Vec::new();
        for id in delegation.topo_order() {
            let f = &w.fragments[&fkeys[&id]];
            attributed_control.extend(f.control.iter().cloned());
            attributed_data.extend(f.data.iter().cloned());
        }
        attributed_data.extend(final_data.iter().cloned());
        w.results.insert(
            root_key,
            CachedResult {
                relation: exec.relation.clone(),
                exec_ms: exec.exec_ms,
                root_node: script.root_node.clone(),
                attributed_control: attributed_control.clone(),
                // Excludes this owner's final-result transfer: every
                // fan-out waiter records (and is attributed) its own.
                attributed_data: attributed_data.clone(),
            },
        );
        let mut attributed = attributed_control;
        attributed.extend(attributed_data);
        attributed.extend(snapshot[fr_mark..].iter().cloned());
        release(w);
        w.cleanup.push(script.cleanup.clone());

        *clock += exec.exec_ms;
        if fold_hits > 0 {
            collector.attr(query_span, "fold", "partial");
            let fold = collector.span(
                SpanKind::Exec,
                "fold reuse",
                "client",
                Some(exec_span),
                overhead_ms,
                0.0,
            );
            collector.attr(fold, "fragments", fold_hits.to_string());
        }
        collector.set_dur(exec_span, exec.exec_ms);
        collector.set_dur(query_span, overhead_ms + exec.exec_ms);
        self.xdb.emit_transfer_spans(
            &collector,
            exec_span,
            ledger_mark,
            overhead_ms,
            exec.exec_ms,
        );
        let trace = collector.finish();
        let breakdown = PhaseBreakdown::from_trace(&trace);
        telemetry
            .metrics
            .observe("xdb.phase_ms", &[("phase", "exec")], exec.exec_ms);
        telemetry
            .metrics
            .observe("xdb.total_ms", &[], breakdown.total_ms());
        telemetry
            .metrics
            .counter_add("xdb.queries", &[("status", "ok")], 1.0);
        let latency = *clock - window_open;
        self.note_completion(
            &sub.tenant,
            query_id,
            latency,
            if fold_hits > 0 { "partial" } else { "none" },
        );
        Ok(TenantOutcome {
            tenant: sub.tenant.clone(),
            index,
            query_id,
            relation: exec.relation,
            breakdown,
            trace,
            full_fold: false,
            fold_hits,
            admitted_ms: window_open,
            completed_ms: *clock,
            latency_ms: latency,
            attributed,
        })
    }

    /// Per-query completion telemetry: a tenant-correlated event plus the
    /// fleet latency histogram.
    fn note_completion(&self, tenant: &str, query_id: u64, latency_ms: f64, fold: &str) {
        let telemetry = self.xdb.cluster().telemetry();
        telemetry
            .metrics
            .observe("session.latency_ms", &[], latency_ms);
        let lat = format!("{latency_ms:.3}");
        telemetry.events.log(
            xdb_obs::Level::Info,
            "core.session",
            Some(query_id),
            latency_ms,
            "session query completed",
            &[("tenant", tenant), ("fold", fold), ("latency_ms", &lat)],
        );
    }
}

/// The planning trace a plan-cache hit synthesizes: bit-identical phase
/// durations and cache accounting to a real warm replan of the same query
/// (all probes hit, so `prep` is the parse baseline and `ann` is free).
fn synthetic_planning_trace(
    sql: &str,
    prep_probes: u64,
    ann_probes: u64,
    lopt_ms: f64,
) -> (TraceCollector, SpanId, f64) {
    let collector = TraceCollector::new();
    let query_span = collector.span(SpanKind::Query, "query", "client", None, 0.0, 0.0);
    collector.attr(query_span, "sql", sql);
    let prep = collector.span(
        SpanKind::Phase,
        "prep",
        "client",
        Some(query_span),
        0.0,
        PREP_PARSE_MS,
    );
    collector.attr(prep, "plan_cache", "hit");
    collector.span(
        SpanKind::Phase,
        "lopt",
        "client",
        Some(query_span),
        PREP_PARSE_MS,
        lopt_ms,
    );
    collector.span(
        SpanKind::Phase,
        "ann",
        "client",
        Some(query_span),
        PREP_PARSE_MS + lopt_ms,
        0.0,
    );
    collector.add("consults", 0.0);
    collector.add("consult.cache_hits", (prep_probes + ann_probes) as f64);
    collector.add("consult.cache_misses", 0.0);
    let overhead = PREP_PARSE_MS + lopt_ms;
    collector.set_dur(query_span, overhead);
    (collector, query_span, overhead)
}
