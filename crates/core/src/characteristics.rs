//! The qualitative system-characteristics matrix of Table II: which
//! distributed-data-processing paradigms satisfy which cross-database
//! requirements.

/// The requirement rows of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Characteristic {
    DbmsHeterogeneity,
    StorageAutonomy,
    ExecutionAutonomy,
    NoAdditionalQueryEngine,
    InterDbmsInteractions,
}

impl Characteristic {
    pub const ALL: [Characteristic; 5] = [
        Characteristic::DbmsHeterogeneity,
        Characteristic::StorageAutonomy,
        Characteristic::ExecutionAutonomy,
        Characteristic::NoAdditionalQueryEngine,
        Characteristic::InterDbmsInteractions,
    ];

    pub fn label(self) -> &'static str {
        match self {
            Characteristic::DbmsHeterogeneity => "DBMS Heterogeneity",
            Characteristic::StorageAutonomy => "Storage Autonomy",
            Characteristic::ExecutionAutonomy => "Execution Autonomy",
            Characteristic::NoAdditionalQueryEngine => "No additional QP engine",
            Characteristic::InterDbmsInteractions => "Inter-DBMS interactions",
        }
    }
}

/// The system-paradigm columns of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Paradigm {
    /// Parallel & distributed DBMSes (R*, Spanner, CockroachDB, Citus...).
    Ddbms,
    /// P2P DBMSes (Piazza, PIER, AmbientDB).
    Pdbms,
    /// Federated / mediator-wrapper systems (Garlic, Presto, SparkSQL).
    Fdbms,
    /// In-situ cross-database processing — this system.
    Xdb,
}

impl Paradigm {
    pub const ALL: [Paradigm; 4] = [
        Paradigm::Ddbms,
        Paradigm::Pdbms,
        Paradigm::Fdbms,
        Paradigm::Xdb,
    ];

    pub fn label(self) -> &'static str {
        match self {
            Paradigm::Ddbms => "DDBMS",
            Paradigm::Pdbms => "PDBMS",
            Paradigm::Fdbms => "FDBMS",
            Paradigm::Xdb => "XDB",
        }
    }
}

/// Support levels in the matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Support {
    Yes,
    No,
    /// Qualified (the paper's footnoted entries: PDBMS replication /
    /// extra-software caveats).
    Partial(&'static str),
}

impl Support {
    pub fn symbol(self) -> &'static str {
        match self {
            Support::Yes => "yes",
            Support::No => "no",
            Support::Partial(_) => "partial",
        }
    }
}

/// Table II, cell by cell.
pub fn support(paradigm: Paradigm, characteristic: Characteristic) -> Support {
    use Characteristic as C;
    use Paradigm as P;
    match (paradigm, characteristic) {
        (P::Ddbms, C::DbmsHeterogeneity) => Support::No,
        (P::Ddbms, C::StorageAutonomy) => Support::No,
        (P::Ddbms, C::ExecutionAutonomy) => Support::No,
        (P::Ddbms, C::NoAdditionalQueryEngine) => Support::Yes,
        (P::Ddbms, C::InterDbmsInteractions) => Support::Yes,

        (P::Pdbms, C::DbmsHeterogeneity) => Support::Yes,
        (P::Pdbms, C::StorageAutonomy) => {
            Support::Partial("data is at times replicated (e.g. Piazza)")
        }
        (P::Pdbms, C::ExecutionAutonomy) => Support::Yes,
        (P::Pdbms, C::NoAdditionalQueryEngine) => Support::No,
        (P::Pdbms, C::InterDbmsInteractions) => {
            Support::Partial("requires additional software (DHTs, local query processors)")
        }

        (P::Fdbms, C::DbmsHeterogeneity) => Support::Yes,
        (P::Fdbms, C::StorageAutonomy) => Support::Yes,
        (P::Fdbms, C::ExecutionAutonomy) => Support::Yes,
        (P::Fdbms, C::NoAdditionalQueryEngine) => Support::No,
        (P::Fdbms, C::InterDbmsInteractions) => Support::No,

        (P::Xdb, _) => Support::Yes,
    }
}

/// Render Table II as aligned text.
pub fn render_table() -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<26}", "Characteristics"));
    for p in Paradigm::ALL {
        out.push_str(&format!("{:>9}", p.label()));
    }
    out.push('\n');
    for c in Characteristic::ALL {
        out.push_str(&format!("{:<26}", c.label()));
        for p in Paradigm::ALL {
            out.push_str(&format!("{:>9}", support(p, c).symbol()));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xdb_satisfies_everything() {
        for c in Characteristic::ALL {
            assert_eq!(support(Paradigm::Xdb, c), Support::Yes);
        }
    }

    #[test]
    fn fdbms_needs_mediator() {
        assert_eq!(
            support(Paradigm::Fdbms, Characteristic::NoAdditionalQueryEngine),
            Support::No
        );
        assert_eq!(
            support(Paradigm::Fdbms, Characteristic::InterDbmsInteractions),
            Support::No
        );
    }

    #[test]
    fn ddbms_is_homogeneous() {
        assert_eq!(
            support(Paradigm::Ddbms, Characteristic::DbmsHeterogeneity),
            Support::No
        );
    }

    #[test]
    fn table_renders_all_cells() {
        let t = render_table();
        assert_eq!(t.lines().count(), 6);
        assert!(t.contains("XDB"));
        assert!(t.contains("partial"));
    }
}
