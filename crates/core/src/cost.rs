//! The cross-database placement/movement cost model (Equations 1–3 of
//! Section IV-B2).
//!
//! For a binary operator `o` whose inputs carry different annotations, the
//! optimizer solves
//!
//! ```text
//! argmin  cost(o, a) + cost(o_l --x_l--> o, a) + cost(o_r --x_r--> o, a)
//! a, x_l, x_r
//! ```
//!
//! with `a` pruned to the two input annotations (the `|R|+|S| >
//! max(|R|,|S|)` argument of the paper) unless pruning is disabled for the
//! ablation study.
//!
//! The paper leaves the dependence of `cost(o, a)` on the movement type
//! implicit; we make it explicit (see DESIGN.md §3): a join consuming a
//! *pipelined* foreign input pays the wrapper's per-row fetch overhead γ,
//! while a join over a *materialized* local input enjoys the
//! local-optimization discount β (statistics, hash build on a real table).
//! Without this refinement explicit movement would never be chosen,
//! contradicting the paper's own optimal plans (Fig 5a).

use crate::profiles::CostProfiles;
use xdb_engine::profile::EngineProfile;
use xdb_net::{Movement, NodeId, Topology};

/// Local-optimization discount for joins over materialized inputs.
pub const MATERIALIZED_JOIN_DISCOUNT: f64 = 0.9;

/// One candidate input of a cross-database operator.
#[derive(Debug, Clone)]
pub struct InputSide {
    pub dbms: NodeId,
    /// Estimated rows flowing out of this input.
    pub rows: f64,
    /// Estimated bytes flowing out of this input.
    pub bytes: f64,
}

/// A resolved placement decision.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    pub dbms: NodeId,
    /// Movement for the left input (`Implicit` when it stays local).
    pub left_move: Movement,
    /// Movement for the right input.
    pub right_move: Movement,
    pub cost: f64,
    /// Number of EXPLAIN-style consulting round-trips spent evaluating
    /// alternatives.
    pub consults: u64,
}

/// Cost of moving `rows`/`bytes` from `src` into `a` and consuming them
/// there via movement `x` (Equations 2–3).
#[allow(clippy::too_many_arguments)] // mirrors Eq. 2–3's parameter list
pub fn movement_cost(
    topology: &Topology,
    src: &NodeId,
    a: &NodeId,
    a_profile: &EngineProfile,
    src_startup_ms: f64,
    rows: f64,
    bytes: f64,
    x: Movement,
) -> f64 {
    movement_cost_split(topology, src, a, a_profile, src_startup_ms, rows, bytes, x).1
}

/// [`movement_cost`] with the pure wire time broken out: returns
/// `(wire_ms, total_ms)`. The wire term is what the observatory re-prices
/// with observed encoded bytes; the remainder is per-row engine overhead.
#[allow(clippy::too_many_arguments)] // mirrors Eq. 2–3's parameter list
pub fn movement_cost_split(
    topology: &Topology,
    src: &NodeId,
    a: &NodeId,
    a_profile: &EngineProfile,
    src_startup_ms: f64,
    rows: f64,
    bytes: f64,
    x: Movement,
) -> (f64, f64) {
    movement_cost_split_learned(
        topology,
        src,
        a,
        a_profile,
        src_startup_ms,
        rows,
        bytes,
        x,
        None,
    )
}

/// [`movement_cost_split`] re-priced through learned cost profiles.
///
/// With `learned = None` — or when the store has no sample at any
/// granularity for the edge — this is **bit-exactly** the static model:
/// the learned branches are skipped entirely, not multiplied by 1.0.
/// Otherwise:
///
/// - the wire term prices the *learned encoded* byte volume
///   (`bytes × wire_ratio(src→a/x)`) instead of the raw estimate;
/// - an explicit move's serialized producer start-up is scaled by the
///   producer engine's learned compute factor.
#[allow(clippy::too_many_arguments)] // mirrors Eq. 2–3's parameter list
pub fn movement_cost_split_learned(
    topology: &Topology,
    src: &NodeId,
    a: &NodeId,
    a_profile: &EngineProfile,
    src_startup_ms: f64,
    rows: f64,
    bytes: f64,
    x: Movement,
    learned: Option<&CostProfiles>,
) -> (f64, f64) {
    if src == a {
        return (0.0, 0.0);
    }
    let wire = match learned.and_then(|p| p.wire_ratio(src.as_str(), a.as_str(), x)) {
        Some(r) => topology.transfer_ms(
            src,
            a,
            (bytes.max(0.0) * r) as u64,
            a_profile.protocol_overhead,
        ),
        None => topology.transfer_ms(src, a, bytes.max(0.0) as u64, a_profile.protocol_overhead),
    };
    let total = match x {
        // Implicit: wire cost + per-row wrapper fetch overhead γ at the
        // consumer. The producer's start-up overlaps with the consumer's
        // pipeline, so it is not charged here.
        Movement::Implicit => wire + rows * a_profile.foreign_row_cost_ms,
        // Explicit: wire cost + scanCost — writing the materialized copy
        // and reading it back once (Eq. 3's scan of the relation at `a`).
        // Materialization serializes the producer's query *before* the
        // consumer runs, so the producer's start-up lands on the critical
        // path.
        Movement::Explicit => {
            let src_startup = match learned.and_then(|p| p.compute_factor(src.as_str())) {
                Some(f) => src_startup_ms * f,
                None => src_startup_ms,
            };
            wire + src_startup
                + rows * a_profile.write_cost_ms
                + rows * a_profile.cpu_tuple_cost_ms * crate::cost::SCAN_WEIGHT
        }
    };
    (wire, total)
}

/// Weight of re-scanning a materialized relation (mirrors
/// `xdb_engine::exec::weights::SCAN`).
pub const SCAN_WEIGHT: f64 = 0.2;

/// Cost of evaluating the join at `a`, given how each input arrives.
pub fn join_exec_cost(
    a_profile: &EngineProfile,
    left_rows: f64,
    right_rows: f64,
    out_rows: f64,
    any_materialized: bool,
) -> f64 {
    let work =
        (left_rows + right_rows + out_rows) * a_profile.cpu_tuple_cost_ms * a_profile.olap_factor;
    if any_materialized {
        work * MATERIALIZED_JOIN_DISCOUNT
    } else {
        work
    }
}

/// Eq. 1–3 cost split of one candidate, in simulated milliseconds. The
/// invariant `total() == CandidateCost::cost` holds exactly (same
/// floating-point additions, same order).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostComponents {
    /// Pure wire time of the left input (`topology.transfer_ms` over the
    /// estimated raw bytes); zero when the input is local to `a`.
    pub wire_left_ms: f64,
    pub wire_right_ms: f64,
    /// Full Eq. 2–3 movement cost of the left input (wire + per-row
    /// wrapper/write overhead); includes `wire_left_ms`.
    pub move_left_ms: f64,
    pub move_right_ms: f64,
    /// Eq. 1 join execution cost at `a`.
    pub exec_ms: f64,
    /// Consumer engine start-up charged by placing the stage at `a`.
    pub startup_ms: f64,
}

impl CostComponents {
    pub fn total(&self) -> f64 {
        self.exec_ms + self.move_left_ms + self.move_right_ms + self.startup_ms
    }
}

/// One fully-costed `(a, x_l, x_r)` option considered by
/// [`decide_placement`] — kept for observability: the trace records what
/// the optimizer weighed, not just what it chose.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateCost {
    pub dbms: NodeId,
    pub left_move: Movement,
    pub right_move: Movement,
    pub cost: f64,
    /// Consulting round-trips paid evaluating this option (always 1: one
    /// EXPLAIN-style probe per `(a, x_l, x_r)` combination).
    pub consults: u64,
    /// Per-component split of `cost`, for the cost-model observatory.
    pub components: CostComponents,
}

/// Solve Equation 1 for one cross-database binary operator.
///
/// `candidates` is the annotation search space: the two input annotations
/// under the paper's pruning, or every DBMS when pruning is disabled.
/// `profiles` resolves a node to its engine profile (the "consulting"
/// interface); every `(a, x_l, x_r)` option evaluated counts as one
/// consulting round-trip.
pub fn decide_placement(
    topology: &Topology,
    profiles: &dyn Fn(&NodeId) -> EngineProfile,
    left: &InputSide,
    right: &InputSide,
    out_rows: f64,
    candidates: &[NodeId],
    force_movement: Option<Movement>,
) -> Placement {
    decide_placement_detailed(
        topology,
        profiles,
        left,
        right,
        out_rows,
        candidates,
        force_movement,
    )
    .0
}

/// Like [`decide_placement`], but also returns every costed option in
/// evaluation order, for trace/EXPLAIN output.
pub fn decide_placement_detailed(
    topology: &Topology,
    profiles: &dyn Fn(&NodeId) -> EngineProfile,
    left: &InputSide,
    right: &InputSide,
    out_rows: f64,
    candidates: &[NodeId],
    force_movement: Option<Movement>,
) -> (Placement, Vec<CandidateCost>) {
    decide_placement_with_profiles(
        topology,
        profiles,
        left,
        right,
        out_rows,
        candidates,
        force_movement,
        None,
    )
}

/// [`decide_placement_detailed`] with every candidate re-priced through
/// learned cost profiles. With `learned = None` (or an empty/irrelevant
/// store) every arithmetic operation is identical to the static path —
/// the bit-exact contract behind the `XDB_STATIC_COSTS=1` kill switch.
///
/// Learned re-pricing per candidate `a`:
/// - movement terms via [`movement_cost_split_learned`] (encoded-byte
///   wire estimates, calibrated producer start-up);
/// - Eq. 1 exec and consumer start-up scaled by `a`'s learned compute
///   factor (observed statement work per predicted compute unit).
///
/// The `CostComponents` breakdown stores the *scaled* values, so the
/// `total() == cost` invariant holds bit-exactly in both modes.
#[allow(clippy::too_many_arguments)] // mirrors decide_placement_detailed + profile store
pub fn decide_placement_with_profiles(
    topology: &Topology,
    profiles: &dyn Fn(&NodeId) -> EngineProfile,
    left: &InputSide,
    right: &InputSide,
    out_rows: f64,
    candidates: &[NodeId],
    force_movement: Option<Movement>,
    learned: Option<&CostProfiles>,
) -> (Placement, Vec<CandidateCost>) {
    let movements: &[Movement] = match force_movement {
        Some(Movement::Implicit) => &[Movement::Implicit],
        Some(Movement::Explicit) => &[Movement::Explicit],
        None => &[Movement::Implicit, Movement::Explicit],
    };
    let mut best: Option<Placement> = None;
    let mut consults = 0u64;
    let mut costed: Vec<CandidateCost> = Vec::new();
    for a in candidates {
        let a_profile = &profiles(a);
        // Per input: if it is already local to `a`, it neither moves nor
        // offers a movement choice.
        let left_opts: &[Movement] = if &left.dbms == a {
            &[Movement::Implicit]
        } else {
            movements
        };
        let right_opts: &[Movement] = if &right.dbms == a {
            &[Movement::Implicit]
        } else {
            movements
        };
        for &xl in left_opts {
            for &xr in right_opts {
                consults += 1;
                let (wire_l, move_l) = movement_cost_split_learned(
                    topology,
                    &left.dbms,
                    a,
                    a_profile,
                    profiles(&left.dbms).startup_ms,
                    left.rows,
                    left.bytes,
                    xl,
                    learned,
                );
                let (wire_r, move_r) = movement_cost_split_learned(
                    topology,
                    &right.dbms,
                    a,
                    a_profile,
                    profiles(&right.dbms).startup_ms,
                    right.rows,
                    right.bytes,
                    xr,
                    learned,
                );
                let any_materialized = (xl == Movement::Explicit && &left.dbms != a)
                    || (xr == Movement::Explicit && &right.dbms != a);
                let exec_static =
                    join_exec_cost(a_profile, left.rows, right.rows, out_rows, any_materialized);
                // Placing the operator at `a` pulls another pipeline stage
                // onto that engine: its per-query start-up is part of
                // cost(o, a). This is what steers plans away from
                // high-start-up engines (Hive) in the heterogeneous setup
                // (Fig 10). A learned compute factor calibrates both the
                // exec and start-up terms to `a`'s observed statement work.
                let (exec, startup) = match learned.and_then(|p| p.compute_factor(a.as_str())) {
                    Some(f) => (exec_static * f, a_profile.startup_ms * f),
                    None => (exec_static, a_profile.startup_ms),
                };
                let cost = exec + move_l + move_r + startup;
                costed.push(CandidateCost {
                    dbms: a.clone(),
                    left_move: xl,
                    right_move: xr,
                    cost,
                    consults: 1,
                    components: CostComponents {
                        wire_left_ms: wire_l,
                        wire_right_ms: wire_r,
                        move_left_ms: move_l,
                        move_right_ms: move_r,
                        exec_ms: exec,
                        startup_ms: startup,
                    },
                });
                let better = match &best {
                    Some(b) => cost < b.cost - 1e-12,
                    None => true,
                };
                if better {
                    best = Some(Placement {
                        dbms: a.clone(),
                        left_move: xl,
                        right_move: xr,
                        cost,
                        consults: 0,
                    });
                }
            }
        }
    }
    let mut placement = best.expect("at least one candidate");
    placement.consults = consults;
    (placement, costed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdb_net::Topology;

    fn setup() -> (Topology, EngineProfile) {
        (
            Topology::lan(&["db1", "db2", "db3"]),
            EngineProfile::postgres(),
        )
    }

    fn side(dbms: &str, rows: f64) -> InputSide {
        InputSide {
            dbms: NodeId::new(dbms),
            rows,
            bytes: rows * 50.0,
        }
    }

    #[test]
    fn local_input_costs_nothing_to_move() {
        let (topo, p) = setup();
        let c = movement_cost(
            &topo,
            &NodeId::new("db1"),
            &NodeId::new("db1"),
            &p,
            p.startup_ms,
            1e6,
            5e7,
            Movement::Implicit,
        );
        assert_eq!(c, 0.0);
    }

    #[test]
    fn explicit_costs_more_to_move_than_implicit_for_small_inputs() {
        let (topo, p) = setup();
        let (a, b) = (NodeId::new("db1"), NodeId::new("db2"));
        let i = movement_cost(
            &topo,
            &a,
            &b,
            &p,
            p.startup_ms,
            1_000.0,
            50_000.0,
            Movement::Implicit,
        );
        let e = movement_cost(
            &topo,
            &a,
            &b,
            &p,
            p.startup_ms,
            1_000.0,
            50_000.0,
            Movement::Explicit,
        );
        assert!(e > i);
    }

    #[test]
    fn placement_moves_small_side_to_big_side() {
        let (topo, pg) = setup();
        let profiles = move |_: &NodeId| EngineProfile::postgres();
        let _ = pg;
        let small = side("db1", 1_000.0);
        let big = side("db2", 1_000_000.0);
        let placement = decide_placement(
            &topo,
            &profiles,
            &small,
            &big,
            1_000_000.0,
            &[small.dbms.clone(), big.dbms.clone()],
            None,
        );
        // Moving the small side to db2 is cheaper than moving the big one.
        assert_eq!(placement.dbms.as_str(), "db2");
        assert_eq!(placement.right_move, Movement::Implicit); // local side
                                                              // a=db1: right moves (2 options); a=db2: left moves (2 options) —
                                                              // the paper's four options per cross-database operation (Sec VI-E).
        assert_eq!(placement.consults, 4);
    }

    #[test]
    fn explicit_chosen_when_moved_side_tiny_vs_huge_local_join() {
        // Materialization discount on a huge join outweighs the write cost
        // of a tiny moved input.
        let (topo, _) = setup();
        let profiles = |_: &NodeId| EngineProfile::postgres();
        let moved = side("db1", 10_000.0);
        let kept = side("db2", 10_000_000.0);
        let placement = decide_placement(
            &topo,
            &profiles,
            &moved,
            &kept,
            10_000_000.0,
            &[moved.dbms.clone(), kept.dbms.clone()],
            None,
        );
        assert_eq!(placement.dbms.as_str(), "db2");
        assert_eq!(
            placement.left_move,
            Movement::Explicit,
            "tiny side should be materialized next to the huge join"
        );
    }

    #[test]
    fn force_movement_restricts_options() {
        let (topo, _) = setup();
        let profiles = |_: &NodeId| EngineProfile::postgres();
        let l = side("db1", 10_000.0);
        let r = side("db2", 10_000_000.0);
        let forced = decide_placement(
            &topo,
            &profiles,
            &l,
            &r,
            1e7,
            &[l.dbms.clone(), r.dbms.clone()],
            Some(Movement::Implicit),
        );
        assert_eq!(forced.left_move, Movement::Implicit);
        assert_eq!(forced.right_move, Movement::Implicit);
    }

    #[test]
    fn candidate_components_sum_to_cost_exactly() {
        let (topo, _) = setup();
        let profiles = |_: &NodeId| EngineProfile::postgres();
        let l = side("db1", 100_000.0);
        let r = side("db2", 200_000.0);
        let (_, costed) = decide_placement_detailed(
            &topo,
            &profiles,
            &l,
            &r,
            200_000.0,
            &[l.dbms.clone(), r.dbms.clone()],
            None,
        );
        assert!(!costed.is_empty());
        for c in &costed {
            // Bit-exact: the breakdown is the same additions in the same
            // order as the total the optimizer compared.
            assert_eq!(c.components.total(), c.cost);
            assert!(c.components.wire_left_ms <= c.components.move_left_ms);
            assert!(c.components.wire_right_ms <= c.components.move_right_ms);
            // The moved side's wire term is exactly the topology's price
            // for the estimated raw bytes.
            if c.dbms != l.dbms {
                let p = profiles(&c.dbms);
                let expect =
                    topo.transfer_ms(&l.dbms, &c.dbms, l.bytes as u64, p.protocol_overhead);
                assert_eq!(c.components.wire_left_ms, expect);
            }
        }
    }

    #[test]
    fn empty_profiles_match_static_costs_bit_exactly() {
        let (topo, _) = setup();
        let profiles = |_: &NodeId| EngineProfile::postgres();
        let l = side("db1", 100_000.0);
        let r = side("db2", 200_000.0);
        let cands = [l.dbms.clone(), r.dbms.clone()];
        let empty = CostProfiles::default();
        let (p_static, c_static) =
            decide_placement_detailed(&topo, &profiles, &l, &r, 2e5, &cands, None);
        let (p_learned, c_learned) = decide_placement_with_profiles(
            &topo,
            &profiles,
            &l,
            &r,
            2e5,
            &cands,
            None,
            Some(&empty),
        );
        assert_eq!(p_static, p_learned);
        assert_eq!(c_static, c_learned);
    }

    #[test]
    fn learned_wire_ratio_reprices_the_moved_side() {
        let (topo, _) = setup();
        let l = side("db1", 100_000.0);
        let r = side("db2", 200_000.0);
        // History: db1's exports compress 4x on the wire; saturate the
        // prior so the smoothed factor sits at the observed mean.
        let mut learned = CostProfiles::default();
        for _ in 0..1000 {
            learned.observe_wire("db1", "db2", Movement::Implicit, 0.25);
        }
        let p = EngineProfile::postgres();
        let (wire_static, _) = movement_cost_split(
            &topo,
            &l.dbms,
            &r.dbms,
            &p,
            p.startup_ms,
            l.rows,
            l.bytes,
            Movement::Implicit,
        );
        let (wire_learned, _) = movement_cost_split_learned(
            &topo,
            &l.dbms,
            &r.dbms,
            &p,
            p.startup_ms,
            l.rows,
            l.bytes,
            Movement::Implicit,
            Some(&learned),
        );
        assert!(
            wire_learned < wire_static * 0.5,
            "{wire_learned} vs {wire_static}"
        );
        // An edge the store never saw by shape, link, or consuming engine
        // still falls back to the global ratio — learned compression is a
        // federation-wide signal until finer-grained samples arrive.
        let (wire_other, _) = movement_cost_split_learned(
            &topo,
            &r.dbms,
            &NodeId::new("db3"),
            &p,
            p.startup_ms,
            r.rows,
            r.bytes,
            Movement::Implicit,
            Some(&learned),
        );
        let (wire_other_static, _) = movement_cost_split(
            &topo,
            &r.dbms,
            &NodeId::new("db3"),
            &p,
            p.startup_ms,
            r.rows,
            r.bytes,
            Movement::Implicit,
        );
        assert!(wire_other < wire_other_static, "{wire_other}");
    }

    #[test]
    fn asymmetric_wire_ratios_flip_the_placement_side() {
        let (topo, _) = setup();
        let profiles = |_: &NodeId| EngineProfile::postgres();
        // Statically the tie goes to moving the (slightly) smaller left
        // side into db2.
        let l = side("db1", 90_000.0);
        let r = side("db2", 100_000.0);
        let cands = [l.dbms.clone(), r.dbms.clone()];
        let (static_placement, _) =
            decide_placement_detailed(&topo, &profiles, &l, &r, 1e5, &cands, None);
        assert_eq!(static_placement.dbms.as_str(), "db2");
        // Learned: db1→db2 traffic barely compresses while db2→db1
        // compresses 10x (e.g. dictionary-coded strings), so moving the
        // *right* side is actually cheaper.
        let mut learned = CostProfiles::default();
        for _ in 0..1000 {
            learned.observe_wire("db1", "db2", Movement::Implicit, 1.0);
            learned.observe_wire("db1", "db2", Movement::Explicit, 1.0);
            learned.observe_wire("db2", "db1", Movement::Implicit, 0.1);
            learned.observe_wire("db2", "db1", Movement::Explicit, 0.1);
        }
        let (learned_placement, costed) = decide_placement_with_profiles(
            &topo,
            &profiles,
            &l,
            &r,
            1e5,
            &cands,
            None,
            Some(&learned),
        );
        assert_eq!(learned_placement.dbms.as_str(), "db1");
        // Same search space, same consult accounting, exact breakdowns.
        assert_eq!(learned_placement.consults, static_placement.consults);
        for c in &costed {
            assert_eq!(c.components.total(), c.cost);
        }
    }

    #[test]
    fn learned_compute_factor_scales_exec_and_startup() {
        let (topo, _) = setup();
        let profiles = |_: &NodeId| EngineProfile::postgres();
        let l = side("db1", 100_000.0);
        let r = side("db2", 200_000.0);
        let cands = [l.dbms.clone(), r.dbms.clone()];
        let mut learned = CostProfiles::default();
        for _ in 0..1000 {
            learned.observe_compute("db2", 1.8);
        }
        let (_, c_static) = decide_placement_detailed(&topo, &profiles, &l, &r, 2e5, &cands, None);
        let (_, c_learned) = decide_placement_with_profiles(
            &topo,
            &profiles,
            &l,
            &r,
            2e5,
            &cands,
            None,
            Some(&learned),
        );
        let f = learned.compute_factor("db2").unwrap();
        assert!(f > 1.7, "{f}");
        for (s, c) in c_static.iter().zip(&c_learned) {
            assert_eq!(c.components.total(), c.cost);
            if c.dbms.as_str() == "db2" {
                assert!((c.components.exec_ms - s.components.exec_ms * f).abs() < 1e-9);
                assert!((c.components.startup_ms - s.components.startup_ms * f).abs() < 1e-9);
            } else {
                // db1 was never observed: untouched.
                assert_eq!(c.components.exec_ms, s.components.exec_ms);
                assert_eq!(c.components.startup_ms, s.components.startup_ms);
            }
        }
    }

    #[test]
    fn third_party_candidate_is_worse_than_input_annotations() {
        // The pruning argument: moving both R and S to a third DBMS always
        // transfers more than moving one into the other (uniform network).
        let (topo, _) = setup();
        let profiles = |_: &NodeId| EngineProfile::postgres();
        let l = side("db1", 100_000.0);
        let r = side("db2", 200_000.0);
        let all = [NodeId::new("db1"), NodeId::new("db2"), NodeId::new("db3")];
        let placement = decide_placement(&topo, &profiles, &l, &r, 200_000.0, &all, None);
        assert_ne!(placement.dbms.as_str(), "db3");
    }
}
