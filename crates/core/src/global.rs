//! Global catalog: the Global-as-View union of the local schemas
//! (Section III), plus the statistics XDB gathers by *consulting* the
//! underlying DBMSes during query preparation.

use crate::consult_cache::{ConsultCache, ConsultReply};
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use xdb_engine::cluster::Cluster;
use xdb_engine::error::{EngineError, Result};
use xdb_net::NodeId;
use xdb_obs::{MetricsSnapshot, Telemetry};
use xdb_sql::bind::{ResolvedRelation, SchemaProvider};
use xdb_sql::stats::{ColumnStats, StatsProvider};
use xdb_sql::value::DataType;

/// Location and schema of one global table.
#[derive(Debug, Clone)]
pub struct GlobalTable {
    pub dbms: NodeId,
    pub fields: Vec<(String, DataType)>,
}

/// Consulted statistics for one table.
#[derive(Debug, Clone, Default)]
struct ConsultedStats {
    rows: f64,
    columns: HashMap<String, ColumnStats>,
}

/// The middleware's view of the federation: which table lives where
/// (the global schema is the union of local schemas), and cached statistics
/// obtained through the DBMS connectors.
pub struct GlobalCatalog {
    tables: HashMap<String, GlobalTable>,
    stats: RwLock<HashMap<String, ConsultedStats>>,
    /// Estimated row counts registered for task-output placeholders during
    /// plan annotation.
    placeholders: RwLock<HashMap<String, f64>>,
    /// Number of metadata fetches performed (drives the `prep` phase of
    /// the Fig 15 breakdown).
    metadata_fetches: RwLock<u64>,
    /// Memoized consulting round-trips, validated against each node's DDL
    /// generation.
    consult_cache: ConsultCache,
    /// Fleet telemetry sink; [`GlobalCatalog::discover`] adopts the
    /// cluster's handle so consultation counters land next to the engine
    /// and network metrics of the same federation.
    telemetry: Arc<Telemetry>,
    /// Learned cost profiles (feedback from the cost-model observatory),
    /// seeded from `XDB_PROFILE_DIR` / `repro --profiles` and grown by
    /// [`GlobalCatalog::absorb_cost_observation`] after each query.
    profiles: RwLock<crate::profiles::CostProfiles>,
}

impl GlobalCatalog {
    pub fn new() -> GlobalCatalog {
        GlobalCatalog {
            tables: HashMap::new(),
            stats: RwLock::new(HashMap::new()),
            placeholders: RwLock::new(HashMap::new()),
            metadata_fetches: RwLock::new(0),
            consult_cache: ConsultCache::new(),
            telemetry: Arc::clone(xdb_obs::telemetry::global()),
            profiles: RwLock::new(crate::profiles::seed_profiles()),
        }
    }

    /// Attach a (typically isolated) telemetry handle.
    pub fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        self.telemetry = telemetry;
    }

    /// Register a table of the global schema as residing on `dbms`.
    pub fn register(
        &mut self,
        name: &str,
        dbms: impl Into<String>,
        fields: Vec<(String, DataType)>,
    ) {
        self.tables.insert(
            name.to_ascii_lowercase(),
            GlobalTable {
                dbms: NodeId::new(dbms),
                fields,
            },
        );
    }

    /// Discover every base table of every engine in the cluster — the
    /// union-of-local-schemas bootstrap.
    pub fn discover(cluster: &Cluster) -> Result<GlobalCatalog> {
        let mut catalog = GlobalCatalog::new();
        catalog.telemetry = Arc::clone(cluster.telemetry());
        for node in cluster.node_names() {
            let engine = cluster.engine(&node)?;
            let names = engine.with_catalog(|c| c.names());
            for name in names {
                let fields = engine.relation_fields(&name)?;
                if catalog.tables.contains_key(&name) {
                    return Err(EngineError::Catalog(format!(
                        "global name collision for table {name:?}"
                    )));
                }
                catalog.register(&name, node.clone(), fields);
            }
        }
        Ok(catalog)
    }

    pub fn table(&self, name: &str) -> Option<&GlobalTable> {
        self.tables.get(&name.to_ascii_lowercase())
    }

    /// Home DBMS of a table.
    pub fn location(&self, name: &str) -> Option<&NodeId> {
        self.table(name).map(|t| &t.dbms)
    }

    pub fn table_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.tables.keys().cloned().collect();
        v.sort();
        v
    }

    /// Consult the owning engine for metadata and statistics of `table`,
    /// memoizing the round-trip in the consultation cache. Returns whether
    /// the probe was answered from cache; each miss counts as one metadata
    /// fetch. Any DDL executed against the owning node bumps its DDL
    /// generation and thereby invalidates the cached probe, so the next
    /// consultation re-fetches fresh statistics.
    pub fn consult(&self, cluster: &Cluster, table: &str) -> Result<bool> {
        let key = table.to_ascii_lowercase();
        let Some(gt) = self.table(&key) else {
            return Err(EngineError::Catalog(format!("unknown table {table:?}")));
        };
        let engine = cluster.engine(gt.dbms.as_str())?;
        let generation = engine.ddl_generation();
        let probe = format!("METADATA {key}");
        if self
            .consult_cache
            .lookup(&gt.dbms, &probe, generation)
            .is_some()
        {
            self.telemetry
                .metrics
                .counter_add("consult.probes", &[("result", "hit")], 1.0);
            return Ok(true);
        }
        let consulted = match engine.consult_stats(&key) {
            Some((rows, columns)) => ConsultedStats { rows, columns },
            None => ConsultedStats::default(),
        };
        *self.metadata_fetches.write() += 1;
        self.stats.write().insert(key, consulted);
        self.consult_cache
            .store(&gt.dbms, &probe, generation, ConsultReply::Stats);
        self.telemetry
            .metrics
            .counter_add("consult.probes", &[("result", "miss")], 1.0);
        Ok(false)
    }

    /// Point-in-time snapshot of this catalog's own accounting counters,
    /// in the diffable [`MetricsSnapshot`] shape the trace layer uses.
    /// Callers bracket a run with two snapshots and
    /// [`MetricsSnapshot::diff`] to get a per-run delta immune to whatever
    /// other queries did before.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut counters = BTreeMap::new();
        counters.insert("catalog.tables".to_string(), self.tables.len() as f64);
        counters.insert(
            "catalog.metadata_fetches".to_string(),
            *self.metadata_fetches.read() as f64,
        );
        counters.insert(
            "consult.cache_hits".to_string(),
            self.consult_cache.hits() as f64,
        );
        counters.insert(
            "consult.cache_misses".to_string(),
            self.consult_cache.misses() as f64,
        );
        counters.insert(
            "consult.cache_entries".to_string(),
            self.consult_cache.len() as f64,
        );
        MetricsSnapshot { counters }
    }

    /// The consultation cache shared by preparation and annotation.
    pub fn consult_cache(&self) -> &ConsultCache {
        &self.consult_cache
    }

    /// Number of metadata fetches so far.
    pub fn metadata_fetches(&self) -> u64 {
        *self.metadata_fetches.read()
    }

    pub fn reset_metadata_counter(&self) {
        *self.metadata_fetches.write() = 0;
    }

    /// Clone of the current learned cost profiles.
    pub fn profiles_snapshot(&self) -> crate::profiles::CostProfiles {
        self.profiles.read().clone()
    }

    /// The profiles the annotator should price against: `None` while
    /// nothing has been learned, so candidate costing stays bit-exactly
    /// on the static model until real feedback exists.
    pub fn learned_profiles(&self) -> Option<crate::profiles::CostProfiles> {
        let p = self.profiles.read();
        if p.is_empty() {
            None
        } else {
            Some(p.clone())
        }
    }

    /// Replace the learned profiles wholesale (replay/calibration arms).
    pub fn set_profiles(&self, profiles: crate::profiles::CostProfiles) {
        *self.profiles.write() = profiles;
    }

    /// Fold one executed query's cost observation (plus per-engine
    /// statement work) into the learned profiles.
    pub fn absorb_cost_observation(
        &self,
        cost: &xdb_obs::costmodel::CostObservation,
        statements: &[(String, f64)],
    ) {
        self.profiles.write().absorb(cost, statements);
    }

    /// Register the estimated cardinality of a task-output placeholder so
    /// downstream cost decisions can use it.
    pub fn register_placeholder(&self, name: &str, rows: f64) {
        self.placeholders
            .write()
            .insert(name.to_ascii_lowercase(), rows);
    }

    pub fn clear_placeholders(&self) {
        self.placeholders.write().clear();
    }
}

impl Default for GlobalCatalog {
    fn default() -> Self {
        Self::new()
    }
}

impl SchemaProvider for GlobalCatalog {
    fn resolve_relation(&self, name: &str) -> Option<ResolvedRelation> {
        self.table(name).map(|t| ResolvedRelation::Base {
            fields: t.fields.clone(),
        })
    }
}

impl StatsProvider for GlobalCatalog {
    fn table_rows(&self, relation: &str) -> Option<f64> {
        let key = relation.to_ascii_lowercase();
        if let Some(rows) = self.placeholders.read().get(&key) {
            return Some(*rows);
        }
        self.stats.read().get(&key).map(|s| s.rows)
    }

    fn column_stats(&self, relation: &str, column: &str) -> Option<ColumnStats> {
        self.stats
            .read()
            .get(&relation.to_ascii_lowercase())?
            .columns
            .get(&column.to_ascii_lowercase())
            .cloned()
    }
}

/// Convenience: an `Arc<GlobalCatalog>` is the shape the client holds.
pub type SharedCatalog = Arc<GlobalCatalog>;

#[cfg(test)]
mod tests {
    use super::*;
    use xdb_engine::profile::EngineProfile;

    fn cluster() -> Cluster {
        let c = Cluster::lan(&["db1", "db2"], EngineProfile::postgres());
        c.execute_script(
            "db1",
            "CREATE TABLE citizen (id BIGINT, age BIGINT);
             INSERT INTO citizen VALUES (1, 30), (2, 40);",
        )
        .unwrap();
        c.execute_script(
            "db2",
            "CREATE TABLE vaccines (id BIGINT, vtype VARCHAR);
             INSERT INTO vaccines VALUES (1, 'mRNA');",
        )
        .unwrap();
        c
    }

    #[test]
    fn discover_unions_schemas() {
        let c = cluster();
        let g = GlobalCatalog::discover(&c).unwrap();
        assert_eq!(g.table_names(), vec!["citizen", "vaccines"]);
        assert_eq!(g.location("citizen").unwrap().as_str(), "db1");
        assert_eq!(g.location("VACCINES").unwrap().as_str(), "db2");
        assert!(matches!(
            g.resolve_relation("citizen"),
            Some(ResolvedRelation::Base { .. })
        ));
    }

    #[test]
    fn name_collision_detected() {
        let c = cluster();
        c.execute("db2", "CREATE TABLE citizen (id BIGINT)")
            .unwrap();
        assert!(GlobalCatalog::discover(&c).is_err());
    }

    #[test]
    fn consultation_caches_and_counts() {
        let c = cluster();
        let g = GlobalCatalog::discover(&c).unwrap();
        assert_eq!(g.table_rows("citizen"), None);
        assert!(!g.consult(&c, "citizen").unwrap());
        assert_eq!(g.table_rows("citizen"), Some(2.0));
        assert_eq!(g.metadata_fetches(), 1);
        // Cached: no second fetch.
        assert!(g.consult(&c, "citizen").unwrap());
        assert_eq!(g.metadata_fetches(), 1);
        assert_eq!(g.consult_cache().hits(), 1);
        assert_eq!(g.consult_cache().misses(), 1);
        let stats = g.column_stats("citizen", "age").unwrap();
        assert_eq!(stats.n_distinct, 2.0);
    }

    #[test]
    fn consultation_cache_invalidated_by_ddl() {
        let c = cluster();
        let g = GlobalCatalog::discover(&c).unwrap();
        assert!(!g.consult(&c, "citizen").unwrap());
        assert!(g.consult(&c, "citizen").unwrap());
        assert_eq!(g.metadata_fetches(), 1);
        // A DDL executed against the owning node (here a CREATE TABLE AS)
        // bumps its generation: the cached probe is dropped and the next
        // consultation re-fetches, observing the fresh catalog.
        c.execute("db1", "CREATE TABLE citizen_copy AS SELECT * FROM citizen")
            .unwrap();
        assert!(!g.consult(&c, "citizen").unwrap());
        assert_eq!(g.metadata_fetches(), 2);
        // DDL on an unrelated node leaves db1's entries valid.
        c.execute("db2", "CREATE TABLE other (x BIGINT)").unwrap();
        assert!(g.consult(&c, "citizen").unwrap());
        assert_eq!(g.metadata_fetches(), 2);
    }

    #[test]
    fn placeholder_estimates() {
        let g = GlobalCatalog::new();
        g.register_placeholder("__task_0", 1234.0);
        assert_eq!(g.table_rows("__task_0"), Some(1234.0));
        g.clear_placeholders();
        assert_eq!(g.table_rows("__task_0"), None);
    }
}
