//! The XDB client and middleware entry point (Section III).
//!
//! `Xdb::submit` runs the full pipeline of Figure 4b: ① take a declarative
//! cross-database query, ② optimize it into a delegation plan (logical
//! optimization → plan annotation → plan finalization), ③ delegate it via
//! DDL statements, ④–⑥ execute the returned *XDB query* on the root DBMS
//! and collect the result — all without any mediating execution engine.
//!
//! The reported [`PhaseBreakdown`] mirrors the paper's Figure 15: `prep`
//! (parsing + metadata consultation), `lopt` (logical optimization), `ann`
//! (annotation + finalization consulting), `exec` (delegation DDLs +
//! decentralized execution).

use crate::annotate::{plan_fingerprint, stable_hash_hex, AnnotateOptions, Annotator};
use crate::delegation::{
    build_script, run_cleanup, run_script, run_script_parallel, DelegationScript,
};
use crate::global::GlobalCatalog;
use crate::plan::DelegationPlan;
use std::sync::atomic::{AtomicU64, Ordering};
use xdb_engine::cluster::Cluster;
use xdb_engine::error::{EngineError, Result};
use xdb_engine::relation::Relation;
use xdb_net::{params, wire, NodeId, Purpose};
use xdb_obs::history::EdgeObs;
use xdb_obs::{
    critical_path, CriticalPath, HistoryRecord, QueryTrace, SpanId, SpanKind, TraceCollector,
    TraceCtx, HISTORY_SCHEMA_VERSION,
};
use xdb_sql::ast::{Statement, TableRef};
use xdb_sql::bind::bind_select;
use xdb_sql::optimize::{optimize, OptimizeOptions};

/// Per-phase simulated times (Fig 15).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseBreakdown {
    /// Parsing, analysis, metadata gathering through the connectors.
    pub prep_ms: f64,
    /// Logical optimization (rewrites + join ordering) — query-dependent,
    /// data-size-independent.
    pub lopt_ms: f64,
    /// Plan annotation + finalization, dominated by consulting
    /// round-trips.
    pub ann_ms: f64,
    /// Delegation DDLs + decentralized execution.
    pub exec_ms: f64,
    /// Consultation-cache hits during this query's preparation and
    /// annotation (probes answered without a round-trip).
    pub consult_cache_hits: u64,
    /// Consultation-cache misses (probes that did pay a round-trip).
    pub consult_cache_misses: u64,
}

impl PhaseBreakdown {
    pub fn total_ms(&self) -> f64 {
        self.prep_ms + self.lopt_ms + self.ann_ms + self.exec_ms
    }

    /// Optimization overhead (everything but execution).
    pub fn overhead_ms(&self) -> f64 {
        self.prep_ms + self.lopt_ms + self.ann_ms
    }

    /// Project the breakdown out of a query trace: phase durations come
    /// from the Phase spans, cache accounting from the counters. This is
    /// the *only* way the middleware computes a breakdown — the trace is
    /// the source of truth, the breakdown a view of it.
    pub fn from_trace(trace: &QueryTrace) -> PhaseBreakdown {
        PhaseBreakdown {
            prep_ms: trace.phase_ms("prep"),
            lopt_ms: trace.phase_ms("lopt"),
            ann_ms: trace.phase_ms("ann"),
            exec_ms: trace.phase_ms("exec"),
            consult_cache_hits: trace.counter("consult.cache_hits") as u64,
            consult_cache_misses: trace.counter("consult.cache_misses") as u64,
        }
    }
}

/// Result of one cross-database query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    pub relation: Relation,
    pub delegation: DelegationPlan,
    pub breakdown: PhaseBreakdown,
    pub consult_roundtrips: u64,
    pub ddl_count: usize,
    /// Correlation id of this query: names its `xdb_q<id>_*` objects and
    /// tags its telemetry events.
    pub query_id: u64,
    /// The deployed DDL script, kept so delegation artifacts left behind
    /// by `keep_objects` runs can be torn down later via [`Xdb::cleanup`].
    pub script: DelegationScript,
    /// The structured execution trace: hierarchical spans (query → phase →
    /// task → operator / DDL / transfer) on the simulated clock, plus
    /// counters. Deterministic — parallel and sequential executors emit
    /// bit-identical traces.
    pub trace: QueryTrace,
    /// Cost-model observatory bundle: every placement decision's predicted
    /// Eq. 1–3 components (chosen + rejected candidates) joined against
    /// the observed wire edges and statement work of this run. Purely
    /// derived — empty when the plan had no cross-database decisions.
    pub cost: xdb_obs::CostObservation,
}

impl QueryOutcome {
    /// `EXPLAIN ANALYZE`-style text report of the trace, followed by the
    /// critical-path attribution ("critical path: 7 spans, 61% transfer
    /// on node presto->xdb").
    pub fn report(&self) -> String {
        let mut out = self.trace.render_text();
        if let Some(crit) = critical_path(&self.trace) {
            if !out.ends_with('\n') {
                out.push('\n');
            }
            out.push_str(&crit.render());
        }
        out
    }
}

/// Middleware configuration.
#[derive(Debug, Clone)]
pub struct XdbOptions {
    pub annotate: AnnotateOptions,
    /// Disable join reordering in logical optimization (ablation).
    pub no_join_reorder: bool,
    /// Disable projection pushdown (ablation).
    pub no_column_pruning: bool,
    /// Enumerate bushy join trees instead of left-deep only (the paper's
    /// future-work extension; decentralized execution pipelines the
    /// independent subtrees in parallel).
    pub bushy_joins: bool,
    /// Keep the short-lived relations after execution (debugging /
    /// plan-explorer).
    pub keep_objects: bool,
    /// Execute independent delegation tasks concurrently across engine
    /// nodes. Observationally equivalent to the sequential executor
    /// (results, ledger, simulated timings); off switches back to the
    /// strictly sequential step loop.
    pub parallel_execution: bool,
    /// Collect per-operator statistics (rows in/out, hash-join build and
    /// probe sizes) inside every engine touched by this query and attach
    /// Operator spans to the trace. Off by default: operator profiling is
    /// the only instrumentation with a per-row bookkeeping footprint.
    pub trace_operators: bool,
    /// Transport morsel size (rows) for streamed dataflow edges; 0 means
    /// unbounded (one chunk per edge). Defaults to 4096, overridable via
    /// `XDB_STREAM_CHUNK`. Any value yields bit-identical results,
    /// ledgers, simulated timings, traces, and deterministic metric
    /// snapshots — only the quarantined `net.chunks` series moves.
    pub stream_chunk_rows: usize,
    /// Morsel-reactor worker threads decoding streamed edges (0 disables
    /// the reactor; consumers then stream inline on the calling thread).
    /// Defaults from `XDB_REACTOR_THREADS` / `XDB_SEQUENTIAL` (see
    /// [`xdb_net::reactor::default_threads`]). Any value yields
    /// bit-identical results, ledgers, simulated timings, traces, and
    /// deterministic metric snapshots — only the quarantined
    /// `sched.reactor_*` series moves, and with it the wall clock.
    pub reactor_threads: usize,
    /// Slow-query threshold in simulated ms: a query whose total time
    /// exceeds it gets a `Warn` event carrying its critical-path
    /// attribution. `None` disables the slow-query log. Defaults from
    /// `XDB_SLOW_QUERY_MS`.
    pub slow_query_ms: Option<f64>,
    /// Price placement/movement candidates through the catalog's learned
    /// cost profiles and feed each executed query's cost observation back
    /// into them. On by default; `XDB_STATIC_COSTS=1` (or setting this to
    /// false) reproduces the static Eq. 1–3 model bit-exactly — plans,
    /// traces, and every deterministic snapshot match the pre-feedback
    /// build.
    pub learned_costs: bool,
    /// Keep pricing through the learned profiles but stop absorbing new
    /// observations. Used wherever absorption order would otherwise be
    /// scheduling-dependent (concurrent session admission) and by the
    /// fixed-profile arms of `repro replay`.
    pub freeze_profiles: bool,
}

/// The `XDB_STATIC_COSTS` default for [`XdbOptions::learned_costs`]: any
/// non-empty value other than `0` disables learned pricing.
pub fn default_learned_costs() -> bool {
    !matches!(std::env::var("XDB_STATIC_COSTS"), Ok(v) if !v.trim().is_empty() && v.trim() != "0")
}

/// The `XDB_SLOW_QUERY_MS` default for [`XdbOptions::slow_query_ms`]
/// (unset or unparsable → disabled).
pub fn default_slow_query_ms() -> Option<f64> {
    std::env::var("XDB_SLOW_QUERY_MS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
}

impl Default for XdbOptions {
    fn default() -> XdbOptions {
        XdbOptions {
            annotate: AnnotateOptions::default(),
            no_join_reorder: false,
            no_column_pruning: false,
            bushy_joins: false,
            keep_objects: false,
            parallel_execution: true,
            trace_operators: false,
            stream_chunk_rows: xdb_engine::default_stream_chunk_rows(),
            reactor_threads: xdb_net::reactor::default_threads(),
            slow_query_ms: default_slow_query_ms(),
            learned_costs: default_learned_costs(),
            freeze_profiles: false,
        }
    }
}

/// Per-logical-plan-operator abstraction of the optimizer's own CPU time
/// (simulated; real wall time is microseconds at this scale but the
/// paper's Java implementation reports seconds).
const LOPT_MS_PER_NODE: f64 = 2.5;
/// Parse/analysis baseline of the prep phase.
pub(crate) const PREP_PARSE_MS: f64 = 15.0;

/// Process-wide query-id source: short-lived relation names must be
/// unique across *every* concurrently-active client of the federation,
/// not just within one.
static NEXT_QUERY_ID: AtomicU64 = AtomicU64::new(1);

/// Draw a fresh process-wide query id (used by the session layer for
/// fan-out waiters, which never deploy objects of their own but still need
/// a correlation id on their traces and telemetry events).
pub(crate) fn next_query_id() -> u64 {
    NEXT_QUERY_ID.fetch_add(1, Ordering::Relaxed)
}

/// The XDB middleware.
pub struct Xdb<'a> {
    cluster: &'a Cluster,
    catalog: &'a GlobalCatalog,
    /// The node the client (and thus the middleware) talks from; final
    /// results and control messages are accounted against this node.
    client_node: NodeId,
    options: XdbOptions,
}

impl<'a> Xdb<'a> {
    pub fn new(cluster: &'a Cluster, catalog: &'a GlobalCatalog) -> Xdb<'a> {
        Xdb {
            cluster,
            catalog,
            client_node: NodeId::new("xdb-client"),
            options: XdbOptions::default(),
        }
    }

    pub fn with_options(mut self, options: XdbOptions) -> Self {
        self.options = options;
        self
    }

    /// Account the middleware/client as sitting on `node` (e.g. a cloud
    /// node of the topology) for transfer bookkeeping.
    pub fn with_client_node(mut self, node: impl Into<String>) -> Self {
        self.client_node = NodeId::new(node);
        self
    }

    pub(crate) fn cluster(&self) -> &'a Cluster {
        self.cluster
    }

    pub(crate) fn client_node(&self) -> &NodeId {
        &self.client_node
    }

    /// Plan a query without executing it: returns the delegation plan, the
    /// DDL script, and the would-be breakdown of the optimization phases.
    pub fn plan(
        &self,
        sql: &str,
    ) -> Result<(DelegationPlan, DelegationScript, PhaseBreakdown, u64)> {
        let planned = self.plan_internal(sql)?;
        let trace = planned.collector.finish();
        let breakdown = PhaseBreakdown::from_trace(&trace);
        Ok((
            planned.delegation,
            planned.script,
            breakdown,
            planned.consults,
        ))
    }

    /// Shared front half of [`Xdb::plan`], [`Xdb::submit`] and the session
    /// layer: run the optimization pipeline while recording the
    /// prep/lopt/ann phase spans and per-probe Consult spans into a fresh
    /// collector.
    pub(crate) fn plan_internal(&self, sql: &str) -> Result<Planned> {
        let stmt = xdb_sql::parse_statement(sql)?;
        let select = match stmt {
            Statement::Select(s) => s,
            // `EXPLAIN <select>` against the middleware plans the inner
            // query; callers wanting the rendered report use
            // [`Xdb::explain`].
            Statement::Explain(s) => s,
            other => {
                return Err(EngineError::Unsupported(format!(
                    "XDB accepts SELECT queries only, got {other:?}"
                )))
            }
        };
        let collector = TraceCollector::new();
        let query_span = collector.span(SpanKind::Query, "query", "client", None, 0.0, 0.0);
        collector.attr(query_span, "sql", sql);

        // prep: parse + consult metadata/statistics for every referenced
        // table. Probes answered by the consultation cache cost nothing;
        // only misses pay the metadata round-trip (the cache is dropped
        // per node whenever a DDL runs against it). Hit/miss accounting is
        // per query — counted from this query's own probes, never from
        // deltas of the process-wide cache counters, which concurrent
        // queries would pollute.
        let prep_span = collector.span(
            SpanKind::Phase,
            "prep",
            "client",
            Some(query_span),
            0.0,
            0.0,
        );
        let mut tables = Vec::new();
        collect_tables(&select.from, &mut tables);
        let mut cursor = PREP_PARSE_MS;
        let mut prep_hits = 0u64;
        let mut prep_fetches = 0u64;
        for t in &tables {
            // Unknown names surface at bind; consultation is best-effort.
            if let Ok(hit) = self.catalog.consult(self.cluster, t) {
                let dur = if hit { 0.0 } else { params::METADATA_FETCH_MS };
                let probe = collector.span(
                    SpanKind::Consult,
                    format!("metadata {t}"),
                    "client",
                    Some(prep_span),
                    cursor,
                    dur,
                );
                collector.attr(probe, "cache", if hit { "hit" } else { "miss" });
                if let Some(node) = self.catalog.location(t) {
                    collector.attr(probe, "node", node.as_str());
                }
                if hit {
                    prep_hits += 1;
                } else {
                    prep_fetches += 1;
                }
                cursor += dur;
            }
        }
        let prep_ms = PREP_PARSE_MS + prep_fetches as f64 * params::METADATA_FETCH_MS;
        collector.set_dur(prep_span, prep_ms);

        // lopt.
        let bound = bind_select(&select, self.catalog)?;
        let node_count = bound.node_count() as f64;
        let optimized = optimize(
            bound,
            self.catalog,
            OptimizeOptions {
                reorder_joins: !self.options.no_join_reorder,
                prune_columns: !self.options.no_column_pruning,
                join_shape: if self.options.bushy_joins {
                    xdb_sql::optimize::JoinShape::Bushy
                } else {
                    xdb_sql::optimize::JoinShape::LeftDeep
                },
            },
        );
        let lopt_ms = node_count * LOPT_MS_PER_NODE;
        let lopt_span = collector.span(
            SpanKind::Phase,
            "lopt",
            "client",
            Some(query_span),
            prep_ms,
            lopt_ms,
        );
        collector.attr(lopt_span, "plan_nodes", format!("{node_count:.0}"));

        // ann (+ finalization).
        self.catalog.clear_placeholders();
        let mut aopts = self.options.annotate.clone();
        if !self.options.learned_costs {
            aopts.static_costs = true;
        }
        let annotation = Annotator::new(self.catalog, self.cluster, aopts).run(&optimized)?;
        let ann_ms = annotation.consults as f64 * params::CONSULT_ROUNDTRIP_MS;
        let ann_span = collector.span(
            SpanKind::Phase,
            "ann",
            "client",
            Some(query_span),
            prep_ms + lopt_ms,
            ann_ms,
        );
        let mut acur = prep_ms + lopt_ms;
        for (i, decision) in annotation.decisions.iter().enumerate() {
            let dur = decision.paid_consults as f64 * params::CONSULT_ROUNDTRIP_MS;
            let probe = collector.span(
                SpanKind::Consult,
                format!("placement {i}"),
                "client",
                Some(ann_span),
                acur,
                dur,
            );
            let c = &decision.chosen;
            collector.attr(
                probe,
                "chosen",
                format!(
                    "{} ({}l,{}r) cost={:.1}",
                    c.dbms, c.left_move, c.right_move, c.cost
                ),
            );
            collector.attr(probe, "paid_consults", decision.paid_consults.to_string());
            for (j, cand) in decision.candidates.iter().enumerate() {
                let picked = cand.dbms == c.dbms
                    && cand.left_move == c.left_move
                    && cand.right_move == c.right_move;
                collector.attr(
                    probe,
                    &format!("cand.{j}"),
                    format!(
                        "{} ({}l,{}r) cost={:.1} [{}]",
                        cand.dbms,
                        cand.left_move,
                        cand.right_move,
                        cand.cost,
                        if picked { "chosen" } else { "rejected" }
                    ),
                );
            }
            acur += dur;
        }

        collector.add("consults", annotation.consults as f64);
        collector.add(
            "consult.cache_hits",
            (prep_hits + annotation.cache_hits) as f64,
        );
        collector.add(
            "consult.cache_misses",
            (prep_fetches + annotation.cache_misses) as f64,
        );
        collector.add("prep.metadata_fetches", prep_fetches as f64);

        let overhead_ms = prep_ms + lopt_ms + ann_ms;
        collector.set_dur(query_span, overhead_ms);

        let query_id = next_query_id();
        let script = build_script(&annotation.plan, query_id, self.cluster)?;

        // Fleet telemetry: the whole planning pipeline is single-threaded,
        // so Info events and the phase histograms below are deterministic.
        let telemetry = self.cluster.telemetry();
        telemetry
            .metrics
            .observe("xdb.phase_ms", &[("phase", "prep")], prep_ms);
        telemetry
            .metrics
            .observe("xdb.phase_ms", &[("phase", "lopt")], lopt_ms);
        telemetry
            .metrics
            .observe("xdb.phase_ms", &[("phase", "ann")], ann_ms);
        telemetry
            .metrics
            .counter_add("xdb.queries_planned", &[], 1.0);
        let tasks = annotation.plan.tasks.len().to_string();
        let movements = annotation.plan.edges.len().to_string();
        let consults_str = annotation.consults.to_string();
        telemetry.events.log(
            xdb_obs::Level::Info,
            "core.client",
            Some(query_id),
            overhead_ms,
            "query planned",
            &[
                ("tasks", &tasks),
                ("movements", &movements),
                ("consults", &consults_str),
            ],
        );
        Ok(Planned {
            fragment_keys: annotation.fragment_keys,
            decisions: annotation.decisions,
            delegation: annotation.plan,
            script,
            collector,
            query_span,
            overhead_ms,
            consults: annotation.consults,
            query_id,
            prep_probes: prep_hits + prep_fetches,
            ann_probes: annotation.cache_hits + annotation.cache_misses,
            lopt_ms,
        })
    }

    /// Middleware-level `EXPLAIN`: plan the query (consulting statistics
    /// and costing placements) without deploying or executing anything,
    /// and render the delegation plan + DDL script as text.
    pub fn explain(&self, sql: &str) -> Result<String> {
        let (plan, script, breakdown, consults) = self.plan(sql)?;
        let mut out = String::new();
        out.push_str("== delegation plan ==\n");
        out.push_str(&plan.describe());
        out.push_str("\n== DDL script ==\n");
        for step in &script.steps {
            out.push_str(&format!("@{}: {}\n", step.node, step.sql));
        }
        out.push_str(&format!(
            "\n== XDB query ==\n@{}: {}\n",
            script.root_node, script.xdb_query
        ));
        out.push_str(&format!(
            "\n{} tasks, {} movements, {consults} consulting round-trips, \
             estimated optimization overhead {:.0} ms\n",
            plan.tasks.len(),
            plan.edges.len(),
            breakdown.overhead_ms()
        ));
        Ok(out)
    }

    /// Full pipeline: plan, delegate, execute, clean up.
    pub fn submit(&self, sql: &str) -> Result<QueryOutcome> {
        let planned = self.plan_internal(sql)?;
        let Planned {
            delegation,
            script,
            collector,
            query_span,
            overhead_ms,
            consults,
            query_id,
            decisions,
            ..
        } = planned;
        let telemetry = self.cluster.telemetry();
        // Wire-codec dictionary reuse is scoped to one query: edges that
        // stream the same relation within this submission share encode
        // state, but nothing leaks across submissions.
        self.cluster.clear_codec_cache();
        // Transfer spans are derived from the ledger records this query
        // appends; remember where the ledger stood before we touch it.
        let ledger_mark = self.cluster.ledger.len();
        // Control traffic: consulting probes and DDL statements are small
        // messages from the middleware to the DBMS nodes (Fig 14's
        // "lightweight control messages").
        for step in &script.steps {
            self.cluster.ledger.record(
                &self.client_node,
                &step.node,
                step.sql.len() as u64,
                0,
                Purpose::ControlMessage,
            );
        }
        let exec_span = collector.span(
            SpanKind::Phase,
            "exec",
            "client",
            Some(query_span),
            overhead_ms,
            0.0,
        );
        let trace_ctx = TraceCtx::new(&collector, overhead_ms, Some(exec_span));
        if self.options.trace_operators {
            self.cluster.set_op_tracing(true);
        }
        // Publish the transport morsel size to every engine; edges encode
        // per edge and stream at this granularity.
        self.cluster
            .set_stream_chunk_rows(self.options.stream_chunk_rows);
        self.cluster
            .set_reactor_threads(self.options.reactor_threads);
        let exec = if self.options.parallel_execution {
            run_script_parallel(self.cluster, &delegation, &script, &trace_ctx)
        } else {
            run_script(self.cluster, &delegation, &script, &trace_ctx)
        };
        if self.options.trace_operators {
            self.cluster.set_op_tracing(false);
        }
        let outcome = match exec {
            Ok(o) => o,
            Err(e) => {
                // Failure mid-execution: tear down whatever was created.
                run_cleanup(self.cluster, &script);
                telemetry
                    .metrics
                    .counter_add("xdb.queries", &[("status", "error")], 1.0);
                let err = e.to_string();
                telemetry.events.log(
                    xdb_obs::Level::Warn,
                    "core.client",
                    Some(query_id),
                    overhead_ms,
                    "execution failed; delegation artifacts torn down",
                    &[("error", &err)],
                );
                return Err(e);
            }
        };
        // The final result travels from the root DBMS to the client —
        // priced through the same wire codec as every other edge (sizing
        // only: the client holds the relation already).
        let final_enc = wire::measure(outcome.relation.columns(), outcome.relation.len());
        self.cluster.ledger.record_wire(
            &script.root_node,
            &self.client_node,
            outcome.relation.wire_bytes(),
            outcome.relation.len() as u64,
            Purpose::FinalResult,
            &final_enc.stats(self.options.stream_chunk_rows),
        );
        if !self.options.keep_objects {
            run_cleanup(self.cluster, &script);
        }
        collector.set_dur(exec_span, outcome.exec_ms);
        collector.set_dur(query_span, overhead_ms + outcome.exec_ms);
        self.emit_transfer_spans(
            &collector,
            exec_span,
            ledger_mark,
            overhead_ms,
            outcome.exec_ms,
        );
        let trace = collector.finish();
        let breakdown = PhaseBreakdown::from_trace(&trace);
        // Cost-model observatory: join the predicted placement decisions
        // against the ledger records this query appended and its statement
        // work. Reads only final state, so it cannot perturb any
        // deterministic observable.
        let ledger_records = self.cluster.ledger.snapshot();
        let statements = statements_from_trace(&trace);
        let cost = crate::observatory::build_cost_observation(
            self.cluster,
            &decisions,
            &ledger_records[ledger_mark.min(ledger_records.len())..],
            &statements,
        );
        drop(ledger_records);
        // Feedback: fold this query's observation into the catalog's
        // learned profiles. The observation is bit-identical across
        // executors / reactor settings / chunk sizes, so feedback
        // preserves the cross-axis determinism of every later plan.
        if self.options.learned_costs && !self.options.freeze_profiles && !cost.is_empty() {
            self.catalog.absorb_cost_observation(&cost, &statements);
        }
        telemetry
            .metrics
            .observe("xdb.phase_ms", &[("phase", "exec")], outcome.exec_ms);
        telemetry
            .metrics
            .observe("xdb.total_ms", &[], breakdown.total_ms());
        telemetry
            .metrics
            .counter_add("xdb.queries", &[("status", "ok")], 1.0);
        let rows = outcome.relation.len().to_string();
        let total = format!("{:.3}", breakdown.total_ms());
        telemetry.events.log(
            xdb_obs::Level::Info,
            "core.client",
            Some(query_id),
            breakdown.total_ms(),
            "query completed",
            &[("rows", &rows), ("total_ms", &total)],
        );
        // Query history + slow-query log: both consume the critical path,
        // so compute it only when either consumer is active. Everything
        // recorded here is simulated-clock / script-order state — records
        // are bit-identical across executors and stream-chunk sizes.
        let slow = self
            .options
            .slow_query_ms
            .is_some_and(|t| breakdown.total_ms() > t);
        if telemetry.history.is_enabled() || slow {
            let crit = critical_path(&trace);
            if telemetry.history.is_enabled() {
                let record = self.history_record(
                    sql,
                    &delegation,
                    &breakdown,
                    crit.as_ref(),
                    query_id,
                    ledger_mark,
                    &trace,
                    &cost,
                );
                telemetry.history.append(record);
            }
            if slow {
                let threshold = format!("{}", self.options.slow_query_ms.unwrap_or(0.0));
                let mut fields: Vec<(String, String)> = vec![
                    ("total_ms".to_string(), total.clone()),
                    ("threshold_ms".to_string(), threshold),
                ];
                if let Some(crit) = &crit {
                    fields.push(("crit_spans".to_string(), crit.steps.len().to_string()));
                    if let Some(top) = crit.dominant() {
                        fields.push((
                            "dominant".to_string(),
                            format!(
                                "{:.0}% {} on {}",
                                crit.share_pct(top.ns),
                                top.category.label(),
                                top.location
                            ),
                        ));
                    }
                }
                let borrowed: Vec<(&str, &str)> = fields
                    .iter()
                    .map(|(k, v)| (k.as_str(), v.as_str()))
                    .collect();
                telemetry.events.log(
                    xdb_obs::Level::Warn,
                    "core.client",
                    Some(query_id),
                    breakdown.total_ms(),
                    "slow query",
                    &borrowed,
                );
            }
        }
        Ok(QueryOutcome {
            relation: outcome.relation,
            delegation,
            breakdown,
            consult_roundtrips: consults,
            ddl_count: outcome.ddl_count,
            query_id,
            script,
            trace,
            cost,
        })
    }

    /// Tear down the delegation artifacts (`xdb_q<id>_*` views, foreign
    /// tables, and materialized copies) a `keep_objects` run left behind,
    /// in reverse-dependency order. Idempotent (`DROP … IF EXISTS`);
    /// returns the number of successful drops. After this, every engine's
    /// `ddl.objects_live` gauge is back to its pre-query value.
    pub fn cleanup(&self, outcome: &QueryOutcome) -> usize {
        run_cleanup(self.cluster, &outcome.script)
    }

    /// Assemble the [`HistoryRecord`] of one finished submission: plan
    /// fingerprint, phase timings, critical-path attribution, per-edge
    /// wire observations (from the ledger records this query appended),
    /// and per-engine statement work (from the trace counters).
    #[allow(clippy::too_many_arguments)]
    fn history_record(
        &self,
        sql: &str,
        delegation: &DelegationPlan,
        breakdown: &PhaseBreakdown,
        crit: Option<&CriticalPath>,
        query_id: u64,
        ledger_mark: usize,
        trace: &QueryTrace,
        cost: &xdb_obs::CostObservation,
    ) -> HistoryRecord {
        let telemetry = self.cluster.telemetry();
        let records = self.cluster.ledger.snapshot();
        let edges = records[ledger_mark.min(records.len())..]
            .iter()
            .map(|t| EdgeObs {
                from: t.from.as_str().to_string(),
                to: t.to.as_str().to_string(),
                purpose: format!("{:?}", t.purpose),
                bytes: t.bytes,
                encoded_bytes: t.encoded_bytes,
                rows: t.rows,
                codecs: t
                    .codec_bytes
                    .iter()
                    .map(|(c, b)| (c.to_string(), *b))
                    .collect(),
            })
            .collect();
        let statements = statements_from_trace(trace);
        let critical = crit
            .map(|c| {
                c.attribution
                    .iter()
                    .map(|a| {
                        (
                            a.category.label().to_string(),
                            a.location.clone(),
                            xdb_obs::critical::ms(a.ns),
                        )
                    })
                    .collect()
            })
            .unwrap_or_default();
        HistoryRecord {
            schema_version: HISTORY_SCHEMA_VERSION,
            label: telemetry.history.label(),
            deployment: "xdb".to_string(),
            sql_fnv: stable_hash_hex(sql.as_bytes()),
            fingerprint: plan_fingerprint(delegation),
            query_id,
            total_ms: breakdown.total_ms(),
            phases: vec![
                ("prep".to_string(), breakdown.prep_ms),
                ("lopt".to_string(), breakdown.lopt_ms),
                ("ann".to_string(), breakdown.ann_ms),
                ("exec".to_string(), breakdown.exec_ms),
            ],
            consult_hits: breakdown.consult_cache_hits,
            consult_misses: breakdown.consult_cache_misses,
            crit_spans: crit.map_or(0, |c| c.steps.len() as u64),
            critical,
            edges,
            statements,
            cost: cost.clone(),
            learned_costs: self.options.learned_costs,
        }
    }

    /// One Transfer span (lane `net`) per ledger record this query
    /// appended, in ledger-merge order — the order is deterministic because
    /// both executors absorb worker ledgers in script order. Each record
    /// gets an equal slot of the exec window; the span sequence visualises
    /// *what moved and in which order*, not independent wire timings (those
    /// live on the Materialize / pipeline spans).
    pub(crate) fn emit_transfer_spans(
        &self,
        collector: &TraceCollector,
        exec_span: SpanId,
        ledger_mark: usize,
        exec_start_ms: f64,
        exec_ms: f64,
    ) {
        let records = self.cluster.ledger.snapshot();
        if ledger_mark >= records.len() {
            return;
        }
        let fresh = &records[ledger_mark..];
        let slot = exec_ms / fresh.len() as f64;
        for (i, t) in fresh.iter().enumerate() {
            let span = collector.span(
                SpanKind::Transfer,
                format!("{} -> {}", t.from, t.to),
                "net",
                Some(exec_span),
                exec_start_ms + i as f64 * slot,
                slot,
            );
            collector.attr(span, "bytes", t.bytes.to_string());
            collector.attr(span, "encoded_bytes", t.encoded_bytes.to_string());
            collector.attr(span, "rows", t.rows.to_string());
            collector.attr(span, "purpose", format!("{:?}", t.purpose));
            collector.attr(span, "order", i.to_string());
            match t.purpose {
                Purpose::InterDbmsPipeline => collector.attr(span, "movement", "implicit"),
                Purpose::Materialization => collector.attr(span, "movement", "explicit"),
                _ => {}
            }
            collector.add("net.bytes", t.bytes as f64);
            collector.add("net.encoded_bytes", t.encoded_bytes as f64);
            // Per-edge transfer size distribution for the fleet registry
            // (this loop runs single-threaded in ledger-merge order).
            let telemetry = self.cluster.telemetry();
            match t.purpose {
                Purpose::InterDbmsPipeline => {
                    collector.add("net.implicit_bytes", t.bytes as f64);
                    telemetry.metrics.observe(
                        "net.edge_bytes",
                        &[("movement", "implicit")],
                        t.bytes as f64,
                    );
                }
                Purpose::Materialization => {
                    collector.add("net.explicit_bytes", t.bytes as f64);
                    telemetry.metrics.observe(
                        "net.edge_bytes",
                        &[("movement", "explicit")],
                        t.bytes as f64,
                    );
                }
                _ => {}
            }
        }
    }
}

/// Output of the optimization front half: everything `submit` needs to go
/// on and execute, plus the live trace collector with the prep/lopt/ann
/// spans already recorded.
pub(crate) struct Planned {
    pub(crate) delegation: DelegationPlan,
    pub(crate) script: DelegationScript,
    pub(crate) collector: TraceCollector,
    pub(crate) query_span: SpanId,
    pub(crate) overhead_ms: f64,
    pub(crate) consults: u64,
    pub(crate) query_id: u64,
    /// Canonical fragment key per task (annotation-time canonicalization).
    pub(crate) fragment_keys: std::collections::HashMap<usize, String>,
    /// Placement decisions in annotation order — the predicted half of
    /// the cost-model observatory, joined post-execution by `submit`.
    pub(crate) decisions: Vec<crate::annotate::PlacementDecision>,
    /// Metadata probes issued during prep (hits + fetches). A warm replan
    /// of the same query answers all of them from the consultation cache.
    pub(crate) prep_probes: u64,
    /// EXPLAIN probes issued during annotation (hits + misses).
    pub(crate) ann_probes: u64,
    pub(crate) lopt_ms: f64,
}

/// Per-engine statement work from the trace counters
/// (`node.<engine>.work_ms`), in the counters' deterministic order.
fn statements_from_trace(trace: &QueryTrace) -> Vec<(String, f64)> {
    trace
        .counters
        .iter()
        .filter_map(|(k, v)| {
            k.strip_prefix("node.")
                .and_then(|rest| rest.strip_suffix(".work_ms"))
                .map(|engine| (engine.to_string(), *v))
        })
        .collect()
}

fn collect_tables(from: &[TableRef], out: &mut Vec<String>) {
    for t in from {
        collect_tables_ref(t, out);
    }
}

fn collect_tables_ref(t: &TableRef, out: &mut Vec<String>) {
    match t {
        TableRef::Table { name, .. } => {
            let key = name.to_ascii_lowercase();
            if !out.contains(&key) {
                out.push(key);
            }
        }
        TableRef::Derived { query, .. } => collect_tables(&query.from, out),
        TableRef::Join { left, right, .. } => {
            collect_tables_ref(left, out);
            collect_tables_ref(right, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{self, ScenarioConfig};

    fn setup() -> (Cluster, GlobalCatalog) {
        scenario::build(ScenarioConfig::default()).unwrap()
    }

    #[test]
    fn submit_end_to_end() {
        let (cluster, catalog) = setup();
        let xdb = Xdb::new(&cluster, &catalog);
        let outcome = xdb.submit(scenario::EXAMPLE_QUERY).unwrap();
        assert!(!outcome.relation.is_empty());
        assert!(outcome.breakdown.prep_ms > 0.0);
        assert!(outcome.breakdown.lopt_ms > 0.0);
        assert!(outcome.breakdown.ann_ms > 0.0);
        assert!(outcome.breakdown.exec_ms > 0.0);
        assert_eq!(outcome.consult_roundtrips, 4);
        // The 4 annotation probes miss (first sighting of this query);
        // the 4 metadata probes hit the cache warmed by scenario::build.
        assert_eq!(outcome.breakdown.consult_cache_misses, 4);
        assert_eq!(outcome.breakdown.consult_cache_hits, 4);
        assert!(outcome.ddl_count >= outcome.delegation.tasks.len());
        // Short-lived objects were dropped.
        for node in ["cdb", "vdb", "hdb"] {
            let names = cluster.engine(node).unwrap().with_catalog(|c| c.names());
            assert!(
                names.iter().all(|n| !n.starts_with("xdb_q")),
                "{node} leaked {names:?}"
            );
        }
    }

    #[test]
    fn resubmission_uses_fresh_names() {
        let (cluster, catalog) = setup();
        let xdb = Xdb::new(&cluster, &catalog);
        let first = xdb.submit(scenario::EXAMPLE_QUERY).unwrap();
        let second = xdb.submit(scenario::EXAMPLE_QUERY).unwrap();
        assert!(first.relation.same_bag(&second.relation));
    }

    #[test]
    fn final_result_and_control_traffic_recorded() {
        let (cluster, catalog) = setup();
        let xdb = Xdb::new(&cluster, &catalog).with_client_node("cloud");
        xdb.submit(scenario::EXAMPLE_QUERY).unwrap();
        assert!(cluster.ledger.bytes_for(Purpose::FinalResult) > 0);
        assert!(cluster.ledger.bytes_for(Purpose::ControlMessage) > 0);
        // The cloud node never receives intermediate data, only control +
        // final results (the Fig 14 ONP claim).
        let into_cloud = cluster.ledger.bytes_into(&NodeId::new("cloud"));
        assert_eq!(into_cloud, cluster.ledger.bytes_for(Purpose::FinalResult));
    }

    #[test]
    fn keep_objects_leaves_views_in_place() {
        let (cluster, catalog) = setup();
        let xdb = Xdb::new(&cluster, &catalog).with_options(XdbOptions {
            keep_objects: true,
            ..Default::default()
        });
        let outcome = xdb.submit(scenario::EXAMPLE_QUERY).unwrap();
        let root_node = outcome
            .delegation
            .task(outcome.delegation.root)
            .dbms
            .clone();
        let names = cluster
            .engine(root_node.as_str())
            .unwrap()
            .with_catalog(|c| c.names());
        assert!(names.iter().any(|n| n.starts_with("xdb_q")));
    }

    #[test]
    fn explain_renders_plan_without_executing() {
        let (cluster, catalog) = setup();
        let xdb = Xdb::new(&cluster, &catalog);
        let text = xdb.explain(scenario::EXAMPLE_QUERY).unwrap();
        assert!(text.contains("delegation plan"), "{text}");
        assert!(text.contains("CREATE VIEW"), "{text}");
        assert!(text.contains("consulting round-trips"), "{text}");
        // Nothing was deployed or moved.
        assert_eq!(cluster.ledger.total_bytes(), 0);
        for node in ["cdb", "vdb", "hdb"] {
            let names = cluster.engine(node).unwrap().with_catalog(|c| c.names());
            assert!(names.iter().all(|n| !n.starts_with("xdb_q")));
        }
    }

    #[test]
    fn non_select_rejected() {
        let (cluster, catalog) = setup();
        let xdb = Xdb::new(&cluster, &catalog);
        assert!(matches!(
            xdb.submit("DROP TABLE citizen"),
            Err(EngineError::Unsupported(_))
        ));
    }

    #[test]
    fn unknown_table_fails_cleanly() {
        let (cluster, catalog) = setup();
        let xdb = Xdb::new(&cluster, &catalog);
        assert!(xdb.submit("SELECT * FROM nothere").is_err());
    }

    #[test]
    fn plan_only_does_not_execute() {
        let (cluster, catalog) = setup();
        let xdb = Xdb::new(&cluster, &catalog);
        let (plan, script, breakdown, consults) = xdb.plan(scenario::EXAMPLE_QUERY).unwrap();
        assert_eq!(plan.tasks.len(), 3);
        assert!(!script.steps.is_empty());
        assert!(breakdown.exec_ms == 0.0);
        assert!(consults > 0);
        // Nothing moved.
        assert_eq!(cluster.ledger.total_bytes(), 0);
    }

    #[test]
    fn breakdown_total_sums_phases() {
        let b = PhaseBreakdown {
            prep_ms: 1.0,
            lopt_ms: 2.0,
            ann_ms: 3.0,
            exec_ms: 4.0,
            ..Default::default()
        };
        assert_eq!(b.total_ms(), 10.0);
        assert_eq!(b.overhead_ms(), 6.0);
    }
}
