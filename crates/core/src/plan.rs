//! Delegation plans (Section IV-A): the intermediate representation that
//! "captures the semantics as well as the mechanics of a fully
//! decentralized query execution".
//!
//! A delegation plan is a DAG `G = (T, E)`: tasks are algebraic expressions
//! annotated with the DBMS that must evaluate them (`a:r` in the paper's
//! notation); edges are dataflow operations, either implicit (pipelined,
//! `i`) or explicit (materialized, `e`).

use xdb_net::{Movement, NodeId};
use xdb_sql::algebra::LogicalPlan;
use xdb_sql::value::DataType;

/// Name of the placeholder relation standing in for task `id`'s output
/// inside a consuming task (the `?` of the paper, Section IV-B3).
pub fn placeholder_name(id: usize) -> String {
    format!("__task_{id}")
}

/// Alias under which a placeholder is addressed inside the consuming
/// task's expressions.
pub fn placeholder_alias(id: usize) -> String {
    format!("t{id}")
}

/// One task `t = (r, a)`: an algebraic expression `r` assigned to DBMS `a`.
#[derive(Debug, Clone)]
pub struct Task {
    pub id: usize,
    pub dbms: NodeId,
    /// The task body; leaves are base-table scans and [`LogicalPlan::Placeholder`]s
    /// referring to other tasks.
    pub plan: LogicalPlan,
    /// Output columns of the task's (virtual) relation.
    pub output_fields: Vec<(String, DataType)>,
    /// Optimizer's cardinality estimate for the task output.
    pub est_rows: f64,
}

/// One dataflow edge `t_from --x--> t_to`.
#[derive(Debug, Clone, PartialEq)]
pub struct Edge {
    pub from: usize,
    pub to: usize,
    pub movement: Movement,
}

/// The full delegation plan.
#[derive(Debug, Clone, Default)]
pub struct DelegationPlan {
    pub tasks: Vec<Task>,
    pub edges: Vec<Edge>,
    /// Index of the root task (whose output is the query result).
    pub root: usize,
}

impl DelegationPlan {
    /// In-edges of a task.
    pub fn in_edges(&self, task: usize) -> impl Iterator<Item = &Edge> {
        self.edges.iter().filter(move |e| e.to == task)
    }

    /// Tasks in dependency order (children before consumers). Task ids are
    /// assigned bottom-up during annotation, so id order is topological.
    pub fn topo_order(&self) -> Vec<usize> {
        let mut ids: Vec<usize> = self.tasks.iter().map(|t| t.id).collect();
        ids.sort_unstable();
        ids
    }

    pub fn task(&self, id: usize) -> &Task {
        self.tasks.iter().find(|t| t.id == id).expect("task id")
    }

    /// Number of inter-DBMS movements by type.
    pub fn movement_counts(&self) -> (usize, usize) {
        let implicit = self
            .edges
            .iter()
            .filter(|e| e.movement == Movement::Implicit)
            .count();
        (implicit, self.edges.len() - implicit)
    }

    /// Paper-style notation for the whole plan, one edge per line, e.g.
    /// `db2:⋈(c,o) --i--> db1:⋈(?,l)` (Table IV).
    pub fn notation(&self) -> String {
        let mut out = String::new();
        for e in &self.edges {
            let from = self.task(e.from);
            let to = self.task(e.to);
            out.push_str(&format!(
                "{}:{} --{}--> {}:{}\n",
                from.dbms,
                from.plan.compact_notation(),
                e.movement,
                to.dbms,
                to.plan.compact_notation()
            ));
        }
        if self.edges.is_empty() {
            if let Some(root) = self.tasks.iter().find(|t| t.id == self.root) {
                out.push_str(&format!("{}:{}\n", root.dbms, root.plan.compact_notation()));
            }
        }
        out
    }

    /// Full human-readable dump (plan explorer example).
    pub fn describe(&self) -> String {
        let mut out = String::new();
        for id in self.topo_order() {
            let t = self.task(id);
            out.push_str(&format!(
                "task t{} @ {} (est {} rows){}\n",
                t.id,
                t.dbms,
                t.est_rows.round() as u64,
                if t.id == self.root { "  [root]" } else { "" }
            ));
            for line in t.plan.tree_string().lines() {
                out.push_str("    ");
                out.push_str(line);
                out.push('\n');
            }
            for e in self.in_edges(id) {
                out.push_str(&format!(
                    "    <-- t{} ({})\n",
                    e.from,
                    match e.movement {
                        Movement::Implicit => "implicit / pipelined",
                        Movement::Explicit => "explicit / materialized",
                    }
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(alias: &str) -> LogicalPlan {
        LogicalPlan::Scan {
            relation: alias.to_string(),
            alias: alias.to_string(),
            fields: vec![("x".to_string(), DataType::Int)],
        }
    }

    fn sample() -> DelegationPlan {
        DelegationPlan {
            tasks: vec![
                Task {
                    id: 0,
                    dbms: NodeId::new("vdb"),
                    plan: scan("v"),
                    output_fields: vec![("x".to_string(), DataType::Int)],
                    est_rows: 10.0,
                },
                Task {
                    id: 1,
                    dbms: NodeId::new("cdb"),
                    plan: LogicalPlan::Placeholder {
                        name: placeholder_name(0),
                        alias: placeholder_alias(0),
                        fields: vec![("x".to_string(), DataType::Int)],
                    },
                    output_fields: vec![("x".to_string(), DataType::Int)],
                    est_rows: 10.0,
                },
            ],
            edges: vec![Edge {
                from: 0,
                to: 1,
                movement: Movement::Implicit,
            }],
            root: 1,
        }
    }

    #[test]
    fn notation_shows_edges() {
        let p = sample();
        let n = p.notation();
        assert!(n.contains("vdb:v --i--> cdb:?"), "{n}");
    }

    #[test]
    fn topo_and_counts() {
        let p = sample();
        assert_eq!(p.topo_order(), vec![0, 1]);
        assert_eq!(p.movement_counts(), (1, 0));
        assert_eq!(p.in_edges(1).count(), 1);
        assert_eq!(p.in_edges(0).count(), 0);
    }

    #[test]
    fn describe_mentions_root() {
        let p = sample();
        assert!(p.describe().contains("[root]"));
    }
}
