//! The delegation engine (Section V): rewrite a delegation plan into
//! DBMS-specific DDL statements that "prepare" the underlying DBMSes, then
//! trigger the in-situ execution with a single XDB query.
//!
//! For every task (Algorithm 1):
//! 1. each in-edge becomes a `CREATE FOREIGN TABLE` on the consuming DBMS
//!    pointing at the producing task's view;
//! 2. an *explicit* in-edge additionally materializes the foreign table
//!    with `CREATE TABLE ... AS SELECT * FROM <ft>`;
//! 3. the task body becomes a `CREATE VIEW` over local tables, foreign
//!    tables and materialized copies — always a *virtual relation* on the
//!    producer side, which is what prevents the "undesirable executions"
//!    of vendor wrappers pushing operations to the wrong side.
//!
//! The client then runs `SELECT * FROM <root view>` on the root DBMS; the
//! chained views trickle the execution down across all DBMSes (Fig 8).

use crate::plan::{placeholder_name, DelegationPlan};
use std::collections::HashMap;
use xdb_engine::cluster::{Cluster, ScopedCluster};
use xdb_engine::engine::ExecReport;
use xdb_engine::error::{EngineError, Result};
use xdb_engine::relation::Relation;
use xdb_net::Ledger;
use xdb_net::{params, Movement, NodeId};
use xdb_obs::{ExecProfile, SpanId, SpanKind, TraceCtx};
use xdb_sql::algebra::{plan_to_select, LogicalPlan};
use xdb_sql::ast::{ColumnDef, Statement};
use xdb_sql::display::render_statement;

/// What a DDL step does (for display and cleanup ordering).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DdlKind {
    View,
    ForeignTable,
    Materialize,
}

/// One DDL statement addressed to one DBMS.
#[derive(Debug, Clone)]
pub struct DdlStep {
    pub node: NodeId,
    pub sql: String,
    pub kind: DdlKind,
    /// Task whose deployment this step belongs to.
    pub task: usize,
    /// For `Materialize` steps: the edge (producer task) being
    /// materialized.
    pub edge_from: Option<usize>,
}

/// The rendered deployment: DDLs, cleanup, and the final XDB query.
#[derive(Debug, Clone)]
pub struct DelegationScript {
    /// The query id baked into every `xdb_q<id>_*` object name; doubles as
    /// the correlation id on telemetry events.
    pub query_id: u64,
    pub steps: Vec<DdlStep>,
    /// DROP statements undoing every created object, in reverse order.
    pub cleanup: Vec<(NodeId, String)>,
    /// The XDB query handed back to the client (Section III, step 4).
    pub xdb_query: String,
    pub root_node: NodeId,
}

/// Outcome of running a delegation script.
#[derive(Debug, Clone)]
pub struct ExecutionOutcome {
    pub relation: Relation,
    /// Simulated time of the delegation + execution phase: DDL round
    /// trips, explicit materializations (respecting task dependencies),
    /// and the final pipelined query.
    pub exec_ms: f64,
    /// Simulated time spent on DDL round-trips alone.
    pub ddl_ms: f64,
    pub ddl_count: usize,
}

/// Names for the short-lived relations of one deployed query.
pub(crate) fn view_name(query_id: u64, task: usize) -> String {
    format!("xdb_q{query_id}_t{task}")
}

fn foreign_name(query_id: u64, from: usize, to: usize) -> String {
    format!("xdb_q{query_id}_t{from}_t{to}_ft")
}

fn mat_name(query_id: u64, from: usize, to: usize) -> String {
    format!("xdb_q{query_id}_t{from}_t{to}_mat")
}

/// Render the delegation plan into per-DBMS DDL statements (Algorithm 1).
pub fn build_script(
    plan: &DelegationPlan,
    query_id: u64,
    cluster: &Cluster,
) -> Result<DelegationScript> {
    build_script_with_reuse(plan, query_id, cluster, &HashMap::new())
}

/// [`build_script`] with plan folding: tasks present in `reuse` are
/// *already deployed* by an earlier query of the same scheduling window
/// (the map gives the live view name of the shared fragment on the
/// producer's node), so no DDL is emitted for them and foreign tables of
/// their consumers point straight at the shared view. With an empty map
/// this is exactly Algorithm 1.
pub(crate) fn build_script_with_reuse(
    plan: &DelegationPlan,
    query_id: u64,
    cluster: &Cluster,
    reuse: &HashMap<usize, String>,
) -> Result<DelegationScript> {
    let mut steps: Vec<DdlStep> = Vec::new();
    let mut cleanup: Vec<(NodeId, String)> = Vec::new();
    for id in plan.topo_order() {
        if reuse.contains_key(&id) {
            continue;
        }
        let task = plan.task(id);
        let dialect = cluster.engine(task.dbms.as_str())?.profile.dialect;
        // Bind each placeholder to a foreign table (implicit) or a
        // materialized copy (explicit).
        let mut bindings: HashMap<String, String> = HashMap::new();
        for edge in plan.in_edges(id) {
            let producer = plan.task(edge.from);
            let ft = foreign_name(query_id, edge.from, id);
            let columns: Vec<ColumnDef> = producer
                .output_fields
                .iter()
                .map(|(n, t)| ColumnDef {
                    name: n.clone(),
                    data_type: *t,
                })
                .collect();
            let create_ft = Statement::CreateForeignTable {
                name: ft.clone(),
                columns,
                server: producer.dbms.as_str().to_string(),
                remote_name: Some(
                    reuse
                        .get(&edge.from)
                        .cloned()
                        .unwrap_or_else(|| view_name(query_id, edge.from)),
                ),
            };
            steps.push(DdlStep {
                node: task.dbms.clone(),
                sql: render_statement(&create_ft, dialect),
                kind: DdlKind::ForeignTable,
                task: id,
                edge_from: Some(edge.from),
            });
            cleanup.push((
                task.dbms.clone(),
                format!("DROP FOREIGN TABLE IF EXISTS {ft}"),
            ));
            let bound = match edge.movement {
                Movement::Implicit => ft,
                Movement::Explicit => {
                    let mat = mat_name(query_id, edge.from, id);
                    steps.push(DdlStep {
                        node: task.dbms.clone(),
                        sql: format!("CREATE TABLE {mat} AS SELECT * FROM {ft}"),
                        kind: DdlKind::Materialize,
                        task: id,
                        edge_from: Some(edge.from),
                    });
                    cleanup.push((task.dbms.clone(), format!("DROP TABLE IF EXISTS {mat}")));
                    mat
                }
            };
            bindings.insert(placeholder_name(edge.from), bound);
        }
        // Rewrite placeholders to their bound relation names and render
        // the task body as a view.
        let body = bind_placeholders(task.plan.clone(), &bindings)?;
        let select = plan_to_select(&body)?;
        let view = view_name(query_id, id);
        let create_view = Statement::CreateView {
            name: view.clone(),
            query: Box::new(select),
            or_replace: false,
        };
        steps.push(DdlStep {
            node: task.dbms.clone(),
            sql: render_statement(&create_view, dialect),
            kind: DdlKind::View,
            task: id,
            edge_from: None,
        });
        cleanup.push((task.dbms.clone(), format!("DROP VIEW IF EXISTS {view}")));
    }
    cleanup.reverse();
    let root = plan.task(plan.root);
    let root_view = reuse
        .get(&plan.root)
        .cloned()
        .unwrap_or_else(|| view_name(query_id, plan.root));
    Ok(DelegationScript {
        query_id,
        steps,
        cleanup,
        xdb_query: format!("SELECT * FROM {root_view}"),
        root_node: root.dbms.clone(),
    })
}

/// Replace placeholder relation names with their bound (foreign or
/// materialized) relation names. Also used by the annotator's fragment-key
/// canonicalization, which rebinds placeholders to child-key-derived names.
pub(crate) fn bind_placeholders(
    plan: LogicalPlan,
    bindings: &HashMap<String, String>,
) -> Result<LogicalPlan> {
    Ok(match plan {
        LogicalPlan::Placeholder {
            name,
            alias,
            fields,
        } => {
            let bound = bindings
                .get(&name)
                .ok_or_else(|| EngineError::Execution(format!("unbound placeholder {name:?}")))?;
            LogicalPlan::Placeholder {
                name: bound.clone(),
                alias,
                fields,
            }
        }
        LogicalPlan::Scan { .. } | LogicalPlan::OneRow => plan,
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(bind_placeholders(*input, bindings)?),
            predicate,
        },
        LogicalPlan::Project { input, exprs } => LogicalPlan::Project {
            input: Box::new(bind_placeholders(*input, bindings)?),
            exprs,
        },
        LogicalPlan::Join {
            left,
            right,
            on,
            residual,
        } => LogicalPlan::Join {
            left: Box::new(bind_placeholders(*left, bindings)?),
            right: Box::new(bind_placeholders(*right, bindings)?),
            on,
            residual,
        },
        LogicalPlan::SemiJoin {
            left,
            right,
            on,
            residual,
            negated,
        } => LogicalPlan::SemiJoin {
            left: Box::new(bind_placeholders(*left, bindings)?),
            right: Box::new(bind_placeholders(*right, bindings)?),
            on,
            residual,
            negated,
        },
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggregates,
        } => LogicalPlan::Aggregate {
            input: Box::new(bind_placeholders(*input, bindings)?),
            group_by,
            aggregates,
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(bind_placeholders(*input, bindings)?),
            keys,
        },
        LogicalPlan::Limit { input, fetch } => LogicalPlan::Limit {
            input: Box::new(bind_placeholders(*input, bindings)?),
            fetch,
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(bind_placeholders(*input, bindings)?),
        },
        LogicalPlan::SubqueryAlias { input, alias } => LogicalPlan::SubqueryAlias {
            input: Box::new(bind_placeholders(*input, bindings)?),
            alias,
        },
    })
}

/// Deploy and execute a delegation script on the cluster.
///
/// DDLs run in script order (they are cheap control messages). Explicit
/// materializations are *execution* work: each `CREATE TABLE AS` pulls its
/// upstream pipeline; independent materializations overlap, dependent ones
/// chain. The final `SELECT * FROM <root view>` then streams through the
/// remaining implicit pipeline.
pub fn run_script(
    cluster: &Cluster,
    plan: &DelegationPlan,
    script: &DelegationScript,
    trace: &TraceCtx<'_>,
) -> Result<ExecutionOutcome> {
    let mut reports: Vec<ExecReport> = Vec::with_capacity(script.steps.len());
    for step in &script.steps {
        let outcome = cluster.execute(step.node.as_str(), &step.sql)?;
        reports.push(outcome.report);
    }
    finish_script(cluster, plan, script, &reports, trace)
}

/// Shared tail of both executors: replay the simulated timeline from the
/// per-step reports (in script order), run the final XDB query, and emit
/// the execution spans.
///
/// Everything here is single-threaded and driven only by script order and
/// the deterministic step reports, so sequential and parallel runs produce
/// bit-identical timings *and traces* by construction.
pub(crate) fn finish_script(
    cluster: &Cluster,
    plan: &DelegationPlan,
    script: &DelegationScript,
    step_reports: &[ExecReport],
    trace: &TraceCtx<'_>,
) -> Result<ExecutionOutcome> {
    debug_assert_eq!(step_reports.len(), script.steps.len());
    // (from, to) -> producer ready-time / absolute finish time of each
    // materialization. The CTAS report already contains the implicit
    // upstream chain of the producer's view; its base is the ready-time of
    // the producer (its own explicit dependencies).
    let mut mat_base: HashMap<(usize, usize), f64> = HashMap::new();
    let mut mat_finish: HashMap<(usize, usize), f64> = HashMap::new();
    for (step, report) in script.steps.iter().zip(step_reports) {
        if step.kind == DdlKind::Materialize {
            let from = step.edge_from.expect("materialize step has an edge");
            let mut memo = HashMap::new();
            let base = ready(plan, from, &mat_finish, &mut memo);
            mat_base.insert((from, step.task), base);
            mat_finish.insert((from, step.task), base + report.finish_ms);
        }
    }
    let ddl_count = script.steps.len();
    let ddl_ms = ddl_count as f64 * params::DDL_ROUNDTRIP_MS;

    // The XDB query triggers the in-situ pipeline.
    let (relation, report) = cluster.query(script.root_node.as_str(), &script.xdb_query)?;
    let mut memo = HashMap::new();
    let root_ready = ready(plan, plan.root, &mat_finish, &mut memo);
    let exec_ms = ddl_ms + root_ready + report.finish_ms;
    if trace.is_enabled() {
        emit_exec_spans(
            trace,
            plan,
            script,
            step_reports,
            &report,
            ddl_ms,
            &mat_base,
            &mat_finish,
            root_ready,
        );
    }
    // Fleet telemetry. This tail is single-threaded and driven only by
    // script order + deterministic reports, so histogram observations and
    // the Info event below are bit-identical across executors.
    let telemetry = cluster.telemetry();
    for (step, report) in script.steps.iter().zip(step_reports) {
        telemetry.metrics.observe(
            "exec.step_work_ms",
            &[("engine", step.node.as_str())],
            report.work_ms,
        );
        if step.kind == DdlKind::Materialize {
            let from = step.edge_from.expect("materialize step has an edge");
            let key = (from, step.task);
            telemetry.metrics.observe(
                "exec.materialize_ms",
                &[("movement", "explicit")],
                mat_finish[&key] - mat_base[&key],
            );
        }
    }
    telemetry.metrics.observe("exec.query_ms", &[], exec_ms);
    telemetry.metrics.observe("exec.ddl_ms", &[], ddl_ms);
    let rows = relation.len().to_string();
    let ddls = ddl_count.to_string();
    telemetry.events.log(
        xdb_obs::Level::Info,
        "core.delegation",
        Some(script.query_id),
        exec_ms,
        "delegated execution finished",
        &[
            ("root", script.root_node.as_str()),
            ("rows", &rows),
            ("ddl_count", &ddls),
        ],
    );
    Ok(ExecutionOutcome {
        relation,
        exec_ms,
        ddl_ms,
        ddl_count,
    })
}

/// Emit the execution-phase spans: one Task span per contiguous run of
/// same-task DDL steps, one Ddl span per round-trip, one Exec span per
/// materialization and for the final pipelined query (with per-operator and
/// remote-producer children when operator tracing is on), plus per-node
/// counters. All `start_ms` values are relative to the exec phase origin
/// (`trace.base_ms`).
#[allow(clippy::too_many_arguments)]
fn emit_exec_spans(
    trace: &TraceCtx<'_>,
    plan: &DelegationPlan,
    script: &DelegationScript,
    step_reports: &[ExecReport],
    final_report: &ExecReport,
    ddl_ms: f64,
    mat_base: &HashMap<(usize, usize), f64>,
    mat_finish: &HashMap<(usize, usize), f64>,
    root_ready: f64,
) {
    let mut task_span: Option<(usize, SpanId)> = None;
    for (k, (step, report)) in script.steps.iter().zip(step_reports).enumerate() {
        let start = k as f64 * params::DDL_ROUNDTRIP_MS;
        let tspan = match task_span {
            Some((t, id)) if t == step.task => id,
            _ => {
                let len = script.steps[k..]
                    .iter()
                    .take_while(|s| s.task == step.task)
                    .count();
                let dbms = &plan.task(step.task).dbms;
                let id = trace.span(
                    SpanKind::Task,
                    format!("task {}", step.task),
                    dbms.as_str(),
                    start,
                    len as f64 * params::DDL_ROUNDTRIP_MS,
                );
                trace.collector.attr(id, "dbms", dbms.as_str());
                task_span = Some((step.task, id));
                id
            }
        };
        let label = match step.kind {
            DdlKind::View => "create view",
            DdlKind::ForeignTable => "create foreign table",
            DdlKind::Materialize => "create table as",
        };
        let ddl = trace.span_under(
            tspan,
            SpanKind::Ddl,
            label,
            step.node.as_str(),
            start,
            params::DDL_ROUNDTRIP_MS,
        );
        trace.collector.attr(ddl, "sql", &step.sql);
        trace.add(
            &format!("node.{}.work_ms", step.node.as_str()),
            report.work_ms,
        );
        trace.add(
            &format!("node.{}.rows", step.node.as_str()),
            report.rows as f64,
        );
        trace.add(
            &format!("node.{}.bytes", step.node.as_str()),
            report.bytes as f64,
        );
        if step.kind == DdlKind::Materialize {
            let from = step.edge_from.expect("materialize step has an edge");
            let key = (from, step.task);
            let start_ms = ddl_ms + mat_base[&key];
            let dur = mat_finish[&key] - mat_base[&key];
            let mat = trace.span_under(
                tspan,
                SpanKind::Exec,
                format!("materialize t{} -> t{}", from, step.task),
                step.node.as_str(),
                start_ms,
                dur,
            );
            trace.collector.attr(mat, "rows", report.rows.to_string());
            // Critical-path inputs: the pure-compute tail of this span
            // (`work_ms`) and the producer node feeding it (`from`) — the
            // profiler splits the span at `end - work_ms` into a transfer
            // head and a compute tail.
            trace
                .collector
                .attr(mat, "work_ms", format!("{}", report.work_ms));
            trace
                .collector
                .attr(mat, "from", plan.task(from).dbms.as_str());
            if let Some(profile) = &report.profile {
                emit_profile_spans(trace, mat, profile, start_ms, dur);
            }
        }
    }
    // The final pipelined query on the root node.
    let qstart = ddl_ms + root_ready;
    let q = trace.span(
        SpanKind::Exec,
        "xdb query",
        script.root_node.as_str(),
        qstart,
        final_report.finish_ms,
    );
    trace.collector.attr(q, "sql", &script.xdb_query);
    trace
        .collector
        .attr(q, "rows", final_report.rows.to_string());
    trace
        .collector
        .attr(q, "work_ms", format!("{}", final_report.work_ms));
    let root = script.root_node.as_str();
    trace.add(&format!("node.{root}.work_ms"), final_report.work_ms);
    trace.add(&format!("node.{root}.rows"), final_report.rows as f64);
    trace.add(&format!("node.{root}.bytes"), final_report.bytes as f64);
    trace.add("exec.ddl_count", script.steps.len() as f64);
    if let Some(profile) = &final_report.profile {
        emit_profile_spans(trace, q, profile, qstart, final_report.finish_ms);
    }
}

/// Recursively emit the per-operator and remote-producer spans of one
/// engine-side execution profile as children of `parent`.
///
/// Remote producers feed the consumer's pipeline, so their spans share the
/// parent's start and are clamped into its extent. Operator spans subdivide
/// the parent's interval proportionally by rows touched — an EXPLAIN
/// ANALYZE-style visual breakdown, not an independent timing source.
fn emit_profile_spans(
    trace: &TraceCtx<'_>,
    parent: SpanId,
    profile: &ExecProfile,
    start_ms: f64,
    dur_ms: f64,
) {
    for (remote, wire_ms) in &profile.remotes {
        let d = remote.finish_ms.min(dur_ms);
        let id = trace.span_under(
            parent,
            SpanKind::Exec,
            format!("pipeline from {}", remote.node),
            remote.node.as_str(),
            start_ms,
            d,
        );
        trace.collector.attr(id, "wire_ms", format!("{wire_ms}"));
        emit_profile_spans(trace, id, remote, start_ms, d);
    }
    let total: f64 = profile
        .ops
        .iter()
        .map(|o| (o.rows_in + o.rows_out + 1) as f64)
        .sum();
    let mut cursor = start_ms;
    for op in &profile.ops {
        let w = (op.rows_in + op.rows_out + 1) as f64;
        let d = if total > 0.0 {
            dur_ms * (w / total)
        } else {
            0.0
        };
        let id = trace.span_under(
            parent,
            SpanKind::Operator,
            op.op,
            profile.node.as_str(),
            cursor,
            d,
        );
        trace.collector.attr(id, "rows_in", op.rows_in.to_string());
        trace
            .collector
            .attr(id, "rows_out", op.rows_out.to_string());
        if op.build_rows > 0 || op.probe_rows > 0 {
            trace
                .collector
                .attr(id, "build_rows", op.build_rows.to_string());
            trace
                .collector
                .attr(id, "probe_rows", op.probe_rows.to_string());
        }
        cursor += d;
    }
}

/// Ready-time of a task: the instant all of its explicit upstream
/// materializations have finished (implicit edges chain through their
/// producers).
fn ready(
    plan: &DelegationPlan,
    task: usize,
    mat_finish: &HashMap<(usize, usize), f64>,
    memo: &mut HashMap<usize, f64>,
) -> f64 {
    if let Some(v) = memo.get(&task) {
        return *v;
    }
    let mut t = 0.0f64;
    for e in plan.in_edges(task) {
        let upstream = match e.movement {
            Movement::Explicit => *mat_finish.get(&(e.from, e.to)).unwrap_or(&0.0),
            Movement::Implicit => ready(plan, e.from, mat_finish, memo),
        };
        t = t.max(upstream);
    }
    memo.insert(task, t);
    t
}

/// What one parallel task group hands back: its scratch ledger plus the
/// execution report of every step it ran, in step order.
struct GroupRun {
    ledger: Ledger,
    reports: Vec<ExecReport>,
}

/// Per-group result slot: outcome tag plus the run (or the error).
type GroupSlot = std::sync::Mutex<Option<(GroupDone, Result<GroupRun>)>>;

/// Outcome of one task group in the event-graph executor.
enum GroupDone {
    Ok,
    Failed,
    /// Not run because an ancestor failed.
    Skipped,
}

/// Shared scheduler state of the event-graph executor (guarded by one
/// mutex; the condvar wakes idle workers when groups become ready or the
/// graph drains).
struct EventSched {
    /// Groups whose every dependency finished successfully, ready to run.
    ready: std::collections::VecDeque<usize>,
    /// Unfinished-dependency count per group.
    indeg: Vec<usize>,
    /// Group has a failed (or transitively skipped) ancestor.
    tainted: Vec<bool>,
    /// Groups not yet finished or skipped.
    remaining: usize,
}

/// Deploy and execute a delegation script with independent tasks running
/// concurrently, driven by the dependency graph itself.
///
/// Each contiguous script-order run of one task's steps is a *group*; a
/// group fires the moment all its in-edges drain — every group of every
/// producer task has finished, plus the task's own earlier groups — rather
/// than waiting for a global wave barrier, so a deep chain on one branch
/// no longer stalls independent shallow branches. Each group records
/// transfers into a private scratch [`Ledger`] and reports the raw finish
/// time of each materialization; after the graph drains the scratch
/// ledgers are absorbed in *script order* and the simulated timeline is
/// replayed with the same `ready()` composition the sequential executor
/// uses — making results, ledger contents, and simulated timings
/// bit-identical to [`run_script`].
///
/// On failure every group without a failed ancestor still runs (the set of
/// executed groups is a function of the graph, not of thread timing), the
/// error of the lowest failing group in script order is returned, and only
/// scratch ledgers of groups strictly before it are absorbed.
pub fn run_script_parallel(
    cluster: &Cluster,
    plan: &DelegationPlan,
    script: &DelegationScript,
    trace: &TraceCtx<'_>,
) -> Result<ExecutionOutcome> {
    // Contiguous runs of steps belonging to one task, in script order.
    let mut groups: Vec<(usize, Vec<&DdlStep>)> = Vec::new();
    for step in &script.steps {
        match groups.last_mut() {
            Some((task, steps)) if *task == step.task => steps.push(step),
            _ => groups.push((step.task, vec![step])),
        }
    }

    // Dependency edges between groups: a group waits for every group of
    // every producer task (any movement — even an implicit consumer's
    // DDLs may pull through the producer's view when a downstream
    // materialization drains the pipeline), and for earlier groups of its
    // own task (DDL order within a task is significant).
    let producers: Vec<std::collections::HashSet<usize>> = groups
        .iter()
        .map(|(t, _)| plan.in_edges(*t).map(|e| e.from).collect())
        .collect();
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); groups.len()];
    let mut indeg = vec![0usize; groups.len()];
    for (gi, (t, _)) in groups.iter().enumerate() {
        for (gj, (u, _)) in groups.iter().enumerate() {
            if gj != gi && (producers[gi].contains(u) || (gj < gi && u == t)) {
                dependents[gj].push(gi);
                indeg[gi] += 1;
            }
        }
    }

    let sched = std::sync::Mutex::new(EventSched {
        ready: (0..groups.len()).filter(|&gi| indeg[gi] == 0).collect(),
        indeg,
        tainted: vec![false; groups.len()],
        remaining: groups.len(),
    });
    let wake = std::sync::Condvar::new();
    let done: Vec<GroupSlot> = (0..groups.len())
        .map(|_| std::sync::Mutex::new(None))
        .collect();

    // One group finished (or was skipped): release its dependents,
    // propagating taint — a skipped group resolves its dependents in the
    // same pass, so the graph always drains.
    let resolve = |gi: usize, ok: bool, s: &mut EventSched| {
        let mut stack = vec![(gi, ok)];
        while let Some((g, ok)) = stack.pop() {
            s.remaining -= 1;
            for &d in &dependents[g] {
                if !ok {
                    s.tainted[d] = true;
                }
                s.indeg[d] -= 1;
                if s.indeg[d] == 0 {
                    if s.tainted[d] {
                        *done[d].lock().unwrap() = Some((
                            GroupDone::Skipped,
                            Err(EngineError::Execution(
                                "task group skipped: upstream group failed".into(),
                            )),
                        ));
                        stack.push((d, false));
                    } else {
                        s.ready.push_back(d);
                    }
                }
            }
        }
    };

    let workers = groups
        .len()
        .min(
            std::thread::available_parallelism()
                .map_or(1, usize::from)
                .max(2),
        )
        .max(1);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let gi = {
                    let mut st = sched.lock().unwrap();
                    loop {
                        if let Some(gi) = st.ready.pop_front() {
                            break gi;
                        }
                        if st.remaining == 0 {
                            return;
                        }
                        st = wake.wait(st).unwrap();
                    }
                };
                let steps = &groups[gi].1;
                let run = (|| {
                    let scoped = ScopedCluster::new(cluster);
                    let mut reports = Vec::with_capacity(steps.len());
                    for step in steps {
                        let outcome = cluster.with_step_lock(step.node.as_str(), || {
                            scoped.execute(step.node.as_str(), &step.sql)
                        })?;
                        reports.push(outcome.report);
                    }
                    Ok(GroupRun {
                        ledger: scoped.ledger,
                        reports,
                    })
                })();
                let ok = run.is_ok();
                *done[gi].lock().unwrap() =
                    Some((if ok { GroupDone::Ok } else { GroupDone::Failed }, run));
                let mut st = sched.lock().unwrap();
                resolve(gi, ok, &mut st);
                wake.notify_all();
            });
        }
    });

    let mut runs: Vec<Option<GroupRun>> = Vec::new();
    runs.resize_with(groups.len(), || None);
    let mut failure: Option<(usize, EngineError)> = None;
    for (gi, slot) in done.iter().enumerate() {
        let (state, run) = slot
            .lock()
            .unwrap()
            .take()
            .expect("event executor left a group unresolved");
        match (state, run) {
            (GroupDone::Ok, Ok(run)) => runs[gi] = Some(run),
            (GroupDone::Failed, Err(e)) if failure.is_none() => failure = Some((gi, e)),
            _ => {} // later failure, or skipped descendant of one
        }
    }

    if let Some((fail_gi, e)) = failure {
        // Keep the ledger consistent with how far execution provably got:
        // absorb only groups strictly before the failing one in script
        // order, then let the caller clean up.
        for run in runs[..fail_gi].iter().flatten() {
            cluster.ledger.absorb(&run.ledger);
        }
        return Err(e);
    }
    for run in runs.iter().flatten() {
        cluster.ledger.absorb(&run.ledger);
    }

    // Post-barrier: flatten the per-group reports back into script order
    // (groups are contiguous script-order step runs) and hand off to the
    // shared, single-threaded tail — the same timeline replay and span
    // emission the sequential executor uses.
    let step_reports: Vec<ExecReport> = runs
        .into_iter()
        .flatten()
        .flat_map(|run| run.reports)
        .collect();
    finish_script(cluster, plan, script, &step_reports, trace)
}

/// Best-effort cleanup of all short-lived relations (also used by failure
/// injection tests: already-dropped or never-created objects are ignored).
pub fn run_cleanup(cluster: &Cluster, script: &DelegationScript) -> usize {
    let mut dropped = 0;
    for (node, sql) in &script.cleanup {
        if cluster.execute(node.as_str(), sql).is_ok() {
            dropped += 1;
        }
    }
    let telemetry = cluster.telemetry();
    telemetry
        .metrics
        .counter_add("ddl.objects_dropped", &[], dropped as f64);
    let n = dropped.to_string();
    telemetry.events.log(
        xdb_obs::Level::Info,
        "core.delegation",
        Some(script.query_id),
        0.0,
        "cleanup dropped short-lived objects",
        &[("dropped", &n)],
    );
    dropped
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::{AnnotateOptions, Annotator};
    use crate::global::GlobalCatalog;
    use crate::scenario;
    use xdb_net::Purpose;
    use xdb_sql::bind::bind_select;
    use xdb_sql::optimize::{optimize, OptimizeOptions};
    use xdb_sql::parse_select;

    fn delegate(
        sql: &str,
        options: AnnotateOptions,
    ) -> (Cluster, GlobalCatalog, DelegationPlan, DelegationScript) {
        let (cluster, catalog) = scenario::build(scenario::ScenarioConfig::default()).unwrap();
        let plan = bind_select(&parse_select(sql).unwrap(), &catalog).unwrap();
        let plan = optimize(plan, &catalog, OptimizeOptions::default());
        let ann = Annotator::new(&catalog, &cluster, options)
            .run(&plan)
            .unwrap();
        let script = build_script(&ann.plan, 1, &cluster).unwrap();
        (cluster, catalog, ann.plan, script)
    }

    /// Single-engine oracle: run the query against one engine holding all
    /// tables.
    fn oracle(sql: &str) -> Relation {
        let c = Cluster::lan(&["solo"], xdb_engine::EngineProfile::postgres());
        // Rebuild all scenario tables on one node.
        let (src, _) = scenario::build(scenario::ScenarioConfig::default()).unwrap();
        for node in ["cdb", "vdb", "hdb"] {
            let engine = src.engine(node).unwrap();
            for name in engine.with_catalog(|cat| cat.names()) {
                let rel = engine.with_catalog(|cat| match cat.get(&name) {
                    Some(xdb_engine::catalog::CatalogEntry::Table(t)) => Some(t.to_relation()),
                    _ => None,
                });
                if let Some(rel) = rel {
                    c.engine("solo").unwrap().load_table(&name, rel).unwrap();
                }
            }
        }
        c.query("solo", sql).unwrap().0
    }

    #[test]
    fn script_has_views_foreign_tables_and_query() {
        let (_, _, plan, script) = delegate(scenario::EXAMPLE_QUERY, Default::default());
        let views = script
            .steps
            .iter()
            .filter(|s| s.kind == DdlKind::View)
            .count();
        let fts = script
            .steps
            .iter()
            .filter(|s| s.kind == DdlKind::ForeignTable)
            .count();
        assert_eq!(views, plan.tasks.len());
        assert_eq!(fts, plan.edges.len());
        assert!(script.xdb_query.starts_with("SELECT * FROM xdb_q1_t"));
        // Cleanup drops every created object.
        assert_eq!(script.cleanup.len(), script.steps.len());
    }

    #[test]
    fn decentralized_execution_matches_single_engine() {
        let (cluster, _, plan, script) = delegate(scenario::EXAMPLE_QUERY, Default::default());
        let outcome = run_script(&cluster, &plan, &script, &TraceCtx::off()).unwrap();
        let expected = oracle(scenario::EXAMPLE_QUERY);
        assert!(
            outcome.relation.same_bag(&expected),
            "decentralized result diverged:\n{}\nvs oracle\n{}",
            outcome.relation.to_table_string(10),
            expected.to_table_string(10)
        );
        assert!(outcome.exec_ms > 0.0);
        run_cleanup(&cluster, &script);
    }

    #[test]
    fn forced_explicit_also_matches_oracle() {
        let (cluster, _, plan, script) = delegate(
            scenario::EXAMPLE_QUERY,
            AnnotateOptions {
                force_movement: Some(Movement::Explicit),
                ..Default::default()
            },
        );
        assert!(script.steps.iter().any(|s| s.kind == DdlKind::Materialize));
        let outcome = run_script(&cluster, &plan, &script, &TraceCtx::off()).unwrap();
        let expected = oracle(scenario::EXAMPLE_QUERY);
        assert!(outcome.relation.same_bag(&expected));
        // Materialization traffic got recorded as such.
        assert!(cluster.ledger.bytes_for(Purpose::Materialization) > 0);
    }

    #[test]
    fn parallel_executor_matches_sequential_ledger_and_timing() {
        // The parallel scheduler promises bit-identical observable
        // behavior: same result bag, same simulated times, and the same
        // ledger *records in the same order* (script-order absorption).
        for forced in [None, Some(Movement::Explicit)] {
            let options = AnnotateOptions {
                force_movement: forced,
                ..Default::default()
            };
            let (c_seq, _, p_seq, s_seq) = delegate(scenario::EXAMPLE_QUERY, options.clone());
            let (c_par, _, p_par, s_par) = delegate(scenario::EXAMPLE_QUERY, options);
            let seq = run_script(&c_seq, &p_seq, &s_seq, &TraceCtx::off()).unwrap();
            let par = run_script_parallel(&c_par, &p_par, &s_par, &TraceCtx::off()).unwrap();
            assert!(par.relation.same_bag(&seq.relation));
            assert_eq!(par.exec_ms, seq.exec_ms);
            assert_eq!(par.ddl_ms, seq.ddl_ms);
            assert_eq!(par.ddl_count, seq.ddl_count);
            let seq_snap = c_seq.ledger.snapshot();
            let par_snap = c_par.ledger.snapshot();
            assert_eq!(seq_snap.len(), par_snap.len());
            for (a, b) in seq_snap.iter().zip(&par_snap) {
                assert_eq!(a.from, b.from);
                assert_eq!(a.to, b.to);
                assert_eq!(a.bytes, b.bytes);
                assert_eq!(a.rows, b.rows);
                assert_eq!(a.purpose, b.purpose);
            }
        }
    }

    #[test]
    fn cleanup_removes_all_objects() {
        let (cluster, _, plan, script) = delegate(scenario::EXAMPLE_QUERY, Default::default());
        run_script(&cluster, &plan, &script, &TraceCtx::off()).unwrap();
        let dropped = run_cleanup(&cluster, &script);
        assert_eq!(dropped, script.cleanup.len());
        // Re-running the XDB query must now fail: objects are gone.
        assert!(cluster
            .query(script.root_node.as_str(), &script.xdb_query)
            .is_err());
        // Idempotent: second cleanup still succeeds (IF EXISTS).
        assert_eq!(run_cleanup(&cluster, &script), script.cleanup.len());
    }

    #[test]
    fn ddl_statements_parse_in_target_dialects() {
        let (_, _, _, script) = delegate(scenario::EXAMPLE_QUERY, Default::default());
        for step in &script.steps {
            xdb_sql::parse_statement(&step.sql)
                .unwrap_or_else(|e| panic!("unparsable DDL {:?}: {e}", step.sql));
        }
    }

    #[test]
    fn colocated_query_needs_no_foreign_tables() {
        let (cluster, _, plan, script) = delegate(
            "SELECT v.vtype, count(*) AS n FROM vaccines v, vaccination vn \
             WHERE v.id = vn.v_id GROUP BY v.vtype",
            Default::default(),
        );
        assert_eq!(plan.tasks.len(), 1);
        assert!(script.steps.iter().all(|s| s.kind == DdlKind::View));
        let outcome = run_script(&cluster, &plan, &script, &TraceCtx::off()).unwrap();
        assert!(!outcome.relation.is_empty());
        // Nothing crossed the network except nothing: it all ran on vdb.
        assert_eq!(cluster.ledger.total_bytes(), 0);
    }
}
